// E7 — engineering micro-benchmarks (google-benchmark): substrate costs
// that bound how many AVD tests per second the platform can run. Not a
// paper figure; included to validate the simulator substitution (DESIGN.md)
// is fast enough for the exhaustive sweeps.
#include <benchmark/benchmark.h>

#include "avd/controller.h"
#include "avd/pbft_executor.h"
#include "crypto/authenticator.h"
#include "crypto/keychain.h"
#include "pbft/deployment.h"
#include "sim/simulator.h"

using namespace avd;

namespace {

void BM_MacGenerate(benchmark::State& state) {
  crypto::Keychain keychain(42);
  crypto::MacService macs(0, &keychain);
  std::uint64_t digest = 0x123456789abcdefULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(macs.generate(1, digest));
    ++digest;
  }
}
BENCHMARK(BM_MacGenerate);

void BM_Authenticator(benchmark::State& state) {
  crypto::Keychain keychain(42);
  crypto::MacService macs(0, &keychain);
  const auto replicas = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t digest = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(macs.authenticate(digest++, replicas));
  }
}
BENCHMARK(BM_Authenticator)->Arg(4)->Arg(7)->Arg(13);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator(1);
    constexpr int kEvents = 10000;
    for (int i = 0; i < kEvents; ++i) {
      simulator.schedule(i, [] {});
    }
    state.ResumeTiming();
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

/// Requests committed per wall-second through a full f=1..3 deployment.
void BM_PbftCommitThroughput(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t requests = 0;
  for (auto _ : state) {
    pbft::DeploymentConfig config;
    config.pbft.f = f;
    config.correctClients = 10;
    config.warmup = 0;
    config.measure = sim::msec(500);
    config.seed = 7;
    const pbft::RunResult result = pbft::runScenario(config);
    requests += result.correctCompleted;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
  state.SetLabel("committed requests/s (wall)");
}
BENCHMARK(BM_PbftCommitThroughput)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// Cost of one AVD test (deployment build + run + impact computation).
void BM_AvdTestExecution(benchmark::State& state) {
  core::PbftExecutorOptions options;
  options.warmup = sim::msec(100);
  options.measure = sim::msec(500);
  options.defaultCorrectClients = 10;
  core::Hyperspace space;
  space.add(core::Dimension::grayBitmask("mac_mask", 12));
  core::PbftAttackExecutor executor(std::move(space), options);
  std::uint64_t mask = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.execute(core::Point{mask++ & 0xFFF}));
  }
  state.SetLabel("one full AVD test");
}
BENCHMARK(BM_AvdTestExecution)->Unit(benchmark::kMillisecond);

/// Read-heavy KV workload with and without the read-only optimization
/// (tentative execution: one round trip instead of three-phase ordering).
void BM_PbftReadHeavyWorkload(benchmark::State& state) {
  const bool readOnly = state.range(0) != 0;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    pbft::DeploymentConfig config;
    config.pbft.f = 1;
    config.service = pbft::ServiceKind::kKv;
    config.correctClients = 8;
    config.warmup = 0;
    config.measure = sim::msec(500);
    config.seed = 11;
    config.correctClientBehavior.opGenerator = [](util::RequestId i) {
      if (i % 8 == 1) return pbft::KvService::encodePut("k", "v");
      return pbft::KvService::encodeGet("k");
    };
    if (readOnly) {
      config.correctClientBehavior.readOnlyPredicate =
          [](util::RequestId i) { return i % 8 != 1; };
    }
    completed += pbft::runScenario(config).correctCompleted;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.SetLabel(readOnly ? "tentative read-only reads"
                          : "fully ordered reads");
}
BENCHMARK(BM_PbftReadHeavyWorkload)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Scenario-generation overhead of Algorithm 1 (without execution).
void BM_ControllerGeneration(benchmark::State& state) {
  class NullExecutor final : public core::ScenarioExecutor {
   public:
    NullExecutor() {
      space_.add(core::Dimension::grayBitmask("mac_mask", 12));
      space_.add(core::Dimension::range("correct_clients", 10, 250, 10));
    }
    core::Outcome execute(const core::Point& point) override {
      core::Outcome outcome;
      outcome.impact = static_cast<double>(point[0] % 97) / 97.0;
      return outcome;
    }
    const core::Hyperspace& space() const noexcept override { return space_; }

   private:
    core::Hyperspace space_;
  };

  NullExecutor executor;
  core::Controller controller(executor,
                              core::defaultPlugins(executor.space()));
  for (auto _ : state) {
    controller.runTests(1);
  }
  state.SetLabel("generate+bookkeep one scenario");
}
BENCHMARK(BM_ControllerGeneration);

}  // namespace

BENCHMARK_MAIN();
