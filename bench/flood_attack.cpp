// Flood-attack ablation bench: throughput of a bounded-ingress PBFT
// deployment under each flood tool class, undefended vs the Aardvark-style
// defense profile (admission control + fair scheduling + bounded queues).
// Emits BENCH_flood.json for CI trend tracking.
//
// The headline row is the defense ablation the campaign acceptance relies
// on: request spam at 16k msgs/s drives the undefended deployment's damage
// >= 0.5 while the defended one stays <= 0.2 against its own baseline.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "faultinject/flood.h"
#include "pbft/deployment.h"

using namespace avd;

namespace {

struct Row {
  std::string attack;
  double undefendedRps = 0.0;
  double defendedRps = 0.0;
  double undefendedDamage = 0.0;  // 1 - rps / same-config no-flood baseline
  double defendedDamage = 0.0;
  std::uint64_t queueDrops = 0;  // undefended run
  std::uint64_t quotaDrops = 0;  // defended run
};

pbft::DeploymentConfig boundedConfig(bool defended) {
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(400);
  config.pbft.viewChangeTimeout = sim::msec(400);
  config.correctClients = 20;
  config.clientRetx = sim::msec(100);
  config.warmup = sim::msec(300);
  config.measure = sim::sec(2);
  config.seed = 17;
  config.link = sim::LinkModel{sim::usec(500), sim::usec(100)};
  config.link.ingressCapacity = 64;
  config.link.ingressByteBudget = 32 * 1024;
  config.link.ingressServiceTime = sim::usec(100);
  if (defended) fi::enableFloodDefenses(config.pbft);
  return config;
}

pbft::RunResult runOne(bool defended, const fi::FloodOptions* flood) {
  const pbft::DeploymentConfig config = boundedConfig(defended);
  pbft::Deployment deployment(config);
  std::unique_ptr<fi::FloodClient> client;
  if (flood != nullptr) {
    client = std::make_unique<fi::FloodClient>(
        config.pbft.replicaCount() + config.totalClients(), config.pbft,
        &deployment.keychain(), *flood);
    deployment.network().registerNode(client.get());
    client->install();
  }
  return deployment.run();
}

double damage(double rps, double baseline) {
  if (baseline <= 0.0) return 0.0;
  const double raw = 1.0 - rps / baseline;
  return raw < 0.0 ? 0.0 : raw;
}

}  // namespace

int main() {
  struct Case {
    const char* name;
    fi::FloodOptions options;
  };
  std::vector<Case> cases;
  {
    Case spam{"request-spam @16k/s", {}};
    spam.options.kind = fi::FloodKind::kRequestSpam;
    spam.options.interval = sim::sec(1) / 16000;
    cases.push_back(spam);

    Case replay{"replay-storm @8k/s", {}};
    replay.options.kind = fi::FloodKind::kReplayStorm;
    replay.options.interval = sim::sec(1) / 8000;
    replay.options.payloadBytes = 512;
    cases.push_back(replay);

    Case oversized{"oversized @2k/s x4KiB", {}};
    oversized.options.kind = fi::FloodKind::kOversizedPayload;
    oversized.options.interval = sim::sec(1) / 2000;
    oversized.options.payloadBytes = 4096;
    cases.push_back(oversized);

    Case status{"status-amplify @500/s", {}};
    status.options.kind = fi::FloodKind::kStatusAmplify;
    status.options.interval = sim::msec(2);
    status.options.target = 3;
    cases.push_back(status);
  }

  std::printf("=== flood ablation (bounded ingress, 20 correct clients) ===\n");
  const double undefendedBaseline = runOne(false, nullptr).throughputRps;
  const double defendedBaseline = runOne(true, nullptr).throughputRps;
  std::printf("no-flood baseline: undefended %.1f req/s, defended %.1f "
              "req/s\n\n",
              undefendedBaseline, defendedBaseline);
  std::printf("%-22s %12s %12s %9s %9s\n", "attack", "undef rps", "def rps",
              "undef dmg", "def dmg");

  std::vector<Row> rows;
  for (const Case& c : cases) {
    const pbft::RunResult raw = runOne(false, &c.options);
    const pbft::RunResult guarded = runOne(true, &c.options);
    Row row;
    row.attack = c.name;
    row.undefendedRps = raw.throughputRps;
    row.defendedRps = guarded.throughputRps;
    row.undefendedDamage = damage(raw.throughputRps, undefendedBaseline);
    row.defendedDamage = damage(guarded.throughputRps, defendedBaseline);
    row.queueDrops = raw.queueDrops;
    row.quotaDrops = guarded.quotaDrops;
    std::printf("%-22s %12.1f %12.1f %9.3f %9.3f\n", row.attack.c_str(),
                row.undefendedRps, row.defendedRps, row.undefendedDamage,
                row.defendedDamage);
    rows.push_back(row);
  }

  std::string json = "{\n  \"bench\": \"flood_attack\",\n";
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "  \"undefended_baseline_rps\": %.3f,\n"
                "  \"defended_baseline_rps\": %.3f,\n  \"rows\": [\n",
                undefendedBaseline, defendedBaseline);
  json += buffer;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"attack\": \"%s\", \"undefended_rps\": %.3f, "
        "\"defended_rps\": %.3f, \"undefended_damage\": %.3f, "
        "\"defended_damage\": %.3f, \"queue_drops\": %llu, "
        "\"quota_drops\": %llu}%s\n",
        row.attack.c_str(), row.undefendedRps, row.defendedRps,
        row.undefendedDamage, row.defendedDamage,
        static_cast<unsigned long long>(row.queueDrops),
        static_cast<unsigned long long>(row.quotaDrops),
        i + 1 < rows.size() ? "," : "");
    json += buffer;
  }
  json += "  ]\n}\n";

  std::ofstream out("BENCH_flood.json", std::ios::trunc);
  out << json;
  std::printf("\nwrote BENCH_flood.json\n");
  return 0;
}
