// Fleet scaling bench: scenarios/sec for the in-process executor pool vs
// the multi-process fleet (fork+exec workers over socketpairs) at equal
// worker counts, on the quorum API target. Emits BENCH_campaign_fleet.json
// for CI trend tracking.
//
// The interesting number is the fleet/runner ratio at equal W: the fleet
// pays fork+exec, framing, and heartbeat overhead for its crash
// containment, and this bench checks that cost stays negligible (the
// acceptance bar is ratio >= 1.0 within noise on a host with >= W cores,
// since scenario execution dwarfs IPC).
//
// On a 1-core container the ratio is structurally < 1.0 and that is
// interpretable rather than alarming: both modes serialize all scenario
// work onto the same CPU, so the fleet's per-worker startup constant
// (~0.1 s each for fork+exec plus executor construction, measured by
// varying W at a tiny scenario budget) and the extra scheduler churn of
// W processes + heartbeat threads are pure overhead that parallelism
// never buys back. The JSON records hardware_concurrency so trend
// tracking can bucket hosts.
//
// Re-invokes itself in "fleet-worker" mode for the worker processes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "avd/quorum_executor.h"
#include "campaign/fleet/coordinator.h"
#include "campaign/fleet/worker.h"
#include "campaign/runner.h"
#include "common/proc.h"

using namespace avd;

namespace {

std::unique_ptr<core::ScenarioExecutor> makeQuorum() {
  return std::make_unique<core::QuorumApiExecutor>(
      core::makeQuorumApiHyperspace());
}

struct Row {
  std::string mode;
  std::size_t workers = 1;
  double seconds = 0.0;
  double scenariosPerSec = 0.0;
  double maxImpact = 0.0;
  std::size_t executed = 0;
};

Row runInProcess(std::size_t workers, std::size_t tests) {
  campaign::CampaignOptions options;
  options.seed = 2011;
  options.totalTests = tests;
  options.workers = workers;
  campaign::CampaignRunner runner([] { return makeQuorum(); }, options);

  // Wall-clock timing is the entire point of a throughput benchmark; the
  // measured numbers never feed a consensus decision.
  const auto start = std::chrono::steady_clock::now();  // avd-lint: allow(nondeterminism)
  const campaign::CampaignResult result = runner.run();
  const auto stop = std::chrono::steady_clock::now();  // avd-lint: allow(nondeterminism)

  Row row;
  row.mode = "in-process";
  row.workers = workers;
  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.executed = result.executed;
  row.maxImpact = result.maxImpact;
  return row;
}

Row runFleet(std::size_t spawn, std::size_t tests) {
  campaign::fleet::FleetOptions options;
  options.campaign.seed = 2011;
  options.campaign.totalTests = tests;
  options.spawn = spawn;
  // Per-scenario dispatch: quorum scenarios cost milliseconds, so amortizing
  // IPC with bigger batches only adds head-of-line blocking at the in-order
  // fold. Large batches pay off when scenarios are microseconds, not here.
  options.batch = 1;
  options.launcher = [](std::size_t) {
    return util::spawnWithSocket({util::selfExePath(), "fleet-worker"});
  };
  campaign::fleet::FleetCoordinator coordinator(
      std::move(options), [] { return makeQuorum(); });

  const auto start = std::chrono::steady_clock::now();  // avd-lint: allow(nondeterminism)
  const campaign::CampaignResult result = coordinator.run();
  const auto stop = std::chrono::steady_clock::now();  // avd-lint: allow(nondeterminism)

  Row row;
  row.mode = "fleet";
  row.workers = spawn;
  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.executed = result.executed;
  row.maxImpact = result.maxImpact;
  return row;
}

void finishRow(Row& row) {
  row.scenariosPerSec =
      row.seconds > 0.0 ? static_cast<double>(row.executed) / row.seconds
                        : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "fleet-worker") == 0) {
    return campaign::fleet::runWorker(
        util::kChildSocketFd,
        [](const std::string&, std::uint64_t) { return makeQuorum(); });
  }

  const std::size_t tests =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("=== fleet scaling (quorum target, %zu scenarios) ===\n", tests);
  std::printf("host: hardware_concurrency = %u\n\n", cores);
  std::printf("%12s %8s %10s %14s %10s\n", "mode", "workers", "seconds",
              "scenarios/s", "maxImpact");

  std::vector<Row> rows;
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    for (const bool fleet : {false, true}) {
      Row row = fleet ? runFleet(workers, tests)
                      : runInProcess(workers, tests);
      finishRow(row);
      std::printf("%12s %8zu %10.3f %14.1f %10.3f\n", row.mode.c_str(),
                  row.workers, row.seconds, row.scenariosPerSec,
                  row.maxImpact);
      rows.push_back(row);
    }
  }
  std::vector<double> ratios;
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const double ratio =
        rows[i].scenariosPerSec > 0.0
            ? rows[i + 1].scenariosPerSec / rows[i].scenariosPerSec
            : 0.0;
    ratios.push_back(ratio);
    std::printf("fleet/runner ratio at W=%zu: %.2fx\n", rows[i].workers,
                ratio);
  }
  if (cores < 4) {
    std::printf(
        "note: %u-core host -- both modes serialize on the CPU, so the "
        "fleet's per-worker spawn constant is pure overhead; the >= 1.0x "
        "bar applies to hosts with >= W cores.\n",
        cores);
  }

  std::string json = "{\n  \"bench\": \"fleet_scaling\",\n";
  json += "  \"scenarios\": " + std::to_string(tests) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(cores) + ",\n";
  json += "  \"rows\": [\n";
  char buffer[256];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"mode\": \"%s\", \"workers\": %zu, "
                  "\"seconds\": %.6f, \"scenarios_per_sec\": %.3f, "
                  "\"max_impact\": %.6f}%s\n",
                  row.mode.c_str(), row.workers, row.seconds,
                  row.scenariosPerSec, row.maxImpact,
                  i + 1 < rows.size() ? "," : "");
    json += buffer;
  }
  json += "  ],\n  \"fleet_runner_ratios\": [";
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%s%.3f", i ? ", " : "",
                  ratios[i]);
    json += buffer;
  }
  json += "]\n}\n";

  std::ofstream out("BENCH_campaign_fleet.json", std::ios::trunc);
  out << json;
  std::printf("\nwrote BENCH_campaign_fleet.json\n");
  return 0;
}
