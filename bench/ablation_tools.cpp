// Ablations for the design choices called out in DESIGN.md §5, plus impact
// sweeps for the remaining tool classes (§5 of the paper):
//
//  A. Gray-coded index stepping vs direct binary mask-bit flipping for the
//     MAC dimension (what the Gray encoding buys the hill climber).
//  B. Fitness-weighted plugin sampling (Fitnex-style) vs uniform.
//  C. Network-control tool: drop-probability sweep.
//  D. Message-reordering tool: intensity sweep.
//  E. Meta-heuristic comparison: Algorithm 1 vs a genetic algorithm vs
//     random (§3 cites GAs as the alternative meta-heuristic).
//  F. Blind-tamper tool: bit-flip probability sweep (§4's weakest tool).
#include <cstdio>

#include "avd/controller.h"
#include "avd/explorers.h"
#include "avd/genetic.h"
#include "avd/pbft_executor.h"

using namespace avd;

namespace {

core::PbftExecutorOptions quickOptions(std::uint64_t seed) {
  core::PbftExecutorOptions options;
  options.pbft.requestTimeout = sim::msec(400);
  options.pbft.viewChangeTimeout = sim::msec(400);
  options.clientRetx = sim::msec(100);
  options.link = sim::LinkModel{sim::msec(5), sim::usec(500)};
  options.warmup = sim::msec(400);
  options.measure = sim::msec(3000);
  options.defaultCorrectClients = 20;
  options.baseSeed = seed;
  return options;
}

/// Fraction of generated tests that were strong attacks (impact >= 0.9) —
/// the concentration metric that separates exploration strategies on this
/// landscape (best-impact curves saturate too quickly to discriminate).
double strongFraction(const core::Controller& controller) {
  std::size_t strong = 0;
  for (const core::TestRecord& record : controller.history()) {
    if (record.outcome.impact >= 0.9) ++strong;
  }
  return static_cast<double>(strong) /
         static_cast<double>(controller.history().size());
}

}  // namespace

int main() {
  constexpr std::size_t kTests = 60;
  const std::vector<std::uint64_t> seeds{5, 6, 7};

  // --- A: Gray stepping vs binary bit flips --------------------------------
  std::printf("=== Ablation A: Gray-coded stepping vs binary mask flips ===\n");
  std::printf("%8s %18s %18s\n", "seed", "gray strong", "binary strong");
  for (const std::uint64_t seed : seeds) {
    core::Hyperspace space;
    space.add(core::Dimension::grayBitmask("mac_mask", 12));
    core::PbftAttackExecutor grayExecutor(space, quickOptions(seed));
    core::Controller gray(grayExecutor,
                          core::defaultPlugins(grayExecutor.space()),
                          core::ControllerOptions{}, seed);
    gray.runTests(kTests);

    core::PbftAttackExecutor binExecutor(space, quickOptions(seed));
    std::vector<core::PluginPtr> binaryPlugins{
        std::make_shared<core::BinaryMaskFlipPlugin>("binflip:mac_mask", 0)};
    core::Controller binary(binExecutor, std::move(binaryPlugins),
                            core::ControllerOptions{}, seed);
    binary.runTests(kTests);

    std::printf("%8llu %18.2f %18.2f\n",
                static_cast<unsigned long long>(seed),
                strongFraction(gray), strongFraction(binary));
  }

  // --- B: plugin fitness weighting ------------------------------------------
  std::printf("\n=== Ablation B: plugin fitness weighting vs uniform ===\n");
  std::printf("%8s %18s %18s\n", "seed", "weighted strong", "uniform strong");
  for (const std::uint64_t seed : seeds) {
    core::Hyperspace space = core::makePaperMacHyperspace();
    core::PbftAttackExecutor weightedExecutor(space, quickOptions(seed));
    core::Controller weighted(weightedExecutor,
                              core::defaultPlugins(weightedExecutor.space()),
                              core::ControllerOptions{}, seed);
    weighted.runTests(kTests);

    core::PbftAttackExecutor uniformExecutor(space, quickOptions(seed));
    core::ControllerOptions uniformOptions;
    uniformOptions.pluginFitnessWeighting = false;
    core::Controller uniform(uniformExecutor,
                             core::defaultPlugins(uniformExecutor.space()),
                             uniformOptions, seed);
    uniform.runTests(kTests);

    std::printf("%8llu %18.2f %18.2f\n",
                static_cast<unsigned long long>(seed),
                strongFraction(weighted), strongFraction(uniform));
  }

  // --- C: drop-probability sweep --------------------------------------------
  std::printf("\n=== Tool sweep C: network drop probability ===\n");
  std::printf("%10s %16s %10s\n", "drop %", "tput (r/s)", "impact");
  {
    core::Hyperspace space;
    space.add(core::Dimension::range("drop_probability", 0, 40, 5));
    core::PbftAttackExecutor executor(space, quickOptions(9));
    for (std::uint64_t i = 0; i < 9; ++i) {
      const core::Outcome outcome = executor.execute(core::Point{i});
      std::printf("%10llu %16.1f %10.3f\n",
                  static_cast<unsigned long long>(i * 5),
                  outcome.throughputRps, outcome.impact);
    }
  }

  // --- D: reorder-intensity sweep --------------------------------------------
  std::printf("\n=== Tool sweep D: message reordering intensity ===\n");
  std::printf("%10s %16s %10s\n", "reorder %", "tput (r/s)", "impact");
  {
    core::Hyperspace space;
    space.add(core::Dimension::range("reorder_intensity", 0, 100, 10));
    core::PbftAttackExecutor executor(space, quickOptions(13));
    for (std::uint64_t i = 0; i < 11; ++i) {
      const core::Outcome outcome = executor.execute(core::Point{i});
      std::printf("%10llu %16.1f %10.3f\n",
                  static_cast<unsigned long long>(i * 10),
                  outcome.throughputRps, outcome.impact);
    }
  }

  // --- E: meta-heuristic comparison ------------------------------------------
  std::printf("\n=== Ablation E: Algorithm 1 vs genetic algorithm vs random ===\n");
  std::printf("(strong fraction: share of 60 tests with impact >= 0.9)\n");
  std::printf("%8s %14s %14s %14s\n", "seed", "Algorithm 1", "genetic",
              "random");
  for (const std::uint64_t seed : seeds) {
    core::Hyperspace space = core::makePaperMacHyperspace();

    core::PbftAttackExecutor controllerExecutor(space, quickOptions(seed));
    core::Controller controller(
        controllerExecutor, core::defaultPlugins(controllerExecutor.space()),
        core::ControllerOptions{}, seed);
    controller.runTests(kTests);

    core::PbftAttackExecutor gaExecutor(space, quickOptions(seed));
    core::GeneticExplorer genetic(gaExecutor,
                                  core::defaultPlugins(gaExecutor.space()),
                                  core::GeneticOptions{}, seed);
    genetic.runTests(kTests);
    std::size_t gaStrong = 0;
    for (const core::TestRecord& record : genetic.history()) {
      if (record.outcome.impact >= 0.9) ++gaStrong;
    }

    core::PbftAttackExecutor randomExecutor(space, quickOptions(seed));
    core::Controller random = core::makeRandomExplorer(randomExecutor, seed);
    random.runTests(kTests);

    std::printf("%8llu %14.2f %14.2f %14.2f\n",
                static_cast<unsigned long long>(seed),
                strongFraction(controller),
                static_cast<double>(gaStrong) /
                    static_cast<double>(genetic.history().size()),
                strongFraction(random));
  }

  // --- F: blind-tamper sweep --------------------------------------------------
  std::printf("\n=== Tool sweep F: blind bit-flip (tamper) probability ===\n");
  std::printf("%10s %16s %10s\n", "tamper %", "tput (r/s)", "impact");
  {
    core::Hyperspace space;
    space.add(core::Dimension::range("tamper_probability", 0, 10, 1));
    core::PbftAttackExecutor executor(space, quickOptions(15));
    for (std::uint64_t i = 0; i <= 10; ++i) {
      const core::Outcome outcome = executor.execute(core::Point{i});
      std::printf("%10llu %16.1f %10.3f\n",
                  static_cast<unsigned long long>(i), outcome.throughputRps,
                  outcome.impact);
    }
  }

  std::printf(
      "\nexpected: Gray stepping >= binary flips (smoother neighbourhood);\n"
      "weighting helps modestly (one dominant dimension here); both guided\n"
      "meta-heuristics concentrate far more budget on strong attacks than\n"
      "random; drops degrade throughput sharply but gracefully (status/sync\n"
      "recovery keeps the system live); reordering alone is nearly harmless\n"
      "— PBFT tolerates asynchrony; blind tampering behaves like message\n"
      "loss because every flip is absorbed by a MAC or digest check.\n");
  return 0;
}
