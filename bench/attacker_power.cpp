// E6 — attacker power (§4): "the number of tests necessary for AVD to find
// a vulnerability is an indication of how difficult it would be for a real
// attacker to find similar vulnerabilities, given the same amount of power."
//
// Three power levels (see avd/attacker_power.h), several seeds each. Two
// reported quantities:
//   * tests-until-impact>=threshold (first crash-level find);
//   * strong fraction — the share of the whole test budget spent on strong
//     attacks (impact >= 0.9), i.e. how efficiently the attacker converts
//     its budget into damage once it has feedback to exploit.
// Expected ordering on both: protocol-aware >= gray-feedback > blind fuzz.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "avd/attacker_power.h"

using namespace avd;

int main() {
  // Crash-level damage only: stealth degradation (impact ~0.85-0.9) does
  // not count as "the vulnerability" here.
  constexpr double kThreshold = 0.95;
  constexpr std::size_t kMaxTests = 120;
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44, 55};

  std::printf(
      "=== Attacker power: tests to find an impact>=%.2f attack ===\n",
      kThreshold);
  std::printf("(budget %zu tests per run, %zu seeds)\n\n", kMaxTests,
              seeds.size());
  std::printf("%-16s %8s %10s %10s %10s %14s\n", "power level", "found",
              "median", "min", "max", "strong frac");

  for (const core::AttackerPower power :
       {core::AttackerPower::kBlindFuzz, core::AttackerPower::kGrayFeedback,
        core::AttackerPower::kProtocolAware}) {
    std::vector<std::size_t> testsToFind;
    double strongFraction = 0.0;
    int found = 0;
    for (const std::uint64_t seed : seeds) {
      const core::PowerMeasurement measurement =
          core::measureAttackerPower(power, kThreshold, kMaxTests, seed);
      if (measurement.found) ++found;
      testsToFind.push_back(measurement.testsToFind);
      strongFraction += measurement.strongFraction;
    }
    std::sort(testsToFind.begin(), testsToFind.end());
    std::printf("%-16s %5d/%zu %10zu %10zu %10zu %14.2f\n",
                core::powerName(power).c_str(), found, seeds.size(),
                testsToFind[testsToFind.size() / 2], testsToFind.front(),
                testsToFind.back(), strongFraction / seeds.size());
  }

  std::printf(
      "\ninterpretation: with more access (documentation -> Gray-aware\n"
      "mutation with feedback; source -> protocol-aware behaviour\n"
      "synthesis), an attacker spends a much larger share of its budget on\n"
      "strong attacks and finds crash-level vulnerabilities in fewer tests\n"
      "— the paper's rule of thumb for prioritizing bug fixes.\n");
  return 0;
}
