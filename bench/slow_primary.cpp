// E4 — the slow-primary bug AVD discovered (§6).
//
// "In the implementation of PBFT there is a single such timer, rather than
// one per request. ... a malicious primary only has to execute one client
// request per timer period (5 seconds by default), diminishing PBFT
// throughput to 0.2 requests / second. If the respective client is also
// malicious, cooperating with the primary, the primary can ignore all
// messages from correct clients decreasing the useful throughput of PBFT
// to 0."
//
// The ablation axis is the fix: one view-change timer per pending request.
#include <cstdio>

#include "faultinject/behaviors.h"
#include "pbft/deployment.h"

using namespace avd;

namespace {

void runRow(const char* label, std::uint32_t clients, bool attack,
            bool colluding, bool perRequestTimers,
            bool aardvarkGuard = false) {
  pbft::DeploymentConfig config =
      fi::makeSlowPrimaryScenario(clients, colluding, perRequestTimers, 5);
  if (!attack) config.replicaBehaviors.clear();
  if (aardvarkGuard) {
    config.pbft.primaryThroughputGuard = true;
    config.pbft.guardWindow = sim::sec(2);
    config.pbft.guardMinRps = 5.0;
  }

  const pbft::RunResult result = pbft::runScenario(config);
  std::printf("%-34s %14.2f %12llu %10llu %8llu\n", label,
              result.throughputRps,
              static_cast<unsigned long long>(result.correctCompleted),
              static_cast<unsigned long long>(result.maliciousCompleted),
              static_cast<unsigned long long>(result.maxView));
}

}  // namespace

int main() {
  std::printf("=== Slow primary / single view-change timer bug ===\n");
  std::printf("10 correct clients; PBFT default 5 s request timer; 30 s "
              "measured window\n\n");
  std::printf("%-34s %14s %12s %10s %8s\n", "scenario", "useful r/s",
              "correct done", "mal done", "maxView");

  runRow("no attack (baseline)", 10, false, false, false);
  runRow("slow primary, single timer", 10, true, false, false);
  runRow("slow primary + colluder, single", 10, true, true, false);
  runRow("slow primary, per-request timers", 10, true, false, true);
  runRow("slow+colluder, per-request timers", 10, true, true, true);
  runRow("slow+colluder, single + Aardvark guard", 10, true, true, false,
         true);

  std::printf(
      "\npaper: ~0.2 req/s for the single-timer slow primary (one request\n"
      "per 5 s period), exactly 0 useful req/s with a colluding client, and\n"
      "maxView = 0 in both (the buggy timer never deposes the primary).\n"
      "Both fixes restore liveness: per-request timers let starved requests\n"
      "depose the primary; the Aardvark-style minimum-throughput guard\n"
      "(last row) deposes it even with the buggy shared timer.\n");
  return 0;
}
