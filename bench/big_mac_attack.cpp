// E3 — the Big MAC attack (§6): "AVD shows that by corrupting the MAC in
// all messages sent by a malicious client, PBFT will perform a view change
// and crash." — one malicious client across deployment sizes.
//
// Four configurations per client count:
//   baseline — corruption disabled (mask 0);
//   bigMAC   — authenticator valid only for the primary in every round: no
//              backup can ever authenticate the request, the stall forces a
//              view change and the historical implementation's crash bug
//              (Config::viewChangeCrashBug) takes out the quorum;
//   fixedVC  — same mask against the repaired view-change path: the view
//              change nulls the poisoned sequence and service continues;
//   rotating — round-rotating corruption: digest matching prevents the view
//              change (the paper's "no view change if every retransmission
//              was correct" observation) but in-order execution still
//              stalls behind each poisoned sequence — a stealthy order-of-
//              magnitude slowdown with no protocol alarms.
#include <cstdio>

#include "faultinject/behaviors.h"
#include "pbft/deployment.h"

using namespace avd;

int main() {
  std::printf("=== Big MAC attack: throughput vs deployment size ===\n");
  std::printf("single malicious client; timeouts scaled 10x down (0.5 s)\n\n");
  std::printf("%8s  %15s %15s %15s %15s  %8s\n", "clients", "baseline(r/s)",
              "bigMAC(r/s)", "fixedVC(r/s)", "rotating(r/s)", "crashed");

  for (const std::uint32_t clients : {10u, 50u, 100u, 150u, 200u, 250u}) {
    const std::uint64_t attackMask = fi::bigMacMaskValidOnlyFor(0, 4);

    pbft::DeploymentConfig base = fi::makeBigMacScenario(clients, 0, 17);
    pbft::DeploymentConfig attack =
        fi::makeBigMacScenario(clients, attackMask, 17);
    pbft::DeploymentConfig fixedVc =
        fi::makeBigMacScenario(clients, attackMask, 17);
    fixedVc.pbft.viewChangeCrashBug = false;
    pbft::DeploymentConfig rotating =
        fi::makeBigMacScenario(clients, fi::rotatingBigMacMask(), 17);

    const pbft::RunResult baseResult = pbft::runScenario(base);
    pbft::Deployment attackDeployment(attack);
    const pbft::RunResult attackResult = attackDeployment.run();
    const pbft::RunResult fixedResult = pbft::runScenario(fixedVc);
    const pbft::RunResult rotResult = pbft::runScenario(rotating);

    std::uint64_t crashed = 0;
    for (std::uint32_t r = 0; r < attackDeployment.replicaCount(); ++r) {
      crashed += attackDeployment.replica(r).stats().crashedOnViewChange;
    }

    std::printf("%8u  %15.1f %15.1f %15.1f %15.1f  %8llu\n", clients,
                baseResult.throughputRps, attackResult.throughputRps,
                fixedResult.throughputRps, rotResult.throughputRps,
                static_cast<unsigned long long>(crashed));
  }

  std::printf(
      "\nexpected shape: bigMAC column collapses to ~0 at every scale (the\n"
      "crash kills the quorum: 'crashed' counts fail-stopped replicas);\n"
      "fixedVC pays roughly one view-change period and keeps serving;\n"
      "rotating degrades throughput by ~10x with no view change at all\n"
      "(stealth attack riding on in-order execution stalls).\n");
  return 0;
}
