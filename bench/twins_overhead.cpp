// Twins machinery overhead bench: wall-clock cost of the identity-fault
// plumbing on deployments that do not use it, plus the price of live twin
// pairs. Emits BENCH_twins.json for CI trend tracking.
//
// The headline row is the dormancy bar the hyperspaces that never twin
// anything rely on: with a twin registered but isolated (nobody routed to
// side 1, the twin never started), every send pays the twin-map lookups —
// that inert run must stay within 10% of the plain no-twin baseline.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "faultinject/twins.h"
#include "pbft/deployment.h"

using namespace avd;

namespace {

pbft::DeploymentConfig twinsConfig() {
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(400);
  config.pbft.viewChangeTimeout = sim::msec(400);
  config.correctClients = 20;
  config.clientRetx = sim::msec(100);
  config.warmup = sim::msec(300);
  config.measure = sim::sec(2);
  config.seed = 17;
  config.link = sim::LinkModel{sim::usec(500), sim::usec(100)};
  return config;
}

struct Row {
  std::string name;
  double wallMsPerRun = 0.0;
  double rps = 0.0;
  bool safetyViolated = false;
};

constexpr int kReps = 5;

// Runs kReps deployments through `prepare` (which may attach twin
// machinery before the run) and averages wall time and throughput.
template <typename Prepare>
Row timedRuns(const std::string& name, Prepare prepare) {
  Row row;
  row.name = name;
  const auto start = std::chrono::steady_clock::now();  // avd-lint: allow(nondeterminism)
  for (int rep = 0; rep < kReps; ++rep) {
    pbft::Deployment deployment(twinsConfig());
    auto keepAlive = prepare(deployment);
    const pbft::RunResult result = deployment.run();
    row.rps += result.throughputRps;
    row.safetyViolated = row.safetyViolated || result.safetyViolated;
    (void)keepAlive;
  }
  const auto end = std::chrono::steady_clock::now();  // avd-lint: allow(nondeterminism)
  row.wallMsPerRun =
      std::chrono::duration<double, std::milli>(end - start).count() / kReps;
  row.rps /= kReps;
  return row;
}

fi::TwinFault::Options pairOptions(std::vector<util::NodeId> targets) {
  fi::TwinFault::Options options;
  options.targets = std::move(targets);
  options.activation = 0;
  options.shape = fi::TwinFault::Shape::kSplitParity;
  return options;
}

}  // namespace

int main() {
  std::printf("=== twins machinery overhead (f=1, 20 correct clients, "
              "%d reps) ===\n",
              kReps);

  const Row baseline = timedRuns(
      "no-twin", [](pbft::Deployment&) { return std::shared_ptr<void>(); });

  // Inert machinery: a twin instance is registered (so every send pays the
  // twin-map resolution) but never started, and no router is installed, so
  // everyone stays on side 0 and the protocol behaves exactly like the
  // baseline.
  const Row inert = timedRuns("inert-twin", [](pbft::Deployment& deployment) {
    auto twin = std::shared_ptr<pbft::Replica>(deployment.makeTwinReplica(0));
    deployment.network().registerTwin(twin.get());
    return std::shared_ptr<void>(twin);
  });

  const Row withinF = timedRuns("within-f", [](pbft::Deployment& deployment) {
    auto fault = std::make_shared<fi::TwinFault>(&deployment, pairOptions({0}));
    fault->install();
    return std::shared_ptr<void>(fault);
  });

  const Row beyondF = timedRuns("beyond-f", [](pbft::Deployment& deployment) {
    auto fault =
        std::make_shared<fi::TwinFault>(&deployment, pairOptions({0, 1}));
    fault->install();
    return std::shared_ptr<void>(fault);
  });

  const std::vector<Row> rows = {baseline, inert, withinF, beyondF};
  std::printf("%-12s %12s %12s %8s\n", "case", "wall ms/run", "rps", "safety");
  for (const Row& row : rows) {
    std::printf("%-12s %12.2f %12.1f %8s\n", row.name.c_str(),
                row.wallMsPerRun, row.rps,
                row.safetyViolated ? "VIOLATED" : "ok");
  }

  const double overhead =
      baseline.wallMsPerRun > 0.0
          ? inert.wallMsPerRun / baseline.wallMsPerRun - 1.0
          : 0.0;
  std::printf("\ninert-twin overhead vs no-twin baseline: %+.1f%% "
              "(bar: <= 10%%)\n",
              overhead * 100.0);

  std::string json = "{\n  \"bench\": \"twins_overhead\",\n";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  \"reps\": %d,\n  \"inert_overhead\": %.4f,\n"
                "  \"rows\": [\n",
                kReps, overhead);
  json += buffer;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"case\": \"%s\", \"wall_ms_per_run\": %.3f, "
                  "\"rps\": %.3f, \"safety_violated\": %s}%s\n",
                  row.name.c_str(), row.wallMsPerRun, row.rps,
                  row.safetyViolated ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    json += buffer;
  }
  json += "  ]\n}\n";

  std::ofstream out("BENCH_twins.json", std::ios::trunc);
  out << json;
  std::printf("wrote BENCH_twins.json\n");
  return 0;
}
