// Figure 2 — "Evolution of average latency of requests from correct clients
// and of average throughput of PBFT system, as induced by attacks generated
// by the fitness-guided exploration of AVD, versus random exploration, over
// 125 executed tests."
//
// Hyperspace (§6): 4096 Gray-coded MAC masks x 25 correct-client counts
// (10..250 step 10) x {1,2} malicious clients = 204,800 scenarios.
//
// Expected shape vs the paper: the AVD series drives throughput down (and
// latency up) within a few tens of tests and keeps finding strong attacks,
// while random exploration only stumbles on them occasionally. Absolute
// req/s differ from Emulab — the substrate is a discrete-event simulator —
// but both are in the tens of thousands at baseline.
#include <cstdio>
#include <cstdlib>

#include "avd/controller.h"
#include "avd/explorers.h"
#include "avd/pbft_executor.h"

using namespace avd;

namespace {

core::PbftExecutorOptions benchOptions(std::uint64_t seed) {
  core::PbftExecutorOptions options;
  // Preserve the paper's timing *ratios* at simulation-friendly scale:
  // measurement window >> request timeout >> retransmission >> RTT, so a
  // single view change costs ~10% while only sustained attacks (the paper's
  // dark points) register near-total impact. Wider links keep per-test
  // event counts manageable on one core.
  options.pbft.requestTimeout = sim::msec(400);
  options.pbft.viewChangeTimeout = sim::msec(400);
  options.clientRetx = sim::msec(100);
  options.link = sim::LinkModel{sim::msec(5), sim::usec(500)};
  options.warmup = sim::msec(400);
  options.measure = sim::msec(4000);
  options.baseSeed = seed;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t tests = argc > 1
                                ? static_cast<std::size_t>(std::atoll(argv[1]))
                                : 125;
  const std::uint64_t seed = argc > 2
                                 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                                 : 2011;

  std::printf("=== Figure 2: exploration evolution over %zu tests ===\n",
              tests);
  std::printf(
      "hyperspace: 4096 masks x 25 client counts x {1,2} malicious "
      "= 204800 scenarios\n\n");

  core::PbftAttackExecutor avdExecutor(core::makePaperMacHyperspace(),
                                       benchOptions(seed));
  core::Controller avd(avdExecutor, core::defaultPlugins(avdExecutor.space()),
                       core::ControllerOptions{}, seed);
  avd.runTests(tests);

  // Distinct RNG stream for the random strategy so the two runs do not
  // share their opening samples.
  core::PbftAttackExecutor randomExecutor(core::makePaperMacHyperspace(),
                                          benchOptions(seed));
  core::Controller random =
      core::makeRandomExplorer(randomExecutor, seed + 1000003);
  random.runTests(tests);

  std::printf("%6s  %14s %14s %12s  %14s %14s %12s\n", "test",
              "AVD tput(r/s)", "AVD lat(s)", "AVD best", "RND tput(r/s)",
              "RND lat(s)", "RND best");
  for (std::size_t i = 0; i < tests; ++i) {
    const core::TestRecord& a = avd.history()[i];
    const core::TestRecord& r = random.history()[i];
    std::printf("%6zu  %14.1f %14.4f %12.3f  %14.1f %14.4f %12.3f\n", i + 1,
                a.outcome.throughputRps, a.outcome.avgLatencySec,
                a.bestImpactSoFar, r.outcome.throughputRps,
                r.outcome.avgLatencySec, r.bestImpactSoFar);
  }

  const auto avdFind = avd.testsToReach(0.9);
  const auto randomFind = random.testsToReach(0.9);

  // Concentration: what fraction of each strategy's *generated* tests were
  // strong attacks — the visual difference between the two series in the
  // paper's figure (AVD's throughput line hugs zero, random's stays high).
  const auto concentration = [](const core::Controller& controller) {
    std::size_t strong = 0;
    for (const core::TestRecord& record : controller.history()) {
      if (record.outcome.impact >= 0.9) ++strong;
    }
    return static_cast<double>(strong) /
           static_cast<double>(controller.history().size());
  };

  std::printf("\nsummary:\n");
  std::printf("  fraction of generated tests with impact>=0.9: AVD %.2f vs "
              "random %.2f\n",
              concentration(avd), concentration(random));
  std::printf("  AVD    max impact %.3f, tests to impact>=0.9: %s\n",
              avd.maxImpact(),
              avdFind ? std::to_string(*avdFind).c_str() : "not found");
  std::printf("  random max impact %.3f, tests to impact>=0.9: %s\n",
              random.maxImpact(),
              randomFind ? std::to_string(*randomFind).c_str() : "not found");
  if (const auto best = avd.best()) {
    const core::Hyperspace& space = avdExecutor.space();
    std::printf(
        "  AVD best scenario: mask=0x%llx clients=%lld malicious=%lld "
        "(throughput %.1f r/s)\n",
        static_cast<unsigned long long>(
            space.valueOf(best->point, "mac_mask", 0)),
        static_cast<long long>(
            space.valueOf(best->point, "correct_clients", 0)),
        static_cast<long long>(
            space.valueOf(best->point, "malicious_clients", 0)),
        best->outcome.throughputRps);
  }
  return 0;
}
