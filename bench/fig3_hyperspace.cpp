// Figure 3 — "A subset of the hyperspace of possible test scenarios for
// PBFT MAC fault injection, exhaustively explored. Dark points represent
// scenarios where the throughput of PBFT drops below 500 requests/sec."
//
// X axis: MAC corruption bitmask index in Gray code (a strided subset of
// the full 12-bit dimension, ~1000 plotted positions like the paper's
// figure); Y axis: number of correct clients. Expected structure, as in
// the paper: clearly defined vertical dark lines (masks that leave >= 2f
// backups unable to EVER authenticate a request crash the deployment at
// every client count) clustered on the horizontal axis, plus horizontal
// structure from stealth stalls that only darken low-client rows.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "avd/pbft_executor.h"
#include "common/gray_code.h"

using namespace avd;

int main(int argc, char** argv) {
  // Defaults sized for an unattended single-core run: 512 columns spanning
  // the full 12-bit Gray axis. argv[1] overrides the stride (1 = all 4096
  // masks), argv[2] the measurement window in ms.
  const std::uint64_t stride =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 8;
  const sim::Time measureMs =
      argc > 2 ? sim::msec(std::atoll(argv[2])) : sim::msec(3000);
  const std::vector<std::int64_t> clientRows{20, 40, 60, 80, 100};
  constexpr std::uint32_t kMaskBits = 12;
  const std::uint64_t columns = (1u << kMaskBits) / stride;
  constexpr double kDarkThresholdRps = 500.0;  // the paper's criterion

  std::printf("=== Figure 3: exhaustive MAC-corruption subspace ===\n");
  std::printf("x: Gray-coded 12-bit mask index 0..4095 (stride %llu), "
              "y: clients; dark '#' = throughput < %.0f req/s\n\n",
              static_cast<unsigned long long>(stride), kDarkThresholdRps);

  core::PbftExecutorOptions options;
  // Same timing-ratio scaling as the Figure 2 bench: only sustained
  // degradation falls below the absolute dark threshold.
  options.pbft.requestTimeout = sim::msec(400);
  options.pbft.viewChangeTimeout = sim::msec(400);
  options.clientRetx = sim::msec(100);
  options.link = sim::LinkModel{sim::msec(5), sim::usec(500)};
  options.warmup = sim::msec(400);
  options.measure = measureMs;
  options.baseSeed = 3;

  core::Hyperspace space;
  space.add(core::Dimension::grayBitmask("mac_mask", kMaskBits));
  space.add(core::Dimension::choice("correct_clients", clientRows));
  core::PbftAttackExecutor executor(std::move(space), options);

  std::vector<std::vector<char>> grid(
      clientRows.size(), std::vector<char>(columns, '.'));
  std::uint64_t darkCells = 0;

  for (std::size_t row = 0; row < clientRows.size(); ++row) {
    for (std::uint64_t column = 0; column < columns; ++column) {
      const core::Point point{column * stride, row};
      const core::Outcome outcome = executor.execute(point);
      if (outcome.throughputRps < kDarkThresholdRps) {
        grid[row][column] = '#';
        ++darkCells;
      }
    }
  }

  // Render the map in bands of 128 columns.
  const std::size_t bandWidth = 128;
  for (std::size_t bandStart = 0; bandStart < columns;
       bandStart += bandWidth) {
    const std::size_t bandEnd =
        std::min(bandStart + bandWidth, static_cast<std::size_t>(columns));
    std::printf("mask index [%zu, %zu):\n", bandStart * stride,
                bandEnd * stride);
    for (std::size_t row = clientRows.size(); row-- > 0;) {
      std::printf("%4lld clients |", static_cast<long long>(clientRows[row]));
      for (std::size_t column = bandStart; column < bandEnd; ++column) {
        std::putchar(grid[row][column]);
      }
      std::printf("|\n");
    }
    std::printf("\n");
  }

  // Structure summary: a dark column = dark at every client count (the
  // paper's vertical lines).
  std::uint64_t darkColumns = 0;
  std::printf("fully dark mask indices (Gray index -> mask value):\n ");
  for (std::uint64_t column = 0; column < columns; ++column) {
    bool allDark = true;
    for (std::size_t row = 0; row < clientRows.size(); ++row) {
      if (grid[row][column] != '#') allDark = false;
    }
    if (allDark) {
      ++darkColumns;
      if (darkColumns <= 24) {
        std::printf(" %llu->0x%llx",
                    static_cast<unsigned long long>(column * stride),
                    static_cast<unsigned long long>(
                        util::toGray(column * stride)));
      }
    }
  }
  std::printf(
      "\n\nsummary: %llu dark cells of %llu; %llu fully-dark vertical lines "
      "of %llu columns\n",
      static_cast<unsigned long long>(darkCells),
      static_cast<unsigned long long>(columns * clientRows.size()),
      static_cast<unsigned long long>(darkColumns),
      static_cast<unsigned long long>(columns));
  return 0;
}
