// avd_lint end-to-end analysis throughput over the real tree. The engine
// re-indexes every translation unit on every run (no incremental cache),
// so the whole-tree wall clock IS the developer-facing latency of the
// lint.src gate. Budget: a full src/ + tools/ + bench/ pass through all
// five phases must stay under 5 seconds; the JSON (BENCH_lint.json)
// records the per-phase breakdown so CI can trend it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "effects.h"
#include "index.h"
#include "lexer.h"
#include "lint.h"
#include "model.h"

namespace fs = std::filesystem;

namespace {

bool isSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::vector<avd::lint::SourceFile> loadTree(const fs::path& root) {
  std::vector<avd::lint::SourceFile> files;
  for (const char* sub : {"src", "tools", "bench"}) {
    const fs::path base = root / sub;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !isSourceFile(entry.path())) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      files.push_back({fs::relative(entry.path(), root).generic_string(),
                       buffer.str()});
    }
  }
  return files;
}

// Wall-clock timing is the entire point of a throughput benchmark; the
// measured numbers never feed a consensus decision.
double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now()  // avd-lint: allow(nondeterminism)
                 .time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  const auto files = loadTree(root);
  if (files.empty()) {
    std::fprintf(stderr,
                 "lint_runtime: no sources under %s (run from the repo root "
                 "or pass it as argv[1])\n",
                 root.string().c_str());
    return 2;
  }

  std::size_t totalBytes = 0;
  std::size_t totalLines = 0;
  for (const auto& file : files) {
    totalBytes += file.text.size();
    totalLines += static_cast<std::size_t>(
        std::count(file.text.begin(), file.text.end(), '\n'));
  }

  // Phase 0 alone (tokenize every TU) isolates the lexer's share of the
  // budget from the index + rules share.
  const auto lexStart = now();
  std::size_t tokens = 0;
  for (const auto& file : files) {
    tokens += avd::lint::lex(file.path, file.text).tokens.size();
  }
  const double lexSeconds = now() - lexStart;

  // Phase 1 (semantic index) and phase 3 (protocol model), timed directly:
  // the v3 model extractor walks the whole index, so its share of the
  // budget must be visible before it can quietly eat the headroom.
  const auto indexStart = now();
  const avd::lint::RepoIndex index = avd::lint::buildIndex(files);
  const double indexSeconds = now() - indexStart;

  const auto modelStart = now();
  const avd::lint::ProtocolModel model = avd::lint::extractModel(index);
  const double modelSeconds = now() - modelStart;
  const std::size_t modelKinds = model.kinds.size();
  const std::size_t modelTransitions = model.transitions.size();

  // Phase 4 (effect-inference fixpoint), timed directly: the v4 call-graph
  // pass is quadratic in the worst case, so its share of the budget gets
  // its own trend line.
  const auto effectsStart = now();
  const avd::lint::EffectIndex effects = avd::lint::inferEffects(index);
  const double effectsSeconds = now() - effectsStart;
  std::size_t effectfulFunctions = 0;
  for (const auto& fn : effects.fn) {
    if (fn.total != 0) ++effectfulFunctions;
  }

  // Full pipeline, best of three (first run warms the page cache).
  constexpr int kRuns = 3;
  double bestSeconds = 0.0;
  std::size_t findings = 0;
  for (int run = 0; run < kRuns; ++run) {
    const auto start = now();
    const auto result = avd::lint::lintFiles(files);
    const double seconds = now() - start;
    if (run == 0 || seconds < bestSeconds) bestSeconds = seconds;
    findings = avd::lint::unsuppressedCount(result);
  }

  constexpr double kBudgetSeconds = 5.0;
  const bool withinBudget = bestSeconds < kBudgetSeconds;
  // The rules' share is the pipeline remainder after the phases measured
  // in isolation (clamped: the isolated runs are not the same wall clock).
  const double rulesSeconds =
      std::max(0.0, bestSeconds - lexSeconds - indexSeconds - modelSeconds -
                        effectsSeconds);

  std::printf("=== avd_lint full-tree analysis ===\n");
  std::printf("files:            %zu\n", files.size());
  std::printf("lines:            %zu\n", totalLines);
  std::printf("tokens:           %zu\n", tokens);
  std::printf("lex only:         %.3f s\n", lexSeconds);
  std::printf("index only:       %.3f s\n", indexSeconds);
  std::printf("model only:       %.3f s (%zu kinds, %zu transitions)\n",
              modelSeconds, modelKinds, modelTransitions);
  std::printf("effects only:     %.3f s (%zu/%zu effectful functions)\n",
              effectsSeconds, effectfulFunctions, effects.fn.size());
  std::printf("rules (residual): %.3f s\n", rulesSeconds);
  std::printf("full pipeline:    %.3f s (best of %d)\n", bestSeconds, kRuns);
  std::printf("throughput:       %.0f lines/s\n",
              bestSeconds > 0.0 ? totalLines / bestSeconds : 0.0);
  std::printf("unsuppressed:     %zu finding(s)\n", findings);
  std::printf("budget:           %s (< %.1f s)\n",
              withinBudget ? "PASS" : "FAIL", kBudgetSeconds);

  char buffer[1024];
  std::snprintf(buffer, sizeof(buffer),
                "{\n  \"bench\": \"lint_runtime\",\n"
                "  \"files\": %zu,\n  \"lines\": %zu,\n  \"tokens\": %zu,\n"
                "  \"bytes\": %zu,\n  \"lex_seconds\": %.6f,\n"
                "  \"index_seconds\": %.6f,\n  \"model_seconds\": %.6f,\n"
                "  \"effects_seconds\": %.6f,\n  \"rules_seconds\": %.6f,\n"
                "  \"model_kinds\": %zu,\n  \"model_transitions\": %zu,\n"
                "  \"effectful_functions\": %zu,\n"
                "  \"pipeline_seconds\": %.6f,\n  \"lines_per_sec\": %.1f,\n"
                "  \"unsuppressed_findings\": %zu,\n"
                "  \"budget_seconds\": %.1f,\n  \"within_budget\": %s\n}\n",
                files.size(), totalLines, tokens, totalBytes, lexSeconds,
                indexSeconds, modelSeconds, effectsSeconds, rulesSeconds,
                modelKinds, modelTransitions, effectfulFunctions, bestSeconds,
                bestSeconds > 0.0 ? totalLines / bestSeconds : 0.0, findings,
                kBudgetSeconds, withinBudget ? "true" : "false");
  std::ofstream out("BENCH_lint.json", std::ios::trunc);
  out << buffer;
  std::printf("wrote BENCH_lint.json\n");

  return withinBudget ? 0 : 1;
}
