// Campaign throughput bench: scenarios/sec for the serial driver vs the
// executor pool at W = 2, 4, 8 on the quorum API assessment target, plus
// the dedup triage summary. Emits BENCH_campaign.json for CI trend
// tracking.
//
// Honesty note: speedup is bounded by the host. The JSON records
// hardware_concurrency so a 1-core container's speedup of ~1.0x is
// interpretable rather than alarming; the acceptance target (>= 2.5x at
// W=4) applies to hosts with >= 4 cores.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "avd/quorum_executor.h"
#include "campaign/runner.h"

using namespace avd;

namespace {

struct Row {
  std::size_t workers = 1;
  double seconds = 0.0;
  double scenariosPerSec = 0.0;
  double speedup = 1.0;
  double maxImpact = 0.0;
  std::size_t classes = 0;
};

Row runOnce(std::size_t workers, std::size_t tests) {
  campaign::CampaignOptions options;
  options.seed = 2011;
  options.totalTests = tests;
  options.workers = workers;
  campaign::CampaignRunner runner(
      [] {
        return std::make_unique<core::QuorumApiExecutor>(
            core::makeQuorumApiHyperspace());
      },
      options);

  // Wall-clock timing is the entire point of a throughput benchmark; the
  // measured numbers never feed a consensus decision.
  const auto start = std::chrono::steady_clock::now();  // avd-lint: allow(nondeterminism)
  const campaign::CampaignResult result = runner.run();
  const auto stop = std::chrono::steady_clock::now();  // avd-lint: allow(nondeterminism)

  Row row;
  row.workers = workers;
  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.scenariosPerSec =
      row.seconds > 0.0 ? static_cast<double>(result.executed) / row.seconds
                        : 0.0;
  row.maxImpact = result.maxImpact;
  row.classes = result.classes.size();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t tests =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 160;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("=== campaign throughput (quorum target, %zu scenarios) ===\n",
              tests);
  std::printf("host: hardware_concurrency = %u\n\n", cores);
  std::printf("%8s %10s %14s %9s %10s %8s\n", "workers", "seconds",
              "scenarios/s", "speedup", "maxImpact", "classes");

  std::vector<Row> rows;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    Row row = runOnce(workers, tests);
    if (!rows.empty() && row.scenariosPerSec > 0.0) {
      row.speedup = row.scenariosPerSec / rows.front().scenariosPerSec;
    }
    std::printf("%8zu %10.3f %14.1f %8.2fx %10.3f %8zu\n", row.workers,
                row.seconds, row.scenariosPerSec, row.speedup, row.maxImpact,
                row.classes);
    rows.push_back(row);
  }

  std::string json = "{\n  \"bench\": \"campaign_throughput\",\n";
  json += "  \"scenarios\": " + std::to_string(tests) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(cores) + ",\n";
  json += "  \"rows\": [\n";
  char buffer[256];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"workers\": %zu, \"seconds\": %.6f, "
                  "\"scenarios_per_sec\": %.3f, \"speedup\": %.3f, "
                  "\"max_impact\": %.6f, \"dedup_classes\": %zu}%s\n",
                  row.workers, row.seconds, row.scenariosPerSec, row.speedup,
                  row.maxImpact, row.classes,
                  i + 1 < rows.size() ? "," : "");
    json += buffer;
  }
  json += "  ]\n}\n";

  std::ofstream out("BENCH_campaign.json", std::ios::trunc);
  out << json;
  std::printf("\nwrote BENCH_campaign.json\n");
  return 0;
}
