// E5 — the headline claim (§1): "even a single malicious client can bring a
// BFT system of over 250 nodes down to zero throughput."
//
// Sweep of the total deployment size (4 replicas + N clients, N up to 250)
// under the two strongest synthesized attacks:
//   * colluding slow primary (malicious primary + 1 malicious client):
//     exactly 0 useful requests for correct clients at every scale;
//   * full Big MAC (1 malicious client, nothing else): stall -> view
//     change -> implementation crash -> quorum loss, throughput ~0.
#include <cstdio>

#include "faultinject/behaviors.h"
#include "pbft/deployment.h"

using namespace avd;

int main() {
  std::printf("=== Scale sweep: damage from one or two malicious nodes ===\n");
  std::printf("%8s  %16s %18s %18s\n", "clients", "baseline(r/s)",
              "colluding(r/s)", "bigMAC(r/s)");

  for (const std::uint32_t clients : {10u, 50u, 100u, 150u, 200u, 250u}) {
    // Colluding slow primary: keep the 5 s production timer but shorten the
    // window (the result is identically zero regardless of window length).
    pbft::DeploymentConfig colluding =
        fi::makeSlowPrimaryScenario(clients, true, false, 29);
    colluding.warmup = sim::sec(2);
    colluding.measure = sim::sec(15);

    pbft::DeploymentConfig baseline = fi::makeBigMacScenario(clients, 0, 29);
    pbft::DeploymentConfig bigMac = fi::makeBigMacScenario(
        clients, fi::bigMacMaskValidOnlyFor(0, 4), 29);
    for (pbft::DeploymentConfig* config : {&baseline, &bigMac}) {
      config->warmup = 0;
      config->measure = sim::sec(3);
    }

    const pbft::RunResult baseResult = pbft::runScenario(baseline);
    const pbft::RunResult colludeResult = pbft::runScenario(colluding);
    const pbft::RunResult bigMacResult = pbft::runScenario(bigMac);

    std::printf("%8u  %16.1f %18.2f %18.1f\n", clients,
                baseResult.throughputRps, colludeResult.throughputRps,
                bigMacResult.throughputRps);
  }

  std::printf(
      "\nexpected shape: the colluding column is 0.00 at every scale — one\n"
      "malicious client (plus the primary it colludes with) silences a\n"
      "254-node deployment; the bigMAC column shows a single client alone\n"
      "collapsing throughput by crashing the quorum via the view-change\n"
      "path (paper §1: 'a single faulty (or malicious) client can\n"
      "completely disrupt a PBFT deployment of 250 nodes').\n");
  return 0;
}
