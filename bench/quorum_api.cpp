// E9 (extension) — API assessment of a second target system (§2: "discover
// if the API enables certain attacks from clients, by being too
// permissive").
//
// The target is a Dynamo/Cassandra-style quorum KV store whose API trusts
// client-supplied last-write-wins timestamps and whose intra-cluster
// protocol is unauthenticated. The bench sweeps the timestamp-inflation
// dimension (showing the correctness cliff), sweeps the replica-behaviour
// dimension (availability vs fabrication), and then lets AVD find the worst
// combination on its own.
#include <cstdio>

#include "avd/controller.h"
#include "avd/quorum_executor.h"

using namespace avd;

int main() {
  std::printf("=== Quorum KV store: API assessment ===\n");
  std::printf("5 replicas, R=W=3, 8 honest clients; metric: honest ops/s "
              "and stale-read fraction\n\n");

  core::QuorumExecutorOptions options;
  options.baseSeed = 4242;
  core::QuorumApiExecutor executor(core::makeQuorumApiHyperspace(), options);

  // --- Sweep A: timestamp inflation ----------------------------------------
  std::printf("--- timestamp inflation sweep (1 malicious client, all keys) "
              "---\n");
  std::printf("%16s %14s %14s %10s\n", "inflation (2^v us)", "ops/s",
              "stale frac", "impact");
  for (const std::int64_t v : {0, 5, 10, 15, 20, 25, 30, 40}) {
    const core::Outcome outcome =
        executor.execute(core::Point{static_cast<std::uint64_t>(v), 7, 0});
    std::printf("%16lld %14.1f %14.3f %10.3f\n", static_cast<long long>(v),
                outcome.throughputRps,
                outcome.impact,  // staleness dominates here
                outcome.impact);
  }

  // --- Sweep B: replica behaviours ------------------------------------------
  std::printf("\n--- compromised-replica sweep (no malicious client) ---\n");
  const char* labels[] = {"all honest", "1 silent (within slack)",
                          "N-W+1 silent (starved)", "1 fabricator (no auth)"};
  std::printf("%-26s %14s %10s\n", "replicas", "ops/s", "impact");
  for (std::uint64_t behavior = 0; behavior < 4; ++behavior) {
    const core::Outcome outcome =
        executor.execute(core::Point{0, 0, behavior});
    std::printf("%-26s %14.1f %10.3f\n", labels[behavior],
                outcome.throughputRps, outcome.impact);
  }

  // --- AVD discovery ----------------------------------------------------------
  std::printf("\n--- AVD exploration (30-test budget) ---\n");
  core::Controller controller(executor,
                              core::defaultPlugins(executor.space()),
                              core::ControllerOptions{}, 4242);
  controller.runTests(30);
  std::printf("max impact %.3f", controller.maxImpact());
  if (const auto best = controller.best()) {
    std::printf(
        " at ts_inflation=2^%lld us, victims=%lld, replica_behavior=%lld\n",
        static_cast<long long>(
            executor.space().valueOf(best->point, "ts_inflation_log2", -1)),
        static_cast<long long>(
            executor.space().valueOf(best->point, "victim_keys", -1)),
        static_cast<long long>(executor.space().valueOf(
            best->point, "q_replica_behavior", -1)));
  }
  if (const auto found = controller.testsToReach(0.9)) {
    std::printf("first >=0.9-impact attack found after %zu tests\n", *found);
  }

  std::printf(
      "\nverdict: the correctness cliff sits wherever the inflation exceeds\n"
      "the write-read turnaround — client-supplied LWW timestamps let one\n"
      "client silently shadow every honest write while throughput metrics\n"
      "stay green. PBFT needed a quorum-crash bug for total damage; this\n"
      "API hands it out by design. That contrast is the point of §2's API\n"
      "evaluation use case.\n");
  return 0;
}
