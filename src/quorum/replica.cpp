#include "quorum/replica.h"

namespace avd::quorum {

void QReplica::receive(util::NodeId from, const sim::MessagePtr& message) {
  if (behavior_.silent) return;

  switch (static_cast<QMsgKind>(message->kind())) {
    case QMsgKind::kWriteRequest: {
      const auto& write =
          *std::static_pointer_cast<const WriteRequest>(message);
      Entry& entry = table_[write.key];
      // Last-write-wins on the CLIENT-SUPPLIED version: the replica has no
      // way to tell an honest wall-clock from an inflated one.
      if (entry.version < write.version) {
        entry.version = write.version;
        entry.value = write.value;
        ++stats_.writesApplied;
      } else {
        ++stats_.writesStale;
      }
      auto ack = std::make_shared<WriteAck>();
      ack->key = write.key;
      ack->opId = write.opId;
      send(from, std::move(ack));
      break;
    }
    case QMsgKind::kReadRequest: {
      const auto& read =
          *std::static_pointer_cast<const ReadRequest>(message);
      auto response = std::make_shared<ReadResponse>();
      response->key = read.key;
      response->opId = read.opId;
      if (behavior_.fabricateReads) {
        // No authentication anywhere: nothing stops this value from
        // winning the client's max-version reconciliation.
        response->found = true;
        response->version =
            Version{now() + behavior_.fabricationLead, id()};
        response->value = {0xBA, 0xD0};
        ++stats_.fabricated;
      } else if (const auto it = table_.find(read.key); it != table_.end()) {
        response->found = true;
        response->version = it->second.version;
        response->value = it->second.value;
      }
      ++stats_.readsServed;
      send(from, std::move(response));
      break;
    }
    default:
      break;
  }
}

std::optional<Version> QReplica::versionOf(Key key) const {
  const auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  return it->second.version;
}

}  // namespace avd::quorum
