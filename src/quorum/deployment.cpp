#include "quorum/deployment.h"

namespace avd::quorum {

QuorumDeployment::QuorumDeployment(QuorumConfig config)
    : config_(std::move(config)),
      simulator_(config_.seed),
      network_(&simulator_, config_.link) {
  replicas_.reserve(config_.replicas);
  for (util::NodeId id = 0; id < config_.replicas; ++id) {
    QReplicaBehavior behavior;
    if (const auto it = config_.replicaBehaviors.find(id);
        it != config_.replicaBehaviors.end()) {
      behavior = it->second;
    }
    replicas_.push_back(std::make_unique<QReplica>(id, behavior));
    network_.registerNode(replicas_.back().get());
  }

  const util::NodeId firstClient = config_.replicas;
  const util::NodeId firstHonest = firstClient + config_.maliciousClients;
  clients_.reserve(config_.maliciousClients + config_.honestClients);
  for (std::uint32_t i = 0; i < config_.maliciousClients; ++i) {
    QClientBehavior behavior = config_.maliciousBehavior;
    behavior.firstVictimKey = firstHonest;  // poison the honest keys
    if (behavior.victimKeys == 0 || behavior.victimKeys > config_.honestClients) {
      behavior.victimKeys = std::max(1u, config_.honestClients);
    }
    clients_.push_back(std::make_unique<QClient>(
        firstClient + i, config_.replicas, config_.readQuorum,
        config_.writeQuorum, behavior));
    network_.registerNode(clients_.back().get());
  }
  for (std::uint32_t i = 0; i < config_.honestClients; ++i) {
    clients_.push_back(std::make_unique<QClient>(
        firstHonest + i, config_.replicas, config_.readQuorum,
        config_.writeQuorum));
    network_.registerNode(clients_.back().get());
  }
}

void QuorumDeployment::runFor(sim::Time duration) {
  if (!started_) {
    started_ = true;
    for (auto& replica : replicas_) replica->start();
    for (auto& client : clients_) client->start();
  }
  simulator_.runUntil(simulator_.now() + duration);
}

QuorumResult QuorumDeployment::run() {
  // Stats accumulate from t=0; the collect() below subtracts nothing, so a
  // separate warmup snapshot keeps the window semantics of the PBFT
  // deployment: run warmup, snapshot, run measure, diff.
  runFor(config_.warmup);
  std::vector<QClientStats> snapshot;
  snapshot.reserve(config_.honestClients);
  for (std::uint32_t i = 0; i < config_.honestClients; ++i) {
    snapshot.push_back(honestClient(i).stats());
  }
  runFor(config_.measure);

  QuorumResult result;
  double latencySum = 0.0;
  for (std::uint32_t i = 0; i < config_.honestClients; ++i) {
    const QClientStats& now = honestClient(i).stats();
    const QClientStats& then = snapshot[i];
    result.honestWrites += now.writesCompleted - then.writesCompleted;
    result.honestReads += now.readsCompleted - then.readsCompleted;
    result.staleReads += now.staleReads - then.staleReads;
    latencySum += now.latencySumSec - then.latencySumSec;
  }
  const double seconds = sim::toSeconds(config_.measure);
  const std::uint64_t ops = result.honestWrites + result.honestReads;
  result.opsPerSec = seconds > 0 ? static_cast<double>(ops) / seconds : 0;
  result.staleFraction =
      result.honestReads > 0
          ? static_cast<double>(result.staleReads) /
                static_cast<double>(result.honestReads)
          : 0.0;
  result.avgLatencySec =
      ops > 0 ? latencySum / static_cast<double>(ops) : 0.0;
  return result;
}

QuorumResult QuorumDeployment::collect() const {
  QuorumResult result;
  for (std::uint32_t i = 0; i < config_.honestClients; ++i) {
    const QClientStats& stats =
        clients_[config_.maliciousClients + i]->stats();
    result.honestWrites += stats.writesCompleted;
    result.honestReads += stats.readsCompleted;
    result.staleReads += stats.staleReads;
  }
  result.staleFraction =
      result.honestReads > 0
          ? static_cast<double>(result.staleReads) /
                static_cast<double>(result.honestReads)
          : 0.0;
  return result;
}

QuorumResult runQuorumScenario(const QuorumConfig& config) {
  QuorumDeployment deployment(config);
  return deployment.run();
}

}  // namespace avd::quorum
