// Storage replica of the quorum KV store.
//
// Honest behaviour: apply writes under last-write-wins, answer reads with
// the stored (version, value). Malicious behaviours model compromised
// storage nodes: staying silent (sloppy availability attack) or fabricating
// read responses with inflated versions (possible because the intra-cluster
// protocol has no authentication — the second API flaw AVD probes).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "quorum/messages.h"
#include "sim/node.h"

namespace avd::quorum {

struct QReplicaBehavior {
  /// Never answer anything (crash-like, but undetectable by timeout logic
  /// on the write path since W < N absorbs it).
  bool silent = false;
  /// Answer reads with a fabricated value carrying a far-future version —
  /// one lying replica can poison every read quorum it lands in.
  bool fabricateReads = false;
  /// Version inflation used by the fabricator.
  sim::Time fabricationLead = sim::sec(1u << 20);
};

struct QReplicaStats {
  std::uint64_t writesApplied = 0;
  std::uint64_t writesStale = 0;  // LWW-rejected (older than stored)
  std::uint64_t readsServed = 0;
  std::uint64_t fabricated = 0;
};

class QReplica final : public sim::Node {
 public:
  QReplica(util::NodeId id, QReplicaBehavior behavior = {})
      : sim::Node(id), behavior_(behavior) {}

  void receive(util::NodeId from, const sim::MessagePtr& message) override;

  const QReplicaStats& stats() const noexcept { return stats_; }
  /// Current stored version for a key (for tests); nullopt if absent.
  [[nodiscard]] std::optional<Version> versionOf(Key key) const;
  std::size_t size() const noexcept { return table_.size(); }

 private:
  struct Entry {
    Version version;
    util::Bytes value;
  };

  QReplicaBehavior behavior_;
  std::map<Key, Entry> table_;
  QReplicaStats stats_;
};

}  // namespace avd::quorum
