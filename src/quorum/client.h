// Clients of the quorum KV store.
//
// Honest clients run a closed verification loop on their own key: write a
// monotonically increasing value with their wall-clock version, then read
// it back through a read quorum. A read that returns anything older (or
// other) than the client's own last acknowledged write is a STALE READ —
// the correctness metric the AVD executor turns into impact.
//
// Malicious clients exercise the permissive API: the store trusts the
// client-supplied timestamp, so a poisoner writes garbage to victim keys
// with versions from the far future, permanently shadowing every honest
// write that follows (the LWW timestamp-inflation attack).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "quorum/messages.h"
#include "sim/node.h"

namespace avd::quorum {

struct QClientBehavior {
  /// 0 = honest. Otherwise: added to now() as the poisoned version.
  sim::Time timestampInflation = 0;
  /// Victim range: the poisoner cycles over keys [firstVictimKey,
  /// firstVictimKey + victimKeys). The deployment points this at the
  /// honest clients' keys.
  Key firstVictimKey = 0;
  std::uint32_t victimKeys = 1;
  /// Delay between poison writes.
  sim::Time poisonInterval = sim::msec(200);
};

struct QClientStats {
  std::uint64_t writesCompleted = 0;
  std::uint64_t readsCompleted = 0;
  std::uint64_t staleReads = 0;
  double latencySumSec = 0.0;
};

class QClient final : public sim::Node {
 public:
  /// replicas: [0, replicaCount) node ids; R/W: quorum sizes.
  QClient(util::NodeId id, std::uint32_t replicaCount, std::uint32_t readQuorum,
          std::uint32_t writeQuorum, QClientBehavior behavior = {},
          sim::Time retryTimeout = sim::msec(200));

  void start() override;
  void receive(util::NodeId from, const sim::MessagePtr& message) override;

  const QClientStats& stats() const noexcept { return stats_; }
  /// The key this (honest) client verifies.
  Key ownKey() const noexcept;
  bool malicious() const noexcept { return behavior_.timestampInflation > 0; }

 private:
  enum class Phase { kIdle, kWriting, kReading };

  void startWrite();
  void startRead();
  void broadcastCurrent();
  void onRetry();
  void completeOp();

  std::uint32_t replicaCount_;
  std::uint32_t readQuorum_;
  std::uint32_t writeQuorum_;
  QClientBehavior behavior_;
  sim::Time retryTimeout_;

  Phase phase_ = Phase::kIdle;
  std::uint64_t nextOpId_ = 0;
  std::uint64_t currentOpId_ = 0;
  sim::Time opStart_ = 0;
  sim::MessagePtr currentMessage_;
  /// Distinct replicas that answered the current operation (retransmission
  /// produces duplicate answers; quorums count replicas, not messages).
  std::set<util::NodeId> responders_;
  /// Best (version, value) among read responses so far.
  Version bestVersion_;
  util::Bytes bestValue_;

  /// Verification state: the last value/version this client successfully
  /// wrote to its own key.
  std::uint64_t writeSeq_ = 0;
  Version lastWrittenVersion_;
  util::Bytes lastWrittenValue_;

  /// Poisoner state.
  std::uint32_t nextVictim_ = 0;

  sim::TimerId retryTimer_ = 0;
  bool retryArmed_ = false;
  QClientStats stats_;
};

}  // namespace avd::quorum
