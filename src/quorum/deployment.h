// Simulated deployment of the quorum KV store (the second system under
// test). Mirrors the PBFT deployment's shape: build from a config, run a
// warmup + measurement window, report the damage to honest clients —
// here both performance (ops/s) and CORRECTNESS (stale-read fraction),
// because the interesting attacks against this API poison data rather than
// throughput.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "quorum/client.h"
#include "quorum/replica.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace avd::quorum {

struct QuorumConfig {
  std::uint32_t replicas = 5;
  std::uint32_t readQuorum = 3;   // R
  std::uint32_t writeQuorum = 3;  // W  (R + W > N for overlap)
  std::uint32_t honestClients = 8;
  std::uint32_t maliciousClients = 0;
  QClientBehavior maliciousBehavior;
  std::map<util::NodeId, QReplicaBehavior> replicaBehaviors;
  sim::LinkModel link{sim::usec(500), sim::usec(100)};
  sim::Time warmup = sim::msec(300);
  sim::Time measure = sim::sec(2);
  std::uint64_t seed = 1;
};

struct QuorumResult {
  double opsPerSec = 0.0;        // honest completed ops (writes+reads) / s
  double staleFraction = 0.0;    // stale reads / reads, honest clients
  double avgLatencySec = 0.0;
  std::uint64_t honestReads = 0;
  std::uint64_t honestWrites = 0;
  std::uint64_t staleReads = 0;
};

class QuorumDeployment {
 public:
  explicit QuorumDeployment(QuorumConfig config);

  QuorumResult run();
  void runFor(sim::Time duration);
  QuorumResult collect() const;

  sim::Simulator& simulator() noexcept { return simulator_; }
  sim::Network& network() noexcept { return network_; }
  QReplica& replica(std::uint32_t index) { return *replicas_.at(index); }
  QClient& honestClient(std::uint32_t index) {
    return *clients_.at(config_.maliciousClients + index);
  }
  QClient& maliciousClient(std::uint32_t index) {
    return *clients_.at(index);
  }
  const QuorumConfig& config() const noexcept { return config_; }

 private:
  QuorumConfig config_;
  sim::Simulator simulator_;
  sim::Network network_;
  std::vector<std::unique_ptr<QReplica>> replicas_;
  std::vector<std::unique_ptr<QClient>> clients_;  // malicious first
  bool started_ = false;
};

QuorumResult runQuorumScenario(const QuorumConfig& config);

}  // namespace avd::quorum
