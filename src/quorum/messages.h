// Messages of the quorum-replicated key-value store (second target system).
//
// The store is Dynamo/Cassandra-shaped: N replicas, client-driven quorum
// writes (wait for W acks) and reads (take the newest of R responses),
// last-write-wins reconciliation on a CLIENT-SUPPLIED timestamp, and no
// intra-cluster authentication. Those last two properties are the point:
// they are common real-world API decisions, and AVD's job (§2: "evaluate an
// Application Programming Interface before deployment ... discover if the
// API enables certain attacks from clients, by being too permissive") is to
// find out what a malicious participant can do with them.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/time.h"

namespace avd::quorum {

enum class QMsgKind : std::uint32_t {
  kWriteRequest = 0x5100,
  kWriteAck,
  kReadRequest,
  kReadResponse,
};

/// Last-write-wins version: client-supplied wall-clock timestamp, writer id
/// as the tiebreaker. The timestamp is *trusted* — that is the API flaw.
struct Version {
  sim::Time timestamp = 0;
  util::NodeId writer = util::kNoNode;

  friend bool operator==(const Version&, const Version&) = default;
  friend bool operator<(const Version& a, const Version& b) {
    return a.timestamp != b.timestamp ? a.timestamp < b.timestamp
                                      : a.writer < b.writer;
  }
};

using Key = std::uint32_t;

struct WriteRequest final : sim::Message {
  Key key = 0;
  util::Bytes value;
  Version version;
  std::uint64_t opId = 0;  // client-local correlation id

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(QMsgKind::kWriteRequest);
  }
  std::size_t wireSize() const noexcept override {
    return 32 + value.size();
  }
};

struct WriteAck final : sim::Message {
  Key key = 0;
  std::uint64_t opId = 0;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(QMsgKind::kWriteAck);
  }
};

struct ReadRequest final : sim::Message {
  Key key = 0;
  std::uint64_t opId = 0;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(QMsgKind::kReadRequest);
  }
};

struct ReadResponse final : sim::Message {
  Key key = 0;
  std::uint64_t opId = 0;
  bool found = false;
  Version version;
  util::Bytes value;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(QMsgKind::kReadResponse);
  }
  std::size_t wireSize() const noexcept override {
    return 40 + value.size();
  }
};

}  // namespace avd::quorum
