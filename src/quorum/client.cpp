#include "quorum/client.h"

#include "common/bytes.h"

namespace avd::quorum {

QClient::QClient(util::NodeId id, std::uint32_t replicaCount,
                 std::uint32_t readQuorum, std::uint32_t writeQuorum,
                 QClientBehavior behavior, sim::Time retryTimeout)
    : sim::Node(id),
      replicaCount_(replicaCount),
      readQuorum_(readQuorum),
      writeQuorum_(writeQuorum),
      behavior_(behavior),
      retryTimeout_(retryTimeout) {}

Key QClient::ownKey() const noexcept { return id(); }

void QClient::start() {
  const auto jitter =
      static_cast<sim::Time>(simulator().rng().below(sim::msec(10) + 1));
  if (malicious()) {
    setTimer(jitter, [this] { startWrite(); });
  } else {
    setTimer(jitter, [this] { startWrite(); });
  }
}

void QClient::startWrite() {
  auto write = std::make_shared<WriteRequest>();
  currentOpId_ = ++nextOpId_;
  write->opId = currentOpId_;

  if (malicious()) {
    // Poison a victim's key with a far-future version: the store trusts
    // the timestamp, so this shadows all later honest writes to the key.
    write->key = behavior_.firstVictimKey + nextVictim_;
    nextVictim_ = (nextVictim_ + 1) % std::max(1u, behavior_.victimKeys);
    write->version = Version{now() + behavior_.timestampInflation, id()};
    write->value = {0xEE, 0xEE};
  } else {
    ++writeSeq_;
    write->key = ownKey();
    write->version = Version{now(), id()};  // honest wall-clock version
    util::ByteWriter payload;
    payload.u64(writeSeq_);
    write->value = payload.take();
    lastWrittenVersion_ = write->version;
    lastWrittenValue_ = write->value;
  }

  phase_ = Phase::kWriting;
  responders_.clear();
  opStart_ = now();
  currentMessage_ = std::move(write);
  broadcastCurrent();
}

void QClient::startRead() {
  auto read = std::make_shared<ReadRequest>();
  currentOpId_ = ++nextOpId_;
  read->opId = currentOpId_;
  read->key = ownKey();

  phase_ = Phase::kReading;
  responders_.clear();
  bestVersion_ = Version{};
  bestValue_.clear();
  opStart_ = now();
  currentMessage_ = std::move(read);
  broadcastCurrent();
}

void QClient::broadcastCurrent() {
  for (util::NodeId replica = 0; replica < replicaCount_; ++replica) {
    send(replica, currentMessage_);
  }
  if (!retryArmed_) {
    retryArmed_ = true;
    retryTimer_ = setTimer(retryTimeout_, [this] { onRetry(); });
  }
}

void QClient::onRetry() {
  retryArmed_ = false;
  if (phase_ == Phase::kIdle) return;
  // Quorum not yet reached (loss or silent replicas): rebroadcast. All
  // operations are idempotent under LWW, so this is safe.
  broadcastCurrent();
}

void QClient::completeOp() {
  phase_ = Phase::kIdle;
  if (retryArmed_) {
    cancelTimer(retryTimer_);
    retryArmed_ = false;
  }
  stats_.latencySumSec += sim::toSeconds(now() - opStart_);
}

void QClient::receive(util::NodeId from, const sim::MessagePtr& message) {
  switch (static_cast<QMsgKind>(message->kind())) {
    case QMsgKind::kWriteAck: {
      const auto& ack = *std::static_pointer_cast<const WriteAck>(message);
      if (phase_ != Phase::kWriting || ack.opId != currentOpId_) return;
      responders_.insert(from);
      if (responders_.size() < writeQuorum_) return;
      completeOp();
      ++stats_.writesCompleted;
      if (malicious()) {
        setTimer(behavior_.poisonInterval, [this] { startWrite(); });
      } else {
        startRead();  // verify what we just wrote
      }
      break;
    }
    case QMsgKind::kReadResponse: {
      const auto& response =
          *std::static_pointer_cast<const ReadResponse>(message);
      if (phase_ != Phase::kReading || response.opId != currentOpId_) return;
      const bool isNewResponder = responders_.insert(from).second;
      if (response.found && bestVersion_ < response.version) {
        bestVersion_ = response.version;
        bestValue_ = response.value;
      }
      if (!isNewResponder || responders_.size() < readQuorum_) return;
      completeOp();
      ++stats_.readsCompleted;
      // Verification: the newest version a read quorum returns must be our
      // own last acknowledged write (nobody else writes this key honestly).
      if (bestVersion_ != lastWrittenVersion_ ||
          bestValue_ != lastWrittenValue_) {
        ++stats_.staleReads;
      }
      startWrite();
      break;
    }
    default:
      break;
  }
}

}  // namespace avd::quorum
