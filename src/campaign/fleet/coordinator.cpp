#include "campaign/fleet/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "avd/plugin.h"
#include "campaign/dedup.h"
#include "campaign/fleet/protocol.h"
#include "campaign/fleet/shard.h"
#include "common/framing.h"

namespace avd::campaign::fleet {

namespace {

// Liveness deadlines, wedge budgets, and respawn backoff are operational
// concerns: they decide when the coordinator gives up on a worker process,
// never which scenarios are generated or what outcome a point produces.
// avd-lint: allow(nondeterminism)
using WatchClock = std::chrono::steady_clock;

constexpr WatchClock::time_point kNever{};

struct Slot {
  enum class Phase { kVacant, kConnecting, kActive, kBackoff, kRetired };
  Phase phase = Phase::kVacant;
  bool spawnedKind = false;  // launcher-owned; false = remote TCP slot
  pid_t pid = -1;
  int fd = -1;
  util::FrameReader reader;
  std::uint64_t incarnation = 0;        // valid while kActive
  WatchClock::time_point lastHeard{};   // any frame
  WatchClock::time_point respawnAt{};   // kBackoff: when to relaunch
  WatchClock::time_point wedgeAt{};     // kActive: current scenario deadline
  std::uint64_t backoffMs = 0;          // capped-exponential ladder position
  std::deque<std::uint64_t> assigned;   // outstanding tests, assignment order
};

}  // namespace

FleetCoordinator::FleetCoordinator(FleetOptions options,
                                   ExecutorFactory factory,
                                   PluginFactory plugins)
    : options_(std::move(options)),
      factory_(std::move(factory)),
      plugins_(std::move(plugins)) {
  if (!factory_) throw std::runtime_error("fleet: null executor factory");
  if (options_.spawn + options_.remoteSlots == 0) {
    throw std::runtime_error("fleet: zero worker slots");
  }
  if (options_.batch == 0) options_.batch = 1;
  if (options_.heartbeatMs == 0) options_.heartbeatMs = 200;
  if (options_.campaign.checkpointEvery == 0) {
    options_.campaign.checkpointEvery = 16;
  }
  if (options_.remoteSlots > 0) {
    listener_ = util::listenTcp(options_.bindPort, options_.bindAddr);
    if (!listener_) {
      throw std::runtime_error("fleet: cannot bind TCP listener on " +
                               options_.bindAddr);
    }
  }
}

FleetCoordinator::~FleetCoordinator() {
  if (listener_ && listener_->fd >= 0) util::closeFd(listener_->fd);
}

std::uint16_t FleetCoordinator::listenPort() const {
  return listener_ ? listener_->port : 0;
}

CampaignResult FleetCoordinator::run() {
  auto probe = factory_();
  if (!probe) throw std::runtime_error("fleet: executor factory returned null");
  const core::Hyperspace& space = probe->space();
  std::vector<core::PluginPtr> plugins =
      plugins_ ? plugins_(space) : core::defaultPlugins(space);
  core::Controller controller(*probe, std::move(plugins),
                              options_.campaign.controller,
                              options_.campaign.seed);

  JournalWriter journal;
  JournalWriter* journalPtr = nullptr;
  if (!options_.campaign.outDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.campaign.outDir, ec);
    Manifest manifest;
    manifest.system = options_.campaign.system;
    manifest.seed = options_.campaign.seed;
    manifest.totalTests = options_.campaign.totalTests;
    manifest.workers = options_.spawn + options_.remoteSlots;
    manifest.checkpointEvery = options_.campaign.checkpointEvery;
    manifest.scenarioTimeoutMs = options_.campaign.scenarioTimeoutMs;
    manifest.mode = "fleet";
    manifest.batch = options_.batch;
    manifest.spawn = options_.spawn;
    manifest.heartbeatMs = options_.heartbeatMs;
    if (!writeManifest(options_.campaign.outDir, manifest) ||
        !journal.openFresh(journalPath(options_.campaign.outDir))) {
      throw std::runtime_error("fleet: cannot write to '" +
                               options_.campaign.outDir + "'");
    }
    journalPtr = &journal;
    // A fresh campaign truncates the journal, so shards from whatever
    // campaign previously lived here are stale history that a later
    // --resume would wrongly merge. Remove them now.
    removeShards(options_.campaign.outDir);
  }
  return drive(controller, space, journalPtr, ReplayState{}, {}, {},
               Checkpoint{});
}

CampaignResult FleetCoordinator::resume() {
  const std::string dir = options_.campaign.outDir;
  if (dir.empty()) throw std::runtime_error("fleet: resume requires outDir");
  const auto manifest = loadManifest(dir);
  if (!manifest) {
    throw std::runtime_error("fleet: missing/corrupt manifest in '" + dir +
                             "'");
  }
  if (manifest->mode != "fleet") {
    throw std::runtime_error(
        "fleet: '" + dir + "' holds a single-process campaign; resume it "
        "with `avd_cli campaign --resume`");
  }
  // The manifest is authoritative for everything that shapes the journal's
  // deterministic interleave: seed, budget, and the generation window
  // L = batch * workers. The spawn/remote split merely re-creates the
  // original fleet shape.
  options_.campaign.seed = manifest->seed;
  options_.campaign.totalTests =
      static_cast<std::size_t>(manifest->totalTests);
  options_.campaign.checkpointEvery = std::max<std::size_t>(
      1, static_cast<std::size_t>(manifest->checkpointEvery));
  options_.campaign.scenarioTimeoutMs = manifest->scenarioTimeoutMs;
  options_.campaign.system = manifest->system;
  options_.batch =
      std::max<std::size_t>(1, static_cast<std::size_t>(manifest->batch));
  options_.heartbeatMs = manifest->heartbeatMs ? manifest->heartbeatMs : 200;
  options_.spawn = static_cast<std::size_t>(
      std::min<std::uint64_t>(manifest->spawn, manifest->workers));
  options_.remoteSlots =
      static_cast<std::size_t>(manifest->workers) - options_.spawn;
  if (options_.remoteSlots > 0 && !listener_) {
    listener_ = util::listenTcp(options_.bindPort, options_.bindAddr);
  }

  const auto loaded = loadJournal(journalPath(dir));
  if (!loaded) {
    throw std::runtime_error("fleet: corrupt journal in '" + dir + "'");
  }

  auto probe = factory_();
  if (!probe) throw std::runtime_error("fleet: executor factory returned null");
  const core::Hyperspace& space = probe->space();
  std::vector<core::PluginPtr> plugins =
      plugins_ ? plugins_(space) : core::defaultPlugins(space);
  core::Controller controller(*probe, std::move(plugins),
                              options_.campaign.controller,
                              options_.campaign.seed);

  ReplayState replayed = replayJournal(controller, loaded->events);

  // Shards recover every outcome a worker completed that the coordinator's
  // journal never folded (coordinator killed, or its tail torn): re-fold
  // instead of re-execute. The whole merge goes to drive() — outcomes for
  // tests beyond the journal cut are matched up when the deterministic
  // generator re-reaches their test number.
  MergedShards merged = mergeShards(dir);

  JournalWriter journal;
  if (!journal.openResume(journalPath(dir), loaded->validBytes)) {
    throw std::runtime_error("fleet: cannot reopen journal in '" + dir + "'");
  }
  const Checkpoint carried = loadCheckpoint(dir).value_or(Checkpoint{});
  return drive(controller, space, &journal, std::move(replayed),
               std::move(merged.outcomes), std::move(merged.nextIncarnation),
               carried);
}

CampaignResult FleetCoordinator::drive(
    core::Controller& controller, const core::Hyperspace& space,
    JournalWriter* journal, ReplayState replayed,
    std::map<std::uint64_t, DoneEvent> preFolded,
    std::map<std::uint64_t, std::uint64_t> nextIncarnation,
    Checkpoint carried) {
  CampaignResult result;
  result.failed = replayed.replayedFailed;
  result.timedOut = replayed.replayedTimedOut;
  result.respawns = static_cast<std::size_t>(carried.respawns);
  result.reassigned = static_cast<std::size_t>(carried.reassigned);
  result.workerCrashes = static_cast<std::size_t>(carried.workerCrashes);

  const std::size_t totalSlots = options_.spawn + options_.remoteSlots;
  const std::uint64_t window =
      static_cast<std::uint64_t>(options_.batch) * totalSlots;
  const std::uint64_t total = options_.campaign.totalTests;
  const std::uint64_t scenarioTimeoutMs = options_.campaign.scenarioTimeoutMs;
  const auto heartbeatDeadline = std::chrono::milliseconds(
      options_.heartbeatMs * std::max<std::uint64_t>(1,
                                                     options_.heartbeatMissFactor));
  const auto connectDeadline = std::chrono::milliseconds(std::max(
      options_.spawnGraceMs,
      options_.heartbeatMs * options_.heartbeatMissFactor));

  std::uint64_t nextTest = replayed.nextTest;
  std::uint64_t foldedThrough = controller.executedTests();
  std::map<std::uint64_t, core::GeneratedScenario> pendingScenarios =
      std::move(replayed.pending);
  // Shard-recovered outcomes satisfy their test the moment it exists:
  // replayed pending tests right now, journal-lost tests when topUp
  // re-reaches their number (generation is deterministic, outcomes are
  // pure functions of points — the shard line is the same bytes a live
  // worker would have framed).
  std::map<std::uint64_t, DoneEvent> shardRecovered = std::move(preFolded);
  shardRecovered.erase(shardRecovered.begin(),
                       shardRecovered.upper_bound(foldedThrough));
  std::map<std::uint64_t, DoneEvent> completedBuffer;
  std::set<std::uint64_t> unassigned;
  for (const auto& [test, scenario] : pendingScenarios) {
    const auto it = shardRecovered.find(test);
    if (it != shardRecovered.end()) {
      completedBuffer.emplace(test, std::move(it->second));
      shardRecovered.erase(it);
    } else {
      unassigned.insert(test);
    }
  }
  std::map<std::uint64_t, std::size_t> wedgeKills;
  std::size_t respawnsUsed = 0;
  bool draining = false;

  std::vector<Slot> slots(totalSlots);
  for (std::size_t s = 0; s < options_.spawn; ++s) {
    slots[s].spawnedKind = true;
  }
  // Whatever exits drive() — return or throw — no worker process and no
  // descriptor outlives it.
  struct Teardown {
    std::vector<Slot>* slots;
    ~Teardown() {
      for (Slot& slot : *slots) {
        if (slot.fd >= 0) util::closeFd(slot.fd);
        if (slot.pid > 0) {
          util::killProcess(slot.pid);
          (void)util::reapProcess(slot.pid);
        }
      }
    }
  } teardown{&slots};

  const auto appendLine = [&](const std::string& line) {
    if (journal == nullptr) return;
    if (!journal->append(line)) {
      throw std::runtime_error("fleet: journal append failed (disk full?)");
    }
  };

  const auto maybeCheckpoint = [&](bool force) {
    if (options_.campaign.outDir.empty()) return;
    if (!force && foldedThrough % options_.campaign.checkpointEvery != 0) {
      return;
    }
    // Journal bytes reach disk before the checkpoint that summarizes them.
    if (journal != nullptr) journal->sync();
    Checkpoint checkpoint;
    checkpoint.generated = nextTest - 1;
    checkpoint.completed = foldedThrough;
    checkpoint.maxImpact = controller.maxImpact();
    checkpoint.respawns = result.respawns;
    checkpoint.reassigned = result.reassigned;
    checkpoint.workerCrashes = result.workerCrashes;
    writeCheckpoint(options_.campaign.outDir, checkpoint);
  };

  // The determinism engine. Gen: top up greedily while fewer than `window`
  // scenarios are generated-but-unfolded. Fold: strictly in test order.
  // Together these make the journal's gen/done interleave a pure function
  // of (seed, window, total) — independent of worker timing, crashes, and
  // reassignment — so any kill point leaves a canonical prefix that resume
  // extends byte-identically.
  const auto topUp = [&] {
    while (nextTest <= total && (nextTest - 1) - foldedThrough < window) {
      core::GeneratedScenario scenario = controller.acquireScenario();
      GenEvent event;
      event.test = nextTest;
      event.point = scenario.point;
      event.generatedBy = scenario.generatedBy;
      event.parentImpact = scenario.parentImpact;
      event.pluginIndex = static_cast<std::int64_t>(scenario.pluginIndex);
      appendLine(encodeGen(event));
      pendingScenarios.emplace(nextTest, std::move(scenario));
      const auto recovered = shardRecovered.find(nextTest);
      if (recovered != shardRecovered.end()) {
        completedBuffer.emplace(nextTest, std::move(recovered->second));
        shardRecovered.erase(recovered);
      } else {
        unassigned.insert(nextTest);
      }
      ++nextTest;
    }
  };

  const auto foldReady = [&] {
    for (;;) {
      const auto it = completedBuffer.find(foldedThrough + 1);
      if (it == completedBuffer.end()) break;
      DoneEvent done = std::move(it->second);
      completedBuffer.erase(it);
      const auto scenIt = pendingScenarios.find(done.test);
      if (scenIt == pendingScenarios.end()) {
        throw std::runtime_error(
            "fleet: outcome for a scenario that was never generated");
      }
      controller.reportOutcome(std::move(scenIt->second), done.outcome);
      pendingScenarios.erase(scenIt);
      done.bestImpact = controller.maxImpact();
      appendLine(encodeDone(done));
      ++foldedThrough;
      result.failed += done.failed ? 1 : 0;
      result.timedOut += done.timedOut ? 1 : 0;
      maybeCheckpoint(false);
      topUp();
    }
  };

  const auto closeSlotConn = [&](Slot& slot) {
    if (slot.fd >= 0) {
      util::closeFd(slot.fd);
      slot.fd = -1;
    }
    slot.reader = util::FrameReader{};
    if (slot.pid > 0) {
      util::killProcess(slot.pid);
      (void)util::reapProcess(slot.pid);
      slot.pid = -1;
    }
  };

  const auto nextBackoff = [&](Slot& slot) {
    slot.backoffMs = slot.backoffMs == 0
                         ? std::max<std::uint64_t>(1,
                                                   options_.respawnBackoffBaseMs)
                         : std::min(slot.backoffMs * 2,
                                    std::max<std::uint64_t>(
                                        1, options_.respawnBackoffCapMs));
  };

  const auto handleDeath = [&](std::size_t index, bool wedged,
                               WatchClock::time_point now) {
    Slot& slot = slots[index];
    ++result.workerCrashes;
    closeSlotConn(slot);
    std::uint64_t culprit = 0;
    if (wedged && !slot.assigned.empty()) {
      // Workers execute their batch serially in assignment order, so the
      // scenario on the deadline is the head of the queue.
      culprit = slot.assigned.front();
      ++wedgeKills[culprit];
    }
    for (const std::uint64_t test : slot.assigned) {
      if (test <= foldedThrough || completedBuffer.contains(test)) continue;
      if (test == culprit &&
          wedgeKills[test] >= options_.wedgeKillLimit) {
        // This point wedged multiple fresh workers; stop feeding it
        // processes and fold a timed-out zero outcome, exactly like the
        // in-process watchdog would.
        DoneEvent done;
        done.test = test;
        done.timedOut = true;
        done.error = "scenario exceeded fleet wedge budget";
        completedBuffer.emplace(test, std::move(done));
      } else {
        unassigned.insert(test);
        ++result.reassigned;
      }
    }
    slot.assigned.clear();
    slot.wedgeAt = kNever;
    if (slot.spawnedKind) {
      if (respawnsUsed < options_.maxWorkerRespawns && options_.launcher) {
        ++respawnsUsed;
        nextBackoff(slot);
        slot.phase = Slot::Phase::kBackoff;
        slot.respawnAt = now + std::chrono::milliseconds(slot.backoffMs);
      } else {
        slot.phase = Slot::Phase::kRetired;
      }
    } else {
      // A remote slot just becomes vacant again; the next TCP worker to
      // connect takes it (no budget — remote workers are externally run).
      slot.phase = Slot::Phase::kVacant;
    }
  };

  const auto launchSlot = [&](std::size_t index, WatchClock::time_point now,
                              bool isRespawn) {
    Slot& slot = slots[index];
    if (!options_.launcher) {
      slot.phase = Slot::Phase::kRetired;
      return;
    }
    const auto child = options_.launcher(index);
    if (!child) {
      if (respawnsUsed < options_.maxWorkerRespawns) {
        ++respawnsUsed;
        nextBackoff(slot);
        slot.phase = Slot::Phase::kBackoff;
        slot.respawnAt = now + std::chrono::milliseconds(slot.backoffMs);
      } else {
        slot.phase = Slot::Phase::kRetired;
      }
      return;
    }
    slot.pid = child->pid;
    slot.fd = child->fd;
    slot.reader = util::FrameReader{};
    slot.phase = Slot::Phase::kConnecting;
    slot.lastHeard = now;
    if (isRespawn) ++result.respawns;
  };

  const auto activate = [&](std::size_t index, WatchClock::time_point now) {
    Slot& slot = slots[index];
    slot.incarnation = nextIncarnation[index]++;
    Welcome welcome;
    welcome.slot = index;
    welcome.incarnation = slot.incarnation;
    welcome.system = options_.campaign.system;
    welcome.seed = options_.campaign.seed;
    welcome.outDir = options_.campaign.outDir;
    welcome.heartbeatMs = options_.heartbeatMs;
    if (!util::writeFrame(slot.fd, encodeWelcome(welcome))) {
      handleDeath(index, false, now);
      return;
    }
    slot.phase = Slot::Phase::kActive;
    slot.lastHeard = now;
  };

  /// Returns false when the frame is a protocol violation (caller tears
  /// the slot down). May itself tear the slot down (slot.fd becomes -1).
  const auto handleFrame = [&](std::size_t index, const std::string& payload,
                               WatchClock::time_point now) -> bool {
    Slot& slot = slots[index];
    slot.lastHeard = now;
    switch (kindOf(payload)) {
      case MessageKind::kHello:
        if (slot.phase == Slot::Phase::kConnecting) activate(index, now);
        return slot.phase == Slot::Phase::kActive;
      case MessageKind::kHeartbeat:
        return decodeHeartbeat(payload).has_value();
      case MessageKind::kOutcome: {
        const auto event = decodeLine(payload);
        if (!event || event->kind != JournalEvent::Kind::kDone) return false;
        const std::uint64_t test = event->done.test;
        const auto at =
            std::find(slot.assigned.begin(), slot.assigned.end(), test);
        if (at != slot.assigned.end()) slot.assigned.erase(at);
        slot.backoffMs = 0;  // a delivered outcome resets the backoff ladder
        slot.wedgeAt = (slot.assigned.empty() || scenarioTimeoutMs == 0)
                           ? kNever
                           : now + std::chrono::milliseconds(scenarioTimeoutMs);
        if (test > foldedThrough && !completedBuffer.contains(test) &&
            pendingScenarios.contains(test)) {
          completedBuffer.emplace(test, event->done);
          unassigned.erase(test);
        }
        return true;
      }
      default:
        return false;
    }
  };

  const auto assignWork = [&](WatchClock::time_point now) {
    if (draining) return;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      if (slot.phase != Slot::Phase::kActive) continue;
      while (slot.assigned.size() < options_.batch && !unassigned.empty()) {
        const std::uint64_t test = *unassigned.begin();
        const auto scenIt = pendingScenarios.find(test);
        Assign assign;
        assign.test = test;
        assign.point = scenIt->second.point;
        if (!util::writeFrame(slot.fd, encodeAssign(assign))) {
          handleDeath(s, false, now);
          break;
        }
        unassigned.erase(unassigned.begin());
        if (slot.assigned.empty() && scenarioTimeoutMs > 0) {
          slot.wedgeAt = now + std::chrono::milliseconds(scenarioTimeoutMs);
        }
        slot.assigned.push_back(test);
      }
    }
  };

  const auto startAt = WatchClock::now();
  const auto anyProgressPossible = [&](WatchClock::time_point now) {
    for (const Slot& slot : slots) {
      if (slot.phase == Slot::Phase::kActive ||
          slot.phase == Slot::Phase::kConnecting ||
          slot.phase == Slot::Phase::kBackoff) {
        return true;
      }
      // An empty remote slot counts as hope only during the startup grace
      // window; past that, an all-dead fleet aborts instead of waiting
      // forever for a worker that may never connect.
      if (slot.phase == Slot::Phase::kVacant && !slot.spawnedKind &&
          listener_ &&
          now < startAt + std::chrono::milliseconds(options_.spawnGraceMs)) {
        return true;
      }
    }
    return false;
  };

  for (std::size_t s = 0; s < options_.spawn; ++s) {
    launchSlot(s, startAt, false);
  }
  // Order matters on resume: a torn journal can owe gen lines at the
  // replayed fold point (the canonical interleave puts gen(k+window) right
  // after done(k)), so the window must be topped up BEFORE the first
  // shard-recovered outcome folds and appends its done line.
  topUp();
  foldReady();  // resume: fold the shard-recovered contiguous prefix

  for (;;) {
    foldReady();
    if (foldedThrough >= total) break;
    if (options_.drainFlag != nullptr &&
        options_.drainFlag->load(std::memory_order_relaxed)) {
      draining = true;
    }
    const auto now = WatchClock::now();
    assignWork(now);

    std::size_t outstanding = 0;
    for (const Slot& slot : slots) outstanding += slot.assigned.size();
    if (outstanding == 0) {
      if (draining) break;  // drained: all assigned work has folded
      if (!anyProgressPossible(now)) {
        result.aborted = true;
        break;
      }
    }

    // Poll every live descriptor until the nearest operational deadline.
    std::vector<pollfd> fds;
    std::vector<std::size_t> fdSlot;  // parallel; SIZE_MAX = TCP listener
    if (listener_) {
      fds.push_back(pollfd{listener_->fd, POLLIN, 0});
      fdSlot.push_back(SIZE_MAX);
    }
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].fd >= 0) {
        fds.push_back(pollfd{slots[s].fd, POLLIN, 0});
        fdSlot.push_back(s);
      }
    }
    WatchClock::time_point nearest =
        now + std::chrono::milliseconds(100);  // pid-liveness tick floor
    for (const Slot& slot : slots) {
      switch (slot.phase) {
        case Slot::Phase::kActive:
          if (slot.wedgeAt != kNever) {
            nearest = std::min(nearest, slot.wedgeAt);
          }
          nearest = std::min(nearest, slot.lastHeard + heartbeatDeadline);
          break;
        case Slot::Phase::kConnecting:
          nearest = std::min(nearest, slot.lastHeard + connectDeadline);
          break;
        case Slot::Phase::kBackoff:
          nearest = std::min(nearest, slot.respawnAt);
          break;
        default:
          break;
      }
    }
    const auto waitMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                            nearest - now)
                            .count();
    const int timeoutMs =
        static_cast<int>(std::clamp<long long>(waitMs, 1, 1000));
    const int ready = util::pollSockets(fds.data(), fds.size(), timeoutMs);
    if (ready < 0) {
      throw std::runtime_error("fleet: poll failed");
    }

    const auto afterPoll = WatchClock::now();
    for (std::size_t i = 0; ready > 0 && i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (fdSlot[i] == SIZE_MAX) {
        const auto accepted = util::acceptTcp(listener_->fd);
        if (!accepted) continue;
        std::size_t vacancy = SIZE_MAX;
        for (std::size_t s = options_.spawn; s < slots.size(); ++s) {
          if (slots[s].phase == Slot::Phase::kVacant) {
            vacancy = s;
            break;
          }
        }
        if (vacancy == SIZE_MAX) {
          util::closeFd(*accepted);  // no room: refuse politely
          continue;
        }
        Slot& slot = slots[vacancy];
        slot.fd = *accepted;
        slot.reader = util::FrameReader{};
        slot.phase = Slot::Phase::kConnecting;
        slot.lastHeard = afterPoll;
        continue;
      }
      const std::size_t s = fdSlot[i];
      Slot& slot = slots[s];
      if (slot.fd != fds[i].fd) continue;  // torn down earlier this sweep
      if (!slot.reader.pump(slot.fd)) {
        handleDeath(s, false, afterPoll);
        continue;
      }
      for (;;) {
        const auto frame = slot.reader.next();
        if (!frame) {
          if (slot.reader.corrupt() && slot.fd >= 0) {
            handleDeath(s, false, afterPoll);
          }
          break;
        }
        if (!handleFrame(s, *frame, afterPoll)) {
          if (slot.fd >= 0) handleDeath(s, false, afterPoll);
          break;
        }
        if (slot.fd < 0) break;  // died inside handleFrame
      }
    }

    // Deadline sweep: dead processes, wedged scenarios, silent workers,
    // and elapsed respawn backoffs.
    const auto tick = WatchClock::now();
    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      if ((slot.phase == Slot::Phase::kConnecting ||
           slot.phase == Slot::Phase::kActive) &&
          slot.pid > 0 && util::processExited(slot.pid)) {
        slot.pid = -1;  // processExited already reaped it
        handleDeath(s, false, tick);
        continue;
      }
      if (slot.phase == Slot::Phase::kActive) {
        if (slot.wedgeAt != kNever && tick >= slot.wedgeAt) {
          handleDeath(s, true, tick);
          continue;
        }
        if (tick >= slot.lastHeard + heartbeatDeadline) {
          handleDeath(s, false, tick);
        }
      } else if (slot.phase == Slot::Phase::kConnecting) {
        if (tick >= slot.lastHeard + connectDeadline) {
          handleDeath(s, false, tick);
        }
      } else if (slot.phase == Slot::Phase::kBackoff) {
        if (tick >= slot.respawnAt) launchSlot(s, tick, true);
      }
    }
  }

  // Graceful teardown: shutdown frames let workers exit 0; EOF covers any
  // that miss it; reap so nothing is left as a zombie.
  for (Slot& slot : slots) {
    if (slot.fd >= 0) {
      (void)util::writeFrame(slot.fd, encodeShutdown());
      util::closeFd(slot.fd);
      slot.fd = -1;
    }
    if (slot.pid > 0) {
      (void)util::reapProcess(slot.pid);
      slot.pid = -1;
    }
  }

  result.history = controller.history();
  result.executed = result.history.size();
  result.maxImpact = controller.maxImpact();
  result.classes = dedupVulnerabilities(space, result.history,
                                        options_.campaign.dedupMinImpact);
  maybeCheckpoint(true);
  return result;
}

}  // namespace avd::campaign::fleet
