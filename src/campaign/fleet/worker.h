// Fleet worker: the process (or, in tests, thread) that actually executes
// scenarios.
//
// Life cycle: connect -> hello -> welcome (learn slot/incarnation, system,
// seed, shard location) -> loop { assign -> execute -> shard append ->
// outcome frame } until a shutdown frame or EOF. A heartbeat thread beats
// every heartbeatMs the whole time, carrying how long the current scenario
// has been running, so the coordinator can distinguish a wedged scenario
// (heart beating, busyMs growing) from a dead process (silence / EOF).
//
// Crash containment is the point: anything that kills this process — UB in
// a deployment, abort, OOM kill — costs the coordinator one respawn and a
// re-execution of the worker's in-flight batch, never the campaign.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "avd/executor.h"

namespace avd::campaign::fleet {

/// Builds the worker's executor once the welcome names the campaign's
/// system and seed. Must construct the same executor the coordinator's
/// factory would, so an outcome is a pure function of the point no matter
/// which worker (or respawn) computes it.
using WorkerExecutorFactory =
    std::function<std::unique_ptr<core::ScenarioExecutor>(
        const std::string& system, std::uint64_t seed)>;

/// Test-only crash injection: return true to make the worker "die" at that
/// instant (stop writing anything and disconnect), emulating the two
/// interesting kill -9 placements around the shard append.
struct WorkerHooks {
  std::function<bool(std::uint64_t test)> crashBeforeShardWrite;
  std::function<bool(std::uint64_t test)> crashAfterShardWrite;
};

/// Exit codes returned by runWorker (and used as process exit codes by
/// `avd_cli fleet-worker`).
inline constexpr int kWorkerExitClean = 0;       // shutdown frame received
inline constexpr int kWorkerExitLostPeer = 1;    // EOF/error from coordinator
inline constexpr int kWorkerExitBadConfig = 2;   // unusable welcome/executor
inline constexpr int kWorkerExitSimulated = 9;   // a hook asked for death

/// Runs the worker protocol loop over the connected socket `fd` until
/// shutdown or disconnection. Closes `fd` before returning.
int runWorker(int fd, const WorkerExecutorFactory& makeExecutor,
              const WorkerHooks& hooks = {});

}  // namespace avd::campaign::fleet
