#include "campaign/fleet/protocol.h"

#include "campaign/jsonval.h"

namespace avd::campaign::fleet {

namespace {
using namespace jsonl;
}  // namespace

MessageKind kindOf(std::string_view payload) {
  const auto event = getString(payload, "event");
  if (!event) return MessageKind::kUnknown;
  if (*event == "hello") return MessageKind::kHello;
  if (*event == "welcome") return MessageKind::kWelcome;
  if (*event == "assign") return MessageKind::kAssign;
  if (*event == "done") return MessageKind::kOutcome;
  if (*event == "heartbeat") return MessageKind::kHeartbeat;
  if (*event == "shutdown") return MessageKind::kShutdown;
  return MessageKind::kUnknown;
}

std::string encodeHello(const Hello& hello) {
  std::string out = "{\"event\":\"hello\",";
  appendKey(out, "version");
  out += std::to_string(hello.version);
  out += '}';
  return out;
}

std::string encodeWelcome(const Welcome& welcome) {
  std::string out = "{\"event\":\"welcome\",";
  appendKey(out, "slot");
  out += std::to_string(welcome.slot);
  out += ',';
  appendKey(out, "incarnation");
  out += std::to_string(welcome.incarnation);
  out += ',';
  appendKey(out, "system");
  appendEscaped(out, welcome.system);
  out += ',';
  appendKey(out, "seed");
  out += std::to_string(welcome.seed);
  out += ',';
  appendKey(out, "outDir");
  appendEscaped(out, welcome.outDir);
  out += ',';
  appendKey(out, "heartbeatMs");
  out += std::to_string(welcome.heartbeatMs);
  out += '}';
  return out;
}

std::string encodeAssign(const Assign& assign) {
  std::string out = "{\"event\":\"assign\",";
  appendKey(out, "test");
  out += std::to_string(assign.test);
  out += ',';
  appendKey(out, "point");
  out += '[';
  for (std::size_t i = 0; i < assign.point.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(assign.point[i]);
  }
  out += "]}";
  return out;
}

std::string encodeHeartbeat(const Heartbeat& heartbeat) {
  std::string out = "{\"event\":\"heartbeat\",";
  appendKey(out, "busyTest");
  out += std::to_string(heartbeat.busyTest);
  out += ',';
  appendKey(out, "busyMs");
  out += std::to_string(heartbeat.busyMs);
  out += '}';
  return out;
}

std::string encodeShutdown() { return "{\"event\":\"shutdown\"}"; }

[[nodiscard]] std::optional<Hello> decodeHello(std::string_view payload) {
  const auto version = getU64(payload, "version");
  if (!version) return std::nullopt;
  Hello hello;
  hello.version = *version;
  return hello;
}

[[nodiscard]] std::optional<Welcome> decodeWelcome(std::string_view payload) {
  const auto slot = getU64(payload, "slot");
  const auto incarnation = getU64(payload, "incarnation");
  const auto system = getString(payload, "system");
  const auto seed = getU64(payload, "seed");
  const auto outDir = getString(payload, "outDir");
  const auto heartbeatMs = getU64(payload, "heartbeatMs");
  if (!slot || !incarnation || !system || !seed || !outDir || !heartbeatMs) {
    return std::nullopt;
  }
  Welcome welcome;
  welcome.slot = *slot;
  welcome.incarnation = *incarnation;
  welcome.system = *system;
  welcome.seed = *seed;
  welcome.outDir = *outDir;
  welcome.heartbeatMs = *heartbeatMs;
  return welcome;
}

[[nodiscard]] std::optional<Assign> decodeAssign(std::string_view payload) {
  const auto test = getU64(payload, "test");
  const auto point = getPoint(payload, "point");
  if (!test || !point) return std::nullopt;
  Assign assign;
  assign.test = *test;
  assign.point = *point;
  return assign;
}

[[nodiscard]] std::optional<Heartbeat> decodeHeartbeat(
    std::string_view payload) {
  const auto busyTest = getU64(payload, "busyTest");
  const auto busyMs = getU64(payload, "busyMs");
  if (!busyTest || !busyMs) return std::nullopt;
  Heartbeat heartbeat;
  heartbeat.busyTest = *busyTest;
  heartbeat.busyMs = *busyMs;
  return heartbeat;
}

}  // namespace avd::campaign::fleet
