// Per-worker outcome shards and their deterministic merge.
//
// Every fleet worker appends each completed outcome — the exact journal
// "done" line bytes — to its own shard file before sending the outcome
// frame to the coordinator. Shards are the recovery channel: if the
// coordinator dies, `avd_cli campaign --resume` merges the shards and
// re-folds every outcome the coordinator's journal lost, so a completed
// scenario is never re-executed.
//
// Shard files are named shard-w<slot>-i<incarnation>.jsonl. The
// incarnation suffix matters: a respawned worker writes a *fresh* file, so
// a predecessor's torn tail (kill -9 mid-append) stays at the end of its
// own file where loadJournal's torn-tail tolerance can drop it. Appending
// to the dead worker's shard would put valid lines after the torn one,
// which reads as corruption.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "campaign/journal.h"

namespace avd::campaign::fleet {

std::string shardPath(const std::string& dir, std::uint64_t slot,
                      std::uint64_t incarnation);

struct MergedShards {
  /// Outcomes keyed by test id. First occurrence (sorted file name order,
  /// line order within a file) wins; duplicates from crash-reassignment
  /// are identical anyway because outcomes are pure functions of points.
  std::map<std::uint64_t, DoneEvent> outcomes;
  /// Next unused incarnation per slot, so a resumed coordinator never
  /// truncates a shard that still holds unmergeed history.
  std::map<std::uint64_t, std::uint64_t> nextIncarnation;
  std::size_t shardFiles = 0;
  std::size_t tornShards = 0;     // shards ending in a dropped torn line
  std::size_t corruptShards = 0;  // unreadable shards, skipped whole
  std::size_t duplicates = 0;     // outcomes for an already-seen test id
};

/// Merges every shard-*.jsonl in `dir`. Deterministic for a given set of
/// files; tolerant of a torn final line per shard; a missing shard is
/// simply absent (its outcomes get re-executed on resume).
[[nodiscard]] MergedShards mergeShards(const std::string& dir);

/// Deletes every shard file in `dir`. Called when a *fresh* campaign
/// truncates the journal: the old shards describe the overwritten
/// campaign, and a later resume must not merge them.
void removeShards(const std::string& dir);

}  // namespace avd::campaign::fleet
