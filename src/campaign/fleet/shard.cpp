#include "campaign/fleet/shard.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <vector>

namespace avd::campaign::fleet {

std::string shardPath(const std::string& dir, std::uint64_t slot,
                      std::uint64_t incarnation) {
  return dir + "/shard-w" + std::to_string(slot) + "-i" +
         std::to_string(incarnation) + ".jsonl";
}

namespace {

/// Parses "shard-w<slot>-i<incarnation>.jsonl"; nullopt for other names.
[[nodiscard]] std::optional<std::pair<std::uint64_t, std::uint64_t>>
parseShardName(const std::string& name) {
  if (name.rfind("shard-w", 0) != 0) return std::nullopt;
  const std::size_t iAt = name.find("-i", 7);
  if (iAt == std::string::npos) return std::nullopt;
  const std::size_t ext = name.rfind(".jsonl");
  if (ext == std::string::npos || ext <= iAt + 2) return std::nullopt;
  const std::string slotStr = name.substr(7, iAt - 7);
  const std::string incStr = name.substr(iAt + 2, ext - iAt - 2);
  char* end = nullptr;
  const std::uint64_t slot = std::strtoull(slotStr.c_str(), &end, 10);
  if (end != slotStr.c_str() + slotStr.size() || slotStr.empty()) {
    return std::nullopt;
  }
  const std::uint64_t inc = std::strtoull(incStr.c_str(), &end, 10);
  if (end != incStr.c_str() + incStr.size() || incStr.empty()) {
    return std::nullopt;
  }
  return std::make_pair(slot, inc);
}

}  // namespace

MergedShards mergeShards(const std::string& dir) {
  MergedShards merged;
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (parseShardName(name)) names.push_back(name);
  }
  // Sorted name order makes the merge independent of directory iteration
  // order, so two resumes over the same files fold identically.
  std::sort(names.begin(), names.end());

  for (const std::string& name : names) {
    const auto ids = parseShardName(name);
    auto& next = merged.nextIncarnation[ids->first];
    next = std::max(next, ids->second + 1);
    const auto loaded = loadJournal(dir + "/" + name);
    if (!loaded) {
      ++merged.corruptShards;
      continue;
    }
    ++merged.shardFiles;
    if (loaded->truncatedTail) ++merged.tornShards;
    for (const JournalEvent& event : loaded->events) {
      if (event.kind != JournalEvent::Kind::kDone) continue;
      const auto [it, inserted] =
          merged.outcomes.emplace(event.done.test, event.done);
      (void)it;
      if (!inserted) ++merged.duplicates;
    }
  }
  return merged;
}

void removeShards(const std::string& dir) {
  std::vector<std::filesystem::path> doomed;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (parseShardName(entry.path().filename().string())) {
      doomed.push_back(entry.path());
    }
  }
  for (const auto& path : doomed) {
    std::filesystem::remove(path, ec);
  }
}

}  // namespace avd::campaign::fleet
