#include "campaign/fleet/worker.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "campaign/fleet/protocol.h"
#include "campaign/fleet/shard.h"
#include "common/framing.h"
#include "common/lockdep.h"
#include "common/proc.h"

namespace avd::campaign::fleet {

namespace {

// Heartbeats and busy-time measurement are operational liveness signals,
// never exploration state: they decide when the coordinator gives up on
// this process, not which scenarios run or what they produce.
// avd-lint: allow(nondeterminism)
using BeatClock = std::chrono::steady_clock;

/// Shared between the executing thread and the heartbeat thread.
struct BusyState {
  lockdep::Mutex mutex{"fleet::worker::BusyState"};
  std::uint64_t busyTest = 0;  // guarded by mutex; 0 = idle
  BeatClock::time_point busySince;  // guarded by mutex
};

}  // namespace

int runWorker(int fd, const WorkerExecutorFactory& makeExecutor,
              const WorkerHooks& hooks) {
  // Hello / welcome handshake, blocking: nothing useful can happen before
  // the coordinator tells this worker who it is.
  if (!util::writeFrame(fd, encodeHello(Hello{}))) {
    util::closeFd(fd);
    return kWorkerExitLostPeer;
  }
  const auto welcomeFrame = util::readFrame(fd);
  if (!welcomeFrame || kindOf(*welcomeFrame) != MessageKind::kWelcome) {
    util::closeFd(fd);
    return kWorkerExitLostPeer;
  }
  const auto welcome = decodeWelcome(*welcomeFrame);
  if (!welcome) {
    util::closeFd(fd);
    return kWorkerExitBadConfig;
  }

  std::unique_ptr<core::ScenarioExecutor> executor;
  try {
    executor = makeExecutor(welcome->system, welcome->seed);
  } catch (...) {
    executor = nullptr;
  }
  if (!executor) {
    util::closeFd(fd);
    return kWorkerExitBadConfig;
  }

  JournalWriter shard;
  if (!welcome->outDir.empty() &&
      !shard.openFresh(
          shardPath(welcome->outDir, welcome->slot, welcome->incarnation))) {
    util::closeFd(fd);
    return kWorkerExitBadConfig;
  }

  // writeFrame is two sends (header, payload); the heartbeat thread and
  // the outcome path must not interleave halves of different frames.
  lockdep::Mutex writeMutex{"fleet::worker::writeMutex"};
  BusyState busy;
  std::atomic<bool> stop{false};

  std::thread beater([&] {
    const auto interval =
        std::chrono::milliseconds(std::max<std::uint64_t>(
            1, welcome->heartbeatMs));
    while (!stop.load(std::memory_order_relaxed)) {
      Heartbeat beat;
      {
        const std::lock_guard<lockdep::Mutex> guard(busy.mutex);
        beat.busyTest = busy.busyTest;
        if (busy.busyTest != 0) {
          beat.busyMs = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  BeatClock::now() - busy.busySince)
                  .count());
        }
      }
      {
        const std::lock_guard<lockdep::Mutex> guard(writeMutex);
        if (!util::writeFrame(fd, encodeHeartbeat(beat))) break;
      }
      std::this_thread::sleep_for(interval);
    }
  });
  const auto finish = [&](int code) {
    stop.store(true, std::memory_order_relaxed);
    beater.join();
    shard.close();
    util::closeFd(fd);
    return code;
  };

  for (;;) {
    const auto frame = util::readFrame(fd);
    if (!frame) return finish(kWorkerExitLostPeer);
    const MessageKind kind = kindOf(*frame);
    if (kind == MessageKind::kShutdown) return finish(kWorkerExitClean);
    if (kind == MessageKind::kUnknown) return finish(kWorkerExitLostPeer);
    if (kind != MessageKind::kAssign) continue;  // tolerate benign extras
    const auto assign = decodeAssign(*frame);
    if (!assign) return finish(kWorkerExitLostPeer);

    {
      const std::lock_guard<lockdep::Mutex> guard(busy.mutex);
      busy.busyTest = assign->test;
      busy.busySince = BeatClock::now();
    }
    DoneEvent done;
    done.test = assign->test;
    try {
      done.outcome = executor->execute(assign->point);
    } catch (const std::exception& e) {
      done.failed = true;
      done.error = e.what();
    } catch (...) {
      done.failed = true;
      done.error = "unknown executor exception";
    }
    {
      const std::lock_guard<lockdep::Mutex> guard(busy.mutex);
      busy.busyTest = 0;
    }

    // Shard-before-frame ordering is the recovery contract: any outcome
    // the coordinator ever folded is also on disk in a shard, so a
    // coordinator kill plus --resume can re-fold it instead of
    // re-executing.
    if (hooks.crashBeforeShardWrite &&
        hooks.crashBeforeShardWrite(assign->test)) {
      return finish(kWorkerExitSimulated);
    }
    if (shard.isOpen() && !shard.append(encodeDone(done))) {
      return finish(kWorkerExitBadConfig);
    }
    if (hooks.crashAfterShardWrite &&
        hooks.crashAfterShardWrite(assign->test)) {
      return finish(kWorkerExitSimulated);
    }
    {
      const std::lock_guard<lockdep::Mutex> guard(writeMutex);
      if (!util::writeFrame(fd, encodeDone(done))) {
        return finish(kWorkerExitLostPeer);
      }
    }
  }
}

}  // namespace avd::campaign::fleet
