// Wire protocol between the fleet coordinator and its workers.
//
// Every message is one framed (common/framing.h) JSON object in the same
// restricted dialect as the campaign journal (campaign/jsonval.h), tagged
// by its "event" key. Outcome messages ARE journal "done" lines verbatim
// (encodeDone/decodeLine): a worker appends the identical bytes to its
// shard before sending the frame, which is what makes shard-merge resume a
// pure re-read of the same data the coordinator saw live.
//
//   worker -> coordinator: hello, heartbeat, done (outcome)
//   coordinator -> worker: welcome, assign, shutdown
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "avd/hyperspace.h"
#include "campaign/journal.h"

namespace avd::campaign::fleet {

inline constexpr std::uint64_t kProtocolVersion = 1;

enum class MessageKind {
  kHello,
  kWelcome,
  kAssign,
  kOutcome,  // a journal "done" line; decode with campaign::decodeLine
  kHeartbeat,
  kShutdown,
  kUnknown,
};

/// Classifies a frame payload by its "event" tag. kUnknown for anything
/// unparseable — the peer is desynchronized or corrupt.
[[nodiscard]] MessageKind kindOf(std::string_view payload);

/// First frame a worker sends after connecting.
struct Hello {
  std::uint64_t version = kProtocolVersion;
};

/// Coordinator's reply to hello: everything the worker needs to build its
/// executor and open its shard. `outDir` empty = in-memory campaign, no
/// shard file.
struct Welcome {
  std::uint64_t slot = 0;
  std::uint64_t incarnation = 0;
  std::string system;
  std::uint64_t seed = 0;
  std::string outDir;
  std::uint64_t heartbeatMs = 200;
};

/// One scenario to execute. The worker needs only the point: outcomes are
/// pure functions of points, which is what makes crash-reassignment safe.
struct Assign {
  std::uint64_t test = 0;
  core::Point point;
};

/// Periodic liveness beacon. `busyTest` is 0 when idle; `busyMs` is how
/// long the current scenario has been executing, so the coordinator can
/// tell a wedged scenario (beating heart, growing busyMs) from a dead
/// process (silence).
struct Heartbeat {
  std::uint64_t busyTest = 0;
  std::uint64_t busyMs = 0;
};

std::string encodeHello(const Hello& hello);
std::string encodeWelcome(const Welcome& welcome);
std::string encodeAssign(const Assign& assign);
std::string encodeHeartbeat(const Heartbeat& heartbeat);
std::string encodeShutdown();

[[nodiscard]] std::optional<Hello> decodeHello(std::string_view payload);
[[nodiscard]] std::optional<Welcome> decodeWelcome(std::string_view payload);
[[nodiscard]] std::optional<Assign> decodeAssign(std::string_view payload);
[[nodiscard]] std::optional<Heartbeat> decodeHeartbeat(
    std::string_view payload);

}  // namespace avd::campaign::fleet
