// Fleet coordinator: the single process that owns the Controller and the
// campaign journal, and farms scenario execution out to worker processes.
//
// Topology: the coordinator spawns `spawn` local workers (fork+exec over a
// Unix socketpair) and optionally listens on loopback TCP for
// `remoteSlots` externally started workers. Workers execute scenarios;
// only the coordinator ever touches the Controller, so Algorithm 1's
// learning loop stays strictly sequential and deterministic.
//
// Determinism contract (what makes the chaos tests exact): the journal's
// gen/done interleave is a pure function of (seed, batch x slots, total).
// "gen" lines are appended greedily whenever fewer than L = batch x slots
// scenarios are generated-but-unfolded; "done" lines are appended strictly
// in test order (out-of-order completions buffer in memory until their
// turn). Worker crashes, wedge kills, reassignment, drain, and
// kill-plus-resume therefore never change the journal bytes — an
// interrupted-and-resumed campaign's journal is byte-identical to an
// uninterrupted same-seed run's.
//
// Failure handling: per-worker heartbeats with deadline detection, pid
// liveness checks, per-slot wedge deadlines (kill the process to recover
// the slot — unlike an in-process thread, a process can always be killed),
// capped-exponential-backoff respawns from a bounded budget, and in-flight
// reassignment (outcomes are pure functions of points). Completed outcomes
// additionally live in per-worker shard files (fleet/shard.h) so that
// killing the *coordinator* loses nothing either: resume() merges shards
// and re-folds instead of re-executing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "campaign/journal.h"
#include "campaign/runner.h"
#include "common/proc.h"

namespace avd::campaign::fleet {

/// Launches worker #slot and returns its pid plus the coordinator's end of
/// the connection. Production: spawnWithSocket of this binary in
/// fleet-worker mode. Tests: a std::thread running runWorker over a
/// socketpair, with pid = -1 (failure detection then rests on EOF and
/// heartbeats alone; "kill" degrades to closing the socket).
using Launcher =
    std::function<std::optional<util::SpawnedProcess>(std::size_t slot)>;

struct FleetOptions {
  /// seed / totalTests / outDir / system / checkpointEvery /
  /// scenarioTimeoutMs / dedupMinImpact / controller are honored;
  /// `workers` is derived as spawn + remoteSlots.
  CampaignOptions campaign;
  /// Locally spawned workers (via `launcher`).
  std::size_t spawn = 2;
  /// Additional slots filled by workers connecting over TCP.
  std::size_t remoteSlots = 0;
  /// IPv4 address (and optional fixed port; 0 = ephemeral) the
  /// remote-worker listener binds. The loopback default is a deliberate
  /// safety posture — the worker protocol is unauthenticated, so exposing
  /// it on a routable interface is an explicit, caller-audited decision
  /// (avd_cli requires --allow-any-bind before it accepts 0.0.0.0).
  std::string bindAddr = "127.0.0.1";
  std::uint16_t bindPort = 0;
  /// Scenarios assigned to one worker at a time; the generation window is
  /// L = batch * (spawn + remoteSlots).
  std::size_t batch = 4;
  std::uint64_t heartbeatMs = 200;
  /// A worker silent for heartbeatMs * this factor is declared dead.
  std::uint64_t heartbeatMissFactor = 25;
  /// Leeway for exec + executor construction before liveness deadlines
  /// apply to a freshly (re)spawned worker; also the window during which
  /// an empty remote slot counts as "progress still possible".
  std::uint64_t spawnGraceMs = 10000;
  /// Process respawn budget across the whole run; 0 = never respawn.
  std::size_t maxWorkerRespawns = 8;
  std::uint64_t respawnBackoffBaseMs = 50;
  std::uint64_t respawnBackoffCapMs = 1000;
  /// After this many wedge kills of the same test, fold a timed-out zero
  /// outcome instead of reassigning it again.
  std::size_t wedgeKillLimit = 2;
  Launcher launcher;
  /// When non-null and set true (e.g. from a SIGTERM handler), the
  /// coordinator drains: stops assigning, keeps generating per the window
  /// invariant (so the journal stays a canonical prefix), and returns once
  /// every already-assigned scenario has folded.
  std::atomic<bool>* drainFlag = nullptr;
};

class FleetCoordinator {
 public:
  /// Binds the TCP listener when remoteSlots > 0 (throws on failure), so
  /// listenPort() is valid before run()/resume() starts.
  FleetCoordinator(FleetOptions options, ExecutorFactory factory,
                   PluginFactory plugins = {});
  ~FleetCoordinator();

  /// Fresh campaign; writes a mode="fleet" manifest when outDir is set.
  CampaignResult run();
  /// Continues a fleet campaign directory: journal replay + shard merge.
  CampaignResult resume();

  /// Loopback port remote workers should connect to; 0 when not listening.
  [[nodiscard]] std::uint16_t listenPort() const;

 private:
  CampaignResult drive(core::Controller& controller,
                       const core::Hyperspace& space, JournalWriter* journal,
                       ReplayState replayed,
                       std::map<std::uint64_t, DoneEvent> preFolded,
                       std::map<std::uint64_t, std::uint64_t> nextIncarnation,
                       Checkpoint carried);

  FleetOptions options_;
  ExecutorFactory factory_;
  PluginFactory plugins_;
  std::optional<util::TcpListener> listener_;
};

}  // namespace avd::campaign::fleet
