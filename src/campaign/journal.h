// Persistent campaign store: an append-only JSONL journal plus a periodic
// checkpoint (see docs/campaign.md).
//
// The journal records the exact interleaving of the controller's two
// batch-asynchronous operations — scenario acquisition ("gen" events) and
// outcome reporting ("done" events). Because the controller is a
// deterministic function of that interleaving (all randomness flows through
// its seeded Rng), replaying the journal against a freshly constructed
// controller reconstructs its complete internal state (Π, Ω, Ψ, µ, plugin
// fitness) without re-executing a single scenario. That is what makes
// `avd_cli campaign --resume` exact: a killed campaign continues precisely
// where the journal ends, and in serial mode the resumed journal is
// byte-identical to the journal of an uninterrupted run.
//
// Formats are deliberately fixed-key, one-object-per-line JSON written with
// %.17g doubles, so (a) two runs of the same seed produce byte-identical
// files and (b) every double round-trips bit-exactly through the text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "avd/controller.h"

namespace avd::campaign {

/// "gen": the controller handed out scenario number `test` (1-based, in
/// acquisition order) for execution.
struct GenEvent {
  std::uint64_t test = 0;
  core::Point point;
  std::string generatedBy;
  double parentImpact = 0.0;
  std::int64_t pluginIndex = -1;
};

/// "done": scenario number `test` finished (or was declared failed / timed
/// out by the campaign watchdog) and its outcome was reported back.
struct DoneEvent {
  std::uint64_t test = 0;
  core::Outcome outcome;
  double bestImpact = 0.0;  // µ after this report
  bool failed = false;      // executor threw; outcome is the zero outcome
  bool timedOut = false;    // watchdog gave up; outcome is the zero outcome
  std::string error;        // short reason when failed/timedOut
};

struct JournalEvent {
  enum class Kind { kGen, kDone };
  Kind kind = Kind::kGen;
  GenEvent gen;    // valid when kind == kGen
  DoneEvent done;  // valid when kind == kDone
};

/// One line of JSONL, without the trailing newline. Deterministic: fixed
/// key order, %.17g doubles.
std::string encodeGen(const GenEvent& event);
std::string encodeDone(const DoneEvent& event);

/// Parses one journal line. nullopt on any malformation (the caller decides
/// whether that is a torn tail or corruption).
[[nodiscard]] std::optional<JournalEvent> decodeLine(std::string_view line);

struct LoadedJournal {
  std::vector<JournalEvent> events;
  /// File offset one past the final byte of the last well-formed line; a
  /// resuming writer truncates to this before appending.
  std::uint64_t validBytes = 0;
  /// True when a torn/partial final line was dropped (the kill -9 case).
  bool truncatedTail = false;
};

/// Reads a journal, tolerating a torn final line. nullopt when the file is
/// unreadable or malformed before its final line (real corruption).
[[nodiscard]] std::optional<LoadedJournal> loadJournal(
    const std::string& path);

/// Append-only line writer over a raw descriptor: each line goes to the
/// kernel in one write() (a kill -9 leaves at most one torn line, which
/// loadJournal drops as the tail), and sync() makes everything appended so
/// far survive power loss. Callers fsync at checkpoint cadence rather than
/// per line — the journal's replay semantics tolerate losing un-synced
/// suffix lines, they just cost re-execution.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates/truncates `path`.
  [[nodiscard]] bool openFresh(const std::string& path);
  /// Truncates `path` to `keepBytes` (dropping a torn tail) and appends.
  [[nodiscard]] bool openResume(const std::string& path,
                                std::uint64_t keepBytes);
  [[nodiscard]] bool append(const std::string& line);
  /// fsync. Called at checkpoint cadence by the runner/coordinator.
  bool sync();
  /// Closes the descriptor. Returns false for a close-on-write-error — a
  /// prior append()/sync() failure was latched, or the close itself
  /// reports one — meaning the journal tail may not have reached the
  /// kernel; true is a normal close. Callers that already reacted to the
  /// append failure can ignore the result.
  bool close();
  bool isOpen() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  bool writeFailed_ = false;  // latched by a failed append()/sync()
};

/// Immutable campaign configuration, written once at campaign start.
/// The fleet fields (`mode`, `batch`, `spawn`, `heartbeatMs`) default on
/// load when absent, so pre-fleet campaign directories stay resumable.
struct Manifest {
  std::uint64_t version = 1;
  std::string system;  // executor label, e.g. "quorum"; free-form
  std::uint64_t seed = 0;
  std::uint64_t totalTests = 0;
  std::uint64_t workers = 1;
  std::uint64_t checkpointEvery = 16;
  std::uint64_t scenarioTimeoutMs = 0;
  std::string mode = "process";     // "process" (in-process runner) | "fleet"
  std::uint64_t batch = 4;          // fleet: scenarios per assignment batch
  std::uint64_t spawn = 0;          // fleet: workers the coordinator spawns
  std::uint64_t heartbeatMs = 200;  // fleet: worker heartbeat interval
};

/// Monotonic campaign progress, refreshed every `checkpointEvery` reports.
/// Written atomically (tmp + rename) so a crash never leaves a torn file.
/// The journal stays the source of truth; the checkpoint exists so humans
/// and orchestrators can poll progress without parsing the journal.
struct Checkpoint {
  std::uint64_t generated = 0;  // scenarios acquired ("gen" events)
  std::uint64_t completed = 0;  // scenarios reported ("done" events)
  double maxImpact = 0.0;       // µ
  // Robustness counters (zero for a healthy run; absent pre-fleet).
  std::uint64_t respawns = 0;       // worker slots revived after crash/wedge
  std::uint64_t reassigned = 0;     // scenarios re-executed on another worker
  std::uint64_t workerCrashes = 0;  // worker deaths observed
};

bool writeManifest(const std::string& dir, const Manifest& manifest);
[[nodiscard]] std::optional<Manifest> loadManifest(const std::string& dir);
bool writeCheckpoint(const std::string& dir, const Checkpoint& checkpoint);
[[nodiscard]] std::optional<Checkpoint> loadCheckpoint(const std::string& dir);

/// Conventional file names inside a campaign directory.
std::string journalPath(const std::string& dir);
std::string manifestPath(const std::string& dir);
std::string checkpointPath(const std::string& dir);

}  // namespace avd::campaign
