#include "campaign/dedup.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace avd::campaign {

namespace {

int impactBandOf(double impact) {
  const int band = static_cast<int>(std::floor(impact * 10.0));
  return std::clamp(band, 0, 10);
}

int viewChangeBandOf(std::uint64_t viewChanges) {
  if (viewChanges == 0) return 0;
  if (viewChanges <= 3) return 1;
  if (viewChanges <= 10) return 2;
  return 3;
}

int restartBandOf(std::uint64_t restarts) {
  if (restarts == 0) return 0;
  if (restarts <= 2) return 1;
  if (restarts <= 8) return 2;
  return 3;
}

int resourceBandOf(std::uint64_t drops) {
  if (drops == 0) return 0;
  if (drops <= 100) return 1;
  if (drops <= 10000) return 2;
  return 3;
}

void appendDouble(std::string& out, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out += buffer;
}

}  // namespace

VulnSignature signatureOf(const core::Hyperspace& space,
                          const core::TestRecord& record) {
  VulnSignature signature;
  signature.impactBand = impactBandOf(record.outcome.impact);
  signature.viewChangeBand = viewChangeBandOf(record.outcome.viewChanges);
  signature.restartBand = restartBandOf(record.outcome.restarts);
  signature.resourceBand =
      resourceBandOf(record.outcome.queueDrops + record.outcome.quotaDrops);
  signature.safetyViolated = record.outcome.safetyViolated;
  signature.activeDims.reserve(space.dimensionCount());
  for (std::size_t d = 0; d < space.dimensionCount(); ++d) {
    const core::Dimension& dimension = space.dimension(d);
    const bool active = dimension.value(record.point[d]) != dimension.value(0);
    signature.activeDims.push_back(active ? 1 : 0);
  }
  return signature;
}

std::string signatureLabel(const core::Hyperspace& space,
                           const VulnSignature& signature) {
  std::string out = "impact ";
  if (signature.impactBand >= 10) {
    out += "1.0";
  } else {
    out += "0." + std::to_string(signature.impactBand) + "-";
    out += signature.impactBand == 9
               ? "1.0"
               : "0." + std::to_string(signature.impactBand + 1);
  }
  static const char* kViewBands[] = {"none", "1-3", "4-10", ">10"};
  out += ", view changes ";
  out += kViewBands[std::clamp(signature.viewChangeBand, 0, 3)];
  if (signature.restartBand > 0) {
    static const char* kRestartBands[] = {"none", "1-2", "3-8", ">8"};
    out += ", restarts ";
    out += kRestartBands[std::clamp(signature.restartBand, 0, 3)];
  }
  if (signature.resourceBand > 0) {
    static const char* kResourceBands[] = {"none", "1-100", "101-10k", ">10k"};
    out += ", resource drops ";
    out += kResourceBands[std::clamp(signature.resourceBand, 0, 3)];
  }
  if (signature.safetyViolated) out += ", SAFETY VIOLATED";
  out += ", dims {";
  bool first = true;
  for (std::size_t d = 0; d < signature.activeDims.size(); ++d) {
    if (!signature.activeDims[d]) continue;
    if (!first) out += ", ";
    first = false;
    out += d < space.dimensionCount() ? space.dimension(d).name()
                                      : "dim" + std::to_string(d);
  }
  out += "}";
  return out;
}

std::vector<VulnClass> dedupVulnerabilities(
    const core::Hyperspace& space,
    const std::vector<core::TestRecord>& history, double minImpact) {
  std::map<VulnSignature, VulnClass> classes;
  for (std::size_t i = 0; i < history.size(); ++i) {
    const core::TestRecord& record = history[i];
    if (record.outcome.impact < minImpact) continue;
    const VulnSignature signature = signatureOf(space, record);
    auto [it, inserted] = classes.try_emplace(signature);
    VulnClass& cls = it->second;
    if (inserted) {
      cls.signature = signature;
      cls.exemplarTest = i + 1;
      cls.exemplar = record;
    } else if (record.outcome.impact > cls.exemplar.outcome.impact) {
      cls.exemplarTest = i + 1;
      cls.exemplar = record;
    }
    ++cls.count;
  }

  std::vector<VulnClass> out;
  out.reserve(classes.size());
  for (auto& [signature, cls] : classes) out.push_back(std::move(cls));
  std::sort(out.begin(), out.end(), [](const VulnClass& a, const VulnClass& b) {
    if (a.exemplar.outcome.impact != b.exemplar.outcome.impact) {
      return a.exemplar.outcome.impact > b.exemplar.outcome.impact;
    }
    return a.signature < b.signature;
  });
  return out;
}

std::string vulnClassesJson(const core::Hyperspace& space,
                            const std::vector<VulnClass>& classes) {
  std::string out = "[";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const VulnClass& cls = classes[i];
    if (i != 0) out += ",";
    out += "\n  {\"label\": \"" + signatureLabel(space, cls.signature) +
           "\", \"count\": " + std::to_string(cls.count) +
           ", \"exemplarTest\": " + std::to_string(cls.exemplarTest) +
           ", \"impact\": ";
    appendDouble(out, cls.exemplar.outcome.impact);
    out += ", \"restarts\": " + std::to_string(cls.exemplar.outcome.restarts) +
           ", \"recoveryLatencySec\": ";
    appendDouble(out, cls.exemplar.outcome.recoveryLatencySec);
    out += ", \"queueDrops\": " +
           std::to_string(cls.exemplar.outcome.queueDrops) +
           ", \"quotaDrops\": " +
           std::to_string(cls.exemplar.outcome.quotaDrops);
    out += ", \"point\": {";
    for (std::size_t d = 0; d < space.dimensionCount(); ++d) {
      if (d != 0) out += ", ";
      out += "\"" + space.dimension(d).name() + "\": " +
             std::to_string(space.dimension(d).value(cls.exemplar.point[d]));
    }
    out += "}}";
  }
  out += classes.empty() ? "]" : "\n]";
  out += "\n";
  return out;
}

}  // namespace avd::campaign
