#include "campaign/dedup.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "avd/gen/protocol_events.h"

namespace avd::campaign {

namespace {

int impactBandOf(double impact) {
  const int band = static_cast<int>(std::floor(impact * 10.0));
  return std::clamp(band, 0, 10);
}

void appendDouble(std::string& out, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out += buffer;
}

void appendBand(std::string& out, const gen::OutcomeBand& band, int index) {
  out += ", ";
  out += band.dedupLabel;
  out += " ";
  out += band.bandNames[static_cast<std::size_t>(std::clamp(index, 0, 3))];
}

}  // namespace

VulnSignature signatureOf(const core::Hyperspace& space,
                          const core::TestRecord& record) {
  VulnSignature signature;
  signature.impactBand = impactBandOf(record.outcome.impact);
  signature.viewChangeBand =
      gen::bandOf(gen::kViewChangeBand, record.outcome.viewChanges);
  signature.restartBand = gen::bandOf(gen::kRestartBand, record.outcome.restarts);
  signature.resourceBand = gen::bandOf(
      gen::kResourceBand, record.outcome.queueDrops + record.outcome.quotaDrops);
  signature.safetyViolated = record.outcome.safetyViolated;
  signature.activeDims.reserve(space.dimensionCount());
  for (std::size_t d = 0; d < space.dimensionCount(); ++d) {
    const core::Dimension& dimension = space.dimension(d);
    const bool active = dimension.value(record.point[d]) != dimension.value(0);
    signature.activeDims.push_back(active ? 1 : 0);
  }
  return signature;
}

std::string signatureLabel(const core::Hyperspace& space,
                           const VulnSignature& signature) {
  std::string out;
  // Safety leads: a correctness break outranks any liveness/perf band.
  if (signature.safetyViolated) {
    out += gen::kSafetyLabel;
    out += ", ";
  }
  out += "impact ";
  if (signature.impactBand >= 10) {
    out += "1.0";
  } else {
    out += "0." + std::to_string(signature.impactBand) + "-";
    out += signature.impactBand == 9
               ? "1.0"
               : "0." + std::to_string(signature.impactBand + 1);
  }
  appendBand(out, gen::kViewChangeBand, signature.viewChangeBand);
  if (signature.restartBand > 0) {
    appendBand(out, gen::kRestartBand, signature.restartBand);
  }
  if (signature.resourceBand > 0) {
    appendBand(out, gen::kResourceBand, signature.resourceBand);
  }
  out += ", dims {";
  bool first = true;
  for (std::size_t d = 0; d < signature.activeDims.size(); ++d) {
    if (!signature.activeDims[d]) continue;
    if (!first) out += ", ";
    first = false;
    out += d < space.dimensionCount() ? space.dimension(d).name()
                                      : "dim" + std::to_string(d);
  }
  out += "}";
  return out;
}

std::vector<VulnClass> dedupVulnerabilities(
    const core::Hyperspace& space,
    const std::vector<core::TestRecord>& history, double minImpact) {
  std::map<VulnSignature, VulnClass> classes;
  for (std::size_t i = 0; i < history.size(); ++i) {
    const core::TestRecord& record = history[i];
    if (record.outcome.impact < minImpact) continue;
    const VulnSignature signature = signatureOf(space, record);
    auto [it, inserted] = classes.try_emplace(signature);
    VulnClass& cls = it->second;
    if (inserted) {
      cls.signature = signature;
      cls.exemplarTest = i + 1;
      cls.exemplar = record;
    } else if (record.outcome.impact > cls.exemplar.outcome.impact) {
      cls.exemplarTest = i + 1;
      cls.exemplar = record;
    }
    ++cls.count;
  }

  std::vector<VulnClass> out;
  out.reserve(classes.size());
  for (auto& [signature, cls] : classes) out.push_back(std::move(cls));
  std::sort(out.begin(), out.end(), [](const VulnClass& a, const VulnClass& b) {
    // Safety-violation classes lead the report regardless of impact: a
    // correctness break is the headline finding of any campaign.
    if (a.signature.safetyViolated != b.signature.safetyViolated) {
      return a.signature.safetyViolated;
    }
    if (a.exemplar.outcome.impact != b.exemplar.outcome.impact) {
      return a.exemplar.outcome.impact > b.exemplar.outcome.impact;
    }
    return a.signature < b.signature;
  });
  return out;
}

std::string vulnClassesJson(const core::Hyperspace& space,
                            const std::vector<VulnClass>& classes) {
  const std::string restartsKey(gen::kJournalKeyRestarts);
  const std::string recoveryKey(gen::kJournalKeyRecoveryLatencySec);
  const std::string queueDropsKey(gen::kJournalKeyQueueDrops);
  const std::string quotaDropsKey(gen::kJournalKeyQuotaDrops);
  std::string out = "[";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const VulnClass& cls = classes[i];
    if (i != 0) out += ",";
    out += "\n  {\"label\": \"" + signatureLabel(space, cls.signature) +
           "\", \"count\": " + std::to_string(cls.count) +
           ", \"exemplarTest\": " + std::to_string(cls.exemplarTest) +
           ", \"impact\": ";
    appendDouble(out, cls.exemplar.outcome.impact);
    out += ", \"" + restartsKey +
           "\": " + std::to_string(cls.exemplar.outcome.restarts) + ", \"" +
           recoveryKey + "\": ";
    appendDouble(out, cls.exemplar.outcome.recoveryLatencySec);
    out += ", \"" + queueDropsKey +
           "\": " + std::to_string(cls.exemplar.outcome.queueDrops) + ", \"" +
           quotaDropsKey +
           "\": " + std::to_string(cls.exemplar.outcome.quotaDrops);
    // Witness only for safety classes, so non-safety reports keep the
    // pre-twins byte format. The format (pbft::formatSafetyWitness) uses
    // no quotes or backslashes, so plain quoting is JSON-safe.
    if (!cls.exemplar.outcome.safetyWitness.empty()) {
      out += ", \"" + std::string(gen::kJournalKeySafetyWitness) + "\": \"" +
             cls.exemplar.outcome.safetyWitness + "\"";
    }
    out += ", \"point\": {";
    for (std::size_t d = 0; d < space.dimensionCount(); ++d) {
      if (d != 0) out += ", ";
      out += "\"" + space.dimension(d).name() + "\": " +
             std::to_string(space.dimension(d).value(cls.exemplar.point[d]));
    }
    out += "}}";
  }
  out += classes.empty() ? "]" : "\n]";
  out += "\n";
  return out;
}

}  // namespace avd::campaign
