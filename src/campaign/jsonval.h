// Shared helpers for the campaign's fixed-schema JSON lines.
//
// The journal (journal.cpp) and the fleet wire protocol
// (fleet/protocol.cpp) write the same deliberately restricted JSON shape:
// one object per line, fixed key order, %.17g doubles, keys matched on
// decode as the literal byte pattern `"key":`. Quotes inside string
// *values* are always written escaped (`\"`), so the pattern can only match
// at a real key. Keeping encoder and extractor in one header keeps the two
// formats byte-compatible by construction.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "avd/hyperspace.h"

namespace avd::campaign::jsonl {

/// %.17g survives a text round trip bit-exactly for every finite double, so
/// a replayed journal reconstructs µ and the plugin gain sums to the bit.
inline void appendDouble(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

inline void appendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out += '"';
}

inline void appendKey(std::string& out, std::string_view key) {
  out += '"';
  out += key;
  out += "\":";
}

inline void appendBool(std::string& out, bool value) {
  out += value ? "true" : "false";
}

inline std::size_t findKey(std::string_view line, std::string_view key) {
  std::string pattern;
  pattern.reserve(key.size() + 3);
  pattern += '"';
  pattern += key;
  pattern += "\":";
  const std::size_t at = line.find(pattern);
  return at == std::string_view::npos ? std::string_view::npos
                                      : at + pattern.size();
}

[[nodiscard]] inline std::optional<double> getDouble(std::string_view line,
                                                     std::string_view key) {
  const std::size_t at = findKey(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  const std::string value(line.substr(at, 64));
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str()) return std::nullopt;
  return parsed;
}

[[nodiscard]] inline std::optional<std::uint64_t> getU64(
    std::string_view line, std::string_view key) {
  const std::size_t at = findKey(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  const std::string value(line.substr(at, 32));
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str()) return std::nullopt;
  return parsed;
}

[[nodiscard]] inline std::optional<std::int64_t> getI64(
    std::string_view line, std::string_view key) {
  const std::size_t at = findKey(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  const std::string value(line.substr(at, 32));
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str()) return std::nullopt;
  return parsed;
}

[[nodiscard]] inline std::optional<bool> getBool(std::string_view line,
                                                 std::string_view key) {
  const std::size_t at = findKey(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  if (line.substr(at, 4) == "true") return true;
  if (line.substr(at, 5) == "false") return false;
  return std::nullopt;
}

[[nodiscard]] inline std::optional<std::string> getString(
    std::string_view line, std::string_view key) {
  std::size_t at = findKey(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '"') {
    return std::nullopt;
  }
  ++at;
  std::string out;
  while (at < line.size() && line[at] != '"') {
    char c = line[at];
    if (c == '\\' && at + 1 < line.size()) {
      const char next = line[at + 1];
      at += 2;
      switch (next) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'u': {
          if (at + 4 > line.size()) return std::nullopt;
          const std::string hex(line.substr(at, 4));
          at += 4;
          c = static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default: return std::nullopt;
      }
      out.push_back(c);
      continue;
    }
    out.push_back(c);
    ++at;
  }
  if (at >= line.size()) return std::nullopt;  // unterminated string
  return out;
}

[[nodiscard]] inline std::optional<core::Point> getPoint(
    std::string_view line, std::string_view key) {
  std::size_t at = findKey(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '[') {
    return std::nullopt;
  }
  ++at;
  core::Point point;
  while (at < line.size() && line[at] != ']') {
    const std::string value(line.substr(at, 32));
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str()) return std::nullopt;
    point.push_back(parsed);
    at += static_cast<std::size_t>(end - value.c_str());
    if (at < line.size() && line[at] == ',') ++at;
  }
  if (at >= line.size()) return std::nullopt;  // unterminated array
  return point;
}

}  // namespace avd::campaign::jsonl
