// Campaign engine: AVD exploration as a resumable, parallel, long-lived
// campaign (docs/campaign.md).
//
// The paper's controller explores one scenario at a time; each scenario
// re-initializes a full deployment, so test *execution* is embarrassingly
// parallel while test *generation* is a cheap sequential learning step. The
// runner exploits exactly that split: one Controller drives Algorithm 1
// through its batch-asynchronous acquire/report interface, while up to W
// ScenarioExecutor instances — one per worker, each owning its own fresh
// deployments, no shared mutable state — execute acquired scenarios on a
// thread pool. Outcomes are folded back into the controller in completion
// order.
//
// Reliability properties:
//  * every acquire and report is journaled (campaign/journal.h), so a
//    killed campaign resumes exactly where it stopped;
//  * a worker that throws produces a failed zero-impact outcome, not a dead
//    campaign;
//  * an optional watchdog declares scenarios that exceed a wall-clock
//    budget timed out and retires their worker slot, so one wedged scenario
//    cannot stall the whole campaign (a campaign whose every worker wedges
//    aborts with partial results).
//
// With workers == 1 and no watchdog the runner executes inline on the
// calling thread in acquire -> execute -> report order, which makes a
// serial campaign bit-identical to Controller::runTests for the same seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "avd/controller.h"
#include "avd/executor.h"
#include "campaign/dedup.h"
#include "campaign/journal.h"

namespace avd::campaign {

/// Builds one executor instance. Called once per worker; each instance is
/// owned by exactly one worker thread at a time. Instances must be
/// behaviorally identical (same options/seeds) so an outcome is a pure
/// function of the point regardless of which worker runs it.
using ExecutorFactory =
    std::function<std::unique_ptr<core::ScenarioExecutor>()>;

/// Optional plugin-set override; defaults to core::defaultPlugins.
using PluginFactory =
    std::function<std::vector<core::PluginPtr>(const core::Hyperspace&)>;

struct CampaignOptions {
  std::uint64_t seed = 2011;
  std::size_t totalTests = 100;
  /// Executor-pool width W. 1 = serial (bit-identical to runTests).
  std::size_t workers = 1;
  /// Campaign directory for journal/manifest/checkpoint; empty = in-memory.
  std::string outDir;
  /// Free-form executor label recorded in the manifest (e.g. "quorum") so a
  /// resuming process knows which factory to rebuild.
  std::string system = "custom";
  /// Checkpoint refresh cadence, in completed scenarios.
  std::size_t checkpointEvery = 16;
  /// Per-scenario wall-clock budget; 0 disables the watchdog.
  std::uint64_t scenarioTimeoutMs = 0;
  /// Watchdog-retired worker slots are revived with a fresh executor after
  /// a capped-exponential backoff, up to this many times per campaign;
  /// after that, wedged slots stay retired (and a campaign whose every
  /// slot is retired still aborts). 0 restores the old poison-forever
  /// behavior.
  std::size_t maxWorkerRespawns = 4;
  /// Minimum impact for a scenario to enter vulnerability triage.
  double dedupMinImpact = 0.5;
  core::ControllerOptions controller;
};

struct CampaignResult {
  /// Completion-order history (the controller's view).
  std::vector<core::TestRecord> history;
  double maxImpact = 0.0;
  std::size_t executed = 0;
  std::size_t failed = 0;    // executor threw
  std::size_t timedOut = 0;  // watchdog retired the scenario
  /// True when every worker slot wedged and the campaign gave up early;
  /// history holds the completed prefix.
  bool aborted = false;
  /// Worker slots revived after a crash or wedge (in-process respawns plus
  /// fleet process respawns).
  std::size_t respawns = 0;
  /// Scenarios re-executed on another worker after their original worker
  /// died mid-batch (fleet only; outcomes are pure functions of points, so
  /// re-execution is safe).
  std::size_t reassigned = 0;
  /// Worker process deaths observed by the fleet coordinator.
  std::size_t workerCrashes = 0;
  /// Deduplicated vulnerability classes (impact >= dedupMinImpact).
  std::vector<VulnClass> classes;
};

/// Controller state reconstructed by replaying a journal (no re-execution).
struct ReplayState {
  /// Scenarios with a journaled "gen" but no "done" — in flight at the
  /// kill; the resuming driver re-executes them first.
  std::map<std::uint64_t, core::GeneratedScenario> pending;
  std::uint64_t nextTest = 1;  // next un-generated 1-based test number
  std::size_t replayedFailed = 0;
  std::size_t replayedTimedOut = 0;
};

/// Feeds journaled events through `controller` in recorded order, verifying
/// each regenerated scenario and folded best-impact against the journal.
/// Shared by CampaignRunner::resume and the fleet coordinator. Throws
/// std::runtime_error on divergence (wrong seed, edited journal, changed
/// hyperspace).
ReplayState replayJournal(core::Controller& controller,
                          const std::vector<JournalEvent>& events);

class CampaignRunner {
 public:
  CampaignRunner(ExecutorFactory factory, CampaignOptions options,
                 PluginFactory plugins = {});

  /// Fresh campaign. Creates/truncates the campaign directory files when
  /// options.outDir is set. Throws std::runtime_error on I/O failure.
  CampaignResult run();

  /// Continues the campaign stored in options.outDir: replays the journal
  /// against a fresh controller (no re-execution), re-executes scenarios
  /// that were in flight at the kill, then keeps exploring to the
  /// manifest's totalTests. The manifest's seed/workers/budget override the
  /// constructor options. Throws std::runtime_error when the directory is
  /// missing, corrupt, or diverges from deterministic replay.
  CampaignResult resume();

 private:
  CampaignResult drive(core::Controller& controller,
                       std::vector<std::unique_ptr<core::ScenarioExecutor>>&
                           executors,
                       JournalWriter* journal,
                       std::map<std::uint64_t, core::GeneratedScenario>
                           pendingReplay,
                       std::uint64_t nextTest, std::size_t replayedFailed,
                       std::size_t replayedTimedOut);

  std::vector<std::unique_ptr<core::ScenarioExecutor>> makeExecutors() const;

  ExecutorFactory factory_;
  CampaignOptions options_;
  PluginFactory plugins_;
};

}  // namespace avd::campaign
