// Vulnerability dedup/triage for campaign results.
//
// A long campaign rediscovers the same attack hundreds of times through
// slightly different points (a different client count, a neighbouring Gray
// index). Re-reporting each as a separate finding buries the signal, so
// high-impact scenarios are clustered by *behavioral signature* — what the
// attack did to the correct nodes and which fault dimensions were active —
// into distinct vulnerability classes, each represented by its
// highest-impact exemplar (the Twins-style "distinct failure scenario"
// view of a fuzzing corpus).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "avd/controller.h"
#include "avd/hyperspace.h"

namespace avd::campaign {

/// The behavioral fingerprint of one executed scenario. Two scenarios with
/// equal signatures are treated as the same vulnerability class.
struct VulnSignature {
  /// floor(impact * 10) clamped to [0, 10]: 0.82 and 0.86 are the same
  /// attack strength, 0.3 and 0.9 are not.
  int impactBand = 0;
  /// 0: no view changes, 1: 1-3 (a recovery), 2: 4-10 (thrashing),
  /// 3: >10 (view-change storm).
  int viewChangeBand = 0;
  /// 0: no restarts, 1: 1-2 (a crash or two), 2: 3-8 (sustained churn),
  /// 3: >8 (crash-loop). Splits churn-found classes from pure message-level
  /// attacks with the same impact profile.
  int restartBand = 0;
  /// Over queueDrops + quotaDrops: 0: none, 1: 1-100 (pressure), 2: 101-10k
  /// (sustained overload), 3: >10k (outright flood). Splits
  /// resource-exhaustion classes from timing attacks with the same impact.
  int resourceBand = 0;
  bool safetyViolated = false;
  /// Per hyperspace dimension: 1 when the scenario's concrete value differs
  /// from the dimension's index-0 (baseline/off) value — i.e. this fault
  /// dimension participated in the attack.
  std::vector<std::uint8_t> activeDims;

  auto operator<=>(const VulnSignature&) const = default;
};

VulnSignature signatureOf(const core::Hyperspace& space,
                          const core::TestRecord& record);

/// Human-readable one-liner, e.g.
/// "impact 0.8-0.9, view changes 1-3, dims {mac_mask, correct_clients}".
std::string signatureLabel(const core::Hyperspace& space,
                           const VulnSignature& signature);

struct VulnClass {
  VulnSignature signature;
  std::size_t count = 0;         // scenarios in this class
  std::size_t exemplarTest = 0;  // 1-based history index of the exemplar
  core::TestRecord exemplar;     // highest-impact member (earliest on ties)
};

/// Clusters every history record with impact >= minImpact. Returns classes
/// sorted by exemplar impact descending (ties: signature order), so the
/// triage report is deterministic.
std::vector<VulnClass> dedupVulnerabilities(
    const core::Hyperspace& space,
    const std::vector<core::TestRecord>& history, double minImpact = 0.5);

/// JSON array of classes (signature, count, exemplar point by dimension
/// name, exemplar outcome) for machine-readable triage reports.
std::string vulnClassesJson(const core::Hyperspace& space,
                            const std::vector<VulnClass>& classes);

}  // namespace avd::campaign
