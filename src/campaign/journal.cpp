#include "campaign/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "avd/gen/protocol_events.h"
#include "campaign/jsonval.h"

namespace avd::campaign {

namespace {

using namespace jsonl;

/// fsyncs the directory that contains `path`, making a completed rename
/// inside it durable. Until the directory's entry array is on disk the
/// rename exists only in the page cache: the file's bytes are durable but
/// the name pointing at them is not, and a power loss can roll the
/// directory back to the old entry — or to neither.
bool fsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool synced = ::fsync(fd) == 0;
  const bool closed = ::close(fd) == 0;
  return synced && closed;
}

/// Writes contents to `path` durably: temp file, fsync, atomic rename,
/// parent-directory fsync. A crash at any instant leaves either the old
/// file or the new file — never a torn mix — and a true return means the
/// new name and its bytes both survive power loss. Every failure path
/// unlinks the temp file so a retry never inherits a stale `.tmp`.
bool writeFileAtomicDurable(const std::string& path,
                            const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  const char* at = contents.data();
  std::size_t left = contents.size();
  bool wroteAll = true;
  while (left > 0) {
    const ssize_t wrote = ::write(fd, at, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      wroteAll = false;
      break;
    }
    at += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  const bool synced = wroteAll && ::fsync(fd) == 0;
  // close() can surface a deferred write error; on the durable path an
  // unclean close means the bytes' fate is unknown, which is a failure.
  const bool closed = ::close(fd) == 0;
  if (!synced || !closed) {
    ::unlink(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return false;
  }
  return fsyncParentDir(path);
}

[[nodiscard]] std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

}  // namespace

// --- events -----------------------------------------------------------------

std::string encodeGen(const GenEvent& event) {
  std::string out = "{\"event\":\"gen\",";
  appendKey(out, "test");
  out += std::to_string(event.test);
  out += ',';
  appendKey(out, "point");
  out += '[';
  for (std::size_t i = 0; i < event.point.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(event.point[i]);
  }
  out += "],";
  appendKey(out, "generatedBy");
  appendEscaped(out, event.generatedBy);
  out += ',';
  appendKey(out, "parentImpact");
  appendDouble(out, event.parentImpact);
  out += ',';
  appendKey(out, "pluginIndex");
  out += std::to_string(event.pluginIndex);
  out += '}';
  return out;
}

std::string encodeDone(const DoneEvent& event) {
  std::string out = "{\"event\":\"done\",";
  appendKey(out, "test");
  out += std::to_string(event.test);
  out += ',';
  appendKey(out, "impact");
  appendDouble(out, event.outcome.impact);
  out += ',';
  appendKey(out, "bestImpact");
  appendDouble(out, event.bestImpact);
  out += ',';
  appendKey(out, "throughputRps");
  appendDouble(out, event.outcome.throughputRps);
  out += ',';
  appendKey(out, "avgLatencySec");
  appendDouble(out, event.outcome.avgLatencySec);
  out += ',';
  appendKey(out, gen::kJournalKeyViewChanges);
  out += std::to_string(event.outcome.viewChanges);
  out += ',';
  appendKey(out, gen::kJournalKeyRestarts);
  out += std::to_string(event.outcome.restarts);
  out += ',';
  appendKey(out, gen::kJournalKeyRecoveryLatencySec);
  appendDouble(out, event.outcome.recoveryLatencySec);
  out += ',';
  appendKey(out, gen::kJournalKeyQueueDrops);
  out += std::to_string(event.outcome.queueDrops);
  out += ',';
  appendKey(out, gen::kJournalKeyQuotaDrops);
  out += std::to_string(event.outcome.quotaDrops);
  out += ',';
  appendKey(out, "safetyViolated");
  appendBool(out, event.outcome.safetyViolated);
  out += ',';
  // Only emitted when set: every line without a witness keeps the exact
  // pre-twins byte format, so resumed pre-twins journals re-encode
  // byte-identically.
  if (!event.outcome.safetyWitness.empty()) {
    appendKey(out, gen::kJournalKeySafetyWitness);
    appendEscaped(out, event.outcome.safetyWitness);
    out += ',';
  }
  appendKey(out, "failed");
  appendBool(out, event.failed);
  out += ',';
  appendKey(out, "timedOut");
  appendBool(out, event.timedOut);
  out += ',';
  appendKey(out, "error");
  appendEscaped(out, event.error);
  out += '}';
  return out;
}

[[nodiscard]] std::optional<JournalEvent> decodeLine(std::string_view line) {
  const auto event = getString(line, "event");
  if (!event) return std::nullopt;

  if (*event == "gen") {
    GenEvent gen;
    const auto test = getU64(line, "test");
    const auto point = getPoint(line, "point");
    const auto generatedBy = getString(line, "generatedBy");
    const auto parentImpact = getDouble(line, "parentImpact");
    const auto pluginIndex = getI64(line, "pluginIndex");
    if (!test || !point || !generatedBy || !parentImpact || !pluginIndex) {
      return std::nullopt;
    }
    gen.test = *test;
    gen.point = *point;
    gen.generatedBy = *generatedBy;
    gen.parentImpact = *parentImpact;
    gen.pluginIndex = *pluginIndex;
    JournalEvent out;
    out.kind = JournalEvent::Kind::kGen;
    out.gen = std::move(gen);
    return out;
  }

  if (*event == "done") {
    DoneEvent done;
    const auto test = getU64(line, "test");
    const auto impact = getDouble(line, "impact");
    const auto bestImpact = getDouble(line, "bestImpact");
    const auto throughputRps = getDouble(line, "throughputRps");
    const auto avgLatencySec = getDouble(line, "avgLatencySec");
    const auto viewChanges = getU64(line, gen::kJournalKeyViewChanges);
    // Absent in journals written before churn support; default to zero so
    // those campaigns remain resumable.
    const auto restarts = getU64(line, gen::kJournalKeyRestarts);
    const auto recoveryLatencySec =
        getDouble(line, gen::kJournalKeyRecoveryLatencySec);
    // Absent in journals written before flood support; same treatment.
    const auto queueDrops = getU64(line, gen::kJournalKeyQueueDrops);
    const auto quotaDrops = getU64(line, gen::kJournalKeyQuotaDrops);
    const auto safetyViolated = getBool(line, "safetyViolated");
    const auto failed = getBool(line, "failed");
    const auto timedOut = getBool(line, "timedOut");
    const auto error = getString(line, "error");
    if (!test || !impact || !bestImpact || !throughputRps || !avgLatencySec ||
        !viewChanges || !safetyViolated || !failed || !timedOut || !error) {
      return std::nullopt;
    }
    done.test = *test;
    done.outcome.impact = *impact;
    done.outcome.throughputRps = *throughputRps;
    done.outcome.avgLatencySec = *avgLatencySec;
    done.outcome.viewChanges = *viewChanges;
    done.outcome.restarts = restarts.value_or(0);
    done.outcome.recoveryLatencySec = recoveryLatencySec.value_or(0.0);
    done.outcome.queueDrops = queueDrops.value_or(0);
    done.outcome.quotaDrops = quotaDrops.value_or(0);
    done.outcome.safetyViolated = *safetyViolated;
    // Absent on non-violating lines and in pre-twins journals.
    done.outcome.safetyWitness =
        getString(line, gen::kJournalKeySafetyWitness).value_or("");
    done.bestImpact = *bestImpact;
    done.failed = *failed;
    done.timedOut = *timedOut;
    done.error = *error;
    JournalEvent out;
    out.kind = JournalEvent::Kind::kDone;
    out.done = std::move(done);
    return out;
  }

  return std::nullopt;
}

[[nodiscard]] std::optional<LoadedJournal> loadJournal(const std::string& path) {
  const auto contents = readFile(path);
  if (!contents) return std::nullopt;

  LoadedJournal loaded;
  std::size_t pos = 0;
  while (pos < contents->size()) {
    const std::size_t nl = contents->find('\n', pos);
    if (nl == std::string::npos) {
      // No terminator: the classic torn tail of a killed writer.
      loaded.truncatedTail = true;
      break;
    }
    const std::string_view line(contents->data() + pos, nl - pos);
    const auto event = decodeLine(line);
    if (!event) {
      // A malformed *final* line is a torn tail (a buffered write can carry
      // its newline but not its whole payload); malformed earlier lines
      // mean the journal is corrupt and unsafe to resume from.
      if (contents->find('\n', nl + 1) != std::string::npos) {
        return std::nullopt;
      }
      loaded.truncatedTail = true;
      break;
    }
    loaded.events.push_back(std::move(*event));
    pos = nl + 1;
    loaded.validBytes = pos;
  }
  return loaded;
}

// --- writer -----------------------------------------------------------------

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::close() {
  if (fd_ < 0) return !writeFailed_;
  const bool closed = ::close(fd_) == 0;
  fd_ = -1;
  const bool clean = closed && !writeFailed_;
  writeFailed_ = false;
  return clean;
}

bool JournalWriter::openFresh(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  return fd_ >= 0;
}

bool JournalWriter::openResume(const std::string& path,
                               std::uint64_t keepBytes) {
  close();
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return false;
  if (keepBytes < size) {
    std::filesystem::resize_file(path, keepBytes, ec);
    if (ec) return false;
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  return fd_ >= 0;
}

bool JournalWriter::append(const std::string& line) {
  if (fd_ < 0) return false;
  // One write() per line (payload + newline in one buffer): a crashed
  // writer leaves at most one torn line, which loadJournal drops as the
  // tail.
  std::string buffer;
  buffer.reserve(line.size() + 1);
  buffer += line;
  buffer += '\n';
  const char* at = buffer.data();
  std::size_t left = buffer.size();
  while (left > 0) {
    const ssize_t wrote = ::write(fd_, at, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      writeFailed_ = true;
      return false;
    }
    at += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool JournalWriter::sync() {
  if (fd_ < 0) return false;
  if (::fsync(fd_) != 0) {
    writeFailed_ = true;
    return false;
  }
  return true;
}

// --- manifest / checkpoint --------------------------------------------------

std::string journalPath(const std::string& dir) {
  return dir + "/journal.jsonl";
}
std::string manifestPath(const std::string& dir) {
  return dir + "/manifest.json";
}
std::string checkpointPath(const std::string& dir) {
  return dir + "/checkpoint.json";
}

bool writeManifest(const std::string& dir, const Manifest& manifest) {
  std::string out = "{\"version\":" + std::to_string(manifest.version) + ",";
  appendKey(out, "system");
  appendEscaped(out, manifest.system);
  out += ',';
  appendKey(out, "mode");
  appendEscaped(out, manifest.mode);
  out += ',';
  appendKey(out, "seed");
  out += std::to_string(manifest.seed);
  out += ',';
  appendKey(out, "totalTests");
  out += std::to_string(manifest.totalTests);
  out += ',';
  appendKey(out, "workers");
  out += std::to_string(manifest.workers);
  out += ',';
  appendKey(out, "checkpointEvery");
  out += std::to_string(manifest.checkpointEvery);
  out += ',';
  appendKey(out, "scenarioTimeoutMs");
  out += std::to_string(manifest.scenarioTimeoutMs);
  out += ',';
  appendKey(out, "batch");
  out += std::to_string(manifest.batch);
  out += ',';
  appendKey(out, "spawn");
  out += std::to_string(manifest.spawn);
  out += ',';
  appendKey(out, "heartbeatMs");
  out += std::to_string(manifest.heartbeatMs);
  out += "}\n";
  return writeFileAtomicDurable(manifestPath(dir), out);
}

[[nodiscard]] std::optional<Manifest> loadManifest(const std::string& dir) {
  const auto contents = readFile(manifestPath(dir));
  if (!contents) return std::nullopt;
  Manifest manifest;
  const auto version = getU64(*contents, "version");
  const auto system = getString(*contents, "system");
  const auto seed = getU64(*contents, "seed");
  const auto totalTests = getU64(*contents, "totalTests");
  const auto workers = getU64(*contents, "workers");
  const auto checkpointEvery = getU64(*contents, "checkpointEvery");
  const auto scenarioTimeoutMs = getU64(*contents, "scenarioTimeoutMs");
  if (!version || !system || !seed || !totalTests || !workers ||
      !checkpointEvery || !scenarioTimeoutMs) {
    return std::nullopt;
  }
  manifest.version = *version;
  manifest.system = *system;
  manifest.seed = *seed;
  manifest.totalTests = *totalTests;
  manifest.workers = *workers;
  manifest.checkpointEvery = *checkpointEvery;
  manifest.scenarioTimeoutMs = *scenarioTimeoutMs;
  // Fleet fields are absent in pre-fleet manifests; default to the
  // single-process mode so those campaign directories stay resumable.
  manifest.mode = getString(*contents, "mode").value_or("process");
  manifest.batch = getU64(*contents, "batch").value_or(4);
  manifest.spawn = getU64(*contents, "spawn").value_or(0);
  manifest.heartbeatMs = getU64(*contents, "heartbeatMs").value_or(200);
  return manifest;
}

bool writeCheckpoint(const std::string& dir, const Checkpoint& checkpoint) {
  std::string out = "{";
  appendKey(out, "generated");
  out += std::to_string(checkpoint.generated);
  out += ',';
  appendKey(out, "completed");
  out += std::to_string(checkpoint.completed);
  out += ',';
  appendKey(out, "maxImpact");
  appendDouble(out, checkpoint.maxImpact);
  out += ',';
  appendKey(out, "respawns");
  out += std::to_string(checkpoint.respawns);
  out += ',';
  appendKey(out, "reassigned");
  out += std::to_string(checkpoint.reassigned);
  out += ',';
  appendKey(out, "workerCrashes");
  out += std::to_string(checkpoint.workerCrashes);
  out += "}\n";
  return writeFileAtomicDurable(checkpointPath(dir), out);
}

[[nodiscard]] std::optional<Checkpoint> loadCheckpoint(const std::string& dir) {
  const auto contents = readFile(checkpointPath(dir));
  if (!contents) return std::nullopt;
  Checkpoint checkpoint;
  const auto generated = getU64(*contents, "generated");
  const auto completed = getU64(*contents, "completed");
  const auto maxImpact = getDouble(*contents, "maxImpact");
  if (!generated || !completed || !maxImpact) return std::nullopt;
  checkpoint.generated = *generated;
  checkpoint.completed = *completed;
  checkpoint.maxImpact = *maxImpact;
  // Absent before the fleet: default zero.
  checkpoint.respawns = getU64(*contents, "respawns").value_or(0);
  checkpoint.reassigned = getU64(*contents, "reassigned").value_or(0);
  checkpoint.workerCrashes = getU64(*contents, "workerCrashes").value_or(0);
  return checkpoint;
}

}  // namespace avd::campaign
