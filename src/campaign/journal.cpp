#include "campaign/journal.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "avd/gen/protocol_events.h"

namespace avd::campaign {

namespace {

// --- encoding ---------------------------------------------------------------

/// %.17g survives a text round trip bit-exactly for every finite double, so
/// a replayed journal reconstructs µ and the plugin gain sums to the bit.
void appendDouble(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void appendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out += '"';
}

void appendKey(std::string& out, std::string_view key) {
  out += '"';
  out += key;
  out += "\":";
}

void appendBool(std::string& out, bool value) {
  out += value ? "true" : "false";
}

// --- decoding ---------------------------------------------------------------
//
// A minimal extractor for the fixed single-line schema this file writes.
// Keys are matched as the literal byte pattern `"key":`; quotes inside
// string *values* are always written escaped (`\"`), so the pattern can
// only match at a real key.

std::size_t findKey(std::string_view line, std::string_view key) {
  std::string pattern;
  pattern.reserve(key.size() + 3);
  pattern += '"';
  pattern += key;
  pattern += "\":";
  const std::size_t at = line.find(pattern);
  return at == std::string_view::npos ? std::string_view::npos
                                      : at + pattern.size();
}

[[nodiscard]] std::optional<double> getDouble(std::string_view line,
                                              std::string_view key) {
  const std::size_t at = findKey(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  const std::string value(line.substr(at, 64));
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str()) return std::nullopt;
  return parsed;
}

[[nodiscard]] std::optional<std::uint64_t> getU64(std::string_view line,
                                                  std::string_view key) {
  const std::size_t at = findKey(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  const std::string value(line.substr(at, 32));
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str()) return std::nullopt;
  return parsed;
}

[[nodiscard]] std::optional<std::int64_t> getI64(std::string_view line,
                                                 std::string_view key) {
  const std::size_t at = findKey(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  const std::string value(line.substr(at, 32));
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str()) return std::nullopt;
  return parsed;
}

[[nodiscard]] std::optional<bool> getBool(std::string_view line,
                                          std::string_view key) {
  const std::size_t at = findKey(line, key);
  if (at == std::string_view::npos) return std::nullopt;
  if (line.substr(at, 4) == "true") return true;
  if (line.substr(at, 5) == "false") return false;
  return std::nullopt;
}

[[nodiscard]] std::optional<std::string> getString(std::string_view line,
                                                   std::string_view key) {
  std::size_t at = findKey(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '"') {
    return std::nullopt;
  }
  ++at;
  std::string out;
  while (at < line.size() && line[at] != '"') {
    char c = line[at];
    if (c == '\\' && at + 1 < line.size()) {
      const char next = line[at + 1];
      at += 2;
      switch (next) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'u': {
          if (at + 4 > line.size()) return std::nullopt;
          const std::string hex(line.substr(at, 4));
          at += 4;
          c = static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default: return std::nullopt;
      }
      out.push_back(c);
      continue;
    }
    out.push_back(c);
    ++at;
  }
  if (at >= line.size()) return std::nullopt;  // unterminated string
  return out;
}

[[nodiscard]] std::optional<core::Point> getPoint(std::string_view line,
                                                  std::string_view key) {
  std::size_t at = findKey(line, key);
  if (at == std::string_view::npos || at >= line.size() || line[at] != '[') {
    return std::nullopt;
  }
  ++at;
  core::Point point;
  while (at < line.size() && line[at] != ']') {
    const std::string value(line.substr(at, 32));
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str()) return std::nullopt;
    point.push_back(parsed);
    at += static_cast<std::size_t>(end - value.c_str());
    if (at < line.size() && line[at] == ',') ++at;
  }
  if (at >= line.size()) return std::nullopt;  // unterminated array
  return point;
}

bool writeFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

[[nodiscard]] std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

}  // namespace

// --- events -----------------------------------------------------------------

std::string encodeGen(const GenEvent& event) {
  std::string out = "{\"event\":\"gen\",";
  appendKey(out, "test");
  out += std::to_string(event.test);
  out += ',';
  appendKey(out, "point");
  out += '[';
  for (std::size_t i = 0; i < event.point.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(event.point[i]);
  }
  out += "],";
  appendKey(out, "generatedBy");
  appendEscaped(out, event.generatedBy);
  out += ',';
  appendKey(out, "parentImpact");
  appendDouble(out, event.parentImpact);
  out += ',';
  appendKey(out, "pluginIndex");
  out += std::to_string(event.pluginIndex);
  out += '}';
  return out;
}

std::string encodeDone(const DoneEvent& event) {
  std::string out = "{\"event\":\"done\",";
  appendKey(out, "test");
  out += std::to_string(event.test);
  out += ',';
  appendKey(out, "impact");
  appendDouble(out, event.outcome.impact);
  out += ',';
  appendKey(out, "bestImpact");
  appendDouble(out, event.bestImpact);
  out += ',';
  appendKey(out, "throughputRps");
  appendDouble(out, event.outcome.throughputRps);
  out += ',';
  appendKey(out, "avgLatencySec");
  appendDouble(out, event.outcome.avgLatencySec);
  out += ',';
  appendKey(out, gen::kJournalKeyViewChanges);
  out += std::to_string(event.outcome.viewChanges);
  out += ',';
  appendKey(out, gen::kJournalKeyRestarts);
  out += std::to_string(event.outcome.restarts);
  out += ',';
  appendKey(out, gen::kJournalKeyRecoveryLatencySec);
  appendDouble(out, event.outcome.recoveryLatencySec);
  out += ',';
  appendKey(out, gen::kJournalKeyQueueDrops);
  out += std::to_string(event.outcome.queueDrops);
  out += ',';
  appendKey(out, gen::kJournalKeyQuotaDrops);
  out += std::to_string(event.outcome.quotaDrops);
  out += ',';
  appendKey(out, "safetyViolated");
  appendBool(out, event.outcome.safetyViolated);
  out += ',';
  appendKey(out, "failed");
  appendBool(out, event.failed);
  out += ',';
  appendKey(out, "timedOut");
  appendBool(out, event.timedOut);
  out += ',';
  appendKey(out, "error");
  appendEscaped(out, event.error);
  out += '}';
  return out;
}

[[nodiscard]] std::optional<JournalEvent> decodeLine(std::string_view line) {
  const auto event = getString(line, "event");
  if (!event) return std::nullopt;

  if (*event == "gen") {
    GenEvent gen;
    const auto test = getU64(line, "test");
    const auto point = getPoint(line, "point");
    const auto generatedBy = getString(line, "generatedBy");
    const auto parentImpact = getDouble(line, "parentImpact");
    const auto pluginIndex = getI64(line, "pluginIndex");
    if (!test || !point || !generatedBy || !parentImpact || !pluginIndex) {
      return std::nullopt;
    }
    gen.test = *test;
    gen.point = *point;
    gen.generatedBy = *generatedBy;
    gen.parentImpact = *parentImpact;
    gen.pluginIndex = *pluginIndex;
    JournalEvent out;
    out.kind = JournalEvent::Kind::kGen;
    out.gen = std::move(gen);
    return out;
  }

  if (*event == "done") {
    DoneEvent done;
    const auto test = getU64(line, "test");
    const auto impact = getDouble(line, "impact");
    const auto bestImpact = getDouble(line, "bestImpact");
    const auto throughputRps = getDouble(line, "throughputRps");
    const auto avgLatencySec = getDouble(line, "avgLatencySec");
    const auto viewChanges = getU64(line, gen::kJournalKeyViewChanges);
    // Absent in journals written before churn support; default to zero so
    // those campaigns remain resumable.
    const auto restarts = getU64(line, gen::kJournalKeyRestarts);
    const auto recoveryLatencySec =
        getDouble(line, gen::kJournalKeyRecoveryLatencySec);
    // Absent in journals written before flood support; same treatment.
    const auto queueDrops = getU64(line, gen::kJournalKeyQueueDrops);
    const auto quotaDrops = getU64(line, gen::kJournalKeyQuotaDrops);
    const auto safetyViolated = getBool(line, "safetyViolated");
    const auto failed = getBool(line, "failed");
    const auto timedOut = getBool(line, "timedOut");
    const auto error = getString(line, "error");
    if (!test || !impact || !bestImpact || !throughputRps || !avgLatencySec ||
        !viewChanges || !safetyViolated || !failed || !timedOut || !error) {
      return std::nullopt;
    }
    done.test = *test;
    done.outcome.impact = *impact;
    done.outcome.throughputRps = *throughputRps;
    done.outcome.avgLatencySec = *avgLatencySec;
    done.outcome.viewChanges = *viewChanges;
    done.outcome.restarts = restarts.value_or(0);
    done.outcome.recoveryLatencySec = recoveryLatencySec.value_or(0.0);
    done.outcome.queueDrops = queueDrops.value_or(0);
    done.outcome.quotaDrops = quotaDrops.value_or(0);
    done.outcome.safetyViolated = *safetyViolated;
    done.bestImpact = *bestImpact;
    done.failed = *failed;
    done.timedOut = *timedOut;
    done.error = *error;
    JournalEvent out;
    out.kind = JournalEvent::Kind::kDone;
    out.done = std::move(done);
    return out;
  }

  return std::nullopt;
}

[[nodiscard]] std::optional<LoadedJournal> loadJournal(const std::string& path) {
  const auto contents = readFile(path);
  if (!contents) return std::nullopt;

  LoadedJournal loaded;
  std::size_t pos = 0;
  while (pos < contents->size()) {
    const std::size_t nl = contents->find('\n', pos);
    if (nl == std::string::npos) {
      // No terminator: the classic torn tail of a killed writer.
      loaded.truncatedTail = true;
      break;
    }
    const std::string_view line(contents->data() + pos, nl - pos);
    const auto event = decodeLine(line);
    if (!event) {
      // A malformed *final* line is a torn tail (a buffered write can carry
      // its newline but not its whole payload); malformed earlier lines
      // mean the journal is corrupt and unsafe to resume from.
      if (contents->find('\n', nl + 1) != std::string::npos) {
        return std::nullopt;
      }
      loaded.truncatedTail = true;
      break;
    }
    loaded.events.push_back(std::move(*event));
    pos = nl + 1;
    loaded.validBytes = pos;
  }
  return loaded;
}

// --- writer -----------------------------------------------------------------

bool JournalWriter::openFresh(const std::string& path) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  return static_cast<bool>(out_);
}

bool JournalWriter::openResume(const std::string& path,
                               std::uint64_t keepBytes) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return false;
  if (keepBytes < size) {
    std::filesystem::resize_file(path, keepBytes, ec);
    if (ec) return false;
  }
  out_.open(path, std::ios::binary | std::ios::app);
  return static_cast<bool>(out_);
}

bool JournalWriter::append(const std::string& line) {
  if (!out_) return false;
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.put('\n');
  out_.flush();
  return static_cast<bool>(out_);
}

// --- manifest / checkpoint --------------------------------------------------

std::string journalPath(const std::string& dir) {
  return dir + "/journal.jsonl";
}
std::string manifestPath(const std::string& dir) {
  return dir + "/manifest.json";
}
std::string checkpointPath(const std::string& dir) {
  return dir + "/checkpoint.json";
}

bool writeManifest(const std::string& dir, const Manifest& manifest) {
  std::string out = "{\"version\":" + std::to_string(manifest.version) + ",";
  appendKey(out, "system");
  appendEscaped(out, manifest.system);
  out += ',';
  appendKey(out, "seed");
  out += std::to_string(manifest.seed);
  out += ',';
  appendKey(out, "totalTests");
  out += std::to_string(manifest.totalTests);
  out += ',';
  appendKey(out, "workers");
  out += std::to_string(manifest.workers);
  out += ',';
  appendKey(out, "checkpointEvery");
  out += std::to_string(manifest.checkpointEvery);
  out += ',';
  appendKey(out, "scenarioTimeoutMs");
  out += std::to_string(manifest.scenarioTimeoutMs);
  out += "}\n";
  return writeFileAtomic(manifestPath(dir), out);
}

[[nodiscard]] std::optional<Manifest> loadManifest(const std::string& dir) {
  const auto contents = readFile(manifestPath(dir));
  if (!contents) return std::nullopt;
  Manifest manifest;
  const auto version = getU64(*contents, "version");
  const auto system = getString(*contents, "system");
  const auto seed = getU64(*contents, "seed");
  const auto totalTests = getU64(*contents, "totalTests");
  const auto workers = getU64(*contents, "workers");
  const auto checkpointEvery = getU64(*contents, "checkpointEvery");
  const auto scenarioTimeoutMs = getU64(*contents, "scenarioTimeoutMs");
  if (!version || !system || !seed || !totalTests || !workers ||
      !checkpointEvery || !scenarioTimeoutMs) {
    return std::nullopt;
  }
  manifest.version = *version;
  manifest.system = *system;
  manifest.seed = *seed;
  manifest.totalTests = *totalTests;
  manifest.workers = *workers;
  manifest.checkpointEvery = *checkpointEvery;
  manifest.scenarioTimeoutMs = *scenarioTimeoutMs;
  return manifest;
}

bool writeCheckpoint(const std::string& dir, const Checkpoint& checkpoint) {
  std::string out = "{";
  appendKey(out, "generated");
  out += std::to_string(checkpoint.generated);
  out += ',';
  appendKey(out, "completed");
  out += std::to_string(checkpoint.completed);
  out += ',';
  appendKey(out, "maxImpact");
  appendDouble(out, checkpoint.maxImpact);
  out += "}\n";
  return writeFileAtomic(checkpointPath(dir), out);
}

[[nodiscard]] std::optional<Checkpoint> loadCheckpoint(const std::string& dir) {
  const auto contents = readFile(checkpointPath(dir));
  if (!contents) return std::nullopt;
  Checkpoint checkpoint;
  const auto generated = getU64(*contents, "generated");
  const auto completed = getU64(*contents, "completed");
  const auto maxImpact = getDouble(*contents, "maxImpact");
  if (!generated || !completed || !maxImpact) return std::nullopt;
  checkpoint.generated = *generated;
  checkpoint.completed = *completed;
  checkpoint.maxImpact = *maxImpact;
  return checkpoint;
}

}  // namespace avd::campaign
