#include "campaign/runner.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "avd/plugin.h"
#include "common/lockdep.h"
#include "common/thread_pool.h"

namespace avd::campaign {

namespace {

// The watchdog clock. Wall-clock reads are banned in deterministic paths
// (lint R1) because scenario *content* must replay from a seed; the
// watchdog never influences which scenarios are generated or what their
// outcomes are — it only bounds how long the campaign waits for a worker,
// which is an operational concern, not exploration state.
// avd-lint: allow(nondeterminism)
using WatchClock = std::chrono::steady_clock;

GenEvent makeGenEvent(std::uint64_t test,
                      const core::GeneratedScenario& scenario) {
  GenEvent event;
  event.test = test;
  event.point = scenario.point;
  event.generatedBy = scenario.generatedBy;
  event.parentImpact = scenario.parentImpact;
  event.pluginIndex = static_cast<std::int64_t>(scenario.pluginIndex);
  return event;
}

void appendOrThrow(JournalWriter* journal, const std::string& line) {
  if (journal == nullptr) return;
  if (!journal->append(line)) {
    throw std::runtime_error("campaign: journal append failed (disk full?)");
  }
}

}  // namespace

ReplayState replayJournal(core::Controller& controller,
                          const std::vector<JournalEvent>& events) {
  ReplayState state;
  for (const JournalEvent& event : events) {
    if (event.kind == JournalEvent::Kind::kGen) {
      core::GeneratedScenario scenario = controller.acquireScenario();
      if (scenario.point != event.gen.point ||
          scenario.generatedBy != event.gen.generatedBy ||
          event.gen.test != state.nextTest) {
        throw std::runtime_error(
            "campaign: journal diverges from deterministic replay (wrong "
            "seed, edited journal, or changed hyperspace)");
      }
      state.pending.emplace(event.gen.test, std::move(scenario));
      ++state.nextTest;
    } else {
      const auto it = state.pending.find(event.done.test);
      if (it == state.pending.end()) {
        throw std::runtime_error(
            "campaign: journal reports a scenario that was never generated");
      }
      controller.reportOutcome(std::move(it->second), event.done.outcome);
      state.pending.erase(it);
      if (controller.maxImpact() != event.done.bestImpact) {
        throw std::runtime_error(
            "campaign: replayed best impact diverges from journal");
      }
      state.replayedFailed += event.done.failed ? 1 : 0;
      state.replayedTimedOut += event.done.timedOut ? 1 : 0;
    }
  }
  return state;
}

CampaignRunner::CampaignRunner(ExecutorFactory factory,
                               CampaignOptions options, PluginFactory plugins)
    : factory_(std::move(factory)),
      options_(std::move(options)),
      plugins_(std::move(plugins)) {
  if (!factory_) throw std::runtime_error("campaign: null executor factory");
  if (options_.workers == 0) options_.workers = 1;
  if (options_.checkpointEvery == 0) options_.checkpointEvery = 16;
}

std::vector<std::unique_ptr<core::ScenarioExecutor>>
CampaignRunner::makeExecutors() const {
  std::vector<std::unique_ptr<core::ScenarioExecutor>> executors;
  executors.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    executors.push_back(factory_());
    if (!executors.back()) {
      throw std::runtime_error("campaign: executor factory returned null");
    }
  }
  return executors;
}

CampaignResult CampaignRunner::run() {
  auto executors = makeExecutors();
  const core::Hyperspace& space = executors.front()->space();
  std::vector<core::PluginPtr> plugins =
      plugins_ ? plugins_(space) : core::defaultPlugins(space);
  core::Controller controller(*executors.front(), std::move(plugins),
                              options_.controller, options_.seed);

  JournalWriter journal;
  JournalWriter* journalPtr = nullptr;
  if (!options_.outDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.outDir, ec);
    Manifest manifest;
    manifest.system = options_.system;
    manifest.seed = options_.seed;
    manifest.totalTests = options_.totalTests;
    manifest.workers = options_.workers;
    manifest.checkpointEvery = options_.checkpointEvery;
    manifest.scenarioTimeoutMs = options_.scenarioTimeoutMs;
    if (!writeManifest(options_.outDir, manifest) ||
        !journal.openFresh(journalPath(options_.outDir))) {
      throw std::runtime_error("campaign: cannot write to '" +
                               options_.outDir + "'");
    }
    journalPtr = &journal;
  }

  return drive(controller, executors, journalPtr, {}, 1, 0, 0);
}

CampaignResult CampaignRunner::resume() {
  if (options_.outDir.empty()) {
    throw std::runtime_error("campaign: resume requires outDir");
  }
  const auto manifest = loadManifest(options_.outDir);
  if (!manifest) {
    throw std::runtime_error("campaign: missing/corrupt manifest in '" +
                             options_.outDir + "'");
  }
  // The manifest is authoritative: a resumed campaign must regenerate the
  // exact same exploration, so the original seed/budget/pool shape win over
  // whatever the constructor was given.
  options_.seed = manifest->seed;
  options_.totalTests = static_cast<std::size_t>(manifest->totalTests);
  options_.workers = std::max<std::size_t>(
      1, static_cast<std::size_t>(manifest->workers));
  options_.checkpointEvery = std::max<std::size_t>(
      1, static_cast<std::size_t>(manifest->checkpointEvery));
  options_.scenarioTimeoutMs = manifest->scenarioTimeoutMs;
  options_.system = manifest->system;

  const auto loaded = loadJournal(journalPath(options_.outDir));
  if (!loaded) {
    throw std::runtime_error("campaign: corrupt journal in '" +
                             options_.outDir + "'");
  }

  auto executors = makeExecutors();
  const core::Hyperspace& space = executors.front()->space();
  std::vector<core::PluginPtr> plugins =
      plugins_ ? plugins_(space) : core::defaultPlugins(space);
  core::Controller controller(*executors.front(), std::move(plugins),
                              options_.controller, options_.seed);

  // Replay: the controller is a deterministic function of the journaled
  // acquire/report interleaving, so feeding the recorded outcomes back in
  // recorded order reconstructs Π/Ω/Ψ/µ and the plugin fitness exactly —
  // without executing anything.
  ReplayState replayed = replayJournal(controller, loaded->events);

  JournalWriter journal;
  if (!journal.openResume(journalPath(options_.outDir),
                          loaded->validBytes)) {
    throw std::runtime_error("campaign: cannot reopen journal in '" +
                             options_.outDir + "'");
  }

  return drive(controller, executors, &journal, std::move(replayed.pending),
               replayed.nextTest, replayed.replayedFailed,
               replayed.replayedTimedOut);
}

CampaignResult CampaignRunner::drive(
    core::Controller& controller,
    std::vector<std::unique_ptr<core::ScenarioExecutor>>& executors,
    JournalWriter* journal,
    std::map<std::uint64_t, core::GeneratedScenario> pendingReplay,
    std::uint64_t nextTest, std::size_t replayedFailed,
    std::size_t replayedTimedOut) {
  CampaignResult result;
  result.failed = replayedFailed;
  result.timedOut = replayedTimedOut;

  const std::size_t total = options_.totalTests;
  const bool withWatchdog = options_.scenarioTimeoutMs > 0;

  const auto maybeCheckpoint = [&](bool force) {
    if (options_.outDir.empty()) return;
    const std::size_t completed = controller.executedTests();
    if (!force && completed % options_.checkpointEvery != 0) return;
    // Durability order matters: the journal must be on disk before the
    // checkpoint that summarizes it, or a crash could leave a checkpoint
    // claiming progress the journal lost.
    if (journal != nullptr) journal->sync();
    Checkpoint checkpoint;
    checkpoint.generated = nextTest - 1;
    checkpoint.completed = completed;
    checkpoint.maxImpact = controller.maxImpact();
    checkpoint.respawns = result.respawns;
    checkpoint.workerCrashes = result.workerCrashes;
    writeCheckpoint(options_.outDir, checkpoint);
  };

  const auto reportAndJournal = [&](std::uint64_t test,
                                    core::GeneratedScenario scenario,
                                    const core::Outcome& outcome, bool failed,
                                    bool timedOut, const std::string& error) {
    controller.reportOutcome(std::move(scenario), outcome);
    DoneEvent done;
    done.test = test;
    done.outcome = outcome;
    done.bestImpact = controller.maxImpact();
    done.failed = failed;
    done.timedOut = timedOut;
    done.error = error;
    appendOrThrow(journal, encodeDone(done));
    result.failed += failed ? 1 : 0;
    result.timedOut += timedOut ? 1 : 0;
    maybeCheckpoint(false);
  };

  if (executors.size() == 1 && !withWatchdog) {
    // Serial fast path: inline acquire -> execute -> report, bit-identical
    // to Controller::runTests for the same seed.
    while (controller.executedTests() < total) {
      std::uint64_t test;
      core::GeneratedScenario scenario;
      if (!pendingReplay.empty()) {
        auto first = pendingReplay.begin();
        test = first->first;
        scenario = std::move(first->second);
        pendingReplay.erase(first);
      } else {
        scenario = controller.acquireScenario();
        test = nextTest++;
        appendOrThrow(journal, encodeGen(makeGenEvent(test, scenario)));
      }
      core::Outcome outcome;
      bool failed = false;
      std::string error;
      try {
        outcome = executors.front()->execute(scenario.point);
      } catch (const std::exception& e) {
        failed = true;
        error = e.what();
      } catch (...) {
        failed = true;
        error = "unknown executor exception";
      }
      reportAndJournal(test, std::move(scenario), outcome, failed, false,
                       error);
    }
  } else {
    // Parallel path: W workers, each bound to its own executor instance.
    struct Completion {
      std::uint64_t test = 0;
      core::Outcome outcome;
      bool failed = false;
      std::string error;
    };
    struct InFlight {
      core::GeneratedScenario scenario;
      std::size_t worker = 0;
      WatchClock::time_point deadline;
    };

    lockdep::Mutex mutex{"CampaignRunner::drive::mutex"};
    lockdep::CondVar cv;
    std::deque<Completion> completions;  // guarded by mutex
    std::deque<std::size_t> freeWorkers;
    for (std::size_t w = 0; w < executors.size(); ++w) freeWorkers.push_back(w);
    std::map<std::uint64_t, InFlight> inFlight;  // driver-thread only

    // Respawn budget for watchdog-retired slots. A retired slot's executor
    // may still be running its wedged scenario on a pool thread, so a
    // respawn is a *fresh* executor appended to the vector — the poisoned
    // index is never reused.
    std::size_t respawnsLeft = withWatchdog ? options_.maxWorkerRespawns : 0;
    std::uint64_t respawnBackoffMs = 50;
    std::vector<WatchClock::time_point> pendingRespawns;

    // Declared after the state its tasks capture: the pool destructor joins
    // every worker (including a wedged one finishing late), and that join
    // must happen while mutex/cv/completions are still alive. Sized for the
    // full respawn budget because each wedged scenario can hold one pool
    // thread until it finishes on its own.
    util::ThreadPool pool(executors.size() + respawnsLeft);

    const auto submitOne = [&](std::uint64_t test,
                               core::GeneratedScenario scenario,
                               std::size_t worker) {
      InFlight entry;
      const core::Point point = scenario.point;
      entry.scenario = std::move(scenario);
      entry.worker = worker;
      entry.deadline =
          withWatchdog
              ? WatchClock::now() +
                    std::chrono::milliseconds(options_.scenarioTimeoutMs)
              : WatchClock::time_point::max();
      inFlight.emplace(test, std::move(entry));
      core::ScenarioExecutor* executor = executors[worker].get();
      pool.submit([test, point, executor, &mutex, &cv, &completions] {
        Completion completion;
        completion.test = test;
        try {
          completion.outcome = executor->execute(point);
        } catch (const std::exception& e) {
          completion.failed = true;
          completion.error = e.what();
        } catch (...) {
          completion.failed = true;
          completion.error = "unknown executor exception";
        }
        {
          const std::lock_guard<lockdep::Mutex> guard(mutex);
          completions.push_back(std::move(completion));
        }
        cv.notify_all();
      });
    };

    while (controller.executedTests() < total) {
      // Refill: hand every free worker a scenario (replayed in-flight ones
      // first — their gen events are already journaled).
      while (!freeWorkers.empty() &&
             (!pendingReplay.empty() || nextTest <= total)) {
        const std::size_t worker = freeWorkers.front();
        freeWorkers.pop_front();
        std::uint64_t test;
        core::GeneratedScenario scenario;
        if (!pendingReplay.empty()) {
          auto first = pendingReplay.begin();
          test = first->first;
          scenario = std::move(first->second);
          pendingReplay.erase(first);
        } else {
          scenario = controller.acquireScenario();
          test = nextTest++;
          appendOrThrow(journal, encodeGen(makeGenEvent(test, scenario)));
        }
        submitOne(test, std::move(scenario), worker);
      }

      if (inFlight.empty() && pendingRespawns.empty()) {
        // Nothing running, nothing issuable, and no slot coming back:
        // every worker slot wedged and the respawn budget is spent. Give
        // up with partial results.
        result.aborted = true;
        break;
      }

      // Wait for a completion (or the nearest watchdog/respawn deadline).
      std::vector<Completion> drained;
      {
        std::unique_lock<lockdep::Mutex> lock(mutex);
        if (completions.empty()) {
          if (withWatchdog) {
            WatchClock::time_point nearest = WatchClock::time_point::max();
            for (const auto& [test, entry] : inFlight) {
              nearest = std::min(nearest, entry.deadline);
            }
            for (const auto& at : pendingRespawns) {
              nearest = std::min(nearest, at);
            }
            cv.wait_until(lock, nearest,
                          [&] { return !completions.empty(); });
          } else {
            cv.wait(lock, [&] { return !completions.empty(); });
          }
        }
        while (!completions.empty()) {
          drained.push_back(std::move(completions.front()));
          completions.pop_front();
        }
      }

      for (Completion& completion : drained) {
        const auto it = inFlight.find(completion.test);
        if (it == inFlight.end()) {
          // Late result for a scenario the watchdog already retired; its
          // outcome was synthesized and its worker slot stays poisoned.
          continue;
        }
        core::GeneratedScenario scenario = std::move(it->second.scenario);
        freeWorkers.push_back(it->second.worker);
        inFlight.erase(it);
        reportAndJournal(completion.test, std::move(scenario),
                         completion.failed ? core::Outcome{}
                                           : completion.outcome,
                         completion.failed, false, completion.error);
      }

      if (withWatchdog) {
        const auto now = WatchClock::now();
        for (auto it = inFlight.begin(); it != inFlight.end();) {
          if (it->second.deadline > now) {
            ++it;
            continue;
          }
          // Retire the scenario with a zero-impact outcome and poison the
          // worker slot: its executor may still be running the wedged
          // deployment, so it must never be handed another scenario. When
          // respawn budget remains, schedule a replacement slot after a
          // capped-exponential backoff instead of shrinking the pool for
          // good.
          core::GeneratedScenario scenario = std::move(it->second.scenario);
          const std::uint64_t test = it->first;
          it = inFlight.erase(it);
          reportAndJournal(test, std::move(scenario), core::Outcome{}, false,
                           true, "scenario exceeded watchdog budget");
          if (respawnsLeft > 0) {
            --respawnsLeft;
            pendingRespawns.push_back(
                now + std::chrono::milliseconds(respawnBackoffMs));
            respawnBackoffMs = std::min<std::uint64_t>(respawnBackoffMs * 2,
                                                       1000);
          }
        }
        // Revive slots whose backoff has elapsed: a brand-new executor on a
        // brand-new index, immediately eligible for the next refill.
        for (auto it = pendingRespawns.begin();
             it != pendingRespawns.end();) {
          if (*it > now) {
            ++it;
            continue;
          }
          executors.push_back(factory_());
          if (!executors.back()) {
            throw std::runtime_error(
                "campaign: executor factory returned null on respawn");
          }
          freeWorkers.push_back(executors.size() - 1);
          ++result.respawns;
          it = pendingRespawns.erase(it);
        }
      }
    }
    // ~ThreadPool joins its workers; a wedged scenario that never returns
    // will stall shutdown here, but the campaign's results are complete.
  }

  result.history = controller.history();
  result.executed = result.history.size();
  result.maxImpact = controller.maxImpact();
  result.classes = dedupVulnerabilities(executors.front()->space(),
                                        result.history,
                                        options_.dedupMinImpact);
  maybeCheckpoint(true);
  return result;
}

}  // namespace avd::campaign
