// Attacker-power estimation (§4).
//
// "The number of tests necessary for AVD to find a vulnerability is an
// indication of how difficult it would be for a real attacker to find
// similar vulnerabilities, given the same amount of power."
//
// Power levels model increasing access to the target system:
//   kBlindFuzz     — no source/docs: uniform random corruption masks only;
//   kGrayFeedback  — documentation: grammar-aware (Gray-coded) mutation with
//                    impact feedback over the full MAC hyperspace;
//   kProtocolAware — source access: the synthesis tool adds malicious
//                    replica behaviours (spurious view changes, slow
//                    primary, collusion) to the search space.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace avd::core {

enum class AttackerPower { kBlindFuzz, kGrayFeedback, kProtocolAware };

std::string powerName(AttackerPower power);

struct PowerMeasurement {
  AttackerPower power{};
  bool found = false;
  /// Tests executed until impact first reached the threshold (== maxTests
  /// when never reached).
  std::size_t testsToFind = 0;
  double bestImpact = 0.0;
  /// Fraction of the executed tests that were strong attacks (impact >=
  /// 0.9) — how well the attacker converts its budget into damage, the
  /// metric that separates feedback-guided from blind strategies.
  double strongFraction = 0.0;
};

/// Runs the exploration strategy for the given power level until `threshold`
/// impact is reached or `maxTests` tests executed.
PowerMeasurement measureAttackerPower(AttackerPower power, double threshold,
                                      std::size_t maxTests,
                                      std::uint64_t seed);

}  // namespace avd::core
