// Baseline exploration strategies.
//
// Random exploration is the comparison strategy in Figure 2 (and doubles as
// the weakest attacker of §4); exhaustive exploration regenerates the
// Figure 3 structure plot. Random exploration reuses the Controller with an
// unlimited "battleships opening" so both strategies share bookkeeping and
// the TestRecord format.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "avd/controller.h"
#include "avd/executor.h"

namespace avd::core {

/// A Controller that never leaves the random phase: every scenario is an
/// independent uniform sample (without repetition).
Controller makeRandomExplorer(ScenarioExecutor& executor,
                              std::uint64_t seed = 1);

struct ExhaustiveResult {
  Point point;
  Outcome outcome;
};

/// Visits every point of a hyperspace exactly once. Tests are independent
/// (§3: the system is re-initialized per test), so the sweep fans out over
/// `threads` workers, each with its own executor instance from `factory`.
class ExhaustiveExplorer {
 public:
  using ExecutorFactory = std::function<std::unique_ptr<ScenarioExecutor>()>;

  explicit ExhaustiveExplorer(ExecutorFactory factory)
      : factory_(std::move(factory)) {}

  /// Runs all totalScenarios() points; results are indexed by the space's
  /// flatten() linearization. threads == 0 uses hardware concurrency.
  std::vector<ExhaustiveResult> exploreAll(std::size_t threads = 0);

 private:
  ExecutorFactory factory_;
};

}  // namespace avd::core
