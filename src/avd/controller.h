// The AVD Test Controller — Algorithm 1 of the paper.
//
//   1  parent := sample(Π)                         // impact-weighted
//   2  plugin := sample(parent.plugins)            // fitness-gain-weighted
//   3  mutateDistance := 1 − parent.impact / µ
//   4  newScenario := plugin.mutate(parent, mutateDistance)
//   5  if newScenario ∉ Ω and newScenario ∉ Π then Ψ := Ψ ∪ newScenario
//
// Π is the set of top-impact executed scenarios, Ω the history of all
// executed scenarios, Ψ the queue of pending scenarios, µ the maximum
// impact observed so far. Like a battleships player (§3), the controller
// opens with random shots and focuses as structure emerges: high-impact
// parents are mutated gently (fine tuning), low-impact parents strongly.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "avd/executor.h"
#include "avd/plugin.h"
#include "common/rng.h"

namespace avd::core {

struct ControllerOptions {
  /// |Π|: how many top-impact scenarios are kept as mutation parents.
  std::size_t topSetSize = 8;
  /// Battleships opening: this many uniformly random tests seed Π before
  /// feedback-guided generation starts.
  std::size_t initialRandomTests = 10;
  /// Fitnex-style plugin sampling by historical fitness gain (§3). Disable
  /// for the uniform-plugin-selection ablation.
  bool pluginFitnessWeighting = true;
  /// Give up generating a novel mutation after this many attempts and fall
  /// back to a random scenario.
  std::size_t maxGenerationAttempts = 32;
};

/// One executed test, in execution order.
struct TestRecord {
  Point point;
  Outcome outcome;
  std::string generatedBy;   // "random" or the plugin's name
  double bestImpactSoFar = 0.0;  // µ after this test
};

/// A scenario handed out by acquireScenario() and not yet reported back.
/// Opaque to callers except for `point` (what to execute) and `generatedBy`
/// (provenance for journals); the remaining fields carry the Algorithm 1
/// bookkeeping that reportOutcome() needs to credit the generating plugin.
struct GeneratedScenario {
  Point point;
  std::string generatedBy;
  double parentImpact = 0.0;
  std::ptrdiff_t pluginIndex = -1;
};

/// Cumulative per-plugin sampling statistics (the "historical benefit").
struct PluginStats {
  std::uint64_t timesChosen = 0;
  double gainSum = 0.0;  // Σ (child impact − parent impact)

  double averageGain() const noexcept {
    return timesChosen == 0 ? 0.0
                            : gainSum / static_cast<double>(timesChosen);
  }
};

class Controller {
 public:
  Controller(ScenarioExecutor& executor, std::vector<PluginPtr> plugins,
             ControllerOptions options = {}, std::uint64_t seed = 1);

  /// Runs `count` additional tests (generate -> enqueue -> execute -> learn).
  void runTests(std::size_t count);

  /// Batch-asynchronous interface (the campaign engine's view of Algorithm
  /// 1): acquireScenario() generates (or dequeues) the next scenario and
  /// marks it in flight; the caller executes it — possibly concurrently with
  /// other acquired scenarios — and hands the measurement back through
  /// reportOutcome(), which performs the learning step (µ, Π, plugin
  /// fitness, history). Outcomes may be reported in any order relative to
  /// their acquisition. runTests() is exactly acquire -> execute -> report
  /// in a loop, so a serial driver of this interface is bit-identical to
  /// runTests() for the same seed.
  [[nodiscard]] GeneratedScenario acquireScenario();
  void reportOutcome(GeneratedScenario scenario, const Outcome& outcome);
  /// Scenarios acquired but not yet reported.
  std::size_t inFlight() const noexcept { return inFlight_; }

  const std::vector<TestRecord>& history() const noexcept { return history_; }
  double maxImpact() const noexcept { return maxImpact_; }
  /// Best scenario so far (nullopt before any test ran).
  [[nodiscard]] std::optional<TestRecord> best() const;
  const std::vector<PluginStats>& pluginStats() const noexcept {
    return pluginStats_;
  }
  std::size_t executedTests() const noexcept { return history_.size(); }
  /// Tests executed until impact first reached `threshold`; nullopt if never.
  [[nodiscard]] std::optional<std::size_t> testsToReach(double threshold) const;

 private:
  struct TopScenario {
    Point point;
    double impact = 0.0;
  };

  /// Lines 1-5 of Algorithm 1; returns the plugin used, or "random".
  std::string generateScenario();
  Point randomNovelPoint();
  const TopScenario& sampleParent();
  std::size_t samplePlugin();
  void insertTop(const Point& point, double impact);

  ScenarioExecutor& executor_;
  std::vector<PluginPtr> plugins_;
  ControllerOptions options_;
  util::Rng rng_;

  std::vector<TopScenario> top_;            // Π, sorted descending by impact
  std::unordered_set<std::uint64_t> seen_;  // Ω ∪ Ψ, as point hashes
  struct Pending {
    Point point;
    std::string generatedBy;
    double parentImpact;
    std::ptrdiff_t pluginIndex;
  };
  std::deque<Pending> queue_;  // Ψ
  std::size_t inFlight_ = 0;   // acquired, not yet reported
  double maxImpact_ = 0.0;     // µ
  std::vector<TestRecord> history_;
  std::vector<PluginStats> pluginStats_;
};

}  // namespace avd::core
