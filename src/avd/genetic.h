// Genetic-algorithm explorer.
//
// §3 motivates the Controller's meta-heuristic by analogy with prior work:
// "Inkumsah and Xie showed the benefit of using Genetic Algorithms (another
// meta-heuristic exploration algorithm) to improve the quality of method
// sequence generation". This explorer implements that alternative for
// comparison: a fixed-size population evolved by impact-proportional
// tournament selection, uniform per-dimension crossover, and plugin-driven
// mutation. It shares the executor and TestRecord bookkeeping with the
// Controller so the strategies are directly comparable.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_set>
#include <vector>

#include "avd/controller.h"
#include "avd/executor.h"
#include "avd/plugin.h"
#include "common/rng.h"

namespace avd::core {

struct GeneticOptions {
  std::size_t populationSize = 12;
  /// Probability that a child is produced by crossover (otherwise cloned
  /// from one parent) before mutation.
  double crossoverRate = 0.7;
  /// Probability of applying one plugin mutation to a child.
  double mutationRate = 0.9;
  /// Tournament size for parent selection.
  std::size_t tournament = 3;
};

class GeneticExplorer {
 public:
  GeneticExplorer(ScenarioExecutor& executor, std::vector<PluginPtr> plugins,
                  GeneticOptions options = {}, std::uint64_t seed = 1);

  /// Executes `count` additional tests (the initial population counts
  /// toward the budget).
  void runTests(std::size_t count);

  const std::vector<TestRecord>& history() const noexcept { return history_; }
  double maxImpact() const noexcept { return maxImpact_; }
  [[nodiscard]] std::optional<std::size_t> testsToReach(double threshold) const;
  std::size_t generation() const noexcept { return generation_; }

 private:
  struct Individual {
    Point point;
    double impact = 0.0;
  };

  void evaluate(Point point, const char* origin);
  const Individual& tournamentSelect();
  Point crossover(const Point& a, const Point& b);

  ScenarioExecutor& executor_;
  std::vector<PluginPtr> plugins_;
  GeneticOptions options_;
  util::Rng rng_;

  std::vector<Individual> population_;
  std::vector<Individual> nextGeneration_;
  std::unordered_set<std::uint64_t> seen_;
  std::vector<TestRecord> history_;
  double maxImpact_ = 0.0;
  std::size_t generation_ = 0;
};

}  // namespace avd::core
