#include "avd/attacker_power.h"

#include "avd/controller.h"
#include "avd/explorers.h"
#include "avd/pbft_executor.h"

namespace avd::core {

std::string powerName(AttackerPower power) {
  switch (power) {
    case AttackerPower::kBlindFuzz:
      return "blind-fuzz";
    case AttackerPower::kGrayFeedback:
      return "gray-feedback";
    case AttackerPower::kProtocolAware:
      return "protocol-aware";
  }
  return "?";
}

namespace {

Hyperspace spaceFor(AttackerPower power) {
  // All levels search the same base space; what differs is the strategy
  // (random vs feedback-guided) and, at the top level, the extra dimension
  // the protocol-aware synthesis tool unlocks. This keeps the ladder an
  // apples-to-apples comparison of attacker capability.
  Hyperspace space;
  space.add(Dimension::grayBitmask("mac_mask", 12));
  space.add(Dimension::range("correct_clients", 10, 100, 10));
  if (power == AttackerPower::kProtocolAware) {
    space.add(
        Dimension::choice("replica_behavior", {0, 1, 2, 3, 4, 5, 6, 7}));
  }
  return space;
}

}  // namespace

PowerMeasurement measureAttackerPower(AttackerPower power, double threshold,
                                      std::size_t maxTests,
                                      std::uint64_t seed) {
  PbftExecutorOptions options;
  options.baseSeed = seed;
  // Timing ratios as in the figure benches: a window much longer than the
  // request timeout, so only sustained attacks reach high impact and
  // "finding a vulnerability" means finding a real one.
  options.pbft.requestTimeout = sim::msec(400);
  options.pbft.viewChangeTimeout = sim::msec(400);
  options.clientRetx = sim::msec(100);
  options.link = sim::LinkModel{sim::msec(5), sim::usec(500)};
  options.defaultCorrectClients = 20;
  options.warmup = sim::msec(400);
  options.measure = sim::msec(3000);
  PbftAttackExecutor executor(spaceFor(power), options);

  PowerMeasurement measurement;
  measurement.power = power;
  measurement.testsToFind = maxTests;

  auto runUntilFound = [&](Controller& controller) {
    // The full budget always runs: testsToFind records the first crossing,
    // strongFraction how the remaining budget was spent.
    controller.runTests(maxTests);
    measurement.bestImpact = controller.maxImpact();
    std::size_t strong = 0;
    for (std::size_t i = 0; i < controller.history().size(); ++i) {
      const TestRecord& record = controller.history()[i];
      if (!measurement.found && record.outcome.impact >= threshold) {
        measurement.found = true;
        measurement.testsToFind = i + 1;
      }
      if (record.outcome.impact >= 0.9) ++strong;
    }
    measurement.strongFraction =
        static_cast<double>(strong) /
        static_cast<double>(controller.history().size());
  };

  if (power == AttackerPower::kBlindFuzz) {
    Controller random = makeRandomExplorer(executor, seed);
    runUntilFound(random);
  } else {
    Controller controller(executor, defaultPlugins(executor.space()),
                          ControllerOptions{}, seed);
    runUntilFound(controller);
  }
  return measurement;
}

}  // namespace avd::core
