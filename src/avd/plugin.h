// Mutation plugins (§3).
//
// "The interaction between the Test Controller and the individual testing
// tools is done through specialized plugins. The Controller has a high-level
// view on the testing process, leaving the details of each particular tool
// to the plugins."
//
// A plugin knows how to mutate the parameters it owns, honouring the
// controller's mutateDistance contract: distance near 0 must produce a
// scenario close to its parent (in the tool's own notion of closeness —
// one Gray bit flip, a neighbouring call number, one transposition...),
// distance near 1 a far-away one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "avd/hyperspace.h"
#include "common/rng.h"

namespace avd::core {

class MutationPlugin {
 public:
  virtual ~MutationPlugin() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Mutates `point` in place. `distance` in [0, 1] scales how far the
  /// child may stray from the parent along this plugin's parameters.
  virtual void mutate(const Hyperspace& space, Point& point, double distance,
                      util::Rng& rng) const = 0;
};

using PluginPtr = std::shared_ptr<const MutationPlugin>;

/// Steps one dimension's *index* by a distance-scaled delta with reflection
/// at the bounds. On a grayBitmask dimension a unit step flips exactly one
/// mask bit — the paper's neighbourhood; on a range dimension it moves to
/// the adjacent parameter value.
class IndexStepPlugin final : public MutationPlugin {
 public:
  IndexStepPlugin(std::string name, std::size_t dimension)
      : name_(std::move(name)), dimension_(dimension) {}

  std::string_view name() const noexcept override { return name_; }
  void mutate(const Hyperspace& space, Point& point, double distance,
              util::Rng& rng) const override;

 private:
  std::string name_;
  std::size_t dimension_;
};

/// Resamples one dimension uniformly (used for small categorical
/// dimensions, where "distance" has no metric meaning; the distance only
/// scales the probability of changing at all).
class ResamplePlugin final : public MutationPlugin {
 public:
  ResamplePlugin(std::string name, std::size_t dimension)
      : name_(std::move(name)), dimension_(dimension) {}

  std::string_view name() const noexcept override { return name_; }
  void mutate(const Hyperspace& space, Point& point, double distance,
              util::Rng& rng) const override;

 private:
  std::string name_;
  std::size_t dimension_;
};

/// Ablation plugin: mutates a grayBitmask dimension by flipping
/// distance-scaled *random mask bits* directly (binary neighbourhood)
/// instead of stepping through the Gray-coded index space. Exists to
/// quantify what the Gray encoding buys the exploration (DESIGN.md §5.3).
class BinaryMaskFlipPlugin final : public MutationPlugin {
 public:
  BinaryMaskFlipPlugin(std::string name, std::size_t dimension)
      : name_(std::move(name)), dimension_(dimension) {}

  std::string_view name() const noexcept override { return name_; }
  void mutate(const Hyperspace& space, Point& point, double distance,
              util::Rng& rng) const override;

 private:
  std::string name_;
  std::size_t dimension_;
};

/// Builds the default plugin set for a hyperspace: an IndexStepPlugin per
/// range/gray dimension and a ResamplePlugin per choice dimension.
std::vector<PluginPtr> defaultPlugins(const Hyperspace& space);

}  // namespace avd::core
