#include "avd/pbft_executor.h"

#include <algorithm>

#include <memory>
#include <vector>

#include "common/hash.h"
#include "faultinject/churn.h"
#include "faultinject/flood.h"
#include "faultinject/mac_corruptor.h"
#include "faultinject/network_faults.h"
#include "faultinject/reorder.h"
#include "faultinject/tamper.h"
#include "faultinject/twins.h"

namespace avd::core {

PbftAttackExecutor::PbftAttackExecutor(Hyperspace space,
                                       PbftExecutorOptions options)
    : space_(std::move(space)), options_(std::move(options)) {}

pbft::DeploymentConfig PbftAttackExecutor::buildConfig(
    const Point& point) const {
  pbft::DeploymentConfig config;
  config.pbft = options_.pbft;
  config.link = options_.link;
  config.clientRetx = options_.clientRetx;
  config.warmup = options_.warmup;
  config.measure = options_.measure;
  config.service = options_.service;

  config.correctClients = static_cast<std::uint32_t>(space_.valueOf(
      point, "correct_clients", options_.defaultCorrectClients));
  config.maliciousClients = static_cast<std::uint32_t>(space_.valueOf(
      point, "malicious_clients", options_.defaultMaliciousClients));

  const auto mask =
      static_cast<std::uint64_t>(space_.valueOf(point, "mac_mask", 0));
  if (mask != 0 && config.maliciousClients > 0) {
    config.maliciousClientBehavior.macPolicy = fi::makeMacCorruptor(mask);
  }

  switch (space_.valueOf(point, "replica_behavior", 0)) {
    case 0:
      break;
    case 1: {  // slow primary
      pbft::ReplicaBehavior primary;
      primary.slowPrimary = true;
      config.replicaBehaviors[0] = primary;
      break;
    }
    case 2: {  // slow primary + colluding client
      pbft::ReplicaBehavior primary;
      primary.slowPrimary = true;
      if (config.maliciousClients == 0) config.maliciousClients = 1;
      primary.colludingClient = config.pbft.replicaCount();
      config.maliciousClientBehavior.broadcastRequests = true;
      config.replicaBehaviors[0] = primary;
      break;
    }
    case 3: {  // spurious view changes
      pbft::ReplicaBehavior replica;
      replica.spuriousViewChangeInterval = config.pbft.requestTimeout / 2;
      config.replicaBehaviors[0] = replica;
      break;
    }
    case 4: {  // silent prepares
      pbft::ReplicaBehavior replica;
      replica.silentPrepares = true;
      config.replicaBehaviors[0] = replica;
      break;
    }
    case 5: {  // equivocating primary
      pbft::ReplicaBehavior primary;
      primary.equivocate = true;
      config.replicaBehaviors[0] = primary;
      break;
    }
    case 6: {  // one fast-clock backup (premature timeouts)
      pbft::ReplicaBehavior replica;
      replica.timerSkew = 0.1;
      config.replicaBehaviors[1] = replica;
      break;
    }
    case 7: {  // f+1 fast-clock backups — enough to co-opt view changes
      pbft::ReplicaBehavior replica;
      replica.timerSkew = 0.1;
      config.replicaBehaviors[1] = replica;
      config.replicaBehaviors[2] = replica;
      break;
    }
    default:
      break;
  }

  // Deterministic per scenario: re-running a point reproduces its outcome.
  config.seed = util::hashCombine(options_.baseSeed, space_.pointHash(point));
  return config;
}

pbft::RunResult PbftAttackExecutor::runConfigured(
    const pbft::DeploymentConfig& config, const Point* point) const {
  pbft::Deployment deployment(config);
  // Scheduled churn events reference their fault objects; keep them alive
  // for the duration of the run.
  std::vector<std::shared_ptr<fi::ChurnFault>> churnFaults;
  if (point != nullptr) {
    const auto dropPercent = space_.valueOf(*point, "drop_probability", 0);
    if (dropPercent > 0) {
      deployment.network().addFault(std::make_shared<fi::DropFault>(
          static_cast<double>(dropPercent) / 100.0));
    }
    const auto reorderPercent =
        space_.valueOf(*point, "reorder_intensity", 0);
    if (reorderPercent > 0) {
      deployment.network().addFault(std::make_shared<fi::ReorderFault>(
          static_cast<double>(reorderPercent) / 100.0, sim::msec(20)));
    }
    const auto tamperPercent =
        space_.valueOf(*point, "tamper_probability", 0);
    if (tamperPercent > 0) {
      deployment.network().addFault(std::make_shared<fi::TamperFault>(
          static_cast<double>(tamperPercent) / 100.0));
    }
    // Churn: scheduled crash–restart cycles against one replica. Target -1
    // disables the tool (index 0 of the choice dimension, so the dedup
    // baseline treats "no churn" as inactive); -2 is the protocol-aware
    // variant that re-acquires the current primary at every crash.
    const auto churnTarget = space_.valueOf(*point, "churn_target", -1);
    if (churnTarget == kChurnFollowPrimary ||
        (churnTarget >= 0 &&
         churnTarget < static_cast<std::int64_t>(config.pbft.replicaCount()))) {
      fi::ChurnFault::Options churn;
      if (churnTarget == kChurnFollowPrimary) {
        churn.dynamicTarget = [&deployment,
                               n = config.pbft.replicaCount()] {
          // The attacker's view of "who is primary": the highest view any
          // live replica has adopted. Crashed replicas hold stale views.
          util::ViewId view = 0;
          for (std::uint32_t r = 0; r < n; ++r) {
            const pbft::Replica& replica = deployment.replica(r);
            if (replica.alive()) view = std::max(view, replica.view());
          }
          return static_cast<util::NodeId>(view % n);
        };
      } else {
        churn.target = static_cast<util::NodeId>(churnTarget);
      }
      churn.firstCrash =
          sim::msec(space_.valueOf(*point, "churn_start_ms", 0));
      churn.downtime =
          sim::msec(space_.valueOf(*point, "churn_downtime_ms", 100));
      churn.period = sim::msec(space_.valueOf(*point, "churn_period_ms", 0));
      churnFaults.push_back(std::make_shared<fi::ChurnFault>(
          &deployment.simulator(), &deployment.network(), churn));
      churnFaults.back()->install();
    }
  }
  // Twins: mint two physical replicas per twinned identity behind a
  // deterministic partition schedule. Index 0 of twin_pairs disables the
  // tool, anchoring the dedup baseline; the fault objects own the twin
  // replicas, so they must outlive the run.
  std::vector<std::shared_ptr<fi::TwinFault>> twinFaults;
  if (point != nullptr) {
    const auto twinPairs = space_.valueOf(*point, "twin_pairs", 0);
    if (twinPairs > 0) {
      const auto n = static_cast<std::int64_t>(config.pbft.replicaCount());
      fi::TwinFault::Options twins;
      const std::int64_t first =
          std::clamp<std::int64_t>(space_.valueOf(*point, "twin_first", 0), 0,
                                   n - 1);
      for (std::int64_t i = 0; i < std::min(twinPairs, n); ++i) {
        twins.targets.push_back(static_cast<util::NodeId>((first + i) % n));
      }
      twins.activation =
          sim::msec(space_.valueOf(*point, "twin_start_ms", 0));
      twins.period = sim::msec(space_.valueOf(*point, "twin_period_ms", 0));
      twins.shape = space_.valueOf(*point, "twin_shape", 0) == 1
                        ? fi::TwinFault::Shape::kSplitHalf
                        : fi::TwinFault::Shape::kSplitParity;
      twinFaults.push_back(
          std::make_shared<fi::TwinFault>(&deployment, twins));
      twinFaults.back()->install();
    }
  }
  // Flood: an open-loop attack client pumping traffic at flood_rate.
  // Kind 0 (index 0 of the choice) disables the tool, so the dedup
  // baseline treats flood scenarios as active dimensions.
  std::unique_ptr<fi::FloodClient> flood;
  if (point != nullptr) {
    const auto floodKind = space_.valueOf(*point, "flood_kind", 0);
    if (floodKind > 0 && floodKind <= 4) {
      fi::FloodOptions options;
      options.kind = static_cast<fi::FloodKind>(floodKind);
      const auto rate = space_.valueOf(*point, "flood_rate", 1000);
      options.interval =
          rate > 0 ? std::max<sim::Time>(sim::sec(1) / rate, 1) : sim::msec(1);
      options.payloadBytes = static_cast<std::size_t>(
          std::max<std::int64_t>(space_.valueOf(*point, "flood_bytes", 1), 1));
      const auto target = space_.valueOf(*point, "flood_target", -1);
      options.target =
          target >= 0 &&
                  target < static_cast<std::int64_t>(config.pbft.replicaCount())
              ? static_cast<util::NodeId>(target)
              : util::kNoNode;
      flood = std::make_unique<fi::FloodClient>(
          config.pbft.replicaCount() + config.totalClients(), config.pbft,
          &deployment.keychain(), options);
      deployment.network().registerNode(flood.get());
      flood->install();
    }
  }
  return deployment.run();
}

double PbftAttackExecutor::baselineFor(std::uint32_t correctClients,
                                       std::uint32_t maliciousClients) {
  const auto key = std::make_pair(correctClients, maliciousClients);
  const auto it = baselineCache_.find(key);
  if (it != baselineCache_.end()) return it->second;

  pbft::DeploymentConfig config;
  config.pbft = options_.pbft;
  config.link = options_.link;
  config.clientRetx = options_.clientRetx;
  config.warmup = options_.warmup;
  config.measure = options_.measure;
  config.service = options_.service;
  config.correctClients = correctClients;
  // Tool-less malicious clients behave exactly like correct ones; keep them
  // so the offered load matches the attack run.
  config.maliciousClients = maliciousClients;
  config.seed = util::hashCombine(options_.baseSeed,
                                  util::hashCombine(correctClients + 1,
                                                    maliciousClients));

  const double throughput = runConfigured(config, nullptr).throughputRps;
  baselineCache_.emplace(key, throughput);
  return throughput;
}

Outcome PbftAttackExecutor::execute(const Point& point) {
  const pbft::DeploymentConfig config = buildConfig(point);
  const pbft::RunResult result = runConfigured(config, &point);
  ++executed_;

  Outcome outcome;
  outcome.throughputRps = result.throughputRps;
  outcome.avgLatencySec = result.avgLatencySec;
  outcome.viewChanges = result.viewChangesInitiated;
  outcome.safetyViolated = result.safetyViolated;
  if (result.safetyWitness) {
    outcome.safetyWitness = pbft::formatSafetyWitness(*result.safetyWitness);
  }
  outcome.restarts = result.restarts;
  outcome.recoveryLatencySec = result.recoveryLatencySec;
  outcome.queueDrops = result.queueDrops;
  outcome.quotaDrops = result.quotaDrops;

  const double baseline =
      baselineFor(config.correctClients, config.maliciousClients);
  outcome.impact =
      baseline > 0.0
          ? std::clamp(1.0 - result.throughputRps / baseline, 0.0, 1.0)
          : 0.0;
  return outcome;
}

Hyperspace makePaperMacHyperspace() {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mac_mask", 12));
  space.add(Dimension::range("correct_clients", 10, 250, 10));
  space.add(Dimension::choice("malicious_clients", {1, 2}));
  return space;
}

Hyperspace makeFigure3Subspace() {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mac_mask", 10));
  space.add(Dimension::range("correct_clients", 10, 100, 10));
  return space;
}

Hyperspace makeChurnHyperspace() {
  // Crash-timing exploration: which replica to cycle, when the first crash
  // lands (relative to checkpoint/view-change cadence), how long it stays
  // down, and whether it repeats. Index 0 of churn_target is -1 (tool off),
  // so the dedup baseline marks churn scenarios as active dimensions; -2 is
  // primary-tracking churn, the strongest crash-timing tool class.
  Hyperspace space;
  space.add(Dimension::choice("churn_target", {-1, 0, 1, 2, 3,
                                               kChurnFollowPrimary}));
  space.add(Dimension::range("churn_start_ms", 0, 2000, 250));
  space.add(Dimension::range("churn_downtime_ms", 50, 850, 100));
  space.add(Dimension::choice("churn_period_ms", {0, 400, 800}));
  space.add(Dimension::range("correct_clients", 10, 50, 10));
  return space;
}

Hyperspace makeFloodHyperspace() {
  // Resource-exhaustion exploration: which flood tool, how hard, how big,
  // and at whom. Index 0 of flood_kind disables the tool so non-flood
  // points anchor the dedup baseline. Rates bracket the bounded-ingress
  // service rate (~10k msgs/s/node with makeFloodExecutorOptions): 500/s is
  // background noise, 16000/s oversubscribes a shared queue outright.
  Hyperspace space;
  space.add(Dimension::choice("flood_kind", {0, 1, 2, 3, 4}));
  space.add(Dimension::choice("flood_rate", {500, 2000, 8000, 16000}));
  space.add(Dimension::choice("flood_bytes", {1, 256, 1024, 4096}));
  space.add(Dimension::choice("flood_target", {-1, 0, 1, 3}));
  space.add(Dimension::range("correct_clients", 10, 30, 10));
  return space;
}

Hyperspace makeTwinsHyperspace() {
  // Safety-hunting exploration: how many identities are twinned, where the
  // pairs sit relative to the view-0 primary, when the twins come online
  // (before warmup = divergence from sequence 1; later = divergence after
  // shared prefix + checkpoints), and the partition schedule. Index 0 of
  // twin_pairs is "twins off" so non-twin points anchor the dedup
  // baseline. One pair stays within f=1 — those points probe robustness;
  // two pairs exceed the bound and hunt conflicting commit certificates.
  Hyperspace space;
  space.add(Dimension::choice("twin_pairs", {0, 1, 2}));
  space.add(Dimension::choice("twin_first", {0, 1, 2, 3}));
  space.add(Dimension::choice("twin_start_ms", {0, 250, 500, 1000}));
  space.add(Dimension::choice("twin_period_ms", {0, 400, 900}));
  space.add(Dimension::choice("twin_shape", {0, 1}));
  space.add(Dimension::range("correct_clients", 10, 30, 10));
  return space;
}

PbftExecutorOptions makeFloodExecutorOptions(bool defended) {
  PbftExecutorOptions options;
  options.link.ingressCapacity = 64;
  options.link.ingressByteBudget = 32 * 1024;
  options.link.ingressServiceTime = sim::usec(100);
  if (defended) fi::enableFloodDefenses(options.pbft);
  return options;
}

}  // namespace avd::core
