// Executor binding AVD scenarios to simulated PBFT deployments.
//
// Dimensions are recognized by name, so the same executor serves every
// experiment in the paper (and the extensions):
//
//   "mac_mask"          grayBitmask — MAC-corruption bitmask for the
//                       malicious clients' generateMAC calls (§6)
//   "correct_clients"   range       — number of correct clients
//   "malicious_clients" choice      — number of malicious clients
//   "replica_behavior"  choice      — synthesized malicious-replica
//                       behaviour (protocol-aware tool class, §5):
//                       0 none, 1 slow primary, 2 slow primary + colluding
//                       client, 3 spurious view changes, 4 silent prepares,
//                       5 equivocating primary, 6 one fast-clock backup,
//                       7 f+1 fast-clock backups
//   "drop_probability"  range       — percent of all traffic dropped
//                       (network-control tool class, §2)
//   "reorder_intensity" range       — percent of messages delayed into a
//                       reorder window (message-reordering tool, §5)
//   "tamper_probability" range      — percent of messages with one random
//                       bit flipped (blind fuzzing, the weakest §4 tool)
//   "churn_target"      choice      — replica to crash–restart cycle
//                       (-1 = churn off, -2 = track the current primary)
//   "churn_start_ms"    range       — virtual time of the first crash
//   "churn_downtime_ms" range       — how long the replica stays down
//   "churn_period_ms"   choice      — crash-to-crash repeat period
//                       (0 = crash once)
//   "flood_kind"        choice      — resource-exhaustion tool class
//                       (0 = off, 1 request spam, 2 replay storm,
//                       3 oversized payloads, 4 status amplification)
//   "flood_rate"        choice      — flood messages per second
//   "flood_bytes"       choice      — operation payload size (oversized /
//                       replay tools)
//   "flood_target"      choice      — victim replica (-1 = broadcast to
//                       all replicas)
//   "twin_pairs"        choice      — twinned identities (0 = twins off;
//                       beyond f the safety oracle becomes reachable)
//   "twin_first"        choice      — first replica twinned (pairs take
//                       consecutive ids)
//   "twin_start_ms"     choice      — virtual time the twins come online
//   "twin_period_ms"    choice      — partition-side flip period (0 =
//                       static sides)
//   "twin_shape"        choice      — side assignment (0 parity, 1 halves)
//
// The impact metric is normalized damage: 1 − throughput / baseline, where
// the baseline is the same deployment with every tool disabled (cached per
// client population).
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "avd/executor.h"
#include "pbft/deployment.h"

namespace avd::core {

struct PbftExecutorOptions {
  /// PBFT protocol parameters. Timeouts default to a 10x scale-down of the
  /// 5 s production default so one test needs only ~2 virtual seconds; the
  /// attack dynamics depend on timeout/retransmission/latency *ratios*.
  pbft::Config pbft;
  sim::LinkModel link{sim::usec(500), sim::usec(100)};
  sim::Time clientRetx = sim::msec(100);
  sim::Time warmup = sim::msec(250);
  sim::Time measure = sim::msec(2000);
  pbft::ServiceKind service = pbft::ServiceKind::kCounter;
  std::uint64_t baseSeed = 1;
  /// Defaults when the hyperspace lacks the corresponding dimension.
  std::uint32_t defaultCorrectClients = 20;
  std::uint32_t defaultMaliciousClients = 1;

  PbftExecutorOptions() {
    pbft.f = 1;
    pbft.requestTimeout = sim::msec(500);
    pbft.viewChangeTimeout = sim::msec(500);
  }
};

/// churn_target value that re-resolves the victim to the current primary at
/// every crash instant (protocol-aware churn).
inline constexpr std::int64_t kChurnFollowPrimary = -2;

class PbftAttackExecutor final : public ScenarioExecutor {
 public:
  PbftAttackExecutor(Hyperspace space, PbftExecutorOptions options = {});

  Outcome execute(const Point& point) override;
  const Hyperspace& space() const noexcept override { return space_; }

  /// Baseline (no-attack) throughput for a client population; cached.
  double baselineFor(std::uint32_t correctClients,
                     std::uint32_t maliciousClients);

  std::uint64_t executedCount() const noexcept { return executed_; }
  const PbftExecutorOptions& options() const noexcept { return options_; }

  /// The deployment a point denotes (exposed for tests and debugging).
  pbft::DeploymentConfig buildConfig(const Point& point) const;

 private:
  pbft::RunResult runConfigured(const pbft::DeploymentConfig& config,
                                const Point* point) const;

  Hyperspace space_;
  PbftExecutorOptions options_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> baselineCache_;
  std::uint64_t executed_ = 0;
};

/// The paper's §6 experiment space: 4096 Gray-coded mask values x 25 client
/// counts (10..250 step 10) x {1,2} malicious clients = 204,800 scenarios.
Hyperspace makePaperMacHyperspace();

/// The Figure 3 subspace: 1024 mask values x client counts 10..100 step 10,
/// one malicious client.
Hyperspace makeFigure3Subspace();

/// Crash-timing exploration space: churn target / first-crash time /
/// downtime / repeat period as hyperspace dimensions, times a client-load
/// axis. The controller hill-climbs WHEN to crash a replica, not just
/// whether (e.g. a backup at a checkpoint boundary, the primary
/// mid-view-change).
Hyperspace makeChurnHyperspace();

/// Resource-exhaustion exploration space: flood tool class, rate, payload
/// size, and victim as hyperspace dimensions, times a client-load axis.
/// Pair it with a bounded-ingress LinkModel (makeFloodExecutorOptions) or
/// the floods vanish into the unbounded event queue.
Hyperspace makeFloodHyperspace();

/// Twins exploration space (the safety-hunting hyperspace): how many
/// identities run twinned (index 0 = off, anchoring the dedup baseline),
/// which replica the pairs start at, when the twins come online, and the
/// partition schedule's flip period and shape. At f=1 a single pair must
/// never trip the oracle; two pairs exceed the fault bound and make
/// conflicting commit certificates reachable.
Hyperspace makeTwinsHyperspace();

/// Executor options for the `pbft-flood` system: bounded per-node ingress
/// (64 messages / 32 KiB / 100 us service per message ≈ 10k msgs/s per
/// node) so resource exhaustion is observable. `defended` additionally
/// enables the full Aardvark-style defense profile (admission control +
/// fair scheduling + bounded queues) — the ablation pair.
PbftExecutorOptions makeFloodExecutorOptions(bool defended = false);

}  // namespace avd::core
