// Scenario execution interface.
//
// The controller is agnostic of the system under test: it hands a point to
// an executor, which instantiates the test configuration (via the tool
// plugins' parameters encoded in the point), runs the test against a fresh
// deployment and computes the impact metric — "the impact on the correct,
// unmodified nodes of the target system" (§3).
#pragma once

#include <cstdint>
#include <string>

#include "avd/hyperspace.h"

namespace avd::core {

struct Outcome {
  /// Normalized damage in [0, 1]: 0 = baseline performance, 1 = correct
  /// clients fully starved. This is the fitness Algorithm 1 maximizes.
  double impact = 0.0;
  double throughputRps = 0.0;
  double avgLatencySec = 0.0;
  std::uint64_t viewChanges = 0;
  bool safetyViolated = false;
  /// Compact rendering of the conflicting commit certificates when
  /// safetyViolated (see pbft::formatSafetyWitness); empty otherwise.
  std::string safetyWitness;
  /// Replica crash–restart cycles injected during the run (churn tool).
  std::uint64_t restarts = 0;
  /// Seconds from the last restart to the first correct-client completion
  /// after it (0 when the scenario had no restarts).
  double recoveryLatencySec = 0.0;
  /// Bounded-ingress overflow drops across all nodes (flood tools): the
  /// resource damage a flood inflicted at the network layer.
  std::uint64_t queueDrops = 0;
  /// Replica-side admission rejections (quota + oversized + bounded
  /// ordering queue) — nonzero only with the defenses enabled.
  std::uint64_t quotaDrops = 0;
};

class ScenarioExecutor {
 public:
  virtual ~ScenarioExecutor() = default;

  /// Runs the test scenario `point` (one full system re-initialization per
  /// call, per §3) and returns its measured outcome.
  virtual Outcome execute(const Point& point) = 0;

  /// The hyperspace this executor's points live in.
  virtual const Hyperspace& space() const noexcept = 0;
};

}  // namespace avd::core
