#include "avd/hyperspace.h"

#include <cassert>
#include <stdexcept>

#include "common/gray_code.h"
#include "common/hash.h"

namespace avd::core {

Dimension Dimension::range(std::string name, std::int64_t lo, std::int64_t hi,
                           std::int64_t step) {
  if (step <= 0 || hi < lo) throw std::invalid_argument("bad range dimension");
  Dimension dimension;
  dimension.name_ = std::move(name);
  dimension.kind_ = Kind::kRange;
  dimension.lo_ = lo;
  dimension.step_ = step;
  dimension.cardinality_ = static_cast<std::uint64_t>((hi - lo) / step) + 1;
  return dimension;
}

Dimension Dimension::grayBitmask(std::string name, std::uint32_t bits) {
  if (bits == 0 || bits > 63) throw std::invalid_argument("bad bitmask width");
  Dimension dimension;
  dimension.name_ = std::move(name);
  dimension.kind_ = Kind::kGrayBitmask;
  dimension.bits_ = bits;
  dimension.cardinality_ = std::uint64_t{1} << bits;
  return dimension;
}

Dimension Dimension::choice(std::string name,
                            std::vector<std::int64_t> values) {
  if (values.empty()) throw std::invalid_argument("empty choice dimension");
  Dimension dimension;
  dimension.name_ = std::move(name);
  dimension.kind_ = Kind::kChoice;
  dimension.choices_ = std::move(values);
  dimension.cardinality_ = dimension.choices_.size();
  return dimension;
}

std::int64_t Dimension::value(std::uint64_t index) const {
  assert(index < cardinality_);
  switch (kind_) {
    case Kind::kRange:
      return lo_ + static_cast<std::int64_t>(index) * step_;
    case Kind::kGrayBitmask:
      // Index space is Gray-decoded: stepping the index by one flips exactly
      // one bit of the produced mask.
      return static_cast<std::int64_t>(util::toGray(index));
    case Kind::kChoice:
      return choices_[index];
  }
  return 0;
}

std::size_t Hyperspace::add(Dimension dimension) {
  dimensions_.push_back(std::move(dimension));
  return dimensions_.size() - 1;
}

std::ptrdiff_t Hyperspace::indexOf(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    if (dimensions_[i].name() == name) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

std::uint64_t Hyperspace::totalScenarios() const noexcept {
  std::uint64_t total = 1;
  for (const Dimension& dimension : dimensions_) {
    const std::uint64_t cardinality = dimension.cardinality();
    if (cardinality != 0 && total > UINT64_MAX / cardinality) {
      return UINT64_MAX;  // saturate
    }
    total *= cardinality;
  }
  return total;
}

bool Hyperspace::valid(const Point& point) const noexcept {
  if (point.size() != dimensions_.size()) return false;
  for (std::size_t i = 0; i < point.size(); ++i) {
    if (point[i] >= dimensions_[i].cardinality()) return false;
  }
  return true;
}

Point Hyperspace::samplePoint(util::Rng& rng) const {
  Point point(dimensions_.size());
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    point[i] = rng.below(dimensions_[i].cardinality());
  }
  return point;
}

std::uint64_t Hyperspace::flatten(const Point& point) const {
  assert(valid(point));
  std::uint64_t linear = 0;
  for (std::size_t i = dimensions_.size(); i-- > 0;) {
    linear = linear * dimensions_[i].cardinality() + point[i];
  }
  return linear;
}

Point Hyperspace::unflatten(std::uint64_t linear) const {
  Point point(dimensions_.size());
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    const std::uint64_t cardinality = dimensions_[i].cardinality();
    point[i] = linear % cardinality;
    linear /= cardinality;
  }
  return point;
}

std::uint64_t Hyperspace::pointHash(const Point& point) const noexcept {
  std::uint64_t h = util::fnv1a("avd.point");
  for (const std::uint64_t index : point) h = util::hashCombine(h, index);
  return h;
}

std::int64_t Hyperspace::valueOf(const Point& point, std::string_view name,
                                 std::int64_t fallback) const {
  const std::ptrdiff_t index = indexOf(name);
  if (index < 0) return fallback;
  return dimensions_[static_cast<std::size_t>(index)].value(
      point.at(static_cast<std::size_t>(index)));
}

}  // namespace avd::core
