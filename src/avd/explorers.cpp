#include "avd/explorers.h"

#include <algorithm>
#include <thread>

namespace avd::core {

Controller makeRandomExplorer(ScenarioExecutor& executor, std::uint64_t seed) {
  ControllerOptions options;
  options.initialRandomTests = SIZE_MAX;  // never switch to feedback mode
  return Controller(executor, defaultPlugins(executor.space()), options, seed);
}

std::vector<ExhaustiveResult> ExhaustiveExplorer::exploreAll(
    std::size_t threads) {
  // Probe one executor for the space geometry.
  const std::unique_ptr<ScenarioExecutor> probe = factory_();
  const Hyperspace& space = probe->space();
  const std::uint64_t total = space.totalScenarios();

  std::vector<ExhaustiveResult> results(total);
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min<std::size_t>(threads, total);

  // Contiguous chunks, one worker + one executor each: executors need no
  // synchronization and results land in disjoint slots.
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t worker = 0; worker < threads; ++worker) {
    const std::uint64_t begin = total * worker / threads;
    const std::uint64_t end = total * (worker + 1) / threads;
    workers.emplace_back([this, begin, end, &results] {
      const std::unique_ptr<ScenarioExecutor> executor = factory_();
      for (std::uint64_t linear = begin; linear < end; ++linear) {
        Point point = executor->space().unflatten(linear);
        results[linear].outcome = executor->execute(point);
        results[linear].point = std::move(point);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return results;
}

}  // namespace avd::core
