#include "avd/plugin.h"

#include <algorithm>
#include <cmath>

#include "common/gray_code.h"

namespace avd::core {

namespace {

/// Distance-scaled step size: at least 1, at most half the dimension.
std::uint64_t stepSize(double distance, std::uint64_t cardinality,
                       util::Rng& rng) {
  const double maxStep =
      std::max(1.0, static_cast<double>(cardinality) / 2.0 * distance);
  // Uniform in [1, maxStep]: a "strong" mutation may still land nearby, but
  // its expected displacement grows with distance.
  return 1 + rng.below(static_cast<std::uint64_t>(maxStep));
}

/// Reflects `index + delta` (signed) back into [0, cardinality).
std::uint64_t reflect(std::uint64_t index, std::int64_t delta,
                      std::uint64_t cardinality) {
  std::int64_t v = static_cast<std::int64_t>(index) + delta;
  const auto hi = static_cast<std::int64_t>(cardinality) - 1;
  while (v < 0 || v > hi) {
    if (v < 0) v = -v;
    if (v > hi) v = 2 * hi - v;
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

void IndexStepPlugin::mutate(const Hyperspace& space, Point& point,
                             double distance, util::Rng& rng) const {
  const Dimension& dimension = space.dimension(dimension_);
  if (dimension.cardinality() < 2) return;
  const std::uint64_t step = stepSize(distance, dimension.cardinality(), rng);
  const std::int64_t delta = rng.chance(0.5)
                                 ? static_cast<std::int64_t>(step)
                                 : -static_cast<std::int64_t>(step);
  point[dimension_] =
      reflect(point[dimension_], delta, dimension.cardinality());
}

void ResamplePlugin::mutate(const Hyperspace& space, Point& point,
                            double distance, util::Rng& rng) const {
  const Dimension& dimension = space.dimension(dimension_);
  if (dimension.cardinality() < 2) return;
  // Low distance -> usually keep the parent's value; high -> resample.
  if (!rng.chance(std::max(distance, 0.15))) return;
  std::uint64_t index = rng.below(dimension.cardinality() - 1);
  if (index >= point[dimension_]) ++index;  // exclude the current value
  point[dimension_] = index;
}

void BinaryMaskFlipPlugin::mutate(const Hyperspace& space, Point& point,
                                  double distance, util::Rng& rng) const {
  const Dimension& dimension = space.dimension(dimension_);
  const std::uint32_t bits = dimension.bits();
  if (bits == 0) return;
  const auto flips = static_cast<std::uint32_t>(std::max(
      1.0, std::round(distance * static_cast<double>(bits))));
  // Work in mask (value) space, then map back to the Gray index that
  // produces the new mask.
  std::uint64_t mask = util::toGray(point[dimension_]);
  for (std::uint32_t i = 0; i < flips; ++i) {
    mask ^= std::uint64_t{1} << rng.below(bits);
  }
  point[dimension_] = util::fromGray(mask);
}

std::vector<PluginPtr> defaultPlugins(const Hyperspace& space) {
  std::vector<PluginPtr> plugins;
  for (std::size_t i = 0; i < space.dimensionCount(); ++i) {
    const Dimension& dimension = space.dimension(i);
    const std::string pluginName = "step:" + dimension.name();
    switch (dimension.kind()) {
      case Dimension::Kind::kRange:
      case Dimension::Kind::kGrayBitmask:
        plugins.push_back(
            std::make_shared<IndexStepPlugin>(pluginName, i));
        break;
      case Dimension::Kind::kChoice:
        plugins.push_back(std::make_shared<ResamplePlugin>(
            "resample:" + dimension.name(), i));
        break;
    }
  }
  return plugins;
}

}  // namespace avd::core
