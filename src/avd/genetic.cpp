#include "avd/genetic.h"

#include <algorithm>
#include <cassert>

namespace avd::core {

GeneticExplorer::GeneticExplorer(ScenarioExecutor& executor,
                                 std::vector<PluginPtr> plugins,
                                 GeneticOptions options, std::uint64_t seed)
    : executor_(executor),
      plugins_(std::move(plugins)),
      options_(options),
      rng_(seed) {
  assert(!plugins_.empty());
  assert(options_.populationSize >= 2);
}

void GeneticExplorer::evaluate(Point point, const char* origin) {
  seen_.insert(executor_.space().pointHash(point));
  const Outcome outcome = executor_.execute(point);
  maxImpact_ = std::max(maxImpact_, outcome.impact);

  nextGeneration_.push_back(Individual{point, outcome.impact});

  TestRecord record;
  record.point = std::move(point);
  record.outcome = outcome;
  record.generatedBy = origin;
  record.bestImpactSoFar = maxImpact_;
  history_.push_back(std::move(record));
}

const GeneticExplorer::Individual& GeneticExplorer::tournamentSelect() {
  const Individual* best = nullptr;
  for (std::size_t i = 0; i < options_.tournament; ++i) {
    const Individual& candidate =
        population_[rng_.below(population_.size())];
    if (best == nullptr || candidate.impact > best->impact) {
      best = &candidate;
    }
  }
  return *best;
}

Point GeneticExplorer::crossover(const Point& a, const Point& b) {
  Point child(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    child[i] = rng_.chance(0.5) ? a[i] : b[i];
  }
  return child;
}

void GeneticExplorer::runTests(std::size_t count) {
  std::size_t budget = count;
  while (budget > 0) {
    // Seed generation: uniformly random individuals.
    if (population_.empty() &&
        nextGeneration_.size() < options_.populationSize) {
      evaluate(executor_.space().samplePoint(rng_), "seed");
      --budget;
      if (nextGeneration_.size() == options_.populationSize) {
        population_ = std::move(nextGeneration_);
        nextGeneration_.clear();
        ++generation_;
      }
      continue;
    }

    // Breed one child; once a full generation has been evaluated, it
    // replaces its parents (generational GA).
    const Point& parentA = tournamentSelect().point;
    const Point& parentB = tournamentSelect().point;
    Point child = rng_.chance(options_.crossoverRate)
                      ? crossover(parentA, parentB)
                      : parentA;
    if (rng_.chance(options_.mutationRate)) {
      const PluginPtr& plugin = plugins_[rng_.below(plugins_.size())];
      // GA mutation strength is not fitness-adaptive; use a mid-range
      // distance and let selection pressure do the focusing.
      plugin->mutate(executor_.space(), child, 0.2, rng_);
    }
    // Re-sample duplicates a few times; duplicates still cost budget if
    // they persist (the GA has no global dedup by design, but re-running
    // an identical deterministic test teaches nothing).
    for (int attempt = 0;
         attempt < 4 && seen_.contains(executor_.space().pointHash(child));
         ++attempt) {
      const PluginPtr& plugin = plugins_[rng_.below(plugins_.size())];
      plugin->mutate(executor_.space(), child, 0.5, rng_);
    }

    evaluate(std::move(child), "genetic");
    --budget;
    if (nextGeneration_.size() == options_.populationSize) {
      population_ = std::move(nextGeneration_);
      nextGeneration_.clear();
      ++generation_;
    }
  }
}

std::optional<std::size_t> GeneticExplorer::testsToReach(
    double threshold) const {
  for (std::size_t i = 0; i < history_.size(); ++i) {
    if (history_[i].outcome.impact >= threshold) return i + 1;
  }
  return std::nullopt;
}

}  // namespace avd::core
