#include "avd/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "avd/gen/protocol_events.h"

namespace avd::core {

namespace {

void appendDouble(std::string& out, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out += buffer;
}

}  // namespace

std::string historyCsv(const Hyperspace& space,
                       const std::vector<TestRecord>& history) {
  std::string out = "test,generatedBy";
  for (std::size_t d = 0; d < space.dimensionCount(); ++d) {
    out += ',';
    out += space.dimension(d).name();
  }
  out += ",impact,bestImpact,throughputRps,avgLatencySec,";
  out += gen::kJournalKeyViewChanges;
  out += ',';
  out += gen::kJournalKeyRestarts;
  out += ',';
  out += gen::kJournalKeyRecoveryLatencySec;
  out += ',';
  out += gen::kJournalKeyQueueDrops;
  out += ',';
  out += gen::kJournalKeyQuotaDrops;
  out += ",safetyViolated,";
  out += gen::kJournalKeySafetyWitness;
  out += '\n';

  for (std::size_t i = 0; i < history.size(); ++i) {
    const TestRecord& record = history[i];
    out += std::to_string(i + 1);
    out += ',';
    out += record.generatedBy;
    for (std::size_t d = 0; d < space.dimensionCount(); ++d) {
      out += ',';
      out += std::to_string(space.dimension(d).value(record.point[d]));
    }
    out += ',';
    appendDouble(out, record.outcome.impact);
    out += ',';
    appendDouble(out, record.bestImpactSoFar);
    out += ',';
    appendDouble(out, record.outcome.throughputRps);
    out += ',';
    appendDouble(out, record.outcome.avgLatencySec);
    out += ',';
    out += std::to_string(record.outcome.viewChanges);
    out += ',';
    out += std::to_string(record.outcome.restarts);
    out += ',';
    appendDouble(out, record.outcome.recoveryLatencySec);
    out += ',';
    out += std::to_string(record.outcome.queueDrops);
    out += ',';
    out += std::to_string(record.outcome.quotaDrops);
    out += ',';
    out += record.outcome.safetyViolated ? '1' : '0';
    out += ',';
    // formatSafetyWitness never emits commas or quotes, so the cell needs
    // no CSV escaping.
    out += record.outcome.safetyWitness;
    out += '\n';
  }
  return out;
}

std::string summaryJson(const Hyperspace& space,
                        const std::vector<TestRecord>& history,
                        double strongThreshold) {
  const TestRecord* best = nullptr;
  std::size_t firstStrong = 0;
  std::size_t strong = 0;
  std::size_t safetyViolations = 0;
  double maxImpact = 0;
  for (std::size_t i = 0; i < history.size(); ++i) {
    const TestRecord& record = history[i];
    if (best == nullptr || record.outcome.impact > best->outcome.impact) {
      best = &record;
    }
    maxImpact = std::max(maxImpact, record.outcome.impact);
    if (record.outcome.safetyViolated) ++safetyViolations;
    if (record.outcome.impact >= strongThreshold) {
      ++strong;
      if (firstStrong == 0) firstStrong = i + 1;
    }
  }

  std::string out = "{\n";
  out += "  \"tests\": " + std::to_string(history.size()) + ",\n";
  out += "  \"maxImpact\": ";
  appendDouble(out, maxImpact);
  out += ",\n  \"safetyViolations\": " + std::to_string(safetyViolations);
  out += ",\n  \"strongThreshold\": ";
  appendDouble(out, strongThreshold);
  out += ",\n  \"strongTests\": " + std::to_string(strong);
  out += ",\n  \"firstStrongTest\": " +
         (firstStrong > 0 ? std::to_string(firstStrong) : std::string("null"));
  out += ",\n  \"best\": ";
  if (best == nullptr) {
    out += "null";
  } else {
    out += "{\n";
    for (std::size_t d = 0; d < space.dimensionCount(); ++d) {
      out += "    \"" + space.dimension(d).name() + "\": " +
             std::to_string(space.dimension(d).value(best->point[d])) + ",\n";
    }
    out += "    \"impact\": ";
    appendDouble(out, best->outcome.impact);
    out += ",\n    \"throughputRps\": ";
    appendDouble(out, best->outcome.throughputRps);
    out += ",\n    \"" + std::string(gen::kJournalKeyRestarts) +
           "\": " + std::to_string(best->outcome.restarts);
    out += ",\n    \"" + std::string(gen::kJournalKeyRecoveryLatencySec) +
           "\": ";
    appendDouble(out, best->outcome.recoveryLatencySec);
    out += ",\n    \"generatedBy\": \"" + best->generatedBy + "\"\n  }";
  }
  out += "\n}\n";
  return out;
}

bool writeFile(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file.write(contents.data(),
             static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(file);
}

}  // namespace avd::core
