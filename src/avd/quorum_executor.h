// Executor binding AVD scenarios to the quorum KV store — the "evaluate an
// API before deployment" use case of §2. Impact here is the worse of two
// damages: lost throughput (availability attacks) and the stale-read
// fraction (correctness attacks — data an honest client wrote and can no
// longer see).
//
// Dimensions (by name):
//   "ts_inflation_log2" range 0..40 — poisoned writes carry a version of
//                       now + 2^v microseconds (0 = honest client);
//   "victim_keys"       range       — how many honest keys get poisoned;
//   "q_replica_behavior" choice     — 0 none, 1 one silent replica,
//                       2 N-W+1 silent replicas (quorum starvation),
//                       3 one fabricating replica (unauthenticated reads).
#pragma once

#include <optional>

#include "avd/executor.h"
#include "quorum/deployment.h"

namespace avd::core {

struct QuorumExecutorOptions {
  quorum::QuorumConfig base;  // replicas/quorums/clients/windows
  std::uint64_t baseSeed = 1;
};

class QuorumApiExecutor final : public ScenarioExecutor {
 public:
  QuorumApiExecutor(Hyperspace space, QuorumExecutorOptions options = {});

  Outcome execute(const Point& point) override;
  const Hyperspace& space() const noexcept override { return space_; }

  quorum::QuorumConfig buildConfig(const Point& point) const;
  double baselineOps();

 private:
  Hyperspace space_;
  QuorumExecutorOptions options_;
  std::optional<double> baselineOps_;
};

/// The assessment space used by the bench and example.
Hyperspace makeQuorumApiHyperspace();

}  // namespace avd::core
