// The hyperspace of test parameters (§3).
//
// "Each dimension in the hyperspace represents the set of values that can be
// assigned to a particular parameter in the test." A point in the space is
// one test scenario. Dimensions come in three flavours:
//
//  * range      — evenly spaced integers [lo, lo+step, ..., <= hi], e.g. the
//                 number of correct clients (10..250 step 10);
//  * grayBitmask— a b-bit bitmask addressed through reflected Gray code, so
//                 that adjacent indices differ in exactly one mask bit (§6:
//                 "the 12-bit number is encoded in Gray code");
//  * choice     — an explicit list of values, e.g. {1, 2} malicious clients.
//
// Points are index vectors; dimension objects translate indices to concrete
// parameter values. Index space (not value space) is what mutation plugins
// step through, which is the whole purpose of the Gray encoding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace avd::core {

/// A point: one index per dimension.
using Point = std::vector<std::uint64_t>;

class Dimension {
 public:
  enum class Kind { kRange, kGrayBitmask, kChoice };

  static Dimension range(std::string name, std::int64_t lo, std::int64_t hi,
                         std::int64_t step = 1);
  static Dimension grayBitmask(std::string name, std::uint32_t bits);
  static Dimension choice(std::string name, std::vector<std::int64_t> values);

  const std::string& name() const noexcept { return name_; }
  Kind kind() const noexcept { return kind_; }

  /// Number of distinct indices.
  std::uint64_t cardinality() const noexcept { return cardinality_; }

  /// Concrete parameter value at `index` (< cardinality()).
  std::int64_t value(std::uint64_t index) const;

  /// Width of a grayBitmask dimension (0 otherwise).
  std::uint32_t bits() const noexcept { return bits_; }

 private:
  Dimension() = default;

  std::string name_;
  Kind kind_ = Kind::kRange;
  std::uint64_t cardinality_ = 0;
  std::int64_t lo_ = 0;
  std::int64_t step_ = 1;
  std::uint32_t bits_ = 0;
  std::vector<std::int64_t> choices_;
};

class Hyperspace {
 public:
  /// Adds a dimension; returns its index.
  std::size_t add(Dimension dimension);

  std::size_t dimensionCount() const noexcept { return dimensions_.size(); }
  const Dimension& dimension(std::size_t index) const {
    return dimensions_.at(index);
  }
  /// Index of the dimension with `name`; -1 when absent.
  std::ptrdiff_t indexOf(std::string_view name) const noexcept;

  /// Product of cardinalities, saturating at UINT64_MAX.
  std::uint64_t totalScenarios() const noexcept;

  bool valid(const Point& point) const noexcept;

  /// Uniformly random point.
  Point samplePoint(util::Rng& rng) const;

  /// Bijective linearization for exhaustive sweeps (requires
  /// totalScenarios() to not saturate). Dimension 0 varies fastest.
  std::uint64_t flatten(const Point& point) const;
  Point unflatten(std::uint64_t linear) const;

  /// Order-sensitive hash of a point, for visited-set bookkeeping.
  std::uint64_t pointHash(const Point& point) const noexcept;

  /// Concrete value of dimension `name` at `point`; `fallback` when the
  /// space has no such dimension.
  std::int64_t valueOf(const Point& point, std::string_view name,
                       std::int64_t fallback) const;

 private:
  std::vector<Dimension> dimensions_;
};

}  // namespace avd::core
