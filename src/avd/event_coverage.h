// Runtime coverage over the generated protocol-event taxonomy.
//
// Maps one deployment run onto src/avd/gen/protocol_events.h: message
// events are read from the per-kind delivery counters, transition events
// from the replica/network stats the extractor identified as each
// transition's observing counter. The conformance test sums these counts
// across representative fault scenarios and asserts every taxonomy entry
// is exercised at least once — the coverage signal a coverage-guided
// campaign will optimize.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "avd/gen/protocol_events.h"
#include "pbft/deployment.h"

namespace avd::core {

/// Observed occurrences per ProtocolEvent, indexed by the enum value.
using EventCounts = std::array<std::uint64_t, gen::kProtocolEventCount>;

/// Counts every taxonomy event observed in one run.
[[nodiscard]] inline EventCounts eventCounts(const pbft::RunResult& result) {
  EventCounts counts{};
  for (const gen::ProtocolEventInfo& info : gen::kProtocolEvents) {
    std::uint64_t value = 0;
    if (info.kind == "message") {
      const auto it = result.network.deliveredByKind.find(info.wireKind);
      if (it != result.network.deliveredByKind.end()) value = it->second;
    } else {
      switch (info.event) {
        case gen::ProtocolEvent::kViewChange:
          value = result.viewChangesInitiated;
          break;
        case gen::ProtocolEvent::kCheckpoint:
          value = result.checkpointsTaken;
          break;
        case gen::ProtocolEvent::kStateTransfer:
          value = result.stateTransfers;
          break;
        case gen::ProtocolEvent::kParkUnpark:
          value = result.prePreparesParked;
          break;
        case gen::ProtocolEvent::kQuotaDrop:
          value = result.quotaDrops;
          break;
        case gen::ProtocolEvent::kIngressOverflow:
          value = result.network.droppedQueueOverflow;
          break;
        case gen::ProtocolEvent::kCrashRejoin:
          value = result.restarts;
          break;
        default:
          break;  // message events handled above
      }
    }
    counts[static_cast<std::size_t>(info.event)] = value;
  }
  return counts;
}

/// Element-wise sum, for aggregating coverage across scenario runs.
[[nodiscard]] inline EventCounts addCounts(const EventCounts& a,
                                           const EventCounts& b) {
  EventCounts out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

}  // namespace avd::core
