#include "avd/controller.h"

#include <algorithm>
#include <cassert>

namespace avd::core {

Controller::Controller(ScenarioExecutor& executor,
                       std::vector<PluginPtr> plugins,
                       ControllerOptions options, std::uint64_t seed)
    : executor_(executor),
      plugins_(std::move(plugins)),
      options_(options),
      rng_(seed),
      pluginStats_(plugins_.size()) {
  assert(!plugins_.empty());
}

void Controller::runTests(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    GeneratedScenario scenario = acquireScenario();
    const Outcome outcome = executor_.execute(scenario.point);
    reportOutcome(std::move(scenario), outcome);
  }
}

GeneratedScenario Controller::acquireScenario() {
  if (queue_.empty()) generateScenario();
  assert(!queue_.empty());
  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  // Normally already in Ω ∪ Ψ from generation; the insert matters for the
  // space-exhaustion fallback, which hands out a deliberate duplicate.
  seen_.insert(executor_.space().pointHash(pending.point));
  ++inFlight_;
  return GeneratedScenario{std::move(pending.point),
                           std::move(pending.generatedBy),
                           pending.parentImpact, pending.pluginIndex};
}

std::string Controller::generateScenario() {
  // Battleships opening: seed the landscape with random shots, and fall
  // back to random whenever Π is still empty. In-flight scenarios count
  // toward the opening budget so a W-wide batch driver still fires exactly
  // `initialRandomTests` opening shots.
  if (history_.size() + queue_.size() + inFlight_ <
          options_.initialRandomTests ||
      top_.empty()) {
    queue_.push_back(Pending{randomNovelPoint(), "random", 0.0, -1});
    return "random";
  }

  for (std::size_t attempt = 0; attempt < options_.maxGenerationAttempts;
       ++attempt) {
    const TopScenario& parent = sampleParent();              // line 1
    const std::size_t pluginIndex = samplePlugin();          // line 2
    // Line 3, with a small floor: even the current best parent must yield a
    // *different* child ("slight mutations"), so the distance never reaches
    // exactly zero. When line 5's novelty check keeps rejecting children
    // (the parent's close neighbourhood is exhausted), the distance
    // escalates so the mutation reaches past explored territory instead of
    // degenerating into random sampling.
    const double escalation = static_cast<double>(attempt) /
                              static_cast<double>(options_.maxGenerationAttempts);
    const double mutateDistance =
        maxImpact_ > 0.0
            ? std::clamp(
                  std::max(1.0 - parent.impact / maxImpact_, escalation),
                  0.02, 1.0)
            : 1.0;
    Point child = parent.point;
    plugins_[pluginIndex]->mutate(executor_.space(), child, mutateDistance,
                                  rng_);                     // line 4
    const std::uint64_t hash = executor_.space().pointHash(child);
    if (seen_.insert(hash).second) {                         // line 5
      queue_.push_back(Pending{std::move(child),
                               std::string(plugins_[pluginIndex]->name()),
                               parent.impact,
                               static_cast<std::ptrdiff_t>(pluginIndex)});
      return std::string(plugins_[pluginIndex]->name());
    }
  }

  // Every mutation re-visited explored territory; fire a fresh random shot.
  queue_.push_back(Pending{randomNovelPoint(), "random", 0.0, -1});
  return "random";
}

Point Controller::randomNovelPoint() {
  for (std::size_t attempt = 0; attempt < 64; ++attempt) {
    Point point = executor_.space().samplePoint(rng_);
    if (seen_.insert(executor_.space().pointHash(point)).second) return point;
  }
  // The space is almost exhausted; accept a duplicate rather than spin.
  return executor_.space().samplePoint(rng_);
}

void Controller::reportOutcome(GeneratedScenario scenario,
                               const Outcome& outcome) {
  assert(inFlight_ > 0);
  --inFlight_;

  if (scenario.pluginIndex >= 0) {
    PluginStats& stats =
        pluginStats_[static_cast<std::size_t>(scenario.pluginIndex)];
    ++stats.timesChosen;
    stats.gainSum += outcome.impact - scenario.parentImpact;
  }

  maxImpact_ = std::max(maxImpact_, outcome.impact);
  insertTop(scenario.point, outcome.impact);

  TestRecord record;
  record.point = std::move(scenario.point);
  record.outcome = outcome;
  record.generatedBy = std::move(scenario.generatedBy);
  record.bestImpactSoFar = maxImpact_;
  history_.push_back(std::move(record));
}

const Controller::TopScenario& Controller::sampleParent() {
  assert(!top_.empty());
  // Sharpened impact-proportional sampling (squared weights): "test
  // scenarios that have had a large impact ... will be chosen more often
  // than those with little impact". The floor keeps zero-impact parents in
  // play — they may sit next to undiscovered structure.
  constexpr double kFloor = 0.02;
  const double mu = std::max(maxImpact_, 1e-9);
  const auto weight = [&](const TopScenario& s) {
    // Normalize by µ so relative quality drives selection even while all
    // impacts are small; the 4th power strongly favours the frontier.
    const double q = s.impact / mu;
    return q * q * q * q + kFloor;
  };
  double total = 0.0;
  for (const TopScenario& scenario : top_) total += weight(scenario);
  double roll = rng_.uniform() * total;
  for (const TopScenario& scenario : top_) {
    roll -= weight(scenario);
    if (roll <= 0.0) return scenario;
  }
  return top_.back();
}

std::size_t Controller::samplePlugin() {
  if (!options_.pluginFitnessWeighting || plugins_.size() == 1) {
    return static_cast<std::size_t>(rng_.below(plugins_.size()));
  }
  // Fitnex-style: plugins whose mutations historically increased impact are
  // chosen more often; unexplored plugins start at the neutral weight 1.
  constexpr double kFloor = 0.1;
  double total = 0.0;
  std::vector<double> weights(plugins_.size());
  for (std::size_t i = 0; i < plugins_.size(); ++i) {
    weights[i] = std::max(kFloor, 1.0 + pluginStats_[i].averageGain());
    total += weights[i];
  }
  double roll = rng_.uniform() * total;
  for (std::size_t i = 0; i < plugins_.size(); ++i) {
    roll -= weights[i];
    if (roll <= 0.0) return i;
  }
  return plugins_.size() - 1;
}

void Controller::insertTop(const Point& point, double impact) {
  const auto position = std::find_if(
      top_.begin(), top_.end(),
      [impact](const TopScenario& s) { return s.impact < impact; });
  top_.insert(position, TopScenario{point, impact});
  if (top_.size() > options_.topSetSize) top_.pop_back();
}

std::optional<TestRecord> Controller::best() const {
  const auto it = std::max_element(
      history_.begin(), history_.end(),
      [](const TestRecord& a, const TestRecord& b) {
        return a.outcome.impact < b.outcome.impact;
      });
  if (it == history_.end()) return std::nullopt;
  return *it;
}

std::optional<std::size_t> Controller::testsToReach(double threshold) const {
  for (std::size_t i = 0; i < history_.size(); ++i) {
    if (history_[i].outcome.impact >= threshold) return i + 1;
  }
  return std::nullopt;
}

}  // namespace avd::core
