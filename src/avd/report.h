// Result export: CSV for the per-test history (one row per executed
// scenario, ready for gnuplot/pandas) and a compact JSON summary. Used by
// the CLI and available to any embedding program.
#pragma once

#include <string>
#include <vector>

#include "avd/controller.h"
#include "avd/hyperspace.h"

namespace avd::core {

/// CSV with header:
///   test,generatedBy,<dim names...>,impact,bestImpact,throughputRps,
///   avgLatencySec,viewChanges,restarts,recoveryLatencySec,safetyViolated
std::string historyCsv(const Hyperspace& space,
                       const std::vector<TestRecord>& history);

/// One-object JSON summary: budget, max impact, first crossing of the
/// given threshold, best point (by dimension name), strong-test fraction.
std::string summaryJson(const Hyperspace& space,
                        const std::vector<TestRecord>& history,
                        double strongThreshold = 0.9);

/// Writes a string to a file; returns false (and leaves no partial file
/// guarantees) on I/O failure.
bool writeFile(const std::string& path, const std::string& contents);

}  // namespace avd::core
