#include "avd/quorum_executor.h"

#include <algorithm>

#include "common/hash.h"

namespace avd::core {

QuorumApiExecutor::QuorumApiExecutor(Hyperspace space,
                                     QuorumExecutorOptions options)
    : space_(std::move(space)), options_(std::move(options)) {}

quorum::QuorumConfig QuorumApiExecutor::buildConfig(const Point& point) const {
  quorum::QuorumConfig config = options_.base;

  const auto inflationLog2 = space_.valueOf(point, "ts_inflation_log2", 0);
  if (inflationLog2 > 0) {
    config.maliciousClients = std::max(1u, config.maliciousClients);
    config.maliciousBehavior.timestampInflation =
        sim::Time{1} << std::min<std::int64_t>(inflationLog2, 62);
    config.maliciousBehavior.victimKeys = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, space_.valueOf(point, "victim_keys", 1)));
    // Cycle fast enough to cover every victim key within the warmup.
    config.maliciousBehavior.poisonInterval = sim::msec(30);
  }

  switch (space_.valueOf(point, "q_replica_behavior", 0)) {
    case 0:
      break;
    case 1: {  // one silent replica: inside the quorum slack
      quorum::QReplicaBehavior silent;
      silent.silent = true;
      config.replicaBehaviors[config.replicas - 1] = silent;
      break;
    }
    case 2: {  // N-W+1 silent replicas: write quorum unreachable
      quorum::QReplicaBehavior silent;
      silent.silent = true;
      const std::uint32_t count = config.replicas - config.writeQuorum + 1;
      for (std::uint32_t i = 0; i < count; ++i) {
        config.replicaBehaviors[config.replicas - 1 - i] = silent;
      }
      break;
    }
    case 3: {  // one fabricating replica
      quorum::QReplicaBehavior fabricator;
      fabricator.fabricateReads = true;
      config.replicaBehaviors[config.replicas - 1] = fabricator;
      break;
    }
    default:
      break;
  }

  config.seed = util::hashCombine(options_.baseSeed, space_.pointHash(point));
  return config;
}

double QuorumApiExecutor::baselineOps() {
  if (!baselineOps_) {
    quorum::QuorumConfig config = options_.base;
    config.seed = util::hashCombine(options_.baseSeed, 0x9e3779b9);
    baselineOps_ = quorum::runQuorumScenario(config).opsPerSec;
  }
  return *baselineOps_;
}

Outcome QuorumApiExecutor::execute(const Point& point) {
  const quorum::QuorumResult result =
      quorum::runQuorumScenario(buildConfig(point));

  Outcome outcome;
  outcome.throughputRps = result.opsPerSec;
  outcome.avgLatencySec = result.avgLatencySec;
  const double baseline = baselineOps();
  const double throughputDamage =
      baseline > 0
          ? std::clamp(1.0 - result.opsPerSec / baseline, 0.0, 1.0)
          : 0.0;
  // Correctness damage counts fully: serving poisoned data at full speed is
  // at least as bad as serving nothing.
  outcome.impact = std::max(throughputDamage, result.staleFraction);
  return outcome;
}

Hyperspace makeQuorumApiHyperspace() {
  Hyperspace space;
  space.add(Dimension::range("ts_inflation_log2", 0, 40, 1));
  space.add(Dimension::range("victim_keys", 1, 8, 1));
  space.add(Dimension::choice("q_replica_behavior", {0, 1, 2, 3}));
  return space;
}

}  // namespace avd::core
