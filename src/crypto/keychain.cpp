#include "crypto/keychain.h"

#include <algorithm>

#include "common/rng.h"

namespace avd::crypto {

MacKey Keychain::sessionKey(util::NodeId a, util::NodeId b) const noexcept {
  const util::NodeId lo = std::min(a, b);
  const util::NodeId hi = std::max(a, b);
  std::uint64_t state = masterSeed_ ^
                        (static_cast<std::uint64_t>(lo) << 32) ^
                        static_cast<std::uint64_t>(hi);
  MacKey key;
  key.k0 = util::splitmix64(state);
  key.k1 = util::splitmix64(state);
  return key;
}

}  // namespace avd::crypto
