// Pairwise session-key derivation.
//
// Every ordered pair of nodes shares a symmetric session key, derived
// deterministically from a deployment master seed. Both endpoints derive
// the same key; no third node can (the simulator enforces this by routing
// all MAC operations through each node's own MacService, which only exposes
// keys involving that node).
#pragma once

#include "common/types.h"
#include "crypto/mac.h"

namespace avd::crypto {

class Keychain {
 public:
  explicit Keychain(std::uint64_t masterSeed) noexcept
      : masterSeed_(masterSeed) {}

  /// Session key shared by nodes `a` and `b`; symmetric in its arguments.
  MacKey sessionKey(util::NodeId a, util::NodeId b) const noexcept;

  std::uint64_t masterSeed() const noexcept { return masterSeed_; }

 private:
  std::uint64_t masterSeed_;
};

}  // namespace avd::crypto
