#include "crypto/authenticator.h"

namespace avd::crypto {

MacTag MacService::generate(util::NodeId target, std::uint64_t digest) {
  const std::uint64_t callIndex = generateCalls_++;
  MacTag tag = computeMac(keychain_->sessionKey(self_, target), digest);
  if (faultPolicy_ && faultPolicy_->shouldCorrupt(callIndex, target)) {
    tag = ~tag;
  }
  return tag;
}

bool MacService::verify(util::NodeId from, std::uint64_t digest,
                        MacTag tag) const noexcept {
  return computeMac(keychain_->sessionKey(self_, from), digest) == tag;
}

Authenticator MacService::authenticate(std::uint64_t digest,
                                       std::uint32_t replicaCount) {
  Authenticator auth;
  auth.tags.reserve(replicaCount);
  for (util::NodeId replica = 0; replica < replicaCount; ++replica) {
    auth.tags.push_back(generate(replica, digest));
  }
  return auth;
}

}  // namespace avd::crypto
