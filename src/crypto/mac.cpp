#include "crypto/mac.h"

#include <cstring>

namespace avd::crypto {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  explicit SipState(const MacKey& key) noexcept
      : v0(key.k0 ^ 0x736f6d6570736575ULL),
        v1(key.k1 ^ 0x646f72616e646f6dULL),
        v2(key.k0 ^ 0x6c7967656e657261ULL),
        v3(key.k1 ^ 0x7465646279746573ULL) {}

  void round() noexcept {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }

  void absorb(std::uint64_t m) noexcept {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  std::uint64_t finalize() noexcept {
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

}  // namespace

MacTag computeMac(const MacKey& key, std::span<const std::uint8_t> data) noexcept {
  SipState state(key);
  const std::size_t full = data.size() / 8;
  for (std::size_t i = 0; i < full; ++i) {
    std::uint64_t m;
    std::memcpy(&m, data.data() + i * 8, 8);
    state.absorb(m);
  }
  // Final block: remaining bytes plus the length in the top byte, per the
  // SipHash specification.
  std::uint64_t last = static_cast<std::uint64_t>(data.size() & 0xff) << 56;
  const std::size_t tail = data.size() % 8;
  for (std::size_t i = 0; i < tail; ++i) {
    last |= static_cast<std::uint64_t>(data[full * 8 + i]) << (8 * i);
  }
  state.absorb(last);
  return state.finalize();
}

MacTag computeMac(const MacKey& key, std::uint64_t digest) noexcept {
  std::uint8_t buf[8];
  std::memcpy(buf, &digest, 8);
  return computeMac(key, std::span<const std::uint8_t>(buf, 8));
}

}  // namespace avd::crypto
