// MAC authenticators and the per-node MAC service.
//
// PBFT messages sent to multiple replicas carry an *authenticator*: a vector
// with one MAC per replica, each computed under the sender-replica session
// key. Receivers can only check their own entry — the asymmetry at the heart
// of the Big MAC attack, where a faulty client ships an authenticator that
// is valid for the primary but garbage for the backups.
//
// MacService is the per-node entry point for MAC generation. It counts
// generateMAC calls and consults an optional MacFaultPolicy before emitting
// each tag; the AVD MAC-corruption tool (§6 of the paper) is implemented as
// such a policy keyed on "call index mod 12" (see faultinject/mac_corruptor).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "crypto/keychain.h"
#include "crypto/mac.h"

namespace avd::crypto {

/// One MAC per replica, indexed by replica id.
struct Authenticator {
  std::vector<MacTag> tags;

  bool hasEntryFor(util::NodeId replica) const noexcept {
    return replica < tags.size();
  }
};

/// Decides, per generateMAC call, whether the emitted tag is corrupted.
/// Implementations live in the fault-injection library.
class MacFaultPolicy {
 public:
  virtual ~MacFaultPolicy() = default;

  /// `callIndex` is the zero-based index of this generateMAC invocation at
  /// the owning node; `target` is the node the MAC is addressed to.
  virtual bool shouldCorrupt(std::uint64_t callIndex, util::NodeId target) = 0;
};

/// Per-node MAC generation and verification facade.
class MacService {
 public:
  MacService(util::NodeId self, const Keychain* keychain) noexcept
      : self_(self), keychain_(keychain) {}

  /// Generates the MAC of `digest` for `target`. Counts as one generateMAC
  /// call and applies the installed fault policy, if any (a corrupted tag is
  /// the correct tag with all bits inverted — unverifiable but well-formed).
  MacTag generate(util::NodeId target, std::uint64_t digest);

  /// Verifies a tag received from `from`. Never counted, never corrupted:
  /// verification is a local operation of the (correct) receiver.
  bool verify(util::NodeId from, std::uint64_t digest, MacTag tag) const noexcept;

  /// Builds an authenticator with entries for replicas [0, replicaCount).
  /// Performs replicaCount generateMAC calls, in increasing replica order —
  /// the call-counting contract the 12-bit corruption bitmask relies on.
  Authenticator authenticate(std::uint64_t digest, std::uint32_t replicaCount);

  /// Installs (or clears, with nullptr) the MAC fault policy.
  void setFaultPolicy(std::shared_ptr<MacFaultPolicy> policy) noexcept {
    faultPolicy_ = std::move(policy);
  }

  std::uint64_t generateCallCount() const noexcept { return generateCalls_; }
  util::NodeId self() const noexcept { return self_; }

 private:
  util::NodeId self_;
  const Keychain* keychain_;
  std::shared_ptr<MacFaultPolicy> faultPolicy_;
  std::uint64_t generateCalls_ = 0;
};

}  // namespace avd::crypto
