// Keyed message authentication codes.
//
// PBFT authenticates all protocol traffic with pairwise-session-key MACs
// (Castro & Liskov use UMAC; Aardvark's "Big MAC" attack exploits the fact
// that only the key holder can validate a tag). The attacks AVD reproduces
// depend solely on *who can verify which tag*, not on cryptographic
// strength, so a SipHash-2-4 construction with 128-bit keys and 64-bit tags
// stands in for UMAC (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <span>

namespace avd::crypto {

/// 128-bit symmetric MAC key.
struct MacKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  friend bool operator==(const MacKey&, const MacKey&) = default;
};

/// 64-bit authentication tag.
using MacTag = std::uint64_t;

/// SipHash-2-4 over `data` under `key`.
MacTag computeMac(const MacKey& key, std::span<const std::uint8_t> data) noexcept;

/// Convenience overload for hashing a pre-computed 64-bit digest, the common
/// case in the protocol layer (MACs cover message digests, not full bodies).
MacTag computeMac(const MacKey& key, std::uint64_t digest) noexcept;

}  // namespace avd::crypto
