// Churn fault tool: scheduled crash–restart cycles against a target node.
//
// The network-level tools (drops, delays, partitions) perturb messages;
// churn perturbs *processes*. AVD registers the knobs below as hyperspace
// dimensions so the controller can hill-climb crash timing — crashing a
// backup exactly at a checkpoint boundary, or the primary mid-view-change,
// are the interleavings where recovery bugs concentrate. Unlike a
// NetworkFault this is a scheduler tool: it books crash()/restart() events
// directly on the simulator, so installation order (not message traffic)
// fully determines its behaviour and runs stay seed-deterministic.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/network.h"
#include "sim/simulator.h"

namespace avd::fi {

class ChurnFault {
 public:
  struct Options {
    /// Node to crash (replica or client id in the deployment's network).
    util::NodeId target = 0;
    /// When set, re-resolves the victim at every crash instant — the
    /// protocol-aware variant (e.g. "whoever is primary right now").
    /// `target` is ignored while this is set.
    std::function<util::NodeId()> dynamicTarget;
    /// Virtual time of the first crash.
    sim::Time firstCrash = 0;
    /// How long the node stays down before restarting.
    sim::Time downtime = sim::msec(100);
    /// Repeat period measured crash-to-crash; 0 = crash once. A period
    /// shorter than the downtime is stretched to downtime + 1 so the node
    /// is always up again before its next crash.
    sim::Time period = 0;
    /// Safety bound on crash cycles; 0 = unlimited (the run length bounds
    /// it naturally).
    std::uint32_t maxCycles = 0;
  };

  ChurnFault(sim::Simulator* simulator, sim::Network* network,
             Options options) noexcept
      : simulator_(simulator), network_(network), options_(options) {}

  /// Books the first crash event. The ChurnFault must outlive the
  /// simulation run (scheduled events reference it).
  void install() { scheduleCrash(options_.firstCrash); }

  std::uint64_t crashesInjected() const noexcept { return crashes_; }
  std::uint64_t restartsInjected() const noexcept { return restarts_; }
  const Options& options() const noexcept { return options_; }

 private:
  void scheduleCrash(sim::Time when);
  void onCrash();
  void onRestartDue();

  sim::Simulator* simulator_;
  sim::Network* network_;
  Options options_;
  /// Victim of the in-flight crash cycle; the restart must revive the node
  /// that went down even if dynamicTarget resolves differently by then.
  util::NodeId currentVictim_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace avd::fi
