#include "faultinject/mac_corruptor.h"

// Header-only logic; this translation unit anchors the vtable.
