// Byte-level blind fuzzing (§4, the literal "random bit flips" attacker).
//
// Unlike TamperFault (which mutates typed fields), this tool round-trips
// each matching message through the canonical wire codec and flips a random
// bit of the encoded frame. If the mangled frame still parses, the parsed
// message replaces the original; if it no longer parses (framing damage), a
// real network stack would discard it, so the message is dropped.
#pragma once

#include "faultinject/network_faults.h"
#include "pbft/wire.h"
#include "sim/network.h"

namespace avd::fi {

class WireFuzzFault final : public sim::NetworkFault {
 public:
  WireFuzzFault(double probability, FlowFilter filter = {}) noexcept
      : probability_(probability), filter_(std::move(filter)) {}

  Decision onMessage(util::NodeId from, util::NodeId to,
                     const sim::MessagePtr& message, util::Rng& rng) override;

  std::uint64_t flipped() const noexcept { return flipped_; }
  std::uint64_t unparseable() const noexcept { return unparseable_; }

 private:
  double probability_;
  FlowFilter filter_;
  std::uint64_t flipped_ = 0;
  std::uint64_t unparseable_ = 0;
};

}  // namespace avd::fi
