#include "faultinject/reorder.h"

namespace avd::fi {

sim::NetworkFault::Decision ReorderFault::onMessage(util::NodeId from,
                                                    util::NodeId to,
                                                    const sim::MessagePtr&,
                                                    util::Rng& rng) {
  Decision decision;
  if (window_ > 0 && filter_.matches(from, to) && rng.chance(intensity_)) {
    decision.extraDelay = static_cast<sim::Time>(
        rng.below(static_cast<std::uint64_t>(window_) + 1));
    ++perturbed_;
  }
  return decision;
}

sim::NetworkFault::Decision SequenceTap::onMessage(
    util::NodeId from, util::NodeId to, const sim::MessagePtr& message,
    util::Rng&) {
  if (filter_.matches(from, to)) sendOrder_.push_back(message.get());
  return Decision{};
}

}  // namespace avd::fi
