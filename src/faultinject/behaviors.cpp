#include "faultinject/behaviors.h"

#include "faultinject/mac_corruptor.h"

namespace avd::fi {

std::uint64_t bigMacMaskValidOnlyFor(util::NodeId validReplica,
                                     std::uint32_t replicas,
                                     std::uint32_t width) {
  // Bit b governs generateMAC calls with index ≡ b (mod width); in every
  // round the call targeting replica i has index ≡ i (mod replicas). When
  // replicas divides width (the paper's 12-bit mask with n = 4) each bit
  // addresses exactly one replica per round.
  std::uint64_t mask = 0;
  for (std::uint32_t bit = 0; bit < width; ++bit) {
    if (bit % replicas != validReplica) mask |= std::uint64_t{1} << bit;
  }
  return mask;
}

std::uint64_t rotatingBigMacMask() {
  // n = 4, 12-bit mask = three transmission rounds of four calls.
  //   round 0 (bits 0-3):  valid only for replica 0 -> corrupt 1,2,3
  //   round 1 (bits 4-7):  valid only for replica 1 -> corrupt 0,2,3
  //   round 2 (bits 8-11): valid only for 2 and 3   -> corrupt 0,1
  // Every replica authenticates one round per cycle, so digest matching
  // against directly-received copies defuses the attack (see header).
  return 0x3DE;
}

pbft::DeploymentConfig makeBigMacScenario(std::uint32_t correctClients,
                                          std::uint64_t mask,
                                          std::uint64_t seed) {
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  // Timeouts scaled down 10x from PBFT's 5 s default so a simulated attack
  // period fits in a short virtual run; the attack dynamics only depend on
  // the ratios between timeout, retransmission interval and latency.
  config.pbft.requestTimeout = sim::msec(500);
  config.pbft.viewChangeTimeout = sim::msec(500);
  config.clientRetx = sim::msec(100);
  config.correctClients = correctClients;
  config.maliciousClients = 1;
  config.maliciousClientBehavior.macPolicy = makeMacCorruptor(mask);
  config.warmup = sim::sec(1);
  config.measure = sim::sec(4);
  config.seed = seed;
  return config;
}

pbft::DeploymentConfig makeSlowPrimaryScenario(std::uint32_t correctClients,
                                               bool colluding,
                                               bool perRequestTimers,
                                               std::uint64_t seed) {
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  // Keep the PBFT default 5 s request timer: the paper's 0.2 req/s figure
  // is one request per timer period.
  config.pbft.requestTimeout = sim::sec(5);
  config.pbft.viewChangeTimeout = sim::sec(5);
  config.pbft.perRequestTimers = perRequestTimers;
  config.correctClients = correctClients;

  pbft::ReplicaBehavior primary;
  primary.slowPrimary = true;
  if (colluding) {
    config.maliciousClients = 1;
    config.maliciousClientBehavior.broadcastRequests = true;
    // Malicious clients are laid out right after the replicas.
    primary.colludingClient = config.pbft.replicaCount();
  }
  config.replicaBehaviors[0] = primary;

  config.warmup = sim::sec(5);
  config.measure = sim::sec(30);
  config.seed = seed;
  return config;
}

}  // namespace avd::fi
