// Message-reordering tool (§5).
//
// Many distributed systems assume nothing about delivery order, so bugs can
// hide in orderings the test network never produced. This tool perturbs
// delivery by adding random extra delay (within `window`) to a fraction
// (`intensity`) of matching messages; delivered streams then differ from
// sent streams with an edit distance that grows with both parameters, which
// is exactly the mutateDistance contract the paper assigns to reordering
// tools ("the edit distance (Levenshtein distance) between two streams of
// messages").
#pragma once

#include <vector>

#include "faultinject/network_faults.h"
#include "sim/network.h"

namespace avd::fi {

class ReorderFault final : public sim::NetworkFault {
 public:
  /// intensity in [0,1]: fraction of messages delayed; window: maximum extra
  /// delay, i.e. how far a message can slip past its successors.
  ReorderFault(double intensity, sim::Time window, FlowFilter filter = {})
      : intensity_(intensity), window_(window), filter_(std::move(filter)) {}

  Decision onMessage(util::NodeId from, util::NodeId to,
                     const sim::MessagePtr& message, util::Rng& rng) override;

  double intensity() const noexcept { return intensity_; }
  sim::Time window() const noexcept { return window_; }
  std::uint64_t perturbed() const noexcept { return perturbed_; }

 private:
  double intensity_;
  sim::Time window_;
  FlowFilter filter_;
  std::uint64_t perturbed_ = 0;
};

/// Passive tap that records the *send order* of matching messages, for
/// comparing against an observed delivery order with util::levenshtein.
class SequenceTap final : public sim::NetworkFault {
 public:
  explicit SequenceTap(FlowFilter filter = {}) : filter_(std::move(filter)) {}

  Decision onMessage(util::NodeId from, util::NodeId to,
                     const sim::MessagePtr& message, util::Rng& rng) override;

  /// Messages in send order, identified by object address (stable within a
  /// run because payloads are shared immutable objects).
  const std::vector<const sim::Message*>& sendOrder() const noexcept {
    return sendOrder_;
  }

 private:
  FlowFilter filter_;
  std::vector<const sim::Message*> sendOrder_;
};

}  // namespace avd::fi
