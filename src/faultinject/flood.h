// Resource-exhaustion (flooding) attack tools.
//
// The paper's marquee fix (Aardvark) is a resource-management defense, so
// AVD needs attack tools that *spend* resources: open-loop clients that pump
// traffic at a configured rate instead of waiting for replies. Combined with
// the bounded ingress queues in sim::LinkModel, a flood displaces useful
// traffic — correct clients' requests, replies, and agreement messages drop
// on the floor — which is the damage the impact metric measures.
//
// Four tools, selected by FloodKind:
//   kRequestSpam       fresh, fully valid one-byte requests at `rate`. Costs
//                      the replicas MAC checks, ordering, execution, and
//                      queue slots.
//   kReplayStorm       one request is executed legitimately, then the
//                      *identical* message is rebroadcast forever. Each copy
//                      hits the reply cache and earns a resent reply —
//                      bandwidth amplification with zero protocol progress.
//   kOversizedPayload  fresh valid requests whose operation is payloadBytes
//                      long: a handful of them exhausts a byte-budgeted
//                      ingress queue, starving everyone else's small
//                      messages.
//   kStatusAmplify     a passive wiretap records one genuine early STATUS of
//                      the victim replica; the flooder then replays it to
//                      the other replicas with the victim's sender id. Each
//                      replay advertises a near-zero lastExecuted, so every
//                      peer pushes SyncSeq batches + agreement
//                      retransmissions at the victim — the state-transfer
//                      amplification surface Config::syncBytesPerPeer caps.
//
// Like fi::ChurnFault these are deterministic scheduler tools: install()
// books the first tick, no randomness is consumed, and same-seed runs are
// byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "crypto/authenticator.h"
#include "crypto/keychain.h"
#include "pbft/config.h"
#include "pbft/message.h"
#include "sim/network.h"
#include "sim/node.h"

namespace avd::fi {

enum class FloodKind : int {
  kNone = 0,
  kRequestSpam = 1,
  kReplayStorm = 2,
  kOversizedPayload = 3,
  kStatusAmplify = 4,
};

struct FloodOptions {
  FloodKind kind = FloodKind::kRequestSpam;
  /// Virtual time of the first burst.
  sim::Time start = 0;
  /// Gap between bursts; effective rate = burst / interval.
  sim::Time interval = sim::msec(1);
  /// Messages per burst.
  std::uint32_t burst = 1;
  /// Operation size for kOversizedPayload / kReplayStorm (kRequestSpam
  /// always uses 1 byte — it is a rate attack, not a size attack).
  std::size_t payloadBytes = 1;
  /// Victim replica, or kNoNode: broadcast to every replica (request
  /// tools) / the highest-id replica (kStatusAmplify needs one victim).
  util::NodeId target = util::kNoNode;
  /// Stop after this many messages; 0 = bounded by the run length.
  std::uint64_t maxMessages = 0;
};

/// Passive wiretap for kStatusAmplify: remembers the first STATUS each
/// replica multicast (early in the run, so its lastExecuted is ~0). Never
/// drops, delays, or tampers — recording is invisible to the run.
class StatusRecorder final : public sim::NetworkFault {
 public:
  Decision onMessage(util::NodeId from, util::NodeId to,
                     const sim::MessagePtr& message, util::Rng& rng) override;

  sim::MessagePtr recordedFor(util::NodeId replica) const {
    const auto it = recorded_.find(replica);
    return it != recorded_.end() ? it->second : nullptr;
  }

 private:
  std::map<util::NodeId, sim::MessagePtr> recorded_;
};

/// Open-loop flooding client. Holds real session keys (the threat model
/// gives AVD full control of client nodes, §2), so every request it sends
/// authenticates — the defenses must manage resources, not spot forgeries.
class FloodClient final : public sim::Node {
 public:
  FloodClient(util::NodeId id, const pbft::Config& config,
              const crypto::Keychain* keychain, FloodOptions options);

  /// Books the first flood tick; for kStatusAmplify also installs the
  /// wiretap. Call after network registration, before the run starts.
  void install();

  void start() override {}  // deployment-managed nodes only; see install()
  void receive(util::NodeId from, const sim::MessagePtr& message) override;

  std::uint64_t messagesSent() const noexcept { return sent_; }
  std::uint64_t repliesReceived() const noexcept { return replies_; }

 private:
  void tick();
  void sendSpam(std::size_t payloadBytes);
  void sendReplay();
  void sendStatusReplay();
  pbft::RequestPtr makeRequest(util::RequestId timestamp,
                               std::size_t payloadBytes) const;
  /// Sends to options_.target, or to every replica when target is kNoNode.
  void deliverToTargets(const sim::MessagePtr& payload);
  bool exhausted() const noexcept {
    return options_.maxMessages > 0 && sent_ >= options_.maxMessages;
  }

  pbft::Config config_;
  mutable crypto::MacService macs_;
  FloodOptions options_;
  util::RequestId nextTimestamp_ = 0;
  pbft::RequestPtr replayTemplate_;
  std::shared_ptr<StatusRecorder> recorder_;
  std::uint64_t sent_ = 0;
  std::uint64_t replies_ = 0;
};

/// Switches on the full Aardvark-style defense profile: admission control,
/// fair client scheduling (which also provisions per-sender ingress lanes
/// via the deployment), and bounded pending/parked queues. The ablation
/// pair for every flood scenario.
void enableFloodDefenses(pbft::Config& config);

}  // namespace avd::fi
