#include "faultinject/network_faults.h"

namespace avd::fi {

sim::NetworkFault::Decision DropFault::onMessage(util::NodeId from,
                                                 util::NodeId to,
                                                 const sim::MessagePtr&,
                                                 util::Rng& rng) {
  Decision decision;
  if (filter_.matches(from, to) && rng.chance(probability_)) {
    decision.drop = true;
    ++dropped_;
  }
  return decision;
}

sim::NetworkFault::Decision DelayFault::onMessage(util::NodeId from,
                                                  util::NodeId to,
                                                  const sim::MessagePtr&,
                                                  util::Rng& rng) {
  Decision decision;
  if (filter_.matches(from, to)) {
    decision.extraDelay = fixed_;
    if (randomSpan_ > 0) {
      decision.extraDelay += static_cast<sim::Time>(
          rng.below(static_cast<std::uint64_t>(randomSpan_) + 1));
    }
  }
  return decision;
}

sim::NetworkFault::Decision PartitionFault::onMessage(util::NodeId from,
                                                      util::NodeId to,
                                                      const sim::MessagePtr&,
                                                      util::Rng&) {
  Decision decision;
  if (healed_) return decision;
  const bool crossAb = groupA_.contains(from) && groupB_.contains(to);
  const bool crossBa = groupB_.contains(from) && groupA_.contains(to);
  decision.drop = crossAb || crossBa;
  return decision;
}

}  // namespace avd::fi
