// Pre-built malicious-node configurations for the attacks in the paper.
//
// These are the "synthesized malicious entities" AVD discovers; packaging
// them as deployment builders lets examples, tests and benches reproduce
// each attack directly, and gives the AVD executor named building blocks.
#pragma once

#include <cstdint>

#include "pbft/deployment.h"

namespace avd::fi {

/// Mask whose corruption pattern, for an n-replica deployment under a
/// `width`-bit mask, invalidates every authenticator entry EXCEPT the entry
/// for replica `validReplica`, in every transmission round. Against the
/// primary == validReplica this is the full Big MAC attack ("corrupting the
/// MAC in all messages sent by a malicious client", §6): the primary orders
/// the request, no backup can EVER authenticate it (no retransmission round
/// helps), the sequence number stalls, the request timers force a view
/// change — and the historical implementation crashes in the view-change
/// path (Config::viewChangeCrashBug), killing the deployment's quorum.
std::uint64_t bigMacMaskValidOnlyFor(util::NodeId validReplica,
                                     std::uint32_t replicas,
                                     std::uint32_t width = 12);

/// Round-rotating mask for n=4 under 12 bits: round 0 is valid only for
/// replica 0, round 1 only for replica 1, round 2 only for replicas 2,3.
/// Each replica authenticates SOME transmission round, so digest matching
/// resolves every parked pre-prepare within a retransmission cycle and no
/// view change ever fires — the paper's "no view change if every
/// retransmission from the malicious client was correct" observation. The
/// attack is nonetheless damaging in a stealthier way: in-order execution
/// stalls ~2 retransmission rounds behind every poisoned sequence number,
/// costing an order of magnitude of throughput with zero protocol alarms.
std::uint64_t rotatingBigMacMask();

/// Big MAC deployment: `correctClients` plus one malicious client running
/// the MAC-corruption tool with `mask`.
pbft::DeploymentConfig makeBigMacScenario(std::uint32_t correctClients,
                                          std::uint64_t mask,
                                          std::uint64_t seed = 1);

/// Slow-primary deployment (§6): replica 0 is a malicious primary dripping
/// one request per timer period. With `colluding` a malicious client is
/// added whose requests are the only ones the primary serves (useful
/// throughput -> 0); without it the primary serves one correct request per
/// period (~0.2 req/s at the 5 s default timer). `perRequestTimers` applies
/// the bug fix for the ablation.
pbft::DeploymentConfig makeSlowPrimaryScenario(std::uint32_t correctClients,
                                               bool colluding,
                                               bool perRequestTimers,
                                               std::uint64_t seed = 1);

}  // namespace avd::fi
