// MAC-corruption fault injector (the tool used in the paper's evaluation).
//
// §6: "The parameter describing which MAC to corrupt is a 12-bit-wide bit
// mask, where bit n decides whether to corrupt or not the (n mod 12)-th
// call to the generateMAC function in the malicious client."
//
// A client request to n replicas makes n generateMAC calls (one authenticator
// entry per replica), so with n = 4 the 12 bits cover three full
// transmission rounds before the pattern repeats — which is why corruption
// patterns that differ between the initial send and the retransmissions
// produce such different protocol behaviour (and the vertical structure in
// Figure 3).
#pragma once

#include <cstdint>
#include <memory>

#include "crypto/authenticator.h"

namespace avd::fi {

class MacCorruptionPolicy final : public crypto::MacFaultPolicy {
 public:
  /// `mask` is interpreted over `width` bits: generateMAC call k is
  /// corrupted iff bit (k mod width) of `mask` is set.
  explicit MacCorruptionPolicy(std::uint64_t mask,
                               std::uint32_t width = 12) noexcept
      : mask_(mask), width_(width == 0 ? 1 : width) {}

  bool shouldCorrupt(std::uint64_t callIndex,
                     util::NodeId /*target*/) override {
    ++calls_;
    return (mask_ >> (callIndex % width_)) & 1;
  }

  std::uint64_t mask() const noexcept { return mask_; }
  std::uint32_t width() const noexcept { return width_; }
  std::uint64_t observedCalls() const noexcept { return calls_; }

 private:
  std::uint64_t mask_;
  std::uint32_t width_;
  std::uint64_t calls_ = 0;
};

/// Convenience factory matching the paper's tool configuration.
inline std::shared_ptr<MacCorruptionPolicy> makeMacCorruptor(
    std::uint64_t mask, std::uint32_t width = 12) {
  return std::make_shared<MacCorruptionPolicy>(mask, width);
}

}  // namespace avd::fi
