#include "faultinject/churn.h"

#include <algorithm>

namespace avd::fi {

void ChurnFault::scheduleCrash(sim::Time when) {
  simulator_->scheduleAt(when, [this] { onCrash(); });
}

void ChurnFault::onCrash() {
  currentVictim_ =
      options_.dynamicTarget ? options_.dynamicTarget() : options_.target;
  sim::Node* const node = network_->node(currentVictim_);
  if (node == nullptr) return;
  // Crashing an already-dead node (e.g. one felled by the view-change crash
  // bug) is a no-op for the node but still books the restart — churn revives
  // it, which is exactly the "process supervisor" behaviour being modelled.
  node->crash();
  ++crashes_;
  simulator_->schedule(std::max<sim::Time>(options_.downtime, 1),
                       [this] { onRestartDue(); });
}

void ChurnFault::onRestartDue() {
  sim::Node* const node = network_->node(currentVictim_);
  if (node == nullptr) return;
  node->restart();
  ++restarts_;
  if (options_.period == 0) return;
  if (options_.maxCycles != 0 && crashes_ >= options_.maxCycles) return;
  // Crash-to-crash period, stretched so the node is up before going down.
  const sim::Time gap =
      std::max<sim::Time>(options_.period, options_.downtime + 1);
  const sim::Time nextCrash =
      options_.firstCrash + static_cast<sim::Time>(crashes_) * gap;
  scheduleCrash(std::max(nextCrash, simulator_->now() + 1));
}

}  // namespace avd::fi
