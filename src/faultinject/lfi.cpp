#include "faultinject/lfi.h"

namespace avd::fi {

void FaultPlan::add(FaultSpec spec) {
  points_[spec.function].specs.push_back(std::move(spec));
}

void FaultPlan::clear() { points_.clear(); }

int FaultPlan::shouldFail(std::string_view function) {
  // Calls are counted even at points with no specs: call counts are the
  // coordinates of the LFI hyperspace, so the tester needs them to write
  // the next plan.
  auto it = points_.find(function);
  if (it == points_.end()) {
    it = points_.emplace(std::string(function), PointState{}).first;
  }
  PointState& point = it->second;
  const std::uint64_t call = point.calls++;
  for (const FaultSpec& spec : point.specs) {
    if (call == spec.callNumber ||
        (spec.persistent && call >= spec.callNumber)) {
      ++injected_;
      return spec.errorCode;
    }
  }
  return 0;
}

std::uint64_t FaultPlan::callCount(std::string_view function) const {
  const auto it = points_.find(function);
  return it == points_.end() ? 0 : it->second.calls;
}

std::size_t FaultPlan::specCount() const noexcept {
  std::size_t count = 0;
  for (const auto& [name, point] : points_) count += point.specs.size();
  return count;
}

sim::NetworkFault::Decision SendFaultAdapter::onMessage(
    util::NodeId from, util::NodeId to, const sim::MessagePtr&, util::Rng&) {
  Decision decision;
  if (plan_ != nullptr && filter_.matches(from, to)) {
    decision.drop = plan_->shouldFail(kPoint) != 0;
  }
  return decision;
}

}  // namespace avd::fi
