// Twins fault tool: two physical replicas behind one logical identity.
//
// The Twins methodology ("BFT Systems Made Robust", PAPERS.md) observes
// that most Byzantine misbehaviours worth testing — equivocation, double
// voting, losing internal state — emerge for free from running two correct,
// unmodified replicas that share an id, keys, and client-visible address.
// Neither instance lies; the pair equivocates because each honestly signs
// and votes from its own divergent state.
//
// Like churn this is a scheduler tool, not a NetworkFault: at the
// activation time it mints the twin instances through
// Deployment::makeTwinReplica (same identity, genesis state — the amnesia
// shape), registers them via Network::registerTwin, and installs the
// deterministic partition-side schedule (sim::TwinRouter) that decides
// which instance each peer reaches per interval. Runs stay
// seed-deterministic: the schedule is a pure function of (node id, virtual
// time).
//
// Safety semantics: each twinned identity is worth one Byzantine fault.
// With at most f identities twinned the deployment's oracle must stay
// silent; beyond f (e.g. 2 pairs at f=1) conflicting commit certificates
// become reachable — the safety violations the AVD controller hunts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pbft/deployment.h"
#include "sim/time.h"

namespace avd::fi {

class TwinFault {
 public:
  /// How the schedule assigns partition sides to non-twin nodes. Twin
  /// instances are always pinned: the original on side 0, the twin on
  /// side 1.
  enum class Shape {
    /// Even ids side 0, odd ids side 1 — both sides get replicas and
    /// clients, so with enough twins each side can assemble a quorum.
    kSplitParity = 0,
    /// Low-id half of the replicas (and of the clients) side 0, rest
    /// side 1 — lopsided splits that mostly starve one side.
    kSplitHalf = 1,
  };

  struct Options {
    /// Replica ids to twin. Ids out of range or already twinned are
    /// skipped.
    std::vector<util::NodeId> targets;
    /// Virtual time the twins come online and the schedule starts.
    sim::Time activation = 0;
    /// Side-flip period: every full period after activation the two
    /// partition sides swap membership (0 = static assignment).
    sim::Time period = 0;
    Shape shape = Shape::kSplitParity;
  };

  TwinFault(pbft::Deployment* deployment, Options options) noexcept
      : deployment_(deployment), options_(std::move(options)) {}

  /// Books the activation event. The TwinFault must outlive the simulation
  /// run: it owns the twin replicas and the installed router calls back
  /// into it.
  void install();

  /// The partition-side schedule handed to Network::setTwinRouter.
  int sideOf(util::NodeId node, sim::Time now) const;

  std::uint64_t twinsActivated() const noexcept { return twins_.size(); }
  const Options& options() const noexcept { return options_; }

 private:
  void activate();

  pbft::Deployment* deployment_;
  Options options_;
  std::vector<std::unique_ptr<pbft::Replica>> twins_;
};

}  // namespace avd::fi
