#include "faultinject/tamper.h"

namespace avd::fi {

namespace {

using pbft::MsgKind;

std::uint64_t flippedBit(std::uint64_t value, util::Rng& rng) {
  return value ^ (std::uint64_t{1} << rng.below(64));
}

/// Flips a bit either in the authenticator (common case — it is the bulk
/// of the attack surface) or in the digest.
template <typename M>
void corruptAuthenticated(M& message, util::Rng& rng) {
  if (!message.auth.tags.empty() && rng.chance(0.7)) {
    auto& tag = message.auth.tags[rng.below(message.auth.tags.size())];
    tag = flippedBit(tag, rng);
  } else {
    message.digest = flippedBit(message.digest, rng);
  }
}

}  // namespace

sim::MessagePtr TamperFault::corrupt(const sim::MessagePtr& message,
                                     util::Rng& rng) {
  switch (static_cast<MsgKind>(message->kind())) {
    case MsgKind::kRequest: {
      auto copy = std::make_shared<pbft::RequestMessage>(
          *std::static_pointer_cast<const pbft::RequestMessage>(message));
      if (!copy->operation.empty() && rng.chance(0.3)) {
        copy->operation[rng.below(copy->operation.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      } else if (!copy->auth.tags.empty() && rng.chance(0.6)) {
        auto& tag = copy->auth.tags[rng.below(copy->auth.tags.size())];
        tag = flippedBit(tag, rng);
      } else {
        copy->digest = flippedBit(copy->digest, rng);
      }
      return copy;
    }
    case MsgKind::kPrePrepare: {
      auto copy = std::make_shared<pbft::PrePrepareMessage>(
          *std::static_pointer_cast<const pbft::PrePrepareMessage>(message));
      corruptAuthenticated(*copy, rng);
      return copy;
    }
    case MsgKind::kPrepare: {
      auto copy = std::make_shared<pbft::PrepareMessage>(
          *std::static_pointer_cast<const pbft::PrepareMessage>(message));
      corruptAuthenticated(*copy, rng);
      return copy;
    }
    case MsgKind::kCommit: {
      auto copy = std::make_shared<pbft::CommitMessage>(
          *std::static_pointer_cast<const pbft::CommitMessage>(message));
      corruptAuthenticated(*copy, rng);
      return copy;
    }
    case MsgKind::kReply: {
      auto copy = std::make_shared<pbft::ReplyMessage>(
          *std::static_pointer_cast<const pbft::ReplyMessage>(message));
      if (rng.chance(0.5)) {
        copy->mac = flippedBit(copy->mac, rng);
      } else {
        copy->resultDigest = flippedBit(copy->resultDigest, rng);
      }
      return copy;
    }
    default:
      return nullptr;  // leave other kinds untouched
  }
}

sim::NetworkFault::Decision TamperFault::onMessage(
    util::NodeId from, util::NodeId to, const sim::MessagePtr& message,
    util::Rng& rng) {
  Decision decision;
  if (!filter_.matches(from, to) || !rng.chance(probability_)) {
    return decision;
  }
  decision.replace = corrupt(message, rng);
  if (decision.replace != nullptr) ++tampered_;
  return decision;
}

}  // namespace avd::fi
