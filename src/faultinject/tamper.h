// Blind message tampering — the weakest attacker of §4.
//
// "Without access to any source, binary, or documentation, an attacker
// (and AVD) can only resort to random bit flips, random fuzzing, or to
// random packet drops/reordering." This tool flips random bits in
// in-flight PBFT messages (digests, authenticator entries, payload bytes,
// header fields) with a configurable probability. Expected outcome — and
// the reason the power ladder starts here — is near-zero impact: every
// tampered field is covered by a digest or MAC check, so correct replicas
// discard the message and retransmission repairs the loss. Tampering is
// therefore equivalent to a (costlier) drop.
#pragma once

#include "faultinject/network_faults.h"
#include "pbft/message.h"
#include "sim/network.h"

namespace avd::fi {

class TamperFault final : public sim::NetworkFault {
 public:
  /// Flips one random bit in a random field of matching messages with
  /// probability `probability`.
  TamperFault(double probability, FlowFilter filter = {}) noexcept
      : probability_(probability), filter_(std::move(filter)) {}

  Decision onMessage(util::NodeId from, util::NodeId to,
                     const sim::MessagePtr& message, util::Rng& rng) override;

  std::uint64_t tampered() const noexcept { return tampered_; }

 private:
  /// Clones a PBFT message with one bit flipped; nullptr for kinds the
  /// tool does not understand (they pass through untouched).
  sim::MessagePtr corrupt(const sim::MessagePtr& message, util::Rng& rng);

  double probability_;
  FlowFilter filter_;
  std::uint64_t tampered_ = 0;
};

}  // namespace avd::fi
