// Library-level fault injection (LFI-style, §5).
//
// LFI [Marinescu & Candea, USENIX ATC'10] injects errors at library-call
// boundaries, parameterized by (function, error code, call number) — the
// three hyperspace dimensions the paper names for this tool class. Our
// simulated nodes make no real libc calls, so the same plan machinery is
// driven from instrumented seams of the substrate instead: the shipped
// adapter fails `net::send` calls (message silently lost, as a failed
// sendto() would be), which exercises precisely the retransmission and
// timeout recovery paths such tools target. New seams can be added by
// consulting the plan from any component.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "faultinject/network_faults.h"
#include "sim/network.h"

namespace avd::fi {

/// One injection directive.
struct FaultSpec {
  std::string function;      // injection-point name, e.g. "net::send"
  std::uint64_t callNumber;  // zero-based call index at which to inject
  int errorCode = -1;        // simulated errno handed to the caller
  bool persistent = false;   // if true, also inject at every later call
};

/// A set of injection directives with per-point call counting. Components
/// call shouldFail() at each instrumented call site; the plan decides.
class FaultPlan {
 public:
  void add(FaultSpec spec);
  void clear();

  /// Counts one call to `function` and returns the simulated error code, or
  /// 0 when the call should succeed.
  int shouldFail(std::string_view function);

  std::uint64_t callCount(std::string_view function) const;
  std::uint64_t injectedCount() const noexcept { return injected_; }
  std::size_t specCount() const noexcept;

 private:
  struct PointState {
    std::vector<FaultSpec> specs;
    std::uint64_t calls = 0;
  };
  // Transparent comparator so string_view lookups do not allocate.
  std::map<std::string, PointState, std::less<>> points_;
  std::uint64_t injected_ = 0;
};

/// Adapter exposing the plan's "net::send" point as a network fault: an
/// injected error makes the send silently fail, like a dropped syscall.
/// Counts only messages originating from `fromNodes` (empty = all).
class SendFaultAdapter final : public sim::NetworkFault {
 public:
  SendFaultAdapter(FaultPlan* plan, FlowFilter filter = {}) noexcept
      : plan_(plan), filter_(std::move(filter)) {}

  Decision onMessage(util::NodeId from, util::NodeId to,
                     const sim::MessagePtr& message, util::Rng& rng) override;

  static constexpr std::string_view kPoint = "net::send";

 private:
  FaultPlan* plan_;
  FlowFilter filter_;
};

}  // namespace avd::fi
