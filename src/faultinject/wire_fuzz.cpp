#include "faultinject/wire_fuzz.h"

namespace avd::fi {

sim::NetworkFault::Decision WireFuzzFault::onMessage(
    util::NodeId from, util::NodeId to, const sim::MessagePtr& message,
    util::Rng& rng) {
  Decision decision;
  if (!filter_.matches(from, to) || !rng.chance(probability_)) {
    return decision;
  }

  util::Bytes frame = pbft::wire::encode(*message);
  if (frame.empty()) return decision;  // not a PBFT message

  const std::uint64_t bit = rng.below(frame.size() * 8);
  frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  ++flipped_;

  decision.replace = pbft::wire::decode(frame);
  if (decision.replace == nullptr) {
    // Framing destroyed: a real transport discards the packet.
    ++unparseable_;
    decision.drop = true;
  }
  return decision;
}

}  // namespace avd::fi
