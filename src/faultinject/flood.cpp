#include "faultinject/flood.h"

#include <algorithm>
#include <cassert>

namespace avd::fi {

StatusRecorder::Decision StatusRecorder::onMessage(
    util::NodeId from, util::NodeId /*to*/, const sim::MessagePtr& message,
    util::Rng& /*rng*/) {
  if (static_cast<pbft::MsgKind>(message->kind()) == pbft::MsgKind::kStatus) {
    recorded_.try_emplace(from, message);
  }
  return {};
}

FloodClient::FloodClient(util::NodeId id, const pbft::Config& config,
                         const crypto::Keychain* keychain,
                         FloodOptions options)
    : sim::Node(id),
      config_(config),
      macs_(id, keychain),
      options_(options) {
  assert(id >= config_.replicaCount() && "flood client ids follow replicas");
}

void FloodClient::install() {
  if (options_.kind == FloodKind::kNone) return;
  if (options_.kind == FloodKind::kStatusAmplify) {
    recorder_ = std::make_shared<StatusRecorder>();
    network().addFault(recorder_);
  }
  setTimer(std::max<sim::Time>(options_.start, 1), [this] { tick(); });
}

void FloodClient::receive(util::NodeId /*from*/,
                          const sim::MessagePtr& message) {
  // Open loop: replies are counted (the replay storm's amplification
  // observable) but never awaited.
  if (static_cast<pbft::MsgKind>(message->kind()) == pbft::MsgKind::kReply) {
    ++replies_;
  }
}

void FloodClient::tick() {
  if (exhausted()) return;
  setTimer(std::max<sim::Time>(options_.interval, 1), [this] { tick(); });

  switch (options_.kind) {
    case FloodKind::kNone:
      return;
    case FloodKind::kRequestSpam:
      sendSpam(1);
      return;
    case FloodKind::kOversizedPayload:
      sendSpam(std::max<std::size_t>(options_.payloadBytes, 1));
      return;
    case FloodKind::kReplayStorm:
      sendReplay();
      return;
    case FloodKind::kStatusAmplify:
      sendStatusReplay();
      return;
  }
}

pbft::RequestPtr FloodClient::makeRequest(util::RequestId timestamp,
                                          std::size_t payloadBytes) const {
  auto request = std::make_shared<pbft::RequestMessage>();
  request->client = id();
  request->timestamp = timestamp;
  request->operation = util::Bytes(payloadBytes, std::uint8_t{1});
  request->readOnly = false;
  request->digest =
      pbft::requestDigest(id(), timestamp, request->operation, false);
  request->auth =
      macs_.authenticate(request->digest, config_.replicaCount());
  return request;
}

void FloodClient::deliverToTargets(const sim::MessagePtr& payload) {
  if (options_.target != util::kNoNode &&
      options_.target < config_.replicaCount()) {
    send(options_.target, payload);
    ++sent_;
    return;
  }
  for (util::NodeId replica = 0; replica < config_.replicaCount();
       ++replica) {
    send(replica, payload);
    ++sent_;
  }
}

void FloodClient::sendSpam(std::size_t payloadBytes) {
  for (std::uint32_t i = 0; i < options_.burst && !exhausted(); ++i) {
    deliverToTargets(makeRequest(++nextTimestamp_, payloadBytes));
  }
}

void FloodClient::sendReplay() {
  // First burst establishes the template: a legitimate request that gets
  // ordered and executed, priming every replica's reply cache. Every later
  // burst rebroadcasts the identical message — each copy costs the replica
  // a MAC check plus a cached-reply resend (bandwidth out >> bandwidth in)
  // and a queue slot at the ingress.
  if (replayTemplate_ == nullptr) {
    replayTemplate_ =
        makeRequest(1, std::max<std::size_t>(options_.payloadBytes, 1));
  }
  for (std::uint32_t i = 0; i < options_.burst && !exhausted(); ++i) {
    deliverToTargets(replayTemplate_);
  }
}

void FloodClient::sendStatusReplay() {
  const util::NodeId victim =
      options_.target != util::kNoNode &&
              options_.target < config_.replicaCount()
          ? options_.target
          : config_.replicaCount() - 1;
  const sim::MessagePtr recorded = recorder_->recordedFor(victim);
  if (recorded == nullptr) return;  // nothing on the wire yet; next tick

  // Replay the victim's own (genuinely MAC'd) early STATUS to its peers,
  // with the victim as sender. Each peer sees a lagging replica and pushes
  // SyncSeq batches plus agreement retransmissions at it — an attacker
  // spending ~40 bytes per peer to elicit kilobytes aimed at the victim.
  // Network::send does not authenticate the sender, which is the point:
  // controlling the network is within AVD's threat model (§2).
  for (std::uint32_t i = 0; i < options_.burst && !exhausted(); ++i) {
    for (util::NodeId replica = 0; replica < config_.replicaCount();
         ++replica) {
      if (replica == victim) continue;
      network().send(victim, replica, recorded);
      ++sent_;
    }
  }
}

void enableFloodDefenses(pbft::Config& config) {
  config.clientAdmissionControl = true;
  config.fairClientScheduling = true;
  config.maxOrderingQueue = 1024;
  config.maxParkedPrePrepares = 64;
}

}  // namespace avd::fi
