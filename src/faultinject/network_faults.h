// Network-level fault tools: probabilistic drops, fixed extra delay, and
// partitions. These are the "control over the network" testing tools of §2
// (an attacker's power ranges "from DoS attacks to taking control of
// routers"). Each is a sim::NetworkFault hook; deployments can stack them.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <utility>

#include "sim/network.h"

namespace avd::fi {

/// Selects which (from, to) flows a fault applies to. Default: everything.
struct FlowFilter {
  /// Matches when either set is empty or contains the respective endpoint.
  std::set<util::NodeId> fromNodes;
  std::set<util::NodeId> toNodes;

  bool matches(util::NodeId from, util::NodeId to) const noexcept {
    return (fromNodes.empty() || fromNodes.contains(from)) &&
           (toNodes.empty() || toNodes.contains(to));
  }
};

/// Drops matching messages with fixed probability.
class DropFault final : public sim::NetworkFault {
 public:
  DropFault(double probability, FlowFilter filter = {}) noexcept
      : probability_(probability), filter_(std::move(filter)) {}

  Decision onMessage(util::NodeId from, util::NodeId to,
                     const sim::MessagePtr& message, util::Rng& rng) override;

  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  double probability_;
  FlowFilter filter_;
  std::uint64_t dropped_ = 0;
};

/// Adds fixed + uniformly random extra delay to matching messages.
class DelayFault final : public sim::NetworkFault {
 public:
  DelayFault(sim::Time fixed, sim::Time randomSpan = 0,
             FlowFilter filter = {}) noexcept
      : fixed_(fixed), randomSpan_(randomSpan), filter_(std::move(filter)) {}

  Decision onMessage(util::NodeId from, util::NodeId to,
                     const sim::MessagePtr& message, util::Rng& rng) override;

 private:
  sim::Time fixed_;
  sim::Time randomSpan_;
  FlowFilter filter_;
};

/// Cuts all traffic between two node groups (bidirectional). Nodes absent
/// from both groups are unaffected. Can be healed mid-run.
class PartitionFault final : public sim::NetworkFault {
 public:
  PartitionFault(std::set<util::NodeId> groupA, std::set<util::NodeId> groupB)
      : groupA_(std::move(groupA)), groupB_(std::move(groupB)) {}

  Decision onMessage(util::NodeId from, util::NodeId to,
                     const sim::MessagePtr& message, util::Rng& rng) override;

  void heal() noexcept { healed_ = true; }
  bool healedState() const noexcept { return healed_; }

 private:
  std::set<util::NodeId> groupA_;
  std::set<util::NodeId> groupB_;
  bool healed_ = false;
};

}  // namespace avd::fi
