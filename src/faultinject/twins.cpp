#include "faultinject/twins.h"

namespace avd::fi {

void TwinFault::install() {
  deployment_->simulator().scheduleAt(options_.activation,
                                      [this] { activate(); });
}

void TwinFault::activate() {
  if (!twins_.empty()) return;
  sim::Network& network = deployment_->network();
  for (const util::NodeId id : options_.targets) {
    if (id >= deployment_->replicaCount() || network.isTwinned(id)) continue;
    twins_.push_back(deployment_->makeTwinReplica(id));
    network.registerTwin(twins_.back().get());
    twins_.back()->start();
  }
  if (twins_.empty()) return;
  network.setTwinRouter(
      [this](util::NodeId node, sim::Time now) { return sideOf(node, now); });
}

int TwinFault::sideOf(util::NodeId node, sim::Time now) const {
  int side = 0;
  switch (options_.shape) {
    case Shape::kSplitParity:
      side = static_cast<int>(node & 1U);
      break;
    case Shape::kSplitHalf: {
      // Replicas and clients are halved independently, so "half" does not
      // collapse into "replicas left, clients right".
      const util::NodeId n = deployment_->replicaCount();
      side = node < n ? (node * 2 < n ? 0 : 1)
                      : ((node - n) * 2 < deployment_->config().totalClients()
                             ? 0
                             : 1);
      break;
    }
  }
  if (options_.period > 0 && now > options_.activation) {
    const sim::Time rounds = (now - options_.activation) / options_.period;
    side ^= static_cast<int>(rounds & 1);
  }
  return side;
}

}  // namespace avd::fi
