#include "sim/network.h"

#include <cassert>

namespace avd::sim {

void Network::registerNode(Node* node) {
  assert(node != nullptr);
  const util::NodeId id = node->id();
  if (id >= nodes_.size()) nodes_.resize(id + 1, nullptr);
  assert(nodes_[id] == nullptr && "duplicate node id");
  nodes_[id] = node;
  node->attach(simulator_, this);
}

void Network::registerTwin(Node* twin) {
  assert(twin != nullptr);
  const util::NodeId id = twin->id();
  assert(node(id) != nullptr && "twin requires a registered original");
  assert(twins_.find(id) == twins_.end() && "node already twinned");
  twins_[id] = twin;
  twin->attach(simulator_, this);
}

void Network::send(util::NodeId from, util::NodeId to, MessagePtr message) {
  sendFrom(node(from), to, std::move(message));
}

void Network::sendFrom(Node* sender, util::NodeId to, MessagePtr message) {
  assert(message != nullptr);
  ++counters_.sent;
  counters_.bytesSent += message->wireSize();

  Node* const target = node(to);
  if (sender == nullptr || !sender->alive() || target == nullptr) {
    ++counters_.droppedDeadNode;
    return;
  }
  const util::NodeId from = sender->id();

  // Twin routing: resolve the sender's partition side, then (a) suppress
  // sends toward non-twin peers on the other side — that link does not
  // physically exist this interval — and (b) pick which physical instance
  // of a twinned receiver this side is connected to. Both decisions are
  // made at send time so in-flight messages keep them, mirroring
  // removeFault semantics.
  Node* receiver = target;
  if (!twins_.empty()) {
    int senderSide = 0;
    if (const auto it = twins_.find(from); it != twins_.end()) {
      senderSide = sender == it->second ? 1 : 0;
    } else {
      senderSide = sideOf(from);
    }
    if (const auto it = twins_.find(to); it != twins_.end()) {
      if (senderSide == 1) receiver = it->second;
    } else if (sideOf(to) != senderSide) {
      ++counters_.droppedTwinRouting;
      return;
    }
  }

  Time extraDelay = 0;
  for (const auto& fault : faults_) {
    NetworkFault::Decision decision =
        fault->onMessage(from, to, message, simulator_->rng());
    if (decision.drop) {
      ++counters_.droppedByFaults;
      return;
    }
    extraDelay += decision.extraDelay;
    if (decision.replace != nullptr) {
      message = std::move(decision.replace);
      ++counters_.tamperedByFaults;
    }
  }

  Time delay = model_.baseLatency + extraDelay;
  if (model_.jitter > 0) {
    delay += static_cast<Time>(simulator_->rng().below(
        static_cast<std::uint64_t>(model_.jitter) + 1));
  }

  simulator_->schedule(
      delay, [this, from, to, receiver, message = std::move(message)]() mutable {
    // Twin instances bypass the bounded ingress path (lanes are keyed by
    // logical id, which would always resolve to the side-0 instance).
    if (model_.ingressEnabled() && from >= model_.ingressPriorityNodes &&
        receiver == node(to)) {
      enqueueIngress(from, to, std::move(message));
      return;
    }
    if (!receiver->alive()) {
      ++counters_.droppedDeadNode;
      return;
    }
    ++counters_.delivered;
    ++counters_.deliveredByKind[message->kind()];
    receiver->receive(from, message);
  });
}

void Network::enqueueIngress(util::NodeId from, util::NodeId to,
                             MessagePtr message) {
  if (to >= ingress_.size()) ingress_.resize(to + 1);
  IngressQueue& queue = ingress_[to];
  const util::NodeId laneKey = model_.fairIngress ? from : util::NodeId{0};
  const std::size_t size = message->wireSize();

  // Capacity and byte budget apply per lane: in shared mode that is the
  // whole queue (a flood displaces everyone's traffic — the vulnerable
  // baseline); in fair mode each sender can only fill its own lane.
  IngressLane& lane = queue.lanes[laneKey];
  const bool overCapacity =
      model_.ingressCapacity > 0 && lane.queue.size() >= model_.ingressCapacity;
  const bool overBudget = model_.ingressByteBudget > 0 && !lane.queue.empty() &&
                          lane.bytes + size > model_.ingressByteBudget;
  if (overCapacity || overBudget) {
    ++counters_.droppedQueueOverflow;
    ++queue.stats.drops;
    if (lane.queue.empty()) queue.lanes.erase(laneKey);
    return;
  }

  lane.queue.emplace_back(from, std::move(message));
  lane.bytes += size;
  ++queue.depth;
  queue.bytes += size;
  queue.stats.peakDepth = std::max<std::uint64_t>(queue.stats.peakDepth,
                                                  queue.depth);
  queue.stats.peakBytes = std::max<std::uint64_t>(queue.stats.peakBytes,
                                                  queue.bytes);
  counters_.peakIngressDepth =
      std::max<std::uint64_t>(counters_.peakIngressDepth, queue.depth);
  counters_.peakIngressBytes =
      std::max<std::uint64_t>(counters_.peakIngressBytes, queue.bytes);

  if (!queue.serving) {
    queue.serving = true;
    simulator_->schedule(model_.ingressServiceTime,
                         [this, to] { serviceIngress(to); });
  }
}

void Network::serviceIngress(util::NodeId to) {
  IngressQueue& queue = ingress_[to];
  assert(queue.depth > 0);

  // Pick the next lane: strict FIFO in shared mode, round-robin across
  // sender lanes in fair mode (empty lanes are erased eagerly, so every
  // lane present holds at least one message).
  auto it = queue.lanes.begin();
  if (model_.fairIngress) {
    it = queue.lanes.upper_bound(queue.cursor);
    if (it == queue.lanes.end()) it = queue.lanes.begin();
    queue.cursor = it->first;
  }

  auto [from, message] = std::move(it->second.queue.front());
  it->second.queue.pop_front();
  const std::size_t size = message->wireSize();
  it->second.bytes -= size;
  if (it->second.queue.empty()) queue.lanes.erase(it);
  --queue.depth;
  queue.bytes -= size;

  Node* const receiver = node(to);
  if (receiver == nullptr || !receiver->alive()) {
    ++counters_.droppedDeadNode;
  } else {
    ++counters_.delivered;
    ++counters_.deliveredByKind[message->kind()];
    receiver->receive(from, message);
  }

  if (queue.depth > 0) {
    simulator_->schedule(model_.ingressServiceTime,
                         [this, to] { serviceIngress(to); });
  } else {
    queue.serving = false;
  }
}

IngressStats Network::ingressStats(util::NodeId id) const noexcept {
  return id < ingress_.size() ? ingress_[id].stats : IngressStats{};
}

}  // namespace avd::sim
