#include "sim/network.h"

#include <cassert>

namespace avd::sim {

void Network::registerNode(Node* node) {
  assert(node != nullptr);
  const util::NodeId id = node->id();
  if (id >= nodes_.size()) nodes_.resize(id + 1, nullptr);
  assert(nodes_[id] == nullptr && "duplicate node id");
  nodes_[id] = node;
  node->attach(simulator_, this);
}

void Network::send(util::NodeId from, util::NodeId to, MessagePtr message) {
  assert(message != nullptr);
  ++counters_.sent;
  counters_.bytesSent += message->wireSize();

  Node* const sender = node(from);
  Node* const target = node(to);
  if (sender == nullptr || !sender->alive() || target == nullptr) {
    ++counters_.droppedDeadNode;
    return;
  }

  Time extraDelay = 0;
  for (const auto& fault : faults_) {
    NetworkFault::Decision decision =
        fault->onMessage(from, to, message, simulator_->rng());
    if (decision.drop) {
      ++counters_.droppedByFaults;
      return;
    }
    extraDelay += decision.extraDelay;
    if (decision.replace != nullptr) {
      message = std::move(decision.replace);
      ++counters_.tamperedByFaults;
    }
  }

  Time delay = model_.baseLatency + extraDelay;
  if (model_.jitter > 0) {
    delay += static_cast<Time>(simulator_->rng().below(
        static_cast<std::uint64_t>(model_.jitter) + 1));
  }

  simulator_->schedule(delay, [this, from, to, message = std::move(message)] {
    Node* const receiver = node(to);
    if (receiver == nullptr || !receiver->alive()) {
      ++counters_.droppedDeadNode;
      return;
    }
    ++counters_.delivered;
    receiver->receive(from, message);
  });
}

}  // namespace avd::sim
