#include "sim/simulator.h"

#include <cassert>

namespace avd::sim {

TimerId Simulator::scheduleAt(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const TimerId id = nextId_++;
  heap_.push(Event{when, id, std::move(fn)});
  return id;
}

void Simulator::cancel(TimerId id) {
  if (id != 0 && id < nextId_) cancelled_.insert(id);
}

bool Simulator::popNext(Event& out) {
  while (!heap_.empty()) {
    // priority_queue::top returns const&; the function object must be moved
    // out before pop, so cast away the container-imposed const. The element
    // is removed immediately afterwards, preserving heap invariants.
    Event& top = const_cast<Event&>(heap_.top());
    Event event{top.when, top.id, std::move(top.fn)};
    heap_.pop();
    if (const auto it = cancelled_.find(event.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(event);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Event event;
  if (!popNext(event)) return false;
  now_ = event.when;
  ++executed_;
  event.fn();
  return true;
}

void Simulator::runUntil(Time deadline) {
  for (;;) {
    if (heap_.empty()) break;
    // Peek the earliest live event without executing past the deadline.
    Event event;
    if (!popNext(event)) break;
    if (event.when > deadline) {
      // Put it back; it belongs to the future.
      heap_.push(std::move(event));
      break;
    }
    now_ = event.when;
    ++executed_;
    event.fn();
  }
  now_ = deadline;
}

std::size_t Simulator::run(std::size_t maxEvents) {
  std::size_t executed = 0;
  while (executed < maxEvents && step()) ++executed;
  return executed;
}

}  // namespace avd::sim
