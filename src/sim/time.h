// Virtual time.
//
// All simulation timestamps are 64-bit signed microsecond counts from the
// start of the run. Plain integers (rather than std::chrono) keep event
// arithmetic trivial and serialization exact; the helpers below are the only
// sanctioned way to spell durations in higher layers.
#pragma once

#include <cstdint>

namespace avd::sim {

/// Microseconds of virtual time.
using Time = std::int64_t;

inline constexpr Time kTimeNever = INT64_MAX;

constexpr Time usec(std::int64_t n) noexcept { return n; }
constexpr Time msec(std::int64_t n) noexcept { return n * 1000; }
constexpr Time sec(std::int64_t n) noexcept { return n * 1000 * 1000; }

constexpr double toSeconds(Time t) noexcept {
  return static_cast<double>(t) / 1e6;
}

}  // namespace avd::sim
