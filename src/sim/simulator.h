// Deterministic discrete-event simulation engine.
//
// This is the multi-node emulation substrate that replaces the paper's
// Emulab deployment: hundreds of PBFT replicas and clients run as event-
// driven state machines inside a single process, with virtual time advanced
// by an event queue. Determinism contract: for a fixed seed and a fixed
// sequence of schedule() calls, event execution order is identical across
// runs (ties on timestamp break by insertion order).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "sim/time.h"

namespace avd::sim {

/// Identifier of a cancelable scheduled event.
using TimerId = std::uint64_t;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 0) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const noexcept { return now_; }

  /// Simulation-wide RNG; every stochastic decision in a run flows through
  /// it so that the run is a pure function of the seed.
  util::Rng& rng() noexcept { return rng_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0).
  TimerId schedule(Time delay, std::function<void()> fn) {
    return scheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute virtual time `when` (>= now()).
  TimerId scheduleAt(Time when, std::function<void()> fn);

  /// Cancels a scheduled event. Safe to call on already-fired or already-
  /// cancelled ids (no-op).
  void cancel(TimerId id);

  /// Executes the next pending event. Returns false if the queue is empty.
  bool step();

  /// Runs events with timestamp <= deadline; leaves now() == deadline.
  void runUntil(Time deadline);

  /// Runs until the queue drains or maxEvents have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t maxEvents = SIZE_MAX);

  std::size_t pendingEvents() const noexcept {
    return heap_.size() - cancelled_.size();
  }
  std::uint64_t executedEvents() const noexcept { return executed_; }

 private:
  struct Event {
    Time when;
    TimerId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.id > b.id;
    }
  };

  /// Pops the next live (non-cancelled) event; false if none.
  bool popNext(Event& out);

  Time now_ = 0;
  TimerId nextId_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<TimerId> cancelled_;
  util::Rng rng_;
};

}  // namespace avd::sim
