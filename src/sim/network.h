// Simulated network fabric.
//
// The network delivers messages between registered nodes after a per-link
// latency (base + uniform jitter) and passes every send through a chain of
// NetworkFault hooks. The hooks are how AVD's network-level testing tools
// (drops, delays, partitions, reordering — §2 "the networks may also be
// under the control of AVD") plug into a deployment without the protocol
// code knowing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/message.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace avd::sim {

/// Latency model applied to every link.
struct LinkModel {
  Time baseLatency = msec(1);
  /// Uniform extra delay in [0, jitter].
  Time jitter = 0;
};

/// Hook invoked for every message send. Implementations may drop the
/// message, add extra delay (delaying selected messages is how the
/// reordering tool permutes delivery order), or substitute a tampered
/// payload (the blind bit-flipping tool).
class NetworkFault {
 public:
  struct Decision {
    bool drop = false;
    Time extraDelay = 0;
    /// Non-null: deliver this payload instead of the original.
    MessagePtr replace;
  };

  virtual ~NetworkFault() = default;
  virtual Decision onMessage(util::NodeId from, util::NodeId to,
                             const MessagePtr& message, util::Rng& rng) = 0;
};

/// Traffic counters, exposed for tests and impact analysis.
struct NetworkCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t droppedByFaults = 0;
  std::uint64_t droppedDeadNode = 0;
  std::uint64_t tamperedByFaults = 0;
  std::uint64_t bytesSent = 0;
};

class Network {
 public:
  Network(Simulator* simulator, LinkModel model) noexcept
      : simulator_(simulator), model_(model) {}

  /// Registers a node; its id must be < the deployment's node count and
  /// unique. Nodes are attached to this network and simulator.
  void registerNode(Node* node);

  Node* node(util::NodeId id) const noexcept {
    return id < nodes_.size() ? nodes_[id] : nullptr;
  }
  std::size_t nodeCount() const noexcept { return nodes_.size(); }

  /// Sends `message` from `from` to `to`; applies fault hooks and latency.
  void send(util::NodeId from, util::NodeId to, MessagePtr message);

  void addFault(std::shared_ptr<NetworkFault> fault) {
    faults_.push_back(std::move(fault));
  }

  /// Removes one fault mid-run (e.g. a partition that heals); returns
  /// whether it was installed. Messages already in flight keep whatever
  /// decision the fault made when they were sent.
  bool removeFault(const std::shared_ptr<NetworkFault>& fault) {
    auto it = std::find(faults_.begin(), faults_.end(), fault);
    if (it == faults_.end()) return false;
    faults_.erase(it);
    return true;
  }

  void clearFaults() noexcept { faults_.clear(); }

  const NetworkCounters& counters() const noexcept { return counters_; }
  const LinkModel& linkModel() const noexcept { return model_; }

 private:
  Simulator* simulator_;
  LinkModel model_;
  std::vector<Node*> nodes_;
  std::vector<std::shared_ptr<NetworkFault>> faults_;
  NetworkCounters counters_;
};

}  // namespace avd::sim
