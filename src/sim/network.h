// Simulated network fabric.
//
// The network delivers messages between registered nodes after a per-link
// latency (base + uniform jitter) and passes every send through a chain of
// NetworkFault hooks. The hooks are how AVD's network-level testing tools
// (drops, delays, partitions, reordering — §2 "the networks may also be
// under the control of AVD") plug into a deployment without the protocol
// code knowing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/message.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace avd::sim {

/// Latency model applied to every link, plus the receiver's ingress-queue
/// resource model. With the ingress fields at their zero defaults the
/// network behaves exactly as before: messages are delivered straight from
/// the event queue, which can absorb any volume. Enabling them bounds each
/// node's receive path, so a flood *displaces* useful traffic instead of
/// vanishing into an infinite event queue — the resource-exhaustion fault
/// surface the flood tools attack.
struct LinkModel {
  Time baseLatency = msec(1);
  /// Uniform extra delay in [0, jitter].
  Time jitter = 0;
  /// Max messages queued at a receiver (per sender lane when `fairIngress`,
  /// shared otherwise). 0 = unbounded.
  std::uint32_t ingressCapacity = 0;
  /// Max bytes queued at a receiver (per lane / shared as above). 0 = no
  /// byte budget.
  std::size_t ingressByteBudget = 0;
  /// Time the receiver spends servicing each queued message before the next
  /// one is delivered. 0 = infinitely fast service (queue never backs up
  /// except transiently within one timestamp).
  Time ingressServiceTime = 0;
  /// Aardvark-style resource isolation: one ingress lane per sender,
  /// serviced round-robin, so one flooding sender can only exhaust its own
  /// lane. Off = one shared FIFO queue (the vulnerable baseline).
  bool fairIngress = false;
  /// Senders with id < this value bypass the bounded ingress queue and are
  /// delivered directly — Aardvark's separate replica-to-replica NIC, which
  /// keeps agreement traffic out of the client ingress path. 0 = everyone
  /// queues (the vulnerable baseline).
  std::uint32_t ingressPriorityNodes = 0;

  bool ingressEnabled() const noexcept {
    return ingressCapacity > 0 || ingressByteBudget > 0 ||
           ingressServiceTime > 0 || fairIngress;
  }
};

/// Hook invoked for every message send. Implementations may drop the
/// message, add extra delay (delaying selected messages is how the
/// reordering tool permutes delivery order), or substitute a tampered
/// payload (the blind bit-flipping tool).
class NetworkFault {
 public:
  struct Decision {
    bool drop = false;
    Time extraDelay = 0;
    /// Non-null: deliver this payload instead of the original.
    MessagePtr replace;
  };

  virtual ~NetworkFault() = default;
  virtual Decision onMessage(util::NodeId from, util::NodeId to,
                             const MessagePtr& message, util::Rng& rng) = 0;
};

/// Traffic counters, exposed for tests and impact analysis.
struct NetworkCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t droppedByFaults = 0;
  std::uint64_t droppedDeadNode = 0;
  std::uint64_t tamperedByFaults = 0;
  std::uint64_t bytesSent = 0;
  /// Messages suppressed by the twin routing schedule: the sender's
  /// partition side differs from the receiver's, so physically the link
  /// does not exist this interval.
  std::uint64_t droppedTwinRouting = 0;
  /// Messages dropped on arrival because the receiver's bounded ingress
  /// queue was full (message capacity or byte budget).
  std::uint64_t droppedQueueOverflow = 0;
  /// High-water marks across all nodes (0 when ingress is unbounded).
  std::uint64_t peakIngressDepth = 0;
  std::uint64_t peakIngressBytes = 0;
  /// Deliveries per message kind (the wire discriminator, see
  /// src/avd/gen/protocol_events.h). Ordered so iteration is replayable;
  /// keys absent = zero deliveries of that kind.
  std::map<std::uint32_t, std::uint64_t> deliveredByKind;
};

/// Per-node ingress observability for tests and the flood bench.
struct IngressStats {
  std::uint64_t drops = 0;
  std::uint64_t peakDepth = 0;
  std::uint64_t peakBytes = 0;
};

/// Deterministic twin routing schedule (the Twins methodology, "BFT Systems
/// Made Robust"): assigns every node id to partition side 0 or 1 at virtual
/// time `now`. Instance 0 of a twinned identity (the originally registered
/// node) always lives on side 0 and its twin on side 1, regardless of what
/// the router returns for that id; for every other node the router's value
/// decides which twin it hears from — and whether it can reach a peer on
/// the other side at all. Returning 0 for everything reduces to a normal
/// network with the twins isolated.
using TwinRouter = std::function<int(util::NodeId node, Time now)>;

class Network {
 public:
  Network(Simulator* simulator, LinkModel model) noexcept
      : simulator_(simulator), model_(model) {}

  /// Registers a node; its id must be < the deployment's node count and
  /// unique. Nodes are attached to this network and simulator.
  void registerNode(Node* node);

  /// Registers a second physical node behind an already-registered id: both
  /// instances share the logical identity (id, keys, client-visible
  /// address) and the twin is attached to this network and simulator. The
  /// TwinRouter decides which instance each peer reaches; without one the
  /// twin is fully isolated (side 1 has no members). The caller owns the
  /// twin and must keep it alive for the run; twins cannot be unregistered.
  void registerTwin(Node* twin);

  /// Installs / clears the partition-side schedule consulted on every send.
  void setTwinRouter(TwinRouter router) { twinRouter_ = std::move(router); }
  void clearTwinRouter() noexcept { twinRouter_ = nullptr; }

  bool isTwinned(util::NodeId id) const noexcept {
    return twins_.find(id) != twins_.end();
  }
  /// The side-1 instance of a twinned id (nullptr when not twinned).
  Node* twinInstance(util::NodeId id) const noexcept {
    const auto it = twins_.find(id);
    return it != twins_.end() ? it->second : nullptr;
  }
  std::size_t twinCount() const noexcept { return twins_.size(); }

  Node* node(util::NodeId id) const noexcept {
    return id < nodes_.size() ? nodes_[id] : nullptr;
  }
  std::size_t nodeCount() const noexcept { return nodes_.size(); }

  /// Sends `message` from `from` to `to`; applies fault hooks and latency.
  /// Attributed to the side-0 instance when `from` is twinned — twin
  /// instances must send through sendFrom (Node::send does).
  void send(util::NodeId from, util::NodeId to, MessagePtr message);

  /// Send with an explicit physical sender, so a twin instance's traffic is
  /// routed from its own partition side. This is the path Node::send takes.
  void sendFrom(Node* sender, util::NodeId to, MessagePtr message);

  void addFault(std::shared_ptr<NetworkFault> fault) {
    faults_.push_back(std::move(fault));
  }

  /// Removes one fault mid-run (e.g. a partition that heals); returns
  /// whether it was installed. Messages already in flight keep whatever
  /// decision the fault made when they were sent.
  bool removeFault(const std::shared_ptr<NetworkFault>& fault) {
    auto it = std::find(faults_.begin(), faults_.end(), fault);
    if (it == faults_.end()) return false;
    faults_.erase(it);
    return true;
  }

  void clearFaults() noexcept { faults_.clear(); }

  const NetworkCounters& counters() const noexcept { return counters_; }
  const LinkModel& linkModel() const noexcept { return model_; }

  /// Ingress-queue stats for one receiver (all zero when ingress is off or
  /// the node never queued a message).
  IngressStats ingressStats(util::NodeId id) const noexcept;

 private:
  /// One sender's FIFO lane within a receiver's ingress queue. In shared
  /// (non-fair) mode a single lane keyed by sender 0 holds all traffic.
  struct IngressLane {
    std::deque<std::pair<util::NodeId, MessagePtr>> queue;
    std::size_t bytes = 0;
  };
  struct IngressQueue {
    std::map<util::NodeId, IngressLane> lanes;  // non-empty lanes only
    std::size_t depth = 0;                      // messages across all lanes
    std::size_t bytes = 0;
    util::NodeId cursor = 0;  // fair mode: last lane serviced
    bool serving = false;     // a service-completion event is booked
    IngressStats stats;
  };

  void enqueueIngress(util::NodeId from, util::NodeId to, MessagePtr message);
  void serviceIngress(util::NodeId to);

  /// Partition side of a non-twin node under the current schedule (0 when
  /// no router is installed).
  int sideOf(util::NodeId id) const {
    return twinRouter_ ? (twinRouter_(id, simulator_->now()) & 1) : 0;
  }

  Simulator* simulator_;
  LinkModel model_;
  std::vector<Node*> nodes_;
  /// Side-1 instances by logical id. Ordered so any iteration (oracle
  /// queries, teardown) is deterministic.
  std::map<util::NodeId, Node*> twins_;
  TwinRouter twinRouter_;
  std::vector<std::shared_ptr<NetworkFault>> faults_;
  NetworkCounters counters_;
  std::vector<IngressQueue> ingress_;
};

}  // namespace avd::sim
