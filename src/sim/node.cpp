#include "sim/node.h"

#include "sim/network.h"

namespace avd::sim {

void Node::send(util::NodeId to, MessagePtr message) {
  assert(network_ != nullptr);
  network_->send(id_, to, std::move(message));
}

}  // namespace avd::sim
