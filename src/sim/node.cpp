#include "sim/node.h"

#include "sim/network.h"

namespace avd::sim {

void Node::send(util::NodeId to, MessagePtr message) {
  assert(network_ != nullptr);
  // Route with the physical sender: a twin instance's traffic must leave
  // from its own partition side, not its logical id's side-0 instance.
  network_->sendFrom(this, to, std::move(message));
}

}  // namespace avd::sim
