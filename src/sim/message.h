// Base class for simulated network payloads.
//
// Messages travel through the simulator as shared immutable objects (no
// serialization on the fast path); protocol layers downcast via kind tags.
// Digests/MACs are still computed over canonical byte encodings so that
// authentication covers exactly what a wire deployment would sign.
#pragma once

#include <cstdint>
#include <memory>

namespace avd::sim {

class Message {
 public:
  virtual ~Message() = default;

  /// Protocol-defined discriminator; see pbft/message.h for the PBFT kinds.
  virtual std::uint32_t kind() const noexcept = 0;

  /// Approximate wire size in bytes, used by network byte counters.
  virtual std::size_t wireSize() const noexcept { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace avd::sim
