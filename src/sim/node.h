// Simulated node (process) base class.
//
// A Node owns no threads: it is a state machine invoked by the simulator
// for message deliveries and timer expirations. Crashed nodes stop
// receiving deliveries and their pending timers are suppressed, modelling a
// fail-stop node without tearing down state (so post-mortem inspection in
// tests still works).
#pragma once

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>

#include "common/types.h"
#include "sim/message.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace avd::sim {

class Network;

class Node {
 public:
  explicit Node(util::NodeId id) noexcept : id_(id) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  util::NodeId id() const noexcept { return id_; }
  bool alive() const noexcept { return alive_; }

  /// Fail-stop crash / restart-less recovery toggle (used by fault tools).
  void setAlive(bool alive) noexcept { alive_ = alive; }

  /// Invoked once by the deployment after simulator/network attachment.
  virtual void start() {}

  /// Message delivery upcall. `from` is the sender's node id.
  virtual void receive(util::NodeId from, const MessagePtr& message) = 0;

  /// Wires the node into a simulation; owned by deployment code.
  void attach(Simulator* simulator, Network* network) noexcept {
    simulator_ = simulator;
    network_ = network;
  }

 protected:
  Time now() const noexcept { return simulator_->now(); }
  Simulator& simulator() noexcept { return *simulator_; }
  Network& network() noexcept { return *network_; }

  /// Sends a message through the network to `to`.
  void send(util::NodeId to, MessagePtr message);

  /// Multiplier applied to every setTimer delay — the clock-skew fault
  /// model (a node with a fast clock, scale < 1, times out prematurely).
  void setTimerScale(double scale) noexcept {
    if (scale > 0) timerScale_ = scale;
  }
  double timerScale() const noexcept { return timerScale_; }

  /// Schedules a callback after `delay` (scaled by the node's clock skew);
  /// suppressed if the node has crashed by the time it fires. Returns a
  /// cancelable id.
  TimerId setTimer(Time delay, std::function<void()> fn) {
    assert(simulator_ != nullptr);
    if (timerScale_ != 1.0) {
      delay = std::max<Time>(
          1, static_cast<Time>(static_cast<double>(delay) * timerScale_));
    }
    return simulator_->schedule(delay, [this, fn = std::move(fn)] {
      if (alive_) fn();
    });
  }

  void cancelTimer(TimerId id) { simulator_->cancel(id); }

 private:
  util::NodeId id_;
  bool alive_ = true;
  double timerScale_ = 1.0;
  Simulator* simulator_ = nullptr;
  Network* network_ = nullptr;
};

}  // namespace avd::sim
