// Simulated node (process) base class.
//
// A Node owns no threads: it is a state machine invoked by the simulator
// for message deliveries and timer expirations. Crashed nodes stop
// receiving deliveries and their pending timers are suppressed, modelling a
// fail-stop node without tearing down state (so post-mortem inspection in
// tests still works).
//
// Nodes have a crash–restart lifecycle: crash() marks the node dead,
// restart() revives it under a new incarnation. Timers remember the
// incarnation that armed them and are suppressed if the node has crashed
// *or restarted* before they fire — a timer armed before a crash must not
// run inside the recovered process. Subclasses hook onRestart() to reload
// durable state and re-enter their protocol.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.h"
#include "sim/message.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace avd::sim {

class Network;

class Node {
 public:
  explicit Node(util::NodeId id) noexcept : id_(id) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  util::NodeId id() const noexcept { return id_; }
  bool alive() const noexcept { return alive_; }

  /// Monotonic process-lifetime counter; bumped on every restart. Timers
  /// fire only in the incarnation that armed them.
  uint64_t incarnation() const noexcept { return incarnation_; }
  uint64_t restarts() const noexcept { return restarts_; }
  /// Virtual time of the most recent restart (0 if never restarted).
  Time lastRestartAt() const noexcept { return lastRestartAt_; }

  /// Fail-stop crash: the node stops receiving and all armed timers are
  /// permanently suppressed. Idempotent.
  void crash() noexcept { alive_ = false; }

  /// Revives a crashed node under a new incarnation and invokes the
  /// onRestart() upcall so subclasses can reload durable state and rejoin
  /// their protocol. No-op on a live node.
  void restart() {
    if (alive_) return;
    alive_ = true;
    ++incarnation_;
    ++restarts_;
    if (simulator_ != nullptr) lastRestartAt_ = simulator_->now();
    onRestart();
  }

  /// Legacy fail-stop toggle (used by fault tools): setAlive(false) is
  /// crash(), setAlive(true) is restart() (with the full upcall path).
  void setAlive(bool alive) {
    if (alive) {
      restart();
    } else {
      crash();
    }
  }

  /// Invoked once by the deployment after simulator/network attachment.
  virtual void start() {}

  /// Message delivery upcall. `from` is the sender's node id.
  virtual void receive(util::NodeId from, const MessagePtr& message) = 0;

  /// Recovery upcall, invoked by restart() after the incarnation bump.
  /// Volatile state is gone (the process died); subclasses reload whatever
  /// they persisted and re-arm their timers here.
  virtual void onRestart() {}

  /// Wires the node into a simulation; owned by deployment code.
  void attach(Simulator* simulator, Network* network) noexcept {
    simulator_ = simulator;
    network_ = network;
  }

 protected:
  Time now() const noexcept { return simulator_->now(); }
  Simulator& simulator() noexcept { return *simulator_; }
  Network& network() noexcept { return *network_; }

  /// Sends a message through the network to `to`.
  void send(util::NodeId to, MessagePtr message);

  /// Multiplier applied to every setTimer delay — the clock-skew fault
  /// model (a node with a fast clock, scale < 1, times out prematurely).
  void setTimerScale(double scale) noexcept {
    if (scale > 0) timerScale_ = scale;
  }
  double timerScale() const noexcept { return timerScale_; }

  /// Schedules a callback after `delay` (scaled by the node's clock skew);
  /// suppressed if the node has crashed — or crashed and restarted — by the
  /// time it fires (a restarted process must not run timers armed by its
  /// previous incarnation). Returns a cancelable id.
  TimerId setTimer(Time delay, std::function<void()> fn) {
    assert(simulator_ != nullptr);
    if (timerScale_ != 1.0) {
      delay = std::max<Time>(
          1, static_cast<Time>(static_cast<double>(delay) * timerScale_));
    }
    return simulator_->schedule(
        delay, [this, armedBy = incarnation_, fn = std::move(fn)] {
          if (alive_ && incarnation_ == armedBy) fn();
        });
  }

  void cancelTimer(TimerId id) { simulator_->cancel(id); }

 private:
  util::NodeId id_;
  bool alive_ = true;
  uint64_t incarnation_ = 0;
  uint64_t restarts_ = 0;
  Time lastRestartAt_ = 0;
  double timerScale_ = 1.0;
  Simulator* simulator_ = nullptr;
  Network* network_ = nullptr;
};

}  // namespace avd::sim
