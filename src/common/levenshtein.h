// Levenshtein (edit) distance over arbitrary element sequences.
//
// The message-reordering tool (§5) expresses mutateDistance as the edit
// distance between the original delivery order of a message stream and its
// mutation; the generic implementation here is shared by that tool and by
// the tests that validate the metric axioms.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <string_view>
#include <vector>

namespace avd::util {

/// Edit distance between two element spans with unit insert/delete/replace
/// cost. O(|a|*|b|) time, O(min(|a|,|b|)) space.
template <typename T>
std::size_t levenshtein(std::span<const T> a, std::span<const T> b) {
  if (a.size() < b.size()) return levenshtein(b, a);
  // b is the shorter sequence; keep one rolling row over it.
  std::vector<std::size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), std::size_t{0});
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t previous = row[j];
      const std::size_t replace = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, replace});
      diagonal = previous;
    }
  }
  return row[b.size()];
}

std::size_t levenshtein(std::string_view a, std::string_view b);

}  // namespace avd::util
