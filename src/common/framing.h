// Length-prefixed message framing over byte-stream sockets.
//
// The campaign fleet (src/campaign/fleet/) speaks a simple framed protocol
// between the coordinator and its worker processes: every message is a
// 4-byte big-endian payload length followed by the payload bytes. Frames
// ride on SOCK_STREAM transports only (Unix socketpair for locally spawned
// workers, TCP for remote ones), so a frame either arrives whole or the
// peer is gone — there is no partial-delivery ambiguity above this layer.
//
// Robustness rules baked in here rather than left to callers:
//  * every read/write loops over short transfers and retries EINTR;
//  * writes use MSG_NOSIGNAL so a dead peer yields EPIPE, not SIGPIPE;
//  * a declared length above kMaxFrameBytes is treated as peer corruption
//    and fails the read — a byzantine or desynchronized peer cannot make
//    the coordinator allocate an attacker-chosen buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace avd::util {

/// Upper bound on one frame's payload. Fleet frames are one JSON object
/// (hundreds of bytes); anything near this cap means a corrupt stream.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;  // 1 MiB

/// Writes one frame, blocking until fully sent. False on any error (the
/// peer is treated as dead; the caller decides recovery).
[[nodiscard]] bool writeFrame(int fd, std::string_view payload);

/// Blocking read of one whole frame. nullopt on EOF, error, or an
/// over-cap declared length.
[[nodiscard]] std::optional<std::string> readFrame(int fd);

/// Incremental frame decoder for a non-blocking event loop. Feed it bytes
/// as they arrive; pop complete frames as they become available.
class FrameReader {
 public:
  /// Drains whatever is currently readable from `fd` (MSG_DONTWAIT) into
  /// the buffer. Returns false when the peer is gone (EOF or a hard
  /// error); EAGAIN/EWOULDBLOCK is a normal true return.
  [[nodiscard]] bool pump(int fd);

  /// Pops the next complete frame, or nullopt if none is buffered yet.
  [[nodiscard]] std::optional<std::string> next();

  /// True once a declared length exceeded kMaxFrameBytes; the stream is
  /// unrecoverable and the connection should be dropped.
  bool corrupt() const noexcept { return corrupt_; }

 private:
  std::vector<char> buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already returned
  bool corrupt_ = false;
};

}  // namespace avd::util
