// Minimal leveled logger.
//
// Simulations are extremely chatty at trace level (every message delivery),
// so the level check happens before any formatting work. The logger is a
// process-wide singleton because log output is an observability side channel,
// not part of any component's behaviour.
#pragma once

#include <cstdio>
#include <string_view>

#include "common/lockdep.h"

namespace avd::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance() noexcept;

  void setLevel(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  void write(LogLevel level, std::string_view message);

  /// printf-style formatting entry point used by the AVD_LOG_* macros.
  [[gnu::format(printf, 3, 4)]] void writef(LogLevel level, const char* fmt,
                                            ...);

 private:
  Logger() = default;

  LogLevel level_ = LogLevel::kWarn;
  lockdep::Mutex mutex_{"Logger::mutex_"};
};

#define AVD_LOG_AT(level, ...)                                       \
  do {                                                               \
    ::avd::util::Logger& avdLogger = ::avd::util::Logger::instance(); \
    if (avdLogger.enabled(level)) avdLogger.writef(level, __VA_ARGS__); \
  } while (0)

#define AVD_LOG_TRACE(...) AVD_LOG_AT(::avd::util::LogLevel::kTrace, __VA_ARGS__)
#define AVD_LOG_DEBUG(...) AVD_LOG_AT(::avd::util::LogLevel::kDebug, __VA_ARGS__)
#define AVD_LOG_INFO(...) AVD_LOG_AT(::avd::util::LogLevel::kInfo, __VA_ARGS__)
#define AVD_LOG_WARN(...) AVD_LOG_AT(::avd::util::LogLevel::kWarn, __VA_ARGS__)
#define AVD_LOG_ERROR(...) AVD_LOG_AT(::avd::util::LogLevel::kError, __VA_ARGS__)

}  // namespace avd::util
