#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace avd::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<lockdep::Mutex> guard(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<lockdep::Mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  const std::size_t lanes = std::min(count, threadCount());
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    }));
  }
  for (auto& future : futures) future.get();
}

}  // namespace avd::util
