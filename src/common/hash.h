// Non-cryptographic hashing used for digests, deduplication keys and
// deterministic seed derivation. Cryptographic-strength MACs live in
// src/crypto; this header is for identity, not authentication.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace avd::util {

/// 64-bit FNV-1a over raw bytes.
std::uint64_t fnv1a(std::span<const std::uint8_t> data) noexcept;
std::uint64_t fnv1a(std::string_view s) noexcept;

/// Order-sensitive combination of two 64-bit hashes (boost-style mix).
std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t value) noexcept;

}  // namespace avd::util
