#include "common/bytes.h"

namespace avd::util {

void ByteWriter::blob(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view s) {
  blob(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::optional<std::uint8_t> ByteReader::u8() noexcept {
  return readLe<std::uint8_t>();
}
std::optional<std::uint16_t> ByteReader::u16() noexcept {
  return readLe<std::uint16_t>();
}
std::optional<std::uint32_t> ByteReader::u32() noexcept {
  return readLe<std::uint32_t>();
}
std::optional<std::uint64_t> ByteReader::u64() noexcept {
  return readLe<std::uint64_t>();
}
std::optional<std::int64_t> ByteReader::i64() noexcept {
  auto v = readLe<std::uint64_t>();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<Bytes> ByteReader::blob() {
  const auto len = u32();
  if (!len || remaining() < *len) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::optional<std::string> ByteReader::str() {
  auto raw = blob();
  if (!raw) return std::nullopt;
  return std::string(raw->begin(), raw->end());
}

std::string toHex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

}  // namespace avd::util
