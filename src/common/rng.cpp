#include "common/rng.h"

#include <cmath>

namespace avd::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Debiased modulo via rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  // Advances this generator, so successive forks (even with equal salts)
  // yield independent children.
  std::uint64_t mix = next() ^ rotl(salt, 13);
  return Rng(splitmix64(mix));
}

}  // namespace avd::util
