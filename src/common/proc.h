// Child-process utilities for the campaign fleet.
//
// The fleet coordinator owns worker *processes* so that a UB crash, abort,
// or OOM inside one scenario kills a worker, not the campaign. This module
// wraps the small POSIX surface that requires: spawning a worker over a
// Unix socketpair (fork + exec, never fork-without-exec — the coordinator
// is allowed to hold locks and threads), liveness checks, SIGKILL, reaping,
// and TCP plumbing for remote workers.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

struct pollfd;  // <poll.h>, included only by the implementation

namespace avd::util {

/// A spawned child connected to the parent by one end of a SOCK_STREAM
/// socketpair. The parent end carries FD_CLOEXEC so later children do not
/// inherit it.
struct SpawnedProcess {
  pid_t pid = -1;
  int fd = -1;  // parent's end of the socketpair
};

/// Fork+exec `argv` (argv[0] is the binary path) with the child's end of a
/// fresh socketpair dup'd onto file descriptor 3. nullopt when the
/// socketpair or fork fails; an exec failure surfaces as the child exiting
/// 127 (observed via processExited).
[[nodiscard]] std::optional<SpawnedProcess> spawnWithSocket(
    const std::vector<std::string>& argv);

/// The conventional descriptor number spawnWithSocket hands the child.
inline constexpr int kChildSocketFd = 3;

/// Nonblocking liveness probe: true once the child has exited (and reaps
/// it). Safe to call repeatedly; after the first true it keeps returning
/// true.
[[nodiscard]] bool processExited(pid_t pid);

/// SIGKILL. Harmless on an already-dead pid.
void killProcess(pid_t pid);

/// Blocking reap (waitpid, EINTR-safe). Returns the exit status if the
/// child was actually reaped here.
[[nodiscard]] std::optional<int> reapProcess(pid_t pid);

/// Absolute path of the running executable (/proc/self/exe), so a binary
/// can respawn itself in worker mode without knowing its install path.
[[nodiscard]] std::string selfExePath();

/// Listening TCP socket on `bindAddr`:`port` (0 = ephemeral). `bindAddr`
/// must be a dotted-quad IPv4 address; the default keeps remote workers on
/// loopback, which is the safe posture for a tool that spawns arbitrary
/// scenario executors. Returns the fd and the actually bound port. nullopt
/// on failure (including an unparsable address).
struct TcpListener {
  int fd = -1;
  std::uint16_t port = 0;
};
[[nodiscard]] std::optional<TcpListener> listenTcp(
    std::uint16_t port, const std::string& bindAddr = "127.0.0.1");

/// Accepts one pending connection (nonblocking); nullopt when none is
/// waiting or on error.
[[nodiscard]] std::optional<int> acceptTcp(int listenFd);

/// Blocking connect to host:port. nullopt on failure.
[[nodiscard]] std::optional<int> connectTcp(const std::string& host,
                                            std::uint16_t port);

/// Closes a descriptor and reports whether the kernel accepted the close.
/// Deliberately no EINTR retry: on Linux the descriptor is gone either
/// way, and retrying can close a descriptor another thread just opened.
/// Harmless on fd < 0 (returns true), so cleanup paths can call it
/// unconditionally.
bool closeFd(int fd);

/// poll(2) with the fleet's interruption convention: EINTR reads as "no
/// descriptor ready" (returns 0) so callers treat a delivered signal like
/// a timeout tick and re-enter their loop. Returns poll's count otherwise
/// (negative on real errors).
[[nodiscard]] int pollSockets(pollfd* fds, std::size_t count, int timeoutMs);

/// Installs a process-wide signal handler (std::signal). The handler must
/// be async-signal-safe; the fleet's handlers only set atomic flags.
void installSignalHandler(int signum, void (*handler)(int));

}  // namespace avd::util
