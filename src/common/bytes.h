// Byte-buffer serialization primitives.
//
// Protocol messages are kept as typed C++ objects inside the simulator for
// speed, but request payloads and digests are computed over a canonical
// little-endian wire encoding produced by ByteWriter, so message identity
// (and therefore MAC coverage) matches what a real deployment would sign.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace avd::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian scalars and length-prefixed blobs to a
/// growable byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { appendLe(v); }
  void u32(std::uint32_t v) { appendLe(v); }
  void u64(std::uint64_t v) { appendLe(v); }
  void i64(std::int64_t v) { appendLe(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u32) raw bytes.
  void blob(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) string.
  void str(std::string_view s);

  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  template <typename T>
  void appendLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads back values written by ByteWriter. All accessors return
/// std::nullopt on truncated input instead of reading out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8() noexcept;
  [[nodiscard]] std::optional<std::uint16_t> u16() noexcept;
  [[nodiscard]] std::optional<std::uint32_t> u32() noexcept;
  [[nodiscard]] std::optional<std::uint64_t> u64() noexcept;
  [[nodiscard]] std::optional<std::int64_t> i64() noexcept;
  [[nodiscard]] std::optional<Bytes> blob();
  [[nodiscard]] std::optional<std::string> str();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  [[nodiscard]] std::optional<T> readLe() noexcept {
    if (remaining() < sizeof(T)) return std::nullopt;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex rendering for logs and golden tests.
std::string toHex(std::span<const std::uint8_t> data);

}  // namespace avd::util
