#include "common/lockdep.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <set>
#include <vector>

namespace avd::lockdep {
namespace {

// The order graph is process-wide and append-only outside of tests: an
// edge A -> B means some thread acquired B while holding A. The guard is a
// plain std::mutex (never a lockdep::Mutex — the checker must not check
// itself) and is a leaf: nothing is acquired while it is held, so it can
// never participate in a reported cycle.
std::mutex gGraphGuard;
std::map<const void*, std::set<const void*>> gEdges;
std::map<const void*, const char*> gNames;

// Locks the calling thread currently holds, oldest first.
thread_local std::vector<const void*> tHeld;

const char* nameOf(const void* m) {
  const auto it = gNames.find(m);
  return it != gNames.end() ? it->second : "?";
}

/// Path from `from` to `to` in the order graph (inclusive), empty if none.
/// Called with gGraphGuard held.
std::vector<const void*> findPath(const void* from, const void* to) {
  std::vector<const void*> stack{from};
  std::map<const void*, const void*> parent{{from, nullptr}};
  while (!stack.empty()) {
    const void* node = stack.back();
    stack.pop_back();
    if (node == to) {
      std::vector<const void*> path;
      for (const void* walk = to; walk != nullptr; walk = parent[walk]) {
        path.push_back(walk);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    const auto it = gEdges.find(node);
    if (it == gEdges.end()) continue;
    for (const void* succ : it->second) {
      if (parent.emplace(succ, node).second) stack.push_back(succ);
    }
  }
  return {};
}

[[noreturn]] void reportInversion(const void* held, const void* acquiring,
                                  const std::vector<const void*>& path) {
  std::fprintf(stderr,
               "lockdep: lock-order inversion: acquiring '%s' (%p) while "
               "holding '%s' (%p)\n",
               nameOf(acquiring), acquiring, nameOf(held), held);
  std::fprintf(stderr, "lockdep: previously established order:");
  for (const void* node : path) {
    std::fprintf(stderr, " -> '%s' (%p)", nameOf(node), node);
  }
  std::fprintf(stderr,
               "\nlockdep: the two orders deadlock when interleaved; fix the "
               "acquisition order (see docs/STATIC_ANALYSIS.md, R7)\n");
  std::abort();
}

}  // namespace

namespace detail {

void onAcquire(const void* m, const char* name) {
  {
    const std::lock_guard<std::mutex> guard(gGraphGuard);
    gNames[m] = name;
    for (const void* held : tHeld) {
      if (gEdges[held].contains(m)) continue;
      // Adding held -> m closes a cycle iff m already reaches held
      // (covers the self-edge case: re-acquiring a held mutex).
      const std::vector<const void*> path = findPath(m, held);
      if (!path.empty()) reportInversion(held, m, path);
      gEdges[held].insert(m);
    }
  }
  tHeld.push_back(m);
}

void onRelease(const void* m) {
  for (auto it = tHeld.rbegin(); it != tHeld.rend(); ++it) {
    if (*it == m) {
      tHeld.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace detail

void resetForTest() {
  const std::lock_guard<std::mutex> guard(gGraphGuard);
  gEdges.clear();
  gNames.clear();
  tHeld.clear();
}

}  // namespace avd::lockdep
