// Runtime lock-order checker (lockdep) — the dynamic half of avd_lint R7.
//
// The static analyzer proves the lock-acquisition graph of the *source* is
// acyclic; this module asserts the same invariant about the *execution*:
// every thread records the locks it holds, a process-wide order graph
// accumulates "A was held while B was acquired" edges, and an acquisition
// that would close a cycle aborts with both witness chains before the
// threads can actually deadlock. Each side catches what the other cannot —
// the linter sees paths no test exercises, lockdep sees orders established
// through function pointers and std::function the token index cannot
// resolve.
//
// The checker core (detail::onAcquire/onRelease) is compiled in every
// build so unit tests exercise it unconditionally. The `lockdep::Mutex`
// wrapper only instruments its lock/unlock when AVD_LOCKDEP is defined —
// which cmake/Sanitizers.cmake does for every AVD_SANITIZE build, so the
// TSan CI leg runs the full suite under lockdep; release builds pay
// nothing but one pointer of storage for the name.
#pragma once

#include <condition_variable>
#include <mutex>

namespace avd::lockdep {

namespace detail {

/// Records that the current thread is about to acquire `m`, adds order
/// edges from every lock the thread already holds, and aborts (after
/// printing both witness chains to stderr) if any edge closes a cycle.
/// Called BEFORE the underlying lock blocks, so an inversion is reported
/// even when the deadlock would otherwise hang the process.
void onAcquire(const void* m, const char* name);

/// Pops `m` from the current thread's held-lock stack.
void onRelease(const void* m);

}  // namespace detail

/// Drops every recorded order edge and held-lock entry for the calling
/// thread. Tests use this to isolate scenarios; production code never
/// forgets an order once observed.
void resetForTest();

/// Drop-in std::mutex replacement that feeds the order checker. Satisfies
/// Lockable, so std::lock_guard / std::unique_lock / std::scoped_lock all
/// work unchanged; pair it with lockdep::CondVar for waiting.
class Mutex {
 public:
  explicit Mutex(const char* name = "mutex") noexcept : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
#if defined(AVD_LOCKDEP)
    detail::onAcquire(this, name_);
#endif
    m_.lock();
  }

  bool try_lock() {
    if (!m_.try_lock()) return false;
#if defined(AVD_LOCKDEP)
    // A successful try_lock established the same order a blocking lock
    // would have; record it after the fact (it cannot deadlock).
    detail::onAcquire(this, name_);
#endif
    return true;
  }

  void unlock() {
    m_.unlock();
#if defined(AVD_LOCKDEP)
    detail::onRelease(this);
#endif
  }

  const char* name() const noexcept { return name_; }

 private:
  std::mutex m_;
  const char* name_;
};

/// condition_variable_any works with any Lockable, so waiting code is
/// identical whether the build instruments Mutex or not.
using CondVar = std::condition_variable_any;

}  // namespace avd::lockdep
