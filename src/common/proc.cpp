#include "common/proc.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace avd::util {

[[nodiscard]] std::optional<SpawnedProcess> spawnWithSocket(
    const std::vector<std::string>& argv) {
  if (argv.empty()) return std::nullopt;

  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return std::nullopt;
  // The parent's end must not leak into this child (it would hold the
  // coordinator<->sibling pipe open past the sibling's death) nor into any
  // later-spawned worker.
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return std::nullopt;
  }

  if (pid == 0) {
    // Child: only async-signal-safe calls until exec.
    if (sv[1] != kChildSocketFd) {
      if (::dup2(sv[1], kChildSocketFd) < 0) _exit(127);
      ::close(sv[1]);
    } else {
      // Clear any inherited CLOEXEC so the fd survives exec.
      ::fcntl(sv[1], F_SETFD, 0);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      cargv.push_back(const_cast<char*>(arg.c_str()));
    }
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    _exit(127);
  }

  ::close(sv[1]);
  return SpawnedProcess{pid, sv[0]};
}

bool processExited(pid_t pid) {
  if (pid <= 0) return true;
  int status = 0;
  const pid_t got = ::waitpid(pid, &status, WNOHANG);
  if (got == pid) return true;
  if (got < 0 && errno == ECHILD) return true;  // reaped earlier
  return false;
}

void killProcess(pid_t pid) {
  if (pid > 0) ::kill(pid, SIGKILL);
}

[[nodiscard]] std::optional<int> reapProcess(pid_t pid) {
  if (pid <= 0) return std::nullopt;
  int status = 0;
  for (;;) {
    const pid_t got = ::waitpid(pid, &status, 0);
    if (got == pid) return status;
    if (got < 0 && errno == EINTR) continue;
    return std::nullopt;  // already reaped (ECHILD) or not our child
  }
}

std::string selfExePath() {
  char buffer[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) return {};
  buffer[len] = '\0';
  return std::string(buffer);
}

[[nodiscard]] std::optional<TcpListener> listenTcp(
    std::uint16_t port, const std::string& bindAddr) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bindAddr.c_str(), &addr.sin_addr) != 1) {
    return std::nullopt;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  return TcpListener{fd, ntohs(addr.sin_port)};
}

[[nodiscard]] std::optional<int> acceptTcp(int listenFd) {
  for (;;) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd >= 0) {
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
      return fd;
    }
    if (errno == EINTR) continue;
    return std::nullopt;
  }
}

[[nodiscard]] std::optional<int> connectTcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return std::nullopt;
  }
}

bool closeFd(int fd) {
  if (fd < 0) return true;
  return ::close(fd) == 0;
}

int pollSockets(pollfd* fds, std::size_t count, int timeoutMs) {
  const int ready = ::poll(fds, static_cast<nfds_t>(count), timeoutMs);
  if (ready < 0 && errno == EINTR) return 0;
  return ready;
}

void installSignalHandler(int signum, void (*handler)(int)) {
  std::signal(signum, handler);
}

}  // namespace avd::util
