#include "common/framing.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/types.h>

namespace avd::util {

namespace {

void encodeLength(std::uint32_t length, unsigned char out[4]) {
  out[0] = static_cast<unsigned char>(length >> 24);
  out[1] = static_cast<unsigned char>(length >> 16);
  out[2] = static_cast<unsigned char>(length >> 8);
  out[3] = static_cast<unsigned char>(length);
}

std::uint32_t decodeLength(const unsigned char in[4]) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

bool sendAll(int fd, const void* data, std::size_t size) {
  const char* at = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t sent = ::send(fd, at, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    at += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool recvAll(int fd, void* data, std::size_t size) {
  char* at = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t got = ::recv(fd, at, size, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // orderly EOF mid-frame or between frames
    at += got;
    size -= static_cast<std::size_t>(got);
  }
  return true;
}

}  // namespace

bool writeFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  unsigned char header[4];
  encodeLength(static_cast<std::uint32_t>(payload.size()), header);
  return sendAll(fd, header, sizeof(header)) &&
         sendAll(fd, payload.data(), payload.size());
}

[[nodiscard]] std::optional<std::string> readFrame(int fd) {
  unsigned char header[4];
  if (!recvAll(fd, header, sizeof(header))) return std::nullopt;
  const std::uint32_t length = decodeLength(header);
  if (length > kMaxFrameBytes) return std::nullopt;
  std::string payload(length, '\0');
  if (length > 0 && !recvAll(fd, payload.data(), length)) return std::nullopt;
  return payload;
}

bool FrameReader::pump(int fd) {
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    if (got == 0) return false;  // peer closed
    buffer_.insert(buffer_.end(), chunk, chunk + got);
    if (static_cast<std::size_t>(got) < sizeof(chunk)) return true;
  }
}

std::optional<std::string> FrameReader::next() {
  if (corrupt_) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  unsigned char header[4];
  std::memcpy(header, buffer_.data() + consumed_, 4);
  const std::uint32_t length = decodeLength(header);
  if (length > kMaxFrameBytes) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (available < 4 + static_cast<std::size_t>(length)) return std::nullopt;
  std::string payload(buffer_.data() + consumed_ + 4, length);
  consumed_ += 4 + static_cast<std::size_t>(length);
  // Compact once the consumed prefix dominates, so the buffer does not grow
  // without bound across a long campaign.
  if (consumed_ > 64 * 1024 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return payload;
}

}  // namespace avd::util
