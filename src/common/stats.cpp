#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace avd::util {

namespace {
void appendf(std::string& out, const char* fmt, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value);
  out += buffer;
}
void appendf(std::string& out, const char* fmt, const char* value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value);
  out += buffer;
}
}  // namespace

void Accumulator::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

std::string renderTable(const std::vector<Series>& series,
                        const std::string& xLabel) {
  std::string out;
  appendf(out, "%12s", xLabel.c_str());
  std::size_t rows = 0;
  for (const Series& s : series) {
    appendf(out, " %16s", s.name.c_str());
    rows = std::max(rows, s.size());
  }
  out += '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    const double xv = series.empty() || r >= series[0].x.size()
                          ? static_cast<double>(r)
                          : series[0].x[r];
    appendf(out, "%12.6g", xv);
    for (const Series& s : series) {
      if (r < s.y.size()) {
        appendf(out, " %16.6g", s.y[r]);
      } else {
        appendf(out, " %16s", "-");
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace avd::util
