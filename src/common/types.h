// Fundamental identifier and scalar types shared across the AVD libraries.
#pragma once

#include <cstdint>

namespace avd::util {

/// Identifier of a node (replica or client) in a simulated deployment.
/// Node ids are dense: replicas occupy [0, n) and clients follow.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// PBFT view number.
using ViewId = std::uint64_t;

/// PBFT sequence number assigned by the primary.
using SeqNum = std::uint64_t;

/// Client-local request timestamp (monotonically increasing per client).
using RequestId = std::uint64_t;

}  // namespace avd::util
