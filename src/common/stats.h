// Streaming statistics helpers for performance measurement.
//
// The impact metric of every AVD test is computed from throughput and
// latency samples gathered by these accumulators; they therefore avoid
// storing per-request state unless percentiles are requested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace avd::util {

/// Welford-style streaming mean / variance / min / max accumulator.
class Accumulator {
 public:
  void add(double sample) noexcept;

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel reduction).
  void merge(const Accumulator& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Reservoir of raw samples for percentile queries. Stores everything; the
/// workloads in this repository produce at most a few hundred thousand
/// samples per run.
class SampleSet {
 public:
  void add(double sample) { samples_.push_back(sample); }

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double mean() const noexcept;
  /// Nearest-rank percentile, p in [0, 100]. Returns 0 on empty set.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// A (x, y) series, e.g. "impact of the best scenario after k tests".
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  std::size_t size() const noexcept { return x.size(); }
};

/// Renders series as an aligned ASCII table, one row per x value; used by
/// the figure-regeneration benches to print paper-style data.
std::string renderTable(const std::vector<Series>& series,
                        const std::string& xLabel);

}  // namespace avd::util
