#include "common/hash.h"

namespace avd::util {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  return fnv1a(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t value) noexcept {
  // 64-bit variant of boost::hash_combine using the golden-ratio constant.
  seed ^= value + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

}  // namespace avd::util
