#include "common/logging.h"

#include <cstdarg>
#include <string>

namespace avd::util {

namespace {
constexpr std::string_view levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      break;
  }
  return "?????";
}
}  // namespace

Logger& Logger::instance() noexcept {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view message) {
  const std::lock_guard<lockdep::Mutex> guard(mutex_);
  std::fprintf(stderr, "[%.*s] %.*s\n",
               static_cast<int>(levelName(level).size()),
               levelName(level).data(), static_cast<int>(message.size()),
               message.data());
}

void Logger::writef(LogLevel level, const char* fmt, ...) {
  char buffer[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  write(level, buffer);
}

}  // namespace avd::util
