// Reflected binary Gray code.
//
// The paper encodes the MAC-corruption bitmask dimension in Gray code so
// that a unit step in the explored dimension flips exactly one corruption
// bit, giving the hill-climbing controller a smooth neighbourhood (§6).
#pragma once

#include <cstdint>

namespace avd::util {

/// Binary value -> Gray code.
constexpr std::uint64_t toGray(std::uint64_t binary) noexcept {
  return binary ^ (binary >> 1);
}

/// Gray code -> binary value.
std::uint64_t fromGray(std::uint64_t gray) noexcept;

/// Number of bits that differ between two words (Hamming distance).
int hammingDistance(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace avd::util
