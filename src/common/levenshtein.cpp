#include "common/levenshtein.h"

namespace avd::util {

std::size_t levenshtein(std::string_view a, std::string_view b) {
  return levenshtein(std::span<const char>(a.data(), a.size()),
                     std::span<const char>(b.data(), b.size()));
}

}  // namespace avd::util
