#include "common/gray_code.h"

#include <bit>

namespace avd::util {

std::uint64_t fromGray(std::uint64_t gray) noexcept {
  std::uint64_t binary = gray;
  for (int shift = 1; shift < 64; shift <<= 1) binary ^= binary >> shift;
  return binary;
}

int hammingDistance(std::uint64_t a, std::uint64_t b) noexcept {
  return std::popcount(a ^ b);
}

}  // namespace avd::util
