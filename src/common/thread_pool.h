// Fixed-size worker pool for embarrassingly parallel test execution.
//
// Individual AVD tests are independent (the system under test is
// re-initialized per test, §3), so exhaustive sweeps such as the Figure 3
// hyperspace exploration fan out across a pool. The adaptive controller
// itself stays sequential because each generation step depends on prior
// results.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/lockdep.h"

namespace avd::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Schedules a callable; the returned future observes its result.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      const std::lock_guard<lockdep::Mutex> guard(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until done.
  void parallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  lockdep::Mutex mutex_{"ThreadPool::mutex_"};
  lockdep::CondVar cv_;
  bool stopping_ = false;
};

}  // namespace avd::util
