// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (network jitter, exploration
// sampling, workload generation) draws from an explicitly seeded Rng so that
// a test scenario is a pure function of its parameters. The generator is
// xoshiro256** seeded through SplitMix64, which gives high-quality streams
// from arbitrary 64-bit seeds.
#pragma once

#include <cstdint>
#include <limits>

namespace avd::util {

/// SplitMix64 step; used for seeding and for cheap stateless mixing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic xoshiro256** generator.
///
/// Satisfies the UniformRandomBitGenerator named requirement, so it can be
/// used with <random> distributions, but the convenience members below are
/// preferred because their results are reproducible across standard library
/// implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Derives an independent child generator; deterministic in (state, salt).
  Rng fork(std::uint64_t salt) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace avd::util
