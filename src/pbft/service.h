// Replicated application services.
//
// PBFT orders opaque operations; the Service interface is what a replica
// executes them against. Two reference services ship with the library: a
// counter (the micro-benchmark workload) and a small key-value store (the
// example applications' workload). Both are deterministic, which the
// protocol requires for replies from correct replicas to match.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/types.h"

namespace avd::pbft {

class Service {
 public:
  virtual ~Service() = default;

  /// Executes one operation and returns its result. Must be deterministic
  /// in (current state, client, operation).
  virtual util::Bytes execute(util::NodeId client,
                              const util::Bytes& operation) = 0;

  /// Digest of the full application state, used in checkpoint messages.
  virtual std::uint64_t stateDigest() const = 0;

  /// Serializes the full application state (for state transfer to lagging
  /// replicas). restore(snapshot()) must reproduce an identical state, i.e.
  /// an equal stateDigest().
  virtual util::Bytes snapshot() const = 0;
  virtual void restore(const util::Bytes& snapshot) = 0;

  /// Read-only evaluation for the tentative-execution optimization: answer
  /// `operation` against the current state WITHOUT mutating it, or return
  /// nullopt when the operation is not answerable read-only (it then goes
  /// through ordering like any write).
  [[nodiscard]] virtual std::optional<util::Bytes> query(util::NodeId /*client*/,
                                           const util::Bytes& /*operation*/)
      const {
    return std::nullopt;
  }
};

using ServiceFactory = std::unique_ptr<Service> (*)();

/// Increment-only counter; every operation bumps it by the first byte of
/// the operation (or 1 when empty) and returns the new value.
class CounterService final : public Service {
 public:
  util::Bytes execute(util::NodeId client, const util::Bytes& operation) override;
  std::uint64_t stateDigest() const override;
  util::Bytes snapshot() const override;
  void restore(const util::Bytes& snapshot) override;

  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Key-value store with GET/PUT/DEL operations. Operation encoding (via
/// ByteWriter): u8 opcode (0=GET 1=PUT 2=DEL), str key, [str value for PUT].
/// Results: GET -> str value (empty when missing); PUT/DEL -> u8 1.
class KvService final : public Service {
 public:
  enum class Op : std::uint8_t { kGet = 0, kPut = 1, kDel = 2 };

  static util::Bytes encodeGet(const std::string& key);
  static util::Bytes encodePut(const std::string& key, const std::string& value);
  static util::Bytes encodeDel(const std::string& key);

  util::Bytes execute(util::NodeId client, const util::Bytes& operation) override;
  std::uint64_t stateDigest() const override;
  util::Bytes snapshot() const override;
  void restore(const util::Bytes& snapshot) override;
  /// GETs are answerable read-only; PUT/DEL are not.
  [[nodiscard]] std::optional<util::Bytes> query(util::NodeId client,
                                   const util::Bytes& operation) const override;

  std::size_t size() const noexcept { return table_.size(); }

 private:
  std::map<std::string, std::string> table_;
};

}  // namespace avd::pbft
