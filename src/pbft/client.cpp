#include "pbft/client.h"

#include <algorithm>

#include "common/hash.h"

namespace avd::pbft {

namespace {
util::Bytes defaultOp(util::RequestId /*timestamp*/) {
  return util::Bytes{1};  // counter increment
}
}  // namespace

Client::Client(util::NodeId id, const Config& config,
               const crypto::Keychain* keychain, ClientBehavior behavior,
               sim::Time retxTimeout, OpGenerator opGenerator)
    : sim::Node(id),
      config_(config),
      macs_(id, keychain),
      behavior_(std::move(behavior)),
      retxTimeout_(retxTimeout),
      opGenerator_(opGenerator     ? std::move(opGenerator)
                   : behavior_.opGenerator ? behavior_.opGenerator
                                           : defaultOp) {
  if (behavior_.macPolicy != nullptr) {
    macs_.setFaultPolicy(behavior_.macPolicy);
  }
}

void Client::start() {
  // Stagger client start-up so a large deployment does not issue every
  // first request in the same microsecond.
  const auto jitter =
      static_cast<sim::Time>(simulator().rng().below(sim::msec(10) + 1));
  setTimer(jitter, [this] { issueNext(); });
}

void Client::issueNext() {
  currentTs_ = ++nextTimestamp_;
  currentOp_ = opGenerator_(currentTs_);
  currentReadOnly_ =
      behavior_.readOnlyPredicate && behavior_.readOnlyPredicate(currentTs_);
  currentRetx_ = 0;
  currentDigest_ =
      requestDigest(id(), currentTs_, currentOp_, currentReadOnly_);
  issueTime_ = now();
  outstanding_ = true;
  replyVotes_.clear();
  ++issued_;

  // Read-only requests need 2f+1 replies, so they go to everyone at once.
  transmit(behavior_.broadcastRequests || currentReadOnly_);

  if (!retxArmed_) {
    retxArmed_ = true;
    retxTimer_ = setTimer(retxDelay(), [this] { onRetxTimer(); });
  }
}

sim::Time Client::retxDelay() {
  // Iterative multiply (not std::pow) keeps the value exactly reproducible.
  double multiplier = 1.0;
  if (behavior_.retxBackoffFactor > 1.0) {
    for (std::uint32_t i = 0;
         i < currentRetx_ && multiplier < behavior_.retxBackoffCap; ++i) {
      multiplier *= behavior_.retxBackoffFactor;
    }
    multiplier = std::min(multiplier, behavior_.retxBackoffCap);
  }
  auto delay = static_cast<sim::Time>(
      static_cast<double>(retxTimeout_) * multiplier);
  if (behavior_.retxJitter > 0) {
    delay += static_cast<sim::Time>(
        simulator().rng().below(behavior_.retxJitter + 1));
  }
  return std::max<sim::Time>(delay, 1);
}

void Client::transmit(bool broadcast) {
  auto request = std::make_shared<RequestMessage>();
  request->client = id();
  request->timestamp = currentTs_;
  request->operation = currentOp_;
  request->readOnly = currentReadOnly_;
  request->digest = currentDigest_;
  // A fresh authenticator per transmission: the generateMAC call counter
  // advances by one full round (n calls) each time, which is what makes the
  // 12-bit corruption bitmask cycle across retransmission rounds (§6).
  request->auth =
      macs_.authenticate(currentDigest_, config_.replicaCount());

  if (broadcast) {
    const sim::MessagePtr payload = request;
    for (util::NodeId replica = 0; replica < config_.replicaCount();
         ++replica) {
      send(replica, payload);
    }
  } else {
    send(config_.primaryOf(believedView_), std::move(request));
  }
}

void Client::onRetxTimer() {
  retxArmed_ = false;
  if (!outstanding_) return;
  ++retransmissions_;
  ++currentRetx_;
  // A read-only request that cannot assemble its 2f+1 matching quorum
  // (divergent tentative states, lagging replicas) is retried through the
  // ordered path — the protocol's fallback rule.
  if (currentReadOnly_ && currentRetx_ >= 2) {
    currentReadOnly_ = false;
    currentDigest_ =
        requestDigest(id(), currentTs_, currentOp_, currentReadOnly_);
    replyVotes_.clear();
    ++readOnlyFallbacks_;
  }
  // Retransmissions go to everyone: backups must learn about the request so
  // their view-change timers can guarantee liveness against a bad primary.
  transmit(/*broadcast=*/true);
  retxArmed_ = true;
  retxTimer_ = setTimer(retxDelay(), [this] { onRetxTimer(); });
}

void Client::receive(util::NodeId from, const sim::MessagePtr& message) {
  if (static_cast<MsgKind>(message->kind()) != MsgKind::kReply) return;
  onReply(*std::static_pointer_cast<const ReplyMessage>(message));
  (void)from;
}

void Client::onReply(const ReplyMessage& reply) {
  if (!outstanding_ || reply.timestamp != currentTs_ || reply.client != id()) {
    return;
  }
  if (reply.replica >= config_.replicaCount()) return;
  if (!macs_.verify(reply.replica, replyDigest(reply), reply.mac)) return;
  if (util::fnv1a(reply.result) != reply.resultDigest) return;

  replyVotes_[reply.replica] = {reply.resultDigest, reply.view};

  // Ordered requests complete on f+1 matching replies; tentative read-only
  // requests need 2f+1 (enough to guarantee the answer reflects committed
  // state despite up to f Byzantine replies).
  const std::uint32_t needed =
      currentReadOnly_ ? 2 * config_.f + 1 : config_.f + 1;
  std::map<std::uint64_t, std::uint32_t> tally;
  for (const auto& [replica, vote] : replyVotes_) {
    if (++tally[vote.first] >= needed && vote.first == reply.resultDigest) {
      if (currentReadOnly_) ++readOnlyCompleted_;
      outstanding_ = false;
      if (retxArmed_) {
        cancelTimer(retxTimer_);
        retxArmed_ = false;
      }
      believedView_ = std::max(believedView_, reply.view);
      lastResult_ = reply.result;
      completions_.push_back(Completion{now(), now() - issueTime_});
      if (behavior_.thinkTime > 0) {
        setTimer(behavior_.thinkTime, [this] { issueNext(); });
      } else {
        issueNext();
      }
      return;
    }
  }
}

}  // namespace avd::pbft
