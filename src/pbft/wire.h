// Canonical wire encoding for every PBFT protocol message.
//
// The simulator's fast path passes typed objects, but a credible release
// needs a wire format: digests and MACs must cover well-defined bytes, the
// blind fuzzing tool (§4: "random bit flips") needs real bytes to flip,
// and tests need a stable golden format. Encoding is little-endian with
// length-prefixed containers (see common/bytes.h); decode() is total — any
// input either yields a fully-validated message object or nullptr, never
// undefined behaviour.
#pragma once

#include <span>

#include "common/bytes.h"
#include "pbft/message.h"

namespace avd::pbft::wire {

/// Serializes any PBFT message. Returns an empty buffer for non-PBFT
/// payload kinds.
[[nodiscard]] util::Bytes encode(const sim::Message& message);

/// Parses a buffer produced by encode() (or an arbitrary/corrupted one).
/// Returns nullptr when the buffer is not a well-formed message.
[[nodiscard]] sim::MessagePtr decode(std::span<const std::uint8_t> buffer);

/// Exact encoded size; useful for byte accounting in tests.
[[nodiscard]] std::size_t encodedSize(const sim::Message& message);

}  // namespace avd::pbft::wire
