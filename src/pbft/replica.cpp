#include "pbft/replica.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/logging.h"

namespace avd::pbft {

Replica::Replica(util::NodeId id, const Config& config,
                 const crypto::Keychain* keychain,
                 std::unique_ptr<Service> service, ReplicaBehavior behavior)
    : sim::Node(id),
      config_(config),
      macs_(id, keychain),
      service_(std::move(service)),
      behavior_(behavior) {
  assert(id < config_.replicaCount());
  assert(service_ != nullptr);
  if (behavior_.timerSkew != 1.0) setTimerScale(behavior_.timerSkew);
  initialSnapshot_ = service_->snapshot();
}

void Replica::start() {
  if (config_.statusInterval > 0) {
    setTimer(config_.statusInterval, [this] { broadcastStatus(); });
  }
  if (config_.primaryThroughputGuard) {
    setTimer(config_.guardWindow, [this] { checkPrimaryThroughput(); });
  }
  if (behavior_.slowPrimary) {
    const auto drip = static_cast<sim::Time>(
        static_cast<double>(config_.requestTimeout) *
        behavior_.slowPrimaryFraction);
    dripTimer_ = setTimer(std::max<sim::Time>(drip, 1), [this] { dripOneRequest(); });
  }
  if (behavior_.spuriousViewChangeInterval > 0) {
    setTimer(behavior_.spuriousViewChangeInterval,
             [this] { sendSpuriousViewChange(); });
  }
}

void Replica::onRestart() {
  // The process died with its volatile memory. Only stats_ and the
  // executed-digest trace survive — they are test observability, not process
  // state, and the cross-replica safety oracle must span incarnations: after
  // the rollback to the stable checkpoint, re-executed sequences must
  // re-commit the same batch digests, or quorum intersection was violated.
  view_ = 0;
  inViewChange_ = false;
  targetView_ = 0;
  nextSeq_ = 1;
  lastExecuted_ = 0;
  stableSeq_ = 0;
  log_ = ReplicaLog{};
  clients_.clear();
  authedRequests_.clear();
  pendingPrePrepares_.clear();
  pendingByDigest_.clear();
  parkedBytes_ = 0;
  syncBudget_.clear();
  replyCacheFrozen_.clear();
  orderingClear();
  batchTimerArmed_ = false;
  requestTimerArmed_ = false;
  checkpointVotes_.clear();
  ownCheckpoints_.clear();
  stateTransferInFlight_ = false;
  viewChangeVotes_.clear();
  vcTimerArmed_ = false;
  vcAttempts_ = 0;
  newViewSentFor_ = 0;
  latestNewView_ = nullptr;
  syncVotes_.clear();
  guardWindowBaseline_ = stats_.requestsExecuted;
  stableProof_.clear();

  // Reload the durable record (genesis state when nothing was persisted).
  const StableRecord* record = stable_.load();
  service_->restore(record != nullptr ? record->snapshot : initialSnapshot_);
  if (record != nullptr) {
    view_ = record->view;
    targetView_ = record->view;
    stableSeq_ = record->stableSeq;
    lastExecuted_ = record->stableSeq;
    nextSeq_ = record->stableSeq + 1;
    stableProof_ = record->checkpointProof;
    for (const auto& [client, timestamp] : record->clientTimestamps) {
      clients_[client].lastExecutedTs = timestamp;
    }
    if (record->stableSeq > 0) {
      // Re-seed the stable checkpoint so we can serve state transfers and
      // re-vote it if peers are still gathering the quorum.
      OwnCheckpoint& own = ownCheckpoints_[record->stableSeq];
      own.digest = record->checkpointDigest;
      own.snapshot = record->snapshot;
      own.clientTimestamps = record->clientTimestamps;
    }
    // Re-seed the P-set memory: our next VIEW-CHANGE vote must keep
    // vouching for every certificate the previous incarnation held.
    for (const PreparedProof& proof : record->prepared) {
      if (proof.seq <= stableSeq_) continue;
      LogEntry& entry = log_.at(proof.seq);
      entry.everPrepared = true;
      entry.preparedView = proof.view;
      entry.preparedDigest = proof.digest;
      entry.preparedBatch = proof.batch;
    }
  }

  // Re-arm the lifecycle timers under the new incarnation, then rejoin with
  // an immediate status round: peers push the sequences we missed, relay
  // the NEW-VIEW if the view moved on, or trigger checkpoint state transfer
  // if the system advanced past our log window.
  start();
  sendStatusNow();
}

void Replica::persistStableState() {
  StableRecord record;
  record.view = view_;
  record.stableSeq = stableSeq_;
  record.checkpointProof = stableProof_;
  if (const auto ownIt = ownCheckpoints_.find(stableSeq_);
      stableSeq_ > 0 && ownIt != ownCheckpoints_.end()) {
    record.checkpointDigest = ownIt->second.digest;
    record.snapshot = ownIt->second.snapshot;
    record.clientTimestamps = ownIt->second.clientTimestamps;
  } else if (const StableRecord* previous = stable_.load();
             previous != nullptr && previous->stableSeq == stableSeq_) {
    // Checkpoint data is unchanged since the last write (e.g. persisting a
    // view transition between checkpoints); carry it forward.
    record.checkpointDigest = previous->checkpointDigest;
    record.snapshot = previous->snapshot;
    record.clientTimestamps = previous->clientTimestamps;
  } else {
    record.snapshot = initialSnapshot_;
  }
  record.prepared = log_.preparedProofsAbove(stableSeq_, config_.f);
  stable_.save(std::move(record));
}

template <typename M>
void Replica::multicastToReplicas(std::shared_ptr<M> message) {
  const sim::MessagePtr payload = message;
  for (util::NodeId replica = 0; replica < n(); ++replica) {
    if (replica != id()) send(replica, payload);
  }
}

void Replica::receive(util::NodeId from, const sim::MessagePtr& message) {
  switch (static_cast<MsgKind>(message->kind())) {
    case MsgKind::kRequest:
      onRequest(from, std::static_pointer_cast<const RequestMessage>(message));
      break;
    case MsgKind::kPrePrepare:
      onPrePrepare(from,
                   std::static_pointer_cast<const PrePrepareMessage>(message));
      break;
    case MsgKind::kPrepare:
      onPrepare(from, *std::static_pointer_cast<const PrepareMessage>(message));
      break;
    case MsgKind::kCommit:
      onCommit(from, *std::static_pointer_cast<const CommitMessage>(message));
      break;
    case MsgKind::kCheckpoint:
      onCheckpoint(
          from, *std::static_pointer_cast<const CheckpointMessage>(message));
      break;
    case MsgKind::kViewChange:
      onViewChange(from,
                   std::static_pointer_cast<const ViewChangeMessage>(message));
      break;
    case MsgKind::kNewView:
      onNewView(from, std::static_pointer_cast<const NewViewMessage>(message));
      break;
    case MsgKind::kStatus:
      onStatus(from, *std::static_pointer_cast<const StatusMessage>(message));
      break;
    case MsgKind::kSyncSeq:
      onSyncSeq(from, std::static_pointer_cast<const SyncSeqMessage>(message));
      break;
    case MsgKind::kStateRequest:
      onStateRequest(
          from, *std::static_pointer_cast<const StateRequestMessage>(message));
      break;
    case MsgKind::kStateResponse:
      onStateResponse(
          from,
          *std::static_pointer_cast<const StateResponseMessage>(message));
      break;
    case MsgKind::kReply:
      break;  // replicas do not consume replies
  }
}

// --- Requests ---------------------------------------------------------------

void Replica::onRequest(util::NodeId from, const RequestPtr& request) {
  ++stats_.requestsReceived;

  // Integrity + authenticity: the digest must match the request body, and
  // our own authenticator entry must verify. This is exactly the check a
  // Big MAC request passes at the primary and fails at the backups.
  if (request->digest != requestDigest(request->client, request->timestamp,
                                       request->operation,
                                       request->readOnly)) {
    ++stats_.requestsBadMac;
    return;
  }
  if (!request->auth.hasEntryFor(id()) ||
      !macs_.verify(request->client, request->digest,
                    request->auth.tags[id()])) {
    ++stats_.requestsBadMac;
    return;
  }

  // Aardvark-style admission control (off by default): reject oversized
  // operations before any further work, and charge every authenticated
  // arrival — fresh or replayed — against the client's per-window quota, so
  // a flooding client exhausts its own allowance instead of the replica.
  if (config_.clientAdmissionControl &&
      request->operation.size() > config_.maxRequestBytes) {
    ++stats_.oversizedRejected;
    return;
  }

  ClientRecord& record = clients_[request->client];
  if (config_.clientAdmissionControl && !admitRequest(record)) {
    ++stats_.quotaDrops;
    return;
  }

  if (request->timestamp < record.lastExecutedTs) return;
  if (request->timestamp == record.lastExecutedTs) {
    if (record.lastReply != nullptr) {
      // Replay suppression: under admission control, at most one cached
      // reply is resent per client per window — a replay storm gets one
      // answer and then silence.
      if (config_.clientAdmissionControl && !admitResend(record)) {
        ++stats_.replaysSuppressed;
        return;
      }
      ++stats_.repliesResent;
      send(request->client, record.lastReply);
    }
    return;
  }

  // Read-only optimization: execute tentatively against the current state,
  // reply immediately, and never touch ordering or the request timers. The
  // client compensates with a 2f+1 matching-reply quorum. Operations the
  // service cannot answer read-only fall through to the ordered path.
  if (request->readOnly) {
    if (const auto result =
            service_->query(request->client, request->operation)) {
      auto reply = std::make_shared<ReplyMessage>();
      reply->view = view_;
      reply->client = request->client;
      reply->timestamp = request->timestamp;
      reply->replica = id();
      reply->resultDigest = util::fnv1a(*result);
      reply->result = *result;
      reply->mac = macs_.generate(request->client, replyDigest(*reply));
      ++stats_.readOnlyServed;
      send(request->client, std::move(reply));
      return;
    }
  }

  // We now hold an authenticated copy: pre-prepares that were parked
  // waiting for this request (its embedded authenticator entry was corrupt
  // for us) can proceed via digest matching.
  authedRequests_[request->digest] = request;
  retryPendingPrePrepares(request->digest);

  const bool direct = from == request->client;
  if (direct) noteDirectRequest(request);

  if (isPrimary()) {
    enqueueForOrdering(request);
  } else if (direct && isReplicaId(currentPrimary())) {
    // Backups relay directly-received requests to the primary.
    send(currentPrimary(), request);
  }
}

void Replica::noteDirectRequest(const RequestPtr& request) {
  ClientRecord& record = clients_[request->client];
  if (record.pendingDirect == nullptr ||
      record.pendingDirect->timestamp <= request->timestamp) {
    record.pendingDirect = request;
  }
  if (config_.perRequestTimers) {
    if (!record.timerArmed) {
      record.timerArmed = true;
      const util::NodeId client = request->client;
      record.timer = setTimer(config_.requestTimeout, [this, client] {
        ClientRecord& rec = clients_[client];
        rec.timerArmed = false;
        if (inViewChange_) return;
        if (rec.pendingDirect != nullptr &&
            rec.pendingDirect->timestamp > rec.lastExecutedTs) {
          startViewChange(view_ + 1);
        }
      });
    }
  } else {
    armSingleTimer();
  }
}

void Replica::armSingleTimer() {
  if (requestTimerArmed_) return;
  requestTimerArmed_ = true;
  requestTimer_ =
      setTimer(config_.requestTimeout, [this] { onRequestTimerExpired(); });
}

void Replica::onRequestTimerExpired() {
  requestTimerArmed_ = false;
  if (inViewChange_) return;
  if (hasPendingDirectRequests()) startViewChange(view_ + 1);
}

bool Replica::hasPendingDirectRequests() const {
  for (const auto& [client, record] : clients_) {
    if (record.pendingDirect != nullptr &&
        record.pendingDirect->timestamp > record.lastExecutedTs) {
      return true;
    }
  }
  return false;
}

void Replica::onRequestExecuted(util::NodeId client,
                                util::RequestId timestamp) {
  ClientRecord& record = clients_[client];
  const bool wasDirect = record.pendingDirect != nullptr &&
                         record.pendingDirect->timestamp <= timestamp;
  if (wasDirect) record.pendingDirect = nullptr;
  if (!wasDirect) return;

  if (config_.perRequestTimers) {
    // Fixed semantics: executing this client's request only cancels this
    // client's timer; other starving requests keep their deadlines.
    if (record.timerArmed) {
      cancelTimer(record.timer);
      record.timerArmed = false;
    }
  } else {
    // THE BUG (paper §6): a single timer, cleared whenever *any* directly-
    // received request executes, even though other direct requests may
    // still be pending. The next direct receipt re-arms it from scratch.
    if (requestTimerArmed_) {
      cancelTimer(requestTimer_);
      requestTimerArmed_ = false;
    }
  }
}

// --- Ordering (primary) -----------------------------------------------------

std::size_t Replica::orderingSize() const noexcept {
  return config_.fairClientScheduling ? fairQueued_ : orderingQueue_.size();
}

bool Replica::orderingPush(const RequestPtr& request) {
  if (config_.maxOrderingQueue > 0 &&
      orderingSize() >= config_.maxOrderingQueue) {
    // Deterministic drop policy: the newest arrival is rejected; the client
    // retransmits once the queue has drained.
    ++stats_.orderingDropped;
    return false;
  }
  if (config_.fairClientScheduling) {
    fairQueues_[request->client].push_back(request);
    ++fairQueued_;
  } else {
    orderingQueue_.push_back(request);
  }
  stats_.peakOrderingQueue =
      std::max<std::uint64_t>(stats_.peakOrderingQueue, orderingSize());
  return true;
}

std::vector<RequestPtr> Replica::orderingTake(std::size_t take) {
  std::vector<RequestPtr> batch;
  batch.reserve(std::min(take, orderingSize()));
  if (!config_.fairClientScheduling) {
    while (batch.size() < take && !orderingQueue_.empty()) {
      batch.push_back(std::move(orderingQueue_.front()));
      orderingQueue_.pop_front();
    }
    return batch;
  }
  // Aardvark's fair client scheduling: one request per client per pass,
  // round-robin by client id, so no single client can monopolize a batch.
  while (batch.size() < take && fairQueued_ > 0) {
    auto it = fairQueues_.upper_bound(fairCursor_);
    if (it == fairQueues_.end()) it = fairQueues_.begin();
    fairCursor_ = it->first;
    batch.push_back(std::move(it->second.front()));
    it->second.pop_front();
    --fairQueued_;
    if (it->second.empty()) fairQueues_.erase(it);
  }
  return batch;
}

RequestPtr Replica::orderingTakeFor(util::NodeId client) {
  if (!config_.fairClientScheduling) {
    auto pick = orderingQueue_.begin();
    if (client != util::kNoNode) {
      pick = std::find_if(orderingQueue_.begin(), orderingQueue_.end(),
                          [client](const RequestPtr& request) {
                            return request->client == client;
                          });
    }
    if (pick == orderingQueue_.end()) return nullptr;
    RequestPtr request = std::move(*pick);
    orderingQueue_.erase(pick);
    return request;
  }
  if (client == util::kNoNode) {
    auto batch = orderingTake(1);
    return batch.empty() ? nullptr : std::move(batch.front());
  }
  const auto it = fairQueues_.find(client);
  if (it == fairQueues_.end()) return nullptr;
  RequestPtr request = std::move(it->second.front());
  it->second.pop_front();
  --fairQueued_;
  if (it->second.empty()) fairQueues_.erase(it);
  return request;
}

void Replica::orderingClear() {
  orderingQueue_.clear();
  fairQueues_.clear();
  fairQueued_ = 0;
}

bool Replica::admitRequest(ClientRecord& record) {
  const std::int64_t window =
      config_.admissionWindow > 0 ? now() / config_.admissionWindow : 0;
  if (record.admissionWindow != window) {
    record.admissionWindow = window;
    record.admittedInWindow = 0;
    record.resendsInWindow = 0;
  }
  if (record.admittedInWindow >= config_.admissionQuota) return false;
  ++record.admittedInWindow;
  return true;
}

bool Replica::admitResend(ClientRecord& record) {
  // admitRequest already rolled the window forward for this arrival.
  if (record.resendsInWindow >= 1) return false;
  ++record.resendsInWindow;
  return true;
}

std::size_t Replica::replyCacheBytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [client, record] : clients_) {
    if (record.lastReply != nullptr) total += record.lastReply->wireSize();
  }
  return total;
}

void Replica::enqueueForOrdering(const RequestPtr& request) {
  ClientRecord& record = clients_[request->client];
  if (request->timestamp <=
      std::max(record.lastQueuedTs, record.lastExecutedTs)) {
    return;  // already in flight or executed
  }
  if (!orderingPush(request)) return;  // bounded queue rejected it
  record.lastQueuedTs = request->timestamp;
  if (behavior_.slowPrimary) return;  // the drip timer does the ordering
  if (orderingSize() >= static_cast<std::size_t>(config_.maxBatch)) {
    flushBatch();
  } else {
    scheduleBatchFlush();
  }
}

void Replica::scheduleBatchFlush() {
  if (batchTimerArmed_ || orderingEmpty() || !isPrimary() ||
      behavior_.slowPrimary) {
    return;
  }
  batchTimerArmed_ = true;
  batchTimer_ = setTimer(config_.batchDelay, [this] {
    batchTimerArmed_ = false;
    flushBatch();
  });
}

void Replica::flushBatch() {
  if (!isPrimary()) return;
  while (!orderingEmpty() &&
         nextSeq_ <= stableSeq_ + config_.watermarkWindow) {
    orderBatch(orderingTake(config_.maxBatch));
  }
}

void Replica::orderBatch(std::vector<RequestPtr> batch) {
  const util::SeqNum seq = nextSeq_++;
  auto prePrepare = std::make_shared<PrePrepareMessage>();
  prePrepare->view = view_;
  prePrepare->seq = seq;
  prePrepare->digest = batchDigest(batch);
  prePrepare->batch = std::move(batch);
  prePrepare->replica = id();
  prePrepare->auth = macs_.authenticate(
      phaseDigest(MsgKind::kPrePrepare, view_, seq, prePrepare->digest, id()),
      n());
  ++stats_.batchesOrdered;

  LogEntry& entry = log_.at(seq);
  entry.prePrepare = prePrepare;
  entry.view = view_;
  entry.digest = prePrepare->digest;
  entry.prepareSent = true;  // the pre-prepare stands in for our prepare

  if (behavior_.equivocate) {
    // Safety attack: tell odd-numbered backups a different story for the
    // same sequence (the batch minus its last request). The split prepare
    // votes must never both reach a certificate — quorum intersection
    // guarantees at most one digest survives.
    auto conflicting = std::make_shared<PrePrepareMessage>();
    conflicting->view = view_;
    conflicting->seq = seq;
    conflicting->batch = prePrepare->batch;
    if (!conflicting->batch.empty()) conflicting->batch.pop_back();
    conflicting->digest = batchDigest(conflicting->batch);
    conflicting->replica = id();
    conflicting->auth = macs_.authenticate(
        phaseDigest(MsgKind::kPrePrepare, view_, seq, conflicting->digest,
                    id()),
        n());
    for (util::NodeId replica = 0; replica < n(); ++replica) {
      if (replica == id()) continue;
      send(replica, replica % 2 == 1
                        ? sim::MessagePtr(conflicting)
                        : sim::MessagePtr(prePrepare));
    }
    return;
  }

  multicastToReplicas(std::move(prePrepare));
}

void Replica::dripOneRequest() {
  if (behavior_.slowPrimary) {
    // Keep dripping for the lifetime of the node; checks below make it a
    // no-op while we are not the primary.
    const auto drip = static_cast<sim::Time>(
        static_cast<double>(config_.requestTimeout) *
        behavior_.slowPrimaryFraction);
    dripTimer_ = setTimer(std::max<sim::Time>(drip, 1), [this] { dripOneRequest(); });
  }
  if (!isPrimary() || orderingEmpty()) return;
  if (nextSeq_ > stableSeq_ + config_.watermarkWindow) return;

  RequestPtr pick = orderingTakeFor(behavior_.colludingClient);
  if (pick == nullptr) return;  // nothing from the colluder yet
  std::vector<RequestPtr> batch{std::move(pick)};
  orderBatch(std::move(batch));
}

// --- Agreement ---------------------------------------------------------------

void Replica::onPrePrepare(util::NodeId from, const PrePreparePtr& prePrepare) {
  if (inViewChange_) return;
  if (from != prePrepare->replica) return;
  acceptPrePrepare(prePrepare);
}

bool Replica::acceptPrePrepare(const PrePreparePtr& prePrepare) {
  if (prePrepare->view != view_) return false;
  if (prePrepare->replica != currentPrimary()) return false;
  const util::SeqNum seq = prePrepare->seq;
  if (seq <= stableSeq_ || seq > stableSeq_ + config_.watermarkWindow) {
    return false;
  }
  if (seq <= lastExecuted_) return false;

  LogEntry& entry = log_.at(seq);
  if (entry.prePrepare != nullptr) {
    // Accept-once: an equivocating primary's second proposal is ignored.
    return entry.digest == prePrepare->digest;
  }

  if (!prePrepare->auth.hasEntryFor(id()) ||
      !macs_.verify(prePrepare->replica,
                    phaseDigest(MsgKind::kPrePrepare, prePrepare->view, seq,
                                prePrepare->digest, prePrepare->replica),
                    prePrepare->auth.tags[id()])) {
    ++stats_.prePreparesRejected;
    return false;
  }
  if (prePrepare->digest != batchDigest(prePrepare->batch)) {
    ++stats_.prePreparesRejected;
    return false;
  }
  // Verify every piggybacked request: digest integrity (hard reject on
  // mismatch) plus authentication. A request authenticates if OUR entry of
  // its embedded authenticator verifies, or if we already hold a verified
  // copy with the same digest (received directly from the client — possibly
  // a later, honest retransmission round). Requests we cannot authenticate
  // park the pre-prepare until such a copy arrives; if it never does, the
  // sequence number stalls and the request timers escalate to a view change.
  // This is the Big MAC surface (§6).
  std::vector<std::uint64_t> missing;
  for (const RequestPtr& request : prePrepare->batch) {
    if (request->digest != requestDigest(request->client, request->timestamp,
                                         request->operation,
                                         request->readOnly)) {
      ++stats_.prePreparesRejected;
      return false;
    }
    if (request->auth.hasEntryFor(id()) &&
        macs_.verify(request->client, request->digest,
                     request->auth.tags[id()])) {
      authedRequests_[request->digest] = request;
      continue;
    }
    if (!authedRequests_.contains(request->digest)) {
      missing.push_back(request->digest);
    }
  }
  if (!missing.empty()) {
    if (config_.maxParkedPrePrepares > 0 &&
        pendingPrePrepares_.size() >= config_.maxParkedPrePrepares &&
        !pendingPrePrepares_.contains(seq)) {
      // Bounded parking, deterministic drop policy: keep the lowest
      // sequences (they unblock execution first) — evict the highest parked
      // entry, or refuse this one if it would itself be the highest. Stale
      // pendingByDigest_ entries for the evicted sequence are harmless:
      // retries skip sequences no longer parked.
      const auto last = std::prev(pendingPrePrepares_.end());
      if (last->first <= seq) {
        ++stats_.parkedEvicted;
        return false;
      }
      parkedBytes_ -= last->second->wireSize();
      pendingPrePrepares_.erase(last);
      ++stats_.parkedEvicted;
    }
    ++stats_.prePreparesPended;
    if (const auto [it, inserted] =
            pendingPrePrepares_.try_emplace(seq, prePrepare);
        inserted) {
      parkedBytes_ += prePrepare->wireSize();
      stats_.peakParkedBytes =
          std::max<std::uint64_t>(stats_.peakParkedBytes, parkedBytes_);
    }
    for (const std::uint64_t digest : missing) {
      pendingByDigest_[digest].insert(seq);
    }
    // A commit certificate for this digest may already exist (we can be the
    // last replica to hear about the batch).
    adoptQuorumCertifiedPending(seq);
    return false;
  }

  entry.prePrepare = prePrepare;
  entry.view = view_;
  entry.digest = prePrepare->digest;

  if (currentPrimary() != id() && !entry.prepareSent) {
    entry.prepareSent = true;
    entry.prepares[id()] = entry.digest;
    if (!behavior_.silentPrepares) {
      auto prepare = std::make_shared<PrepareMessage>();
      prepare->view = view_;
      prepare->seq = seq;
      prepare->digest = entry.digest;
      prepare->replica = id();
      prepare->auth = macs_.authenticate(
          phaseDigest(MsgKind::kPrepare, view_, seq, entry.digest, id()), n());
      multicastToReplicas(std::move(prepare));
    }
  }
  maybeSendCommit(seq);
  return true;
}

void Replica::retryPendingPrePrepares(std::uint64_t digest) {
  const auto indexIt = pendingByDigest_.find(digest);
  if (indexIt == pendingByDigest_.end()) return;
  const std::set<util::SeqNum> seqs = std::move(indexIt->second);
  pendingByDigest_.erase(indexIt);
  for (const util::SeqNum seq : seqs) {
    const auto pendingIt = pendingPrePrepares_.find(seq);
    if (pendingIt == pendingPrePrepares_.end()) continue;
    const PrePreparePtr prePrepare = pendingIt->second;
    // Remove before retrying: acceptPrePrepare may legitimately re-park the
    // pre-prepare on a different still-missing request.
    parkedBytes_ -= prePrepare->wireSize();
    pendingPrePrepares_.erase(pendingIt);
    acceptPrePrepare(prePrepare);
  }
}

void Replica::onPrepare(util::NodeId from, const PrepareMessage& prepare) {
  if (inViewChange_) return;
  if (prepare.view != view_ || from != prepare.replica) return;
  if (!isReplicaId(from) || from == currentPrimary()) return;
  const util::SeqNum seq = prepare.seq;
  if (seq <= stableSeq_ || seq > stableSeq_ + config_.watermarkWindow) return;
  if (!prepare.auth.hasEntryFor(id()) ||
      !macs_.verify(from,
                    phaseDigest(MsgKind::kPrepare, prepare.view, seq,
                                prepare.digest, from),
                    prepare.auth.tags[id()])) {
    return;
  }
  log_.at(seq).prepares[from] = prepare.digest;
  maybeSendCommit(seq);
}

void Replica::maybeSendCommit(util::SeqNum seq) {
  LogEntry* const entry = log_.find(seq);
  if (entry == nullptr) return;
  if (entry->prepared(config_.f)) entry->recordPrepared();
  if (entry->prepared(config_.f) && !entry->commitSent) {
    entry->commitSent = true;
    entry->commits[id()] = entry->digest;
    if (!behavior_.silentCommits) {
      auto commit = std::make_shared<CommitMessage>();
      commit->view = view_;
      commit->seq = seq;
      commit->digest = entry->digest;
      commit->replica = id();
      commit->auth = macs_.authenticate(
          phaseDigest(MsgKind::kCommit, view_, seq, entry->digest, id()), n());
      multicastToReplicas(std::move(commit));
    }
  }
  if (entry->committed(config_.f)) maybeExecute();
}

void Replica::onCommit(util::NodeId from, const CommitMessage& commit) {
  if (inViewChange_) return;
  if (commit.view != view_ || from != commit.replica || !isReplicaId(from)) {
    return;
  }
  const util::SeqNum seq = commit.seq;
  if (seq <= stableSeq_ || seq > stableSeq_ + config_.watermarkWindow) return;
  if (!commit.auth.hasEntryFor(id()) ||
      !macs_.verify(from,
                    phaseDigest(MsgKind::kCommit, commit.view, seq,
                                commit.digest, from),
                    commit.auth.tags[id()])) {
    return;
  }
  LogEntry& entry = log_.at(seq);
  entry.commits[from] = commit.digest;
  adoptQuorumCertifiedPending(seq);
  if (entry.committed(config_.f)) maybeExecute();
}

bool Replica::adoptQuorumCertifiedPending(util::SeqNum seq) {
  const auto pendingIt = pendingPrePrepares_.find(seq);
  if (pendingIt == pendingPrePrepares_.end()) return false;
  const PrePreparePtr prePrepare = pendingIt->second;
  if (prePrepare->view != view_) return false;

  LogEntry& entry = log_.at(seq);
  std::size_t matching = 0;
  for (const auto& [replica, digest] : entry.commits) {
    if (digest == prePrepare->digest) ++matching;
  }
  if (matching < config_.quorum()) return false;

  // 2f+1 replicas committed this digest, so at least f+1 correct replicas
  // authenticated every request in the batch: adopt it on quorum authority.
  // (Castro-Liskov replicas likewise execute quorum-certified content they
  // could not authenticate client-side themselves.) We are a straggler for
  // this sequence; the quorum has the prepares and commits it needs, so we
  // stay silent rather than echo stale agreement traffic.
  entry.prePrepare = prePrepare;
  entry.view = view_;
  entry.digest = prePrepare->digest;
  entry.prepareSent = true;
  entry.commitSent = true;
  // Each matching commit attests its sender held a prepared certificate, so
  // the adopted entry is prepared by the same quorum's authority.
  for (const auto& [replica, digest] : entry.commits) {
    if (digest == entry.digest && replica != currentPrimary()) {
      entry.prepares[replica] = digest;
    }
  }
  entry.recordPrepared();
  parkedBytes_ -= pendingIt->second->wireSize();
  pendingPrePrepares_.erase(pendingIt);
  ++stats_.prePreparesAdoptedByQuorum;
  maybeExecute();
  return true;
}

void Replica::maybeExecute() {
  for (;;) {
    LogEntry* const entry = log_.find(lastExecuted_ + 1);
    if (entry == nullptr || entry->executed || !entry->committed(config_.f)) {
      break;
    }
    executeEntry(lastExecuted_ + 1, *entry);
  }
  // Execution progress may have freed watermark-window space.
  if (isPrimary() && !orderingEmpty()) scheduleBatchFlush();
}

void Replica::executeEntry(util::SeqNum seq, LogEntry& entry) {
  assert(seq == lastExecuted_ + 1);
  for (const RequestPtr& request : entry.prePrepare->batch) {
    ClientRecord& record = clients_[request->client];
    if (request->timestamp <= record.lastExecutedTs) continue;

    util::Bytes result = service_->execute(request->client, request->operation);
    auto reply = std::make_shared<ReplyMessage>();
    reply->view = view_;
    reply->client = request->client;
    reply->timestamp = request->timestamp;
    reply->replica = id();
    reply->resultDigest = util::fnv1a(result);
    reply->result = std::move(result);
    reply->mac = macs_.generate(request->client, replyDigest(*reply));

    record.lastExecutedTs = request->timestamp;
    record.lastReply = reply;
    ++stats_.requestsExecuted;
    send(request->client, reply);
    onRequestExecuted(request->client, request->timestamp);
    authedRequests_.erase(request->digest);
  }
  entry.executed = true;
  executedDigests_[seq] = entry.digest;
  CommitCert& cert = commitCerts_[seq];
  cert.digest = entry.digest;
  cert.voters.clear();
  for (const auto& [replica, digest] : entry.commits) {
    if (digest == entry.digest) cert.voters.push_back(replica);
  }
  ++lastExecuted_;
  // A recovered primary catching up through sync must not re-propose
  // sequence numbers the executed prefix already consumed.
  if (nextSeq_ <= lastExecuted_) nextSeq_ = lastExecuted_ + 1;

  if (config_.checkpointInterval > 0 &&
      lastExecuted_ % config_.checkpointInterval == 0) {
    takeCheckpoint(lastExecuted_);
  }
}

// --- Aardvark-style throughput guard --------------------------------------------

void Replica::checkPrimaryThroughput() {
  setTimer(config_.guardWindow, [this] { checkPrimaryThroughput(); });
  const std::uint64_t executedThisWindow =
      stats_.requestsExecuted - guardWindowBaseline_;
  guardWindowBaseline_ = stats_.requestsExecuted;
  if (inViewChange_) return;

  // Aardvark's insight: liveness needs a *rate* expectation, not just a
  // timer — a primary may keep resetting timers by trickling single
  // requests while everyone else starves. Depose it whenever requests are
  // pending but the execution rate is below the floor.
  const double minExecuted = config_.guardMinRps *
                             sim::toSeconds(config_.guardWindow);
  if (hasPendingDirectRequests() &&
      static_cast<double>(executedThisWindow) < minExecuted) {
    startViewChange(view_ + 1);
  }
}

// --- Status / sync subprotocol ------------------------------------------------

void Replica::broadcastStatus() {
  setTimer(config_.statusInterval, [this] { broadcastStatus(); });
  sendStatusNow();
}

void Replica::sendStatusNow() {
  // Status keeps flowing during view changes: a replica waiting for a lost
  // NEW-VIEW must advertise its (stale) view so peers can relay it.
  auto status = std::make_shared<StatusMessage>();
  status->view = view_;
  status->lastExecuted = lastExecuted_;
  status->replica = id();
  status->auth = macs_.authenticate(statusDigest(*status), n());
  multicastToReplicas(std::move(status));
}

void Replica::onStatus(util::NodeId from, const StatusMessage& status) {
  if (!isReplicaId(from) || from != status.replica) return;
  if (!status.auth.hasEntryFor(id()) ||
      !macs_.verify(from, statusDigest(status), status.auth.tags[id()])) {
    return;
  }
  // A peer stranded in an older view may have lost the NEW-VIEW that
  // installed ours (the install is a single message; drops strand its
  // receiver until escalation) — relay it.
  if (status.view < view_ && latestNewView_ != nullptr &&
      latestNewView_->view == view_) {
    send(from, latestNewView_);
  }

  if (status.lastExecuted >= lastExecuted_) return;

  // Per-peer amplification budget: a STATUS costs its sender a few dozen
  // bytes but elicits up to syncChunk full batches plus agreement
  // retransmissions. Capping the *count* is not enough — batches carry
  // whole request payloads — so total pushed bytes per peer per status
  // window are bounded. A replayed lagging STATUS (the flood tool's
  // amplification trigger) now earns one budget's worth of bytes per
  // window instead of an unbounded stream.
  const std::int64_t syncWindow =
      config_.statusInterval > 0 ? now() / config_.statusInterval : 0;
  std::size_t budgetUsed = 0;
  if (config_.syncBytesPerPeer > 0) {
    auto& [window, used] = syncBudget_[from];
    if (window != syncWindow) {
      window = syncWindow;
      used = 0;
    }
    budgetUsed = used;
  }
  bool budgetHit = false;
  const auto charge = [&](std::size_t bytes) {
    if (config_.syncBytesPerPeer == 0) return true;
    if (budgetUsed + bytes > config_.syncBytesPerPeer) {
      budgetHit = true;
      return false;
    }
    budgetUsed += bytes;
    return true;
  };

  // Push attestations for the sequences the peer missed. Only sequences
  // still in our log can be served this way; anything older falls under
  // checkpoint-based state transfer.
  std::uint32_t pushed = 0;
  for (util::SeqNum seq = status.lastExecuted + 1;
       seq <= lastExecuted_ && pushed < config_.syncChunk && !budgetHit;
       ++seq) {
    const LogEntry* const entry = log_.find(seq);
    if (entry == nullptr || !entry->executed || entry->prePrepare == nullptr) {
      continue;
    }
    auto sync = std::make_shared<SyncSeqMessage>();
    sync->seq = seq;
    sync->digest = entry->digest;
    sync->batch = entry->prePrepare->batch;
    sync->replica = id();
    sync->mac = macs_.generate(from, syncSeqDigest(*sync));
    if (!charge(sync->wireSize())) break;
    send(from, std::move(sync));
    ++pushed;
  }

  // Retransmit current-view agreement messages for in-flight sequences the
  // peer may be stuck on (a sequence whose pre-prepare/prepare/commit was
  // lost or tampered has no other repair path until the request timers
  // escalate to a view change). Receivers deduplicate, so this is cheap
  // insurance — the Castro-Liskov implementation's status protocol does
  // the same.
  std::uint32_t retransmitted = 0;
  for (util::SeqNum seq = std::max(status.lastExecuted, lastExecuted_) + 1;
       retransmitted < config_.syncChunk && !budgetHit; ++seq) {
    const LogEntry* const entry = log_.find(seq);
    if (entry == nullptr) break;  // contiguous in-flight range exhausted
    if (entry->view != view_ || entry->executed) continue;
    bool sentSomething = false;
    if (entry->prePrepare != nullptr && currentPrimary() == id() &&
        charge(entry->prePrepare->wireSize())) {
      send(from, entry->prePrepare);
      sentSomething = true;
    }
    if (entry->prepareSent && currentPrimary() != id() &&
        !behavior_.silentPrepares) {
      auto prepare = std::make_shared<PrepareMessage>();
      prepare->view = view_;
      prepare->seq = seq;
      prepare->digest = entry->digest;
      prepare->replica = id();
      prepare->auth = macs_.authenticate(
          phaseDigest(MsgKind::kPrepare, view_, seq, entry->digest, id()),
          n());
      if (charge(prepare->wireSize())) {
        send(from, std::move(prepare));
        sentSomething = true;
      }
    }
    if (entry->commitSent && !behavior_.silentCommits && !budgetHit) {
      auto commit = std::make_shared<CommitMessage>();
      commit->view = view_;
      commit->seq = seq;
      commit->digest = entry->digest;
      commit->replica = id();
      commit->auth = macs_.authenticate(
          phaseDigest(MsgKind::kCommit, view_, seq, entry->digest, id()),
          n());
      if (charge(commit->wireSize())) {
        send(from, std::move(commit));
        sentSomething = true;
      }
    }
    if (sentSomething) ++retransmitted;
  }

  if (config_.syncBytesPerPeer > 0) {
    syncBudget_[from].second = budgetUsed;
    if (budgetHit) ++stats_.syncBytesCapped;
  }
}

void Replica::onSyncSeq(util::NodeId from,
                        const std::shared_ptr<const SyncSeqMessage>& sync) {
  if (!isReplicaId(from) || from != sync->replica) return;
  if (!macs_.verify(from, syncSeqDigest(*sync), sync->mac)) return;
  if (sync->seq <= lastExecuted_) return;
  if (sync->digest != batchDigest(sync->batch)) return;
  for (const RequestPtr& request : sync->batch) {
    if (request->digest != requestDigest(request->client, request->timestamp,
                                         request->operation,
                                         request->readOnly)) {
      return;
    }
  }
  syncVotes_[sync->seq][sync->digest][from] = sync;
  drainSyncVotes();
}

void Replica::drainSyncVotes() {
  for (;;) {
    const util::SeqNum next = lastExecuted_ + 1;
    const auto seqIt = syncVotes_.find(next);
    if (seqIt == syncVotes_.end()) break;
    const std::shared_ptr<const SyncSeqMessage>* certified = nullptr;
    for (const auto& [digest, voters] : seqIt->second) {
      // f+1 matching attestations include at least one correct replica.
      if (voters.size() >= config_.f + 1) {
        certified = &voters.begin()->second;
        break;
      }
    }
    if (certified == nullptr) break;

    LogEntry& entry = log_.at(next);
    if (!entry.executed) {
      auto prePrepare = std::make_shared<PrePrepareMessage>();
      prePrepare->view = view_;
      prePrepare->seq = next;
      prePrepare->batch = (*certified)->batch;
      prePrepare->digest = (*certified)->digest;
      prePrepare->replica = currentPrimary();
      entry.prePrepare = std::move(prePrepare);
      entry.view = view_;
      entry.digest = (*certified)->digest;
      entry.prepareSent = true;
      entry.commitSent = true;
      entry.recordPrepared();
      if (const auto pendingIt = pendingPrePrepares_.find(next);
          pendingIt != pendingPrePrepares_.end()) {
        parkedBytes_ -= pendingIt->second->wireSize();
        pendingPrePrepares_.erase(pendingIt);
      }
      ++stats_.sequencesSynced;
      executeEntry(next, entry);
    }
    syncVotes_.erase(seqIt);
  }
  syncVotes_.erase(syncVotes_.begin(),
                   syncVotes_.upper_bound(lastExecuted_));
  // Sync progress may have unblocked normally-committed successors.
  maybeExecute();
}

// --- Checkpoints & state transfer ---------------------------------------------

void Replica::takeCheckpoint(util::SeqNum seq) {
  const std::uint64_t digest =
      util::hashCombine(service_->stateDigest(), seq);
  OwnCheckpoint& own = ownCheckpoints_[seq];
  own.digest = digest;
  own.snapshot = service_->snapshot();
  own.clientTimestamps.clear();
  own.clientTimestamps.reserve(clients_.size());
  for (const auto& [client, record] : clients_) {
    own.clientTimestamps.emplace_back(client, record.lastExecutedTs);
  }
  ++stats_.checkpointsTaken;

  auto checkpoint = std::make_shared<CheckpointMessage>();
  checkpoint->seq = seq;
  checkpoint->stateDigest = digest;
  checkpoint->replica = id();
  checkpoint->auth = macs_.authenticate(
      phaseDigest(MsgKind::kCheckpoint, 0, seq, digest, id()), n());
  multicastToReplicas(std::move(checkpoint));

  checkpointVotes_[seq][digest][id()] = true;
  checkCheckpointStable(seq);
}

void Replica::onCheckpoint(util::NodeId from,
                           const CheckpointMessage& checkpoint) {
  if (!isReplicaId(from) || from != checkpoint.replica) return;
  if (checkpoint.seq <= stableSeq_) return;
  if (!checkpoint.auth.hasEntryFor(id()) ||
      !macs_.verify(from,
                    phaseDigest(MsgKind::kCheckpoint, 0, checkpoint.seq,
                                checkpoint.stateDigest, from),
                    checkpoint.auth.tags[id()])) {
    return;
  }
  checkpointVotes_[checkpoint.seq][checkpoint.stateDigest][from] = true;
  checkCheckpointStable(checkpoint.seq);
}

void Replica::checkCheckpointStable(util::SeqNum seq) {
  const auto votesIt = checkpointVotes_.find(seq);
  if (votesIt == checkpointVotes_.end()) return;
  for (const auto& [digest, voters] : votesIt->second) {
    if (voters.size() < config_.quorum()) continue;

    const auto ownIt = ownCheckpoints_.find(seq);
    if (ownIt != ownCheckpoints_.end() && ownIt->second.digest == digest) {
      // Stable and we hold it: advance the low watermark and GC. The proof
      // (quorum voter set) is captured before GC discards the votes.
      if (seq > stableSeq_ || stableProof_.empty()) {
        stableProof_.clear();
        stableProof_.reserve(voters.size());
        for (const auto& [voter, present] : voters) {
          stableProof_.push_back(voter);
        }
      }
      stableSeq_ = std::max(stableSeq_, seq);
      log_.truncateBelow(stableSeq_);
      checkpointVotes_.erase(checkpointVotes_.begin(),
                             checkpointVotes_.upper_bound(stableSeq_));
      ownCheckpoints_.erase(ownCheckpoints_.begin(),
                            ownCheckpoints_.lower_bound(stableSeq_));
      const auto pendingEnd = pendingPrePrepares_.upper_bound(stableSeq_);
      for (auto it = pendingPrePrepares_.begin(); it != pendingEnd; ++it) {
        parkedBytes_ -= it->second->wireSize();
      }
      pendingPrePrepares_.erase(pendingPrePrepares_.begin(), pendingEnd);
      // Reply-cache GC: entries whose timestamp was already frozen in the
      // PREVIOUS stable checkpoint are evicted now — one full checkpoint
      // window of grace, so a client retransmitting across the eviction
      // still finds its cached reply. lastExecutedTs survives, preserving
      // at-most-once execution. This is what bounds reply-cache growth
      // under a replay storm from many one-shot clients.
      for (const auto& [client, frozenTs] : replyCacheFrozen_) {
        const auto clientIt = clients_.find(client);
        if (clientIt == clients_.end()) continue;
        ClientRecord& record = clientIt->second;
        if (record.lastReply != nullptr &&
            record.lastReply->timestamp <= frozenTs) {
          record.lastReply = nullptr;
          ++stats_.replyCacheEvicted;
        }
      }
      replyCacheFrozen_.clear();
      if (const auto frozenIt = ownCheckpoints_.find(stableSeq_);
          frozenIt != ownCheckpoints_.end()) {
        for (const auto& [client, timestamp] :
             frozenIt->second.clientTimestamps) {
          replyCacheFrozen_[client] = timestamp;
        }
      }
      persistStableState();
      if (isPrimary()) scheduleBatchFlush();
    } else if (seq > lastExecuted_ && !stateTransferInFlight_) {
      // Proof that the system moved past us: fetch state from a voter.
      for (const auto& [voter, present] : voters) {
        if (voter != id()) {
          requestStateTransfer(seq, voter);
          break;
        }
      }
    }
    return;
  }
}

void Replica::requestStateTransfer(util::SeqNum seq, util::NodeId source) {
  stateTransferInFlight_ = true;
  auto request = std::make_shared<StateRequestMessage>();
  request->seq = seq;
  request->replica = id();
  request->mac = macs_.generate(source, stateRequestDigest(*request));
  send(source, std::move(request));
  // Give up after a while so a crashed source does not wedge us.
  setTimer(config_.viewChangeTimeout, [this] { stateTransferInFlight_ = false; });
}

void Replica::onStateRequest(util::NodeId from,
                             const StateRequestMessage& request) {
  if (!isReplicaId(from) || from != request.replica) return;
  if (!macs_.verify(from, stateRequestDigest(request), request.mac)) return;

  // Serve the newest checkpoint at or above the requested sequence.
  const auto it = ownCheckpoints_.lower_bound(request.seq);
  if (it == ownCheckpoints_.end()) return;

  auto response = std::make_shared<StateResponseMessage>();
  response->seq = it->first;
  response->stateDigest = it->second.digest;
  response->snapshot = it->second.snapshot;
  response->clientTimestamps = it->second.clientTimestamps;
  response->replica = id();
  response->mac = macs_.generate(from, stateResponseDigest(*response));
  send(from, std::move(response));
}

void Replica::onStateResponse(util::NodeId from,
                              const StateResponseMessage& response) {
  if (!isReplicaId(from) || from != response.replica) return;
  if (!macs_.verify(from, stateResponseDigest(response), response.mac)) return;
  if (response.seq <= lastExecuted_) return;

  // Only adopt state whose digest we can independently corroborate with a
  // checkpoint quorum — a single (possibly Byzantine) peer must not be able
  // to feed us fabricated state.
  const auto votesIt = checkpointVotes_.find(response.seq);
  if (votesIt == checkpointVotes_.end()) return;
  const auto digestIt = votesIt->second.find(response.stateDigest);
  if (digestIt == votesIt->second.end() ||
      digestIt->second.size() < config_.quorum()) {
    return;
  }

  service_->restore(response.snapshot);
  if (util::hashCombine(service_->stateDigest(), response.seq) !=
      response.stateDigest) {
    AVD_LOG_WARN("replica %u: state transfer digest mismatch from %u", id(),
                 from);
    return;
  }

  lastExecuted_ = response.seq;
  for (const auto& [client, timestamp] : response.clientTimestamps) {
    ClientRecord& record = clients_[client];
    if (timestamp > record.lastExecutedTs) {
      record.lastExecutedTs = timestamp;
      record.lastReply = nullptr;  // cannot reproduce replies we never sent
      if (record.pendingDirect != nullptr &&
          record.pendingDirect->timestamp <= timestamp) {
        onRequestExecuted(client, timestamp);
      }
    }
  }

  OwnCheckpoint& own = ownCheckpoints_[response.seq];
  own.digest = response.stateDigest;
  own.snapshot = response.snapshot;
  own.clientTimestamps = response.clientTimestamps;
  stateTransferInFlight_ = false;
  ++stats_.stateTransfersCompleted;
  checkCheckpointStable(response.seq);
  maybeExecute();
}

// --- View changes ---------------------------------------------------------------

void Replica::startViewChange(util::ViewId newView) {
  if (newView <= view_) return;
  if (inViewChange_ && targetView_ >= newView) return;

  inViewChange_ = true;
  targetView_ = newView;
  ++stats_.viewChangesInitiated;

  // Normal-operation timers stop while the view change runs.
  if (requestTimerArmed_) {
    cancelTimer(requestTimer_);
    requestTimerArmed_ = false;
  }
  if (config_.perRequestTimers) {
    for (auto& [client, record] : clients_) {
      if (record.timerArmed) {
        cancelTimer(record.timer);
        record.timerArmed = false;
      }
    }
  }
  if (batchTimerArmed_) {
    cancelTimer(batchTimer_);
    batchTimerArmed_ = false;
  }

  auto viewChange = std::make_shared<ViewChangeMessage>();
  viewChange->newView = newView;
  viewChange->stableSeq = stableSeq_;
  viewChange->prepared = log_.preparedProofsAbove(stableSeq_, config_.f);
  viewChange->replica = id();
  viewChange->auth =
      macs_.authenticate(viewChangeDigest(*viewChange), n());

  viewChangeVotes_[newView][id()] = viewChange;
  // Persist before the vote leaves: a crash after sending must not let the
  // recovered replica forget the prepared certificates its vote vouched for.
  persistStableState();
  multicastToReplicas(std::move(viewChange));

  if (vcTimerArmed_) cancelTimer(vcTimer_);
  vcTimerArmed_ = true;
  const std::uint32_t backoff = std::min<std::uint32_t>(vcAttempts_, 10);
  vcTimer_ = setTimer(config_.viewChangeTimeout << backoff,
                      [this] { onViewChangeTimerExpired(); });
  ++vcAttempts_;

  // The historical implementation bug (§6): running the view-change path
  // while holding pre-prepares whose requests never authenticated crashes
  // the replica — after its VIEW-CHANGE went out, so peers still count the
  // vote. See Config::viewChangeCrashBug.
  if (config_.viewChangeCrashBug && !pendingPrePrepares_.empty()) {
    stats_.crashedOnViewChange = 1;
    setAlive(false);
    return;
  }

  maybeSendNewView(newView);
}

void Replica::onViewChangeTimerExpired() {
  vcTimerArmed_ = false;
  if (inViewChange_) startViewChange(targetView_ + 1);
}

void Replica::onViewChange(util::NodeId from, const ViewChangePtr& viewChange) {
  if (!isReplicaId(from) || from != viewChange->replica) return;
  if (viewChange->newView <= view_) return;
  if (!viewChange->auth.hasEntryFor(id()) ||
      !macs_.verify(from, viewChangeDigest(*viewChange),
                    viewChange->auth.tags[id()])) {
    return;
  }
  viewChangeVotes_[viewChange->newView][from] = viewChange;

  // Liveness join rule: f+1 distinct replicas asking for views beyond our
  // horizon prove at least one correct replica timed out — join the
  // smallest such view so the system converges.
  const util::ViewId base = inViewChange_ ? targetView_ : view_;
  std::map<util::NodeId, bool> ahead;
  util::ViewId smallest = 0;
  for (const auto& [votedView, voters] : viewChangeVotes_) {
    if (votedView <= base) continue;
    if (smallest == 0) smallest = votedView;
    for (const auto& [voter, vote] : voters) ahead[voter] = true;
  }
  if (smallest != 0 && ahead.size() >= config_.f + 1) {
    startViewChange(smallest);
  }

  maybeSendNewView(viewChange->newView);
}

void Replica::maybeSendNewView(util::ViewId newView) {
  if (config_.primaryOf(newView) != id()) return;
  if (view_ >= newView || newViewSentFor_ >= newView) return;
  const auto votesIt = viewChangeVotes_.find(newView);
  if (votesIt == viewChangeVotes_.end()) return;
  const auto& votes = votesIt->second;
  if (!votes.contains(id())) return;  // we must have joined this view change
  if (votes.size() < config_.quorum()) return;

  // min-s: newest stable checkpoint across the certificate; max-s: highest
  // prepared sequence. Holes get null requests, which is exactly how the
  // protocol skips a Big MAC request that could never prepare.
  util::SeqNum minS = 0;
  util::SeqNum maxS = 0;
  std::map<util::SeqNum, const PreparedProof*> chosen;
  for (const auto& [voter, vote] : votes) {
    minS = std::max(minS, vote->stableSeq);
    for (const PreparedProof& proof : vote->prepared) {
      maxS = std::max(maxS, proof.seq);
      const PreparedProof*& slot = chosen[proof.seq];
      if (slot == nullptr || proof.view > slot->view) slot = &proof;
    }
  }
  maxS = std::max(maxS, minS);

  auto newViewMessage = std::make_shared<NewViewMessage>();
  newViewMessage->view = newView;
  newViewMessage->replica = id();
  for (util::SeqNum seq = minS + 1; seq <= maxS; ++seq) {
    auto prePrepare = std::make_shared<PrePrepareMessage>();
    prePrepare->view = newView;
    prePrepare->seq = seq;
    const auto chosenIt = chosen.find(seq);
    if (chosenIt != chosen.end() && chosenIt->second->seq == seq) {
      prePrepare->batch = chosenIt->second->batch;
      prePrepare->digest = chosenIt->second->digest;
    } else {
      prePrepare->digest = batchDigest({});  // null request fills the hole
    }
    prePrepare->replica = id();
    prePrepare->auth = macs_.authenticate(
        phaseDigest(MsgKind::kPrePrepare, newView, seq, prePrepare->digest,
                    id()),
        n());
    newViewMessage->prePrepares.push_back(std::move(prePrepare));
  }
  newViewMessage->auth =
      macs_.authenticate(newViewDigest(*newViewMessage), n());

  newViewSentFor_ = newView;
  latestNewView_ = newViewMessage;
  const std::vector<PrePreparePtr> prePrepares = newViewMessage->prePrepares;
  multicastToReplicas(std::move(newViewMessage));
  installNewView(newView, prePrepares);
}

void Replica::onNewView(util::NodeId from, const NewViewPtr& newView) {
  if (!isReplicaId(from) || from != newView->replica) return;
  if (newView->view <= view_) return;
  if (from != config_.primaryOf(newView->view)) return;
  if (!newView->auth.hasEntryFor(id()) ||
      !macs_.verify(from, newViewDigest(*newView),
                    newView->auth.tags[id()])) {
    return;
  }
  latestNewView_ = newView;
  installNewView(newView->view, newView->prePrepares);
}

void Replica::installNewView(util::ViewId newView,
                             const std::vector<PrePreparePtr>& prePrepares) {
  view_ = newView;
  targetView_ = newView;
  inViewChange_ = false;
  vcAttempts_ = 0;
  if (vcTimerArmed_) {
    cancelTimer(vcTimer_);
    vcTimerArmed_ = false;
  }
  viewChangeVotes_.erase(viewChangeVotes_.begin(),
                         viewChangeVotes_.upper_bound(newView));

  // Certificates from the old view are void for unexecuted sequences; the
  // new-view pre-prepares below re-establish them in this view. Pre-prepares
  // still parked on unauthenticated requests die with their view.
  log_.resetUnexecutedForNewView();
  pendingPrePrepares_.clear();
  pendingByDigest_.clear();
  parkedBytes_ = 0;

  util::SeqNum highest = std::max(lastExecuted_, stableSeq_);
  for (const PrePreparePtr& prePrepare : prePrepares) {
    highest = std::max(highest, prePrepare->seq);
    if (prePrepare->seq > lastExecuted_) acceptPrePrepare(prePrepare);
  }

  if (config_.primaryOf(newView) == id()) {
    nextSeq_ = highest + 1;
    // Requests we saw directly but that never executed must be re-proposed;
    // clients will also retransmit, but this removes a round trip.
    orderingClear();
    for (auto& [client, record] : clients_) {
      record.lastQueuedTs = record.lastExecutedTs;
      if (record.pendingDirect != nullptr &&
          record.pendingDirect->timestamp > record.lastExecutedTs &&
          orderingPush(record.pendingDirect)) {
        record.lastQueuedTs = record.pendingDirect->timestamp;
      }
    }
    if (!behavior_.slowPrimary) scheduleBatchFlush();
  }

  // Stalled direct requests must keep their liveness guarantee in the new
  // view: re-arm request timers for whatever is still pending.
  if (config_.perRequestTimers) {
    for (auto& [client, record] : clients_) {
      if (record.pendingDirect != nullptr &&
          record.pendingDirect->timestamp > record.lastExecutedTs &&
          !record.timerArmed) {
        // Reuse the direct-receipt arming path.
        noteDirectRequest(record.pendingDirect);
      }
    }
  } else if (hasPendingDirectRequests()) {
    armSingleTimer();
  }

  persistStableState();
}

void Replica::sendSpuriousViewChange() {
  // Malicious behaviour: vote for a view change without believing in one.
  auto viewChange = std::make_shared<ViewChangeMessage>();
  viewChange->newView = view_ + 1;
  viewChange->stableSeq = stableSeq_;
  viewChange->prepared = log_.preparedProofsAbove(stableSeq_, config_.f);
  viewChange->replica = id();
  viewChange->auth = macs_.authenticate(viewChangeDigest(*viewChange), n());
  multicastToReplicas(std::move(viewChange));
  setTimer(behavior_.spuriousViewChangeInterval,
           [this] { sendSpuriousViewChange(); });
}

}  // namespace avd::pbft
