#include "pbft/service.h"

#include "common/hash.h"

namespace avd::pbft {

util::Bytes CounterService::execute(util::NodeId /*client*/,
                                    const util::Bytes& operation) {
  value_ += operation.empty() ? 1 : operation[0];
  util::ByteWriter writer;
  writer.u64(value_);
  return writer.take();
}

std::uint64_t CounterService::stateDigest() const {
  return util::hashCombine(util::fnv1a("counter"), value_);
}

util::Bytes CounterService::snapshot() const {
  util::ByteWriter writer;
  writer.u64(value_);
  return writer.take();
}

void CounterService::restore(const util::Bytes& snapshot) {
  util::ByteReader reader(snapshot);
  value_ = reader.u64().value_or(0);
}

util::Bytes KvService::encodeGet(const std::string& key) {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(Op::kGet));
  writer.str(key);
  return writer.take();
}

util::Bytes KvService::encodePut(const std::string& key,
                                 const std::string& value) {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(Op::kPut));
  writer.str(key);
  writer.str(value);
  return writer.take();
}

util::Bytes KvService::encodeDel(const std::string& key) {
  util::ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(Op::kDel));
  writer.str(key);
  return writer.take();
}

util::Bytes KvService::execute(util::NodeId /*client*/,
                               const util::Bytes& operation) {
  util::ByteReader reader(operation);
  util::ByteWriter result;
  const auto opcode = reader.u8();
  if (!opcode) return result.take();
  switch (static_cast<Op>(*opcode)) {
    case Op::kGet: {
      const auto key = reader.str();
      if (!key) break;
      const auto it = table_.find(*key);
      result.str(it == table_.end() ? std::string() : it->second);
      break;
    }
    case Op::kPut: {
      const auto key = reader.str();
      const auto value = reader.str();
      if (!key || !value) break;
      table_[*key] = *value;
      result.u8(1);
      break;
    }
    case Op::kDel: {
      const auto key = reader.str();
      if (!key) break;
      table_.erase(*key);
      result.u8(1);
      break;
    }
  }
  return result.take();
}

util::Bytes KvService::snapshot() const {
  util::ByteWriter writer;
  writer.u64(table_.size());
  for (const auto& [key, value] : table_) {
    writer.str(key);
    writer.str(value);
  }
  return writer.take();
}

void KvService::restore(const util::Bytes& snapshot) {
  // Each serialized entry is two length-prefixed strings, so a well-formed
  // snapshot can hold at most remaining()/kMinSnapshotEntryBytes entries; a
  // count beyond that is a malformed (or hostile) snapshot, not short input.
  constexpr std::uint64_t kMinSnapshotEntryBytes = 8;
  table_.clear();
  util::ByteReader reader(snapshot);
  const auto count = reader.u64();
  if (!count || *count > reader.remaining() / kMinSnapshotEntryBytes) return;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto key = reader.str();
    const auto value = reader.str();
    if (!key || !value) return;
    table_[*key] = *value;
  }
}

std::optional<util::Bytes> KvService::query(
    util::NodeId /*client*/, const util::Bytes& operation) const {
  util::ByteReader reader(operation);
  const auto opcode = reader.u8();
  if (!opcode || static_cast<Op>(*opcode) != Op::kGet) return std::nullopt;
  const auto key = reader.str();
  if (!key) return std::nullopt;
  util::ByteWriter result;
  const auto it = table_.find(*key);
  result.str(it == table_.end() ? std::string() : it->second);
  return result.take();
}

std::uint64_t KvService::stateDigest() const {
  std::uint64_t digest = util::fnv1a("kv");
  for (const auto& [key, value] : table_) {
    digest = util::hashCombine(digest, util::fnv1a(key));
    digest = util::hashCombine(digest, util::fnv1a(value));
  }
  return digest;
}

}  // namespace avd::pbft
