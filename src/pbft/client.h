// PBFT client.
//
// Closed-loop: each client keeps exactly one request outstanding, sends it
// to the primary it currently believes in, and accepts the result once f+1
// replicas return matching replies. If no result arrives within the
// retransmission timeout the request is re-sent — broadcast to ALL replicas,
// which is what hands backups a directly-received copy and arms their
// view-change timers (the liveness mechanism both discovered attacks lean
// on).
//
// Malicious clients run this same protocol-correct loop; their maliciousness
// is injected orthogonally: a MacFaultPolicy corrupting selected generateMAC
// calls (the paper's MAC-corruption tool), and/or eager broadcasting (the
// colluding client's trick to keep backup timers resettable by the slow
// primary).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "crypto/authenticator.h"
#include "crypto/keychain.h"
#include "pbft/config.h"
#include "pbft/message.h"
#include "sim/node.h"

namespace avd::pbft {

/// Generates the operation payload for the i-th request of a client.
using OpGenerator = std::function<util::Bytes(util::RequestId)>;

/// Behaviour knobs for a (possibly malicious) client.
struct ClientBehavior {
  /// MAC fault policy installed on the client's MacService (nullptr = none).
  /// The AVD MAC-corruption tool supplies the Gray-coded bitmask policy.
  std::shared_ptr<crypto::MacFaultPolicy> macPolicy;

  /// Workload: operation payload per request (default: counter increment).
  OpGenerator opGenerator;

  /// Marks the i-th request read-only (tentative execution, 2f+1 matching
  /// replies required). Unset = never. A read-only request that stalls for
  /// two retransmission rounds is retried through the ordered path, per the
  /// protocol's fallback rule.
  std::function<bool(util::RequestId)> readOnlyPredicate;

  /// Send every request to all replicas immediately instead of only to the
  /// primary. Colluding clients do this so that backups hold their requests
  /// as directly-received — making each execution reset the backups' single
  /// request timer.
  bool broadcastRequests = false;

  /// Idle time between accepting a reply and issuing the next request.
  sim::Time thinkTime = 0;

  /// Retransmission backoff: the k-th retransmission of a request waits
  /// retxTimeout * min(retxBackoffFactor^k, retxBackoffCap), plus a uniform
  /// jitter in [0, retxJitter]. The defaults preserve the fixed cadence the
  /// paper's attacks are keyed to (the Big MAC corruption mask cycles with
  /// retransmission rounds); enabling cap + jitter desynchronizes the
  /// retransmit burst that otherwise slams a replica rejoining after a
  /// crash with every client's backlog at once.
  double retxBackoffFactor = 1.0;
  double retxBackoffCap = 8.0;
  sim::Time retxJitter = 0;
};

class Client final : public sim::Node {
 public:
  using OpGenerator = pbft::OpGenerator;

  /// The operation generator falls back to behavior.opGenerator, then to a
  /// 1-byte counter increment.
  Client(util::NodeId id, const Config& config,
         const crypto::Keychain* keychain, ClientBehavior behavior = {},
         sim::Time retxTimeout = sim::msec(150), OpGenerator opGenerator = {});

  void start() override;
  void receive(util::NodeId from, const sim::MessagePtr& message) override;

  // --- Measurement ----------------------------------------------------------
  struct Completion {
    sim::Time when;     // virtual completion time
    sim::Time latency;  // completion - issue
  };
  const std::vector<Completion>& completions() const noexcept {
    return completions_;
  }
  std::uint64_t issued() const noexcept { return issued_; }
  std::uint64_t completed() const noexcept { return completions_.size(); }
  std::uint64_t retransmissions() const noexcept { return retransmissions_; }
  /// Requests completed through the tentative read-only path.
  std::uint64_t readOnlyCompleted() const noexcept {
    return readOnlyCompleted_;
  }
  /// Read-only requests that had to fall back to the ordered path.
  std::uint64_t readOnlyFallbacks() const noexcept {
    return readOnlyFallbacks_;
  }
  util::ViewId believedView() const noexcept { return believedView_; }
  crypto::MacService& macs() noexcept { return macs_; }

  /// Result bytes of the most recently completed request (for examples).
  const util::Bytes& lastResult() const noexcept { return lastResult_; }

 private:
  void issueNext();
  void transmit(bool broadcast);
  void onRetxTimer();
  void onReply(const ReplyMessage& reply);
  /// Delay before the next retransmission attempt (capped exponential
  /// backoff over currentRetx_, plus configured jitter).
  sim::Time retxDelay();

  Config config_;
  crypto::MacService macs_;
  ClientBehavior behavior_;
  sim::Time retxTimeout_;
  OpGenerator opGenerator_;

  util::RequestId nextTimestamp_ = 0;
  bool outstanding_ = false;
  util::RequestId currentTs_ = 0;
  util::Bytes currentOp_;
  bool currentReadOnly_ = false;
  std::uint32_t currentRetx_ = 0;
  std::uint64_t currentDigest_ = 0;
  sim::Time issueTime_ = 0;
  /// replica -> (resultDigest, view) votes for the outstanding request.
  std::map<util::NodeId, std::pair<std::uint64_t, util::ViewId>> replyVotes_;

  util::ViewId believedView_ = 0;
  sim::TimerId retxTimer_ = 0;
  bool retxArmed_ = false;

  std::uint64_t issued_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t readOnlyCompleted_ = 0;
  std::uint64_t readOnlyFallbacks_ = 0;
  std::vector<Completion> completions_;
  util::Bytes lastResult_;
};

}  // namespace avd::pbft
