// PBFT protocol messages (Castro & Liskov, OSDI'99).
//
// Multicast messages carry MAC *authenticators* — one tag per replica under
// the sender-replica session key — exactly as in the original
// implementation; a receiver can only check its own entry. Replies carry a
// single client-directed MAC. Request identity (and thus MAC coverage) is a
// digest over the canonical byte encoding of (client, timestamp, operation);
// the authenticator is deliberately outside the digest, which is what lets
// a faulty client ship one request body with per-replica inconsistent tags
// (the Big MAC attack surface).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/authenticator.h"
#include "sim/message.h"

namespace avd::pbft {

enum class MsgKind : std::uint32_t {
  kRequest = 1,
  kPrePrepare,
  kPrepare,
  kCommit,
  kReply,
  kCheckpoint,
  kViewChange,
  kNewView,
  kStateRequest,
  kStateResponse,
  kStatus,
  kSyncSeq,
};

/// Client request. Multicast on retransmission; carried inside pre-prepares.
struct RequestMessage final : sim::Message {
  util::NodeId client = util::kNoNode;
  util::RequestId timestamp = 0;
  util::Bytes operation;
  /// Read-only optimization (Castro-Liskov §4.1 of the TOCS paper): the
  /// request is executed tentatively against each replica's current state
  /// without ordering; the client requires 2f+1 matching replies instead
  /// of f+1 and falls back to the ordered path on failure.
  bool readOnly = false;
  /// Digest over (client, timestamp, operation, readOnly); requestDigest().
  std::uint64_t digest = 0;
  /// Per-replica MACs over `digest`. NOT covered by the digest.
  crypto::Authenticator auth;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kRequest);
  }
  std::size_t wireSize() const noexcept override {
    return 32 + operation.size() + auth.tags.size() * 8;
  }
};

using RequestPtr = std::shared_ptr<const RequestMessage>;

/// Digest of a request's canonical encoding (authenticator excluded).
std::uint64_t requestDigest(util::NodeId client, util::RequestId timestamp,
                            const util::Bytes& operation,
                            bool readOnly = false);

/// Digest of an ordered batch of requests (empty batch = null request).
std::uint64_t batchDigest(const std::vector<RequestPtr>& batch);

/// PRE-PREPARE(v, n, d) with the request batch piggybacked.
struct PrePrepareMessage final : sim::Message {
  util::ViewId view = 0;
  util::SeqNum seq = 0;
  std::vector<RequestPtr> batch;
  std::uint64_t digest = 0;  // batchDigest(batch)
  util::NodeId replica = util::kNoNode;
  crypto::Authenticator auth;  // over prePrepareDigest()

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kPrePrepare);
  }
  std::size_t wireSize() const noexcept override {
    std::size_t size = 48 + auth.tags.size() * 8;
    for (const RequestPtr& request : batch) size += request->wireSize();
    return size;
  }
};

using PrePreparePtr = std::shared_ptr<const PrePrepareMessage>;

/// Digest a (view, seq, batch-digest) triple for replica-message MACs.
std::uint64_t phaseDigest(MsgKind phase, util::ViewId view, util::SeqNum seq,
                          std::uint64_t digest, util::NodeId replica);

/// PREPARE(v, n, d, i).
struct PrepareMessage final : sim::Message {
  util::ViewId view = 0;
  util::SeqNum seq = 0;
  std::uint64_t digest = 0;
  util::NodeId replica = util::kNoNode;
  crypto::Authenticator auth;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kPrepare);
  }
  std::size_t wireSize() const noexcept override {
    return 48 + auth.tags.size() * 8;
  }
};

/// COMMIT(v, n, d, i).
struct CommitMessage final : sim::Message {
  util::ViewId view = 0;
  util::SeqNum seq = 0;
  std::uint64_t digest = 0;
  util::NodeId replica = util::kNoNode;
  crypto::Authenticator auth;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kCommit);
  }
  std::size_t wireSize() const noexcept override {
    return 48 + auth.tags.size() * 8;
  }
};

/// REPLY(v, t, c, i, r) — replica to client, single MAC.
struct ReplyMessage final : sim::Message {
  util::ViewId view = 0;
  util::NodeId client = util::kNoNode;
  util::RequestId timestamp = 0;
  util::NodeId replica = util::kNoNode;
  util::Bytes result;
  std::uint64_t resultDigest = 0;
  crypto::MacTag mac = 0;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kReply);
  }
  std::size_t wireSize() const noexcept override {
    return 40 + result.size();
  }
};

using ReplyPtr = std::shared_ptr<const ReplyMessage>;

/// Digest covered by the reply MAC.
std::uint64_t replyDigest(const ReplyMessage& reply);

/// CHECKPOINT(n, d, i).
struct CheckpointMessage final : sim::Message {
  util::SeqNum seq = 0;
  std::uint64_t stateDigest = 0;
  util::NodeId replica = util::kNoNode;
  crypto::Authenticator auth;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kCheckpoint);
  }
};

/// A prepared certificate carried in a VIEW-CHANGE: proof that `batch` was
/// prepared at sequence `seq` in view `view`.
struct PreparedProof {
  util::SeqNum seq = 0;
  util::ViewId view = 0;
  std::uint64_t digest = 0;
  std::vector<RequestPtr> batch;
};

/// VIEW-CHANGE(v+1, n, C, P, i).
struct ViewChangeMessage final : sim::Message {
  util::ViewId newView = 0;
  util::SeqNum stableSeq = 0;  // last stable checkpoint
  std::vector<PreparedProof> prepared;
  util::NodeId replica = util::kNoNode;
  crypto::Authenticator auth;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kViewChange);
  }
  std::size_t wireSize() const noexcept override {
    return 64 + prepared.size() * 32;
  }
};

using ViewChangePtr = std::shared_ptr<const ViewChangeMessage>;

/// Digest covered by a view-change authenticator.
std::uint64_t viewChangeDigest(const ViewChangeMessage& viewChange);

/// NEW-VIEW(v, V, O): the new primary's re-issued pre-prepares for the
/// sequence range spanned by the view-change certificates.
struct NewViewMessage final : sim::Message {
  util::ViewId view = 0;
  std::vector<PrePreparePtr> prePrepares;
  util::NodeId replica = util::kNoNode;
  crypto::Authenticator auth;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kNewView);
  }
  std::size_t wireSize() const noexcept override {
    std::size_t size = 48;
    for (const PrePreparePtr& pp : prePrepares) size += pp->wireSize();
    return size;
  }
};

using NewViewPtr = std::shared_ptr<const NewViewMessage>;

/// Digest covered by a new-view authenticator.
std::uint64_t newViewDigest(const NewViewMessage& newView);

/// Ask a peer for its state at (or beyond) a stable checkpoint the sender
/// has proof of but whose execution it missed. Point-to-point, single MAC.
struct StateRequestMessage final : sim::Message {
  util::SeqNum seq = 0;
  util::NodeId replica = util::kNoNode;
  crypto::MacTag mac = 0;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kStateRequest);
  }
};

/// State-transfer payload: application snapshot at `seq` plus the per-client
/// last-executed timestamps needed to keep at-most-once execution intact.
struct StateResponseMessage final : sim::Message {
  util::SeqNum seq = 0;
  std::uint64_t stateDigest = 0;
  util::Bytes snapshot;
  std::vector<std::pair<util::NodeId, util::RequestId>> clientTimestamps;
  util::NodeId replica = util::kNoNode;
  crypto::MacTag mac = 0;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kStateResponse);
  }
  std::size_t wireSize() const noexcept override {
    return 40 + snapshot.size() + clientTimestamps.size() * 12;
  }
};

/// Digests covered by the state-transfer MACs.
std::uint64_t stateRequestDigest(const StateRequestMessage& request);
std::uint64_t stateResponseDigest(const StateResponseMessage& response);

/// Periodic liveness gossip (the status/retransmission subprotocol of the
/// Castro-Liskov implementation, which makes PBFT tolerate message loss):
/// peers that see us lagging push SyncSeq attestations for the sequences we
/// missed.
struct StatusMessage final : sim::Message {
  util::ViewId view = 0;
  util::SeqNum lastExecuted = 0;
  util::NodeId replica = util::kNoNode;
  crypto::Authenticator auth;

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kStatus);
  }
};

/// "I executed `batch` at `seq`" attestation. f+1 matching attestations
/// prove correctness (at most f replicas are Byzantine), letting a lagging
/// replica adopt and execute sequences whose agreement messages it lost.
struct SyncSeqMessage final : sim::Message {
  util::SeqNum seq = 0;
  std::uint64_t digest = 0;  // batch digest
  std::vector<RequestPtr> batch;
  util::NodeId replica = util::kNoNode;
  crypto::MacTag mac = 0;  // point-to-point

  std::uint32_t kind() const noexcept override {
    return static_cast<std::uint32_t>(MsgKind::kSyncSeq);
  }
  std::size_t wireSize() const noexcept override {
    std::size_t size = 40;
    for (const RequestPtr& request : batch) size += request->wireSize();
    return size;
  }
};

std::uint64_t statusDigest(const StatusMessage& status);
std::uint64_t syncSeqDigest(const SyncSeqMessage& sync);

}  // namespace avd::pbft
