// Durable replica state surviving a crash–restart cycle.
//
// Castro-Liskov replicas log protocol-critical state to stable storage so a
// recovered process cannot violate promises its previous incarnation made:
// the current view (never vote twice in the same election), the latest
// stable checkpoint with its proof (a known-correct state to restart from),
// and the prepared certificates above it (the P-set — a committed value
// anywhere implies 2f+1 replicas hold its certificate, and a restarted
// replica's VIEW-CHANGE votes must keep carrying it).
//
// In the simulation the "disk" is a record owned by the Replica object: the
// sim::Node outlives the crash, so everything NOT reloaded from this record
// in onRestart() models volatile memory and is wiped.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "pbft/message.h"

namespace avd::pbft {

/// One durable snapshot of the protocol-critical replica state.
struct StableRecord {
  util::ViewId view = 0;
  util::SeqNum stableSeq = 0;
  /// Digest of the stable checkpoint (hashCombine(stateDigest, seq); 0 at
  /// the genesis checkpoint, which has no digest).
  std::uint64_t checkpointDigest = 0;
  /// Service snapshot at the stable checkpoint.
  util::Bytes snapshot;
  /// Per-client last-executed timestamps AS OF the checkpoint (restoring
  /// live, post-checkpoint timestamps would make the recovered replica skip
  /// re-executions and diverge from the snapshot it restored).
  std::vector<std::pair<util::NodeId, util::RequestId>> clientTimestamps;
  /// Replicas whose CHECKPOINT votes formed the stability quorum (the
  /// checkpoint proof).
  std::vector<util::NodeId> checkpointProof;
  /// Prepared certificates above stableSeq (the P-set).
  std::vector<PreparedProof> prepared;
};

/// The replica's stable-storage device: a single record slot with atomic
/// overwrite semantics (a real implementation would fsync a log; the
/// simulation needs only the survives-the-crash contract).
class StableStorage {
 public:
  void save(StableRecord record) {
    record_ = std::move(record);
    hasRecord_ = true;
    ++writes_;
  }

  /// The last saved record, or nullptr if nothing was ever persisted.
  const StableRecord* load() const noexcept {
    return hasRecord_ ? &record_ : nullptr;
  }

  bool empty() const noexcept { return !hasRecord_; }
  std::uint64_t writes() const noexcept { return writes_; }

 private:
  StableRecord record_;
  bool hasRecord_ = false;
  std::uint64_t writes_ = 0;
};

}  // namespace avd::pbft
