#include "pbft/log.h"

namespace avd::pbft {

LogEntry* ReplicaLog::find(util::SeqNum seq) {
  const auto it = entries_.find(seq);
  return it == entries_.end() ? nullptr : &it->second;
}

const LogEntry* ReplicaLog::find(util::SeqNum seq) const {
  const auto it = entries_.find(seq);
  return it == entries_.end() ? nullptr : &it->second;
}

void ReplicaLog::truncateBelow(util::SeqNum stableSeq) {
  entries_.erase(entries_.begin(), entries_.upper_bound(stableSeq));
}

std::vector<PreparedProof> ReplicaLog::preparedProofsAbove(
    util::SeqNum stableSeq, std::uint32_t f) const {
  (void)f;
  std::vector<PreparedProof> proofs;
  for (const auto& [seq, entry] : entries_) {
    if (seq <= stableSeq || !entry.everPrepared) continue;
    PreparedProof proof;
    proof.seq = seq;
    proof.view = entry.preparedView;
    proof.digest = entry.preparedDigest;
    proof.batch = entry.preparedBatch;
    proofs.push_back(std::move(proof));
  }
  return proofs;
}

void ReplicaLog::resetUnexecutedForNewView() {
  for (auto& [seq, entry] : entries_) {
    if (entry.executed) continue;
    entry.prePrepare = nullptr;
    entry.digest = 0;
    entry.prepares.clear();
    entry.commits.clear();
    entry.prepareSent = false;
    entry.commitSent = false;
  }
}

}  // namespace avd::pbft
