// Deployment-wide PBFT configuration.
//
// Defaults follow the Castro-Liskov implementation where the paper depends
// on them — most importantly the 5-second request (view-change) timer that
// the "slow primary" bug exploits (§6: "one client request per timer period
// (5 seconds by default)"). Benches shrink timeouts to keep virtual runs
// short; the slow-primary bench keeps the 5 s default to reproduce the
// paper's 0.2 req/s number.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace avd::pbft {

struct Config {
  /// Maximum number of Byzantine replicas tolerated; replica count is 3f+1.
  std::uint32_t f = 1;

  /// Request timer (a.k.a. view-change timer): a replica that accepted a
  /// client request and does not see it execute within this period starts a
  /// view change. PBFT default: 5 seconds.
  sim::Time requestTimeout = sim::sec(5);

  /// Base timeout for a view change to complete before moving to the next
  /// view; doubles on every consecutive failed view change.
  sim::Time viewChangeTimeout = sim::sec(5);

  /// THE BUG (paper §6): the original implementation keeps a *single*
  /// request timer per replica, reset whenever *any* directly-received
  /// request executes. Setting this true gives the fixed semantics (one
  /// timer per pending request), used by the slow-primary ablation.
  bool perRequestTimers = false;

  /// THE OTHER BUG (paper §6): "PBFT will perform a view change and crash".
  /// The historical implementation's view-change path was fragile when the
  /// replica held pre-prepares whose requests it could not authenticate
  /// (exactly the state a Big MAC client induces). With this flag a replica
  /// that starts a view change while holding such a pending pre-prepare
  /// fail-stops after multicasting its VIEW-CHANGE — with >= 2 backups in
  /// that state the deployment loses its quorum, which is what makes the
  /// dark points of Figure 3 drop to (and stay at) ~0 req/s. Set false for
  /// the fixed implementation (graceful view change) ablation.
  bool viewChangeCrashBug = true;

  /// Primary batching: at most this many requests per pre-prepare.
  std::uint32_t maxBatch = 64;
  /// Primary batching: flush an incomplete batch after this delay.
  sim::Time batchDelay = sim::usec(500);

  /// Period of the status/retransmission subprotocol (0 disables it). Each
  /// replica gossips (view, lastExecuted); peers push SyncSeq attestations
  /// for sequences a lagging replica missed — this is what makes the
  /// protocol tolerate lost agreement messages.
  sim::Time statusInterval = sim::msec(100);
  /// At most this many sequences are pushed per status round per peer.
  std::uint32_t syncChunk = 8;

  /// Aardvark-style defense (Clement et al., NSDI'09 — the fix the paper
  /// credits for avoiding the slow-primary bug): replicas expect a minimum
  /// execution rate whenever they hold pending requests; a primary that
  /// sustains less gets deposed even though the (buggy) request timer never
  /// fires. Disabled by default to match the vulnerable baseline.
  bool primaryThroughputGuard = false;
  sim::Time guardWindow = sim::sec(1);
  double guardMinRps = 5.0;

  /// Aardvark-style resource-management defenses against flooding clients
  /// (fi::FloodClient). All off by default to preserve the vulnerable
  /// baseline, mirroring primaryThroughputGuard.
  ///
  /// Admission control: each client may have at most `admissionQuota`
  /// requests admitted per `admissionWindow`, at most one reply-cache
  /// resend per window (replay suppression), and requests whose operation
  /// exceeds `maxRequestBytes` are rejected before any protocol work.
  bool clientAdmissionControl = false;
  std::uint32_t admissionQuota = 32;
  sim::Time admissionWindow = sim::msec(100);
  std::size_t maxRequestBytes = 2048;

  /// Fair round-robin scheduling across clients in the primary's ordering
  /// queue (Aardvark's fair client scheduling). The deployment also
  /// provisions per-sender network ingress lanes when this is set, so one
  /// flooder cannot displace other senders' traffic in a shared queue.
  bool fairClientScheduling = false;

  /// Bounded pending state with a deterministic drop policy (0 = unbounded,
  /// the vulnerable baseline): total requests queued for ordering (newest
  /// rejected when full) and parked pre-prepares awaiting request
  /// authentication (highest sequence evicted when full).
  std::size_t maxOrderingQueue = 0;
  std::size_t maxParkedPrePrepares = 0;

  /// Per-peer budget of SyncSeq/retransmission bytes pushed per status
  /// window — bounds the amplification a replayed lagging STATUS can elicit
  /// (the cap is on bytes, not just syncChunk count). Always enforced; the
  /// generous default never throttles normal catch-up. 0 = unlimited.
  std::size_t syncBytesPerPeer = 256 * 1024;

  /// Take a checkpoint every this many sequence numbers.
  std::uint64_t checkpointInterval = 128;
  /// Log window: high watermark = low watermark + this.
  std::uint64_t watermarkWindow = 512;

  std::uint32_t replicaCount() const noexcept { return 3 * f + 1; }
  std::uint32_t quorum() const noexcept { return 2 * f + 1; }

  /// Primary of a view (round-robin rotation).
  std::uint32_t primaryOf(std::uint64_t view) const noexcept {
    return static_cast<std::uint32_t>(view % replicaCount());
  }
};

}  // namespace avd::pbft
