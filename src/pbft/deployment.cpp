#include "pbft/deployment.h"

#include <algorithm>

#include "common/hash.h"
#include "common/stats.h"

namespace avd::pbft {

std::unique_ptr<Service> Deployment::makeService(ServiceKind kind) {
  switch (kind) {
    case ServiceKind::kCounter:
      return std::make_unique<CounterService>();
    case ServiceKind::kKv:
      return std::make_unique<KvService>();
  }
  return std::make_unique<CounterService>();
}

sim::LinkModel Deployment::effectiveLink(const DeploymentConfig& config) {
  sim::LinkModel link = config.link;
  if (config.pbft.fairClientScheduling) {
    // Aardvark's deployment shape: per-sender client lanes serviced
    // round-robin, with replica-to-replica agreement traffic on its own
    // NIC so a client flood cannot displace it.
    link.fairIngress = true;
    link.ingressPriorityNodes = config.pbft.replicaCount();
  }
  return link;
}

Deployment::Deployment(DeploymentConfig config)
    : config_(std::move(config)),
      keychain_(util::hashCombine(util::fnv1a("avd.deployment"),
                                  config_.seed)),
      simulator_(config_.seed),
      network_(&simulator_, effectiveLink(config_)) {
  const std::uint32_t n = config_.pbft.replicaCount();

  replicas_.reserve(n);
  for (util::NodeId id = 0; id < n; ++id) {
    ReplicaBehavior behavior;
    if (const auto it = config_.replicaBehaviors.find(id);
        it != config_.replicaBehaviors.end()) {
      behavior = it->second;
    }
    replicas_.push_back(std::make_unique<Replica>(
        id, config_.pbft, &keychain_, makeService(config_.service), behavior));
    network_.registerNode(replicas_.back().get());
  }

  clients_.reserve(config_.totalClients());
  for (std::uint32_t i = 0; i < config_.maliciousClients; ++i) {
    clients_.push_back(std::make_unique<Client>(
        maliciousClientId(i), config_.pbft, &keychain_,
        config_.maliciousClientBehavior, config_.clientRetx));
    network_.registerNode(clients_.back().get());
  }
  for (std::uint32_t i = 0; i < config_.correctClients; ++i) {
    clients_.push_back(std::make_unique<Client>(
        correctClientId(i), config_.pbft, &keychain_,
        config_.correctClientBehavior, config_.clientRetx));
    network_.registerNode(clients_.back().get());
  }
}

void Deployment::runFor(sim::Time duration) {
  if (!started_) {
    started_ = true;
    for (auto& replica : replicas_) replica->start();
    for (auto& client : clients_) client->start();
  }
  simulator_.runUntil(simulator_.now() + duration);
}

RunResult Deployment::run() {
  runFor(config_.warmup + config_.measure);
  return collect();
}

RunResult Deployment::collect() const {
  RunResult result;
  const sim::Time windowStart = config_.warmup;
  const sim::Time windowEnd = config_.warmup + config_.measure;
  const double windowSeconds = sim::toSeconds(config_.measure);

  double latencySum = 0.0;
  std::uint64_t latencyCount = 0;
  util::SampleSet latencies;
  for (std::uint32_t i = 0; i < config_.correctClients; ++i) {
    const Client& client = *clients_[config_.maliciousClients + i];
    for (const Client::Completion& completion : client.completions()) {
      if (completion.when < windowStart || completion.when >= windowEnd) {
        continue;
      }
      ++result.correctCompleted;
      const double latencySec = sim::toSeconds(completion.latency);
      latencySum += latencySec;
      latencies.add(latencySec);
      ++latencyCount;
    }
  }
  result.p50LatencySec = latencies.percentile(50);
  result.p99LatencySec = latencies.percentile(99);
  for (std::uint32_t i = 0; i < config_.maliciousClients; ++i) {
    const Client& client = *clients_[i];
    for (const Client::Completion& completion : client.completions()) {
      if (completion.when >= windowStart && completion.when < windowEnd) {
        ++result.maliciousCompleted;
      }
    }
  }

  result.throughputRps =
      windowSeconds > 0.0
          ? static_cast<double>(result.correctCompleted) / windowSeconds
          : 0.0;
  result.avgLatencySec =
      latencyCount > 0 ? latencySum / static_cast<double>(latencyCount) : 0.0;

  for (const auto& replica : replicas_) {
    result.viewChangesInitiated += replica->stats().viewChangesInitiated;
    result.maxView = std::max(result.maxView, replica->view());
    result.restarts += replica->restarts();
  }

  // Recovery latency: from the last replica restart to the first correct
  // completion after it. If nothing completed after the last restart the
  // system never recovered within the run — charge the full remaining time.
  sim::Time lastRestart = 0;
  for (const auto& replica : replicas_) {
    lastRestart = std::max(lastRestart, replica->lastRestartAt());
  }
  if (lastRestart > 0) {
    sim::Time firstCompletionAfter = 0;
    for (std::uint32_t i = 0; i < config_.correctClients; ++i) {
      const Client& client = *clients_[config_.maliciousClients + i];
      for (const Client::Completion& completion : client.completions()) {
        if (completion.when < lastRestart) continue;
        if (firstCompletionAfter == 0 ||
            completion.when < firstCompletionAfter) {
          firstCompletionAfter = completion.when;
        }
        break;  // completions are chronological per client
      }
    }
    const sim::Time recoveredAt =
        firstCompletionAfter > 0 ? firstCompletionAfter : simulator_.now();
    result.recoveryLatencySec = sim::toSeconds(recoveredAt - lastRestart);
  }

  // Safety oracle: every pair of replicas must agree on the digest executed
  // at every sequence number both executed.
  for (std::size_t a = 0; a + 1 < replicas_.size() && !result.safetyViolated;
       ++a) {
    const auto& traceA = replicas_[a]->executionTrace();
    for (std::size_t b = a + 1; b < replicas_.size(); ++b) {
      const auto& traceB = replicas_[b]->executionTrace();
      const auto& shorter = traceA.size() <= traceB.size() ? traceA : traceB;
      const auto& longer = traceA.size() <= traceB.size() ? traceB : traceA;
      for (const auto& [seq, digest] : shorter) {
        const auto it = longer.find(seq);
        if (it != longer.end() && it->second != digest) {
          result.safetyViolated = true;
          break;
        }
      }
      if (result.safetyViolated) break;
    }
  }

  result.network = network_.counters();
  result.eventsExecuted = simulator_.executedEvents();
  result.queueDrops = result.network.droppedQueueOverflow;
  result.peakQueueDepth = result.network.peakIngressDepth;
  for (const auto& replica : replicas_) {
    const ReplicaStats& stats = replica->stats();
    result.quotaDrops +=
        stats.quotaDrops + stats.oversizedRejected + stats.orderingDropped;
    result.replaysSuppressed += stats.replaysSuppressed;
    result.checkpointsTaken += stats.checkpointsTaken;
    result.stateTransfers += stats.stateTransfersCompleted;
    result.prePreparesParked += stats.prePreparesPended;
  }
  return result;
}

RunResult runScenario(const DeploymentConfig& config) {
  Deployment deployment(config);
  return deployment.run();
}

}  // namespace avd::pbft
