#include "pbft/deployment.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/hash.h"
#include "common/stats.h"

namespace avd::pbft {

std::unique_ptr<Service> Deployment::makeService(ServiceKind kind) {
  switch (kind) {
    case ServiceKind::kCounter:
      return std::make_unique<CounterService>();
    case ServiceKind::kKv:
      return std::make_unique<KvService>();
  }
  return std::make_unique<CounterService>();
}

std::string formatSafetyWitness(const SafetyWitness& witness) {
  const auto appendCert = [](std::string& out, util::NodeId replica,
                             std::uint64_t digest,
                             const std::vector<util::NodeId>& voters) {
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(digest));
    out += "r" + std::to_string(replica) + "=" + buffer + "[";
    if (voters.empty()) {
      out += "synced";
    } else {
      out += "votes ";
      for (std::size_t i = 0; i < voters.size(); ++i) {
        if (i != 0) out += '.';
        out += std::to_string(voters[i]);
      }
    }
    out += "]";
  };
  std::string out = "seq=" + std::to_string(witness.seq) + " ";
  appendCert(out, witness.replicaA, witness.digestA, witness.votersA);
  out += ' ';
  appendCert(out, witness.replicaB, witness.digestB, witness.votersB);
  return out;
}

sim::LinkModel Deployment::effectiveLink(const DeploymentConfig& config) {
  sim::LinkModel link = config.link;
  if (config.pbft.fairClientScheduling) {
    // Aardvark's deployment shape: per-sender client lanes serviced
    // round-robin, with replica-to-replica agreement traffic on its own
    // NIC so a client flood cannot displace it.
    link.fairIngress = true;
    link.ingressPriorityNodes = config.pbft.replicaCount();
  }
  return link;
}

Deployment::Deployment(DeploymentConfig config)
    : config_(std::move(config)),
      keychain_(util::hashCombine(util::fnv1a("avd.deployment"),
                                  config_.seed)),
      simulator_(config_.seed),
      network_(&simulator_, effectiveLink(config_)) {
  const std::uint32_t n = config_.pbft.replicaCount();

  replicas_.reserve(n);
  for (util::NodeId id = 0; id < n; ++id) {
    ReplicaBehavior behavior;
    if (const auto it = config_.replicaBehaviors.find(id);
        it != config_.replicaBehaviors.end()) {
      behavior = it->second;
    }
    replicas_.push_back(std::make_unique<Replica>(
        id, config_.pbft, &keychain_, makeService(config_.service), behavior));
    network_.registerNode(replicas_.back().get());
  }

  clients_.reserve(config_.totalClients());
  for (std::uint32_t i = 0; i < config_.maliciousClients; ++i) {
    clients_.push_back(std::make_unique<Client>(
        maliciousClientId(i), config_.pbft, &keychain_,
        config_.maliciousClientBehavior, config_.clientRetx));
    network_.registerNode(clients_.back().get());
  }
  for (std::uint32_t i = 0; i < config_.correctClients; ++i) {
    clients_.push_back(std::make_unique<Client>(
        correctClientId(i), config_.pbft, &keychain_,
        config_.correctClientBehavior, config_.clientRetx));
    network_.registerNode(clients_.back().get());
  }
}

std::unique_ptr<Replica> Deployment::makeTwinReplica(util::NodeId id) const {
  if (id >= replicas_.size()) {
    throw std::out_of_range("makeTwinReplica: unknown replica id");
  }
  ReplicaBehavior behavior;
  if (const auto it = config_.replicaBehaviors.find(id);
      it != config_.replicaBehaviors.end()) {
    behavior = it->second;
  }
  return std::make_unique<Replica>(id, config_.pbft, &keychain_,
                                   makeService(config_.service), behavior);
}

void Deployment::runFor(sim::Time duration) {
  if (!started_) {
    started_ = true;
    for (auto& replica : replicas_) replica->start();
    for (auto& client : clients_) client->start();
  }
  simulator_.runUntil(simulator_.now() + duration);
}

RunResult Deployment::run() {
  runFor(config_.warmup + config_.measure);
  return collect();
}

RunResult Deployment::collect() const {
  RunResult result;
  const sim::Time windowStart = config_.warmup;
  const sim::Time windowEnd = config_.warmup + config_.measure;
  const double windowSeconds = sim::toSeconds(config_.measure);

  double latencySum = 0.0;
  std::uint64_t latencyCount = 0;
  util::SampleSet latencies;
  for (std::uint32_t i = 0; i < config_.correctClients; ++i) {
    const Client& client = *clients_[config_.maliciousClients + i];
    for (const Client::Completion& completion : client.completions()) {
      if (completion.when < windowStart || completion.when >= windowEnd) {
        continue;
      }
      ++result.correctCompleted;
      const double latencySec = sim::toSeconds(completion.latency);
      latencySum += latencySec;
      latencies.add(latencySec);
      ++latencyCount;
    }
  }
  result.p50LatencySec = latencies.percentile(50);
  result.p99LatencySec = latencies.percentile(99);
  for (std::uint32_t i = 0; i < config_.maliciousClients; ++i) {
    const Client& client = *clients_[i];
    for (const Client::Completion& completion : client.completions()) {
      if (completion.when >= windowStart && completion.when < windowEnd) {
        ++result.maliciousCompleted;
      }
    }
  }

  result.throughputRps =
      windowSeconds > 0.0
          ? static_cast<double>(result.correctCompleted) / windowSeconds
          : 0.0;
  result.avgLatencySec =
      latencyCount > 0 ? latencySum / static_cast<double>(latencyCount) : 0.0;

  for (const auto& replica : replicas_) {
    result.viewChangesInitiated += replica->stats().viewChangesInitiated;
    result.maxView = std::max(result.maxView, replica->view());
    result.restarts += replica->restarts();
  }

  // Recovery latency: from the last replica restart to the first correct
  // completion after it. If nothing completed after the last restart the
  // system never recovered within the run — charge the full remaining time.
  sim::Time lastRestart = 0;
  for (const auto& replica : replicas_) {
    lastRestart = std::max(lastRestart, replica->lastRestartAt());
  }
  if (lastRestart > 0) {
    sim::Time firstCompletionAfter = 0;
    for (std::uint32_t i = 0; i < config_.correctClients; ++i) {
      const Client& client = *clients_[config_.maliciousClients + i];
      for (const Client::Completion& completion : client.completions()) {
        if (completion.when < lastRestart) continue;
        if (firstCompletionAfter == 0 ||
            completion.when < firstCompletionAfter) {
          firstCompletionAfter = completion.when;
        }
        break;  // completions are chronological per client
      }
    }
    const sim::Time recoveredAt =
        firstCompletionAfter > 0 ? firstCompletionAfter : simulator_.now();
    result.recoveryLatencySec = sim::toSeconds(recoveredAt - lastRestart);
  }

  // Safety oracle: every pair of non-twin replicas must agree on the commit
  // certificate executed at every sequence number both executed. Twinned
  // identities are excluded — their two physical instances ARE the injected
  // fault (equivocation by construction, worth at most one Byzantine
  // identity each); what must still hold, as long as at most f identities
  // are twinned, is agreement among the remaining replicas. On a conflict
  // the witness snapshots both certificates: the voter-set intersection is
  // exactly the set of identities that double-voted.
  for (std::size_t a = 0; a + 1 < replicas_.size() && !result.safetyViolated;
       ++a) {
    if (network_.isTwinned(static_cast<util::NodeId>(a))) continue;
    const auto& certsA = replicas_[a]->commitCerts();
    for (std::size_t b = a + 1; b < replicas_.size() && !result.safetyViolated;
         ++b) {
      if (network_.isTwinned(static_cast<util::NodeId>(b))) continue;
      const auto& certsB = replicas_[b]->commitCerts();
      const bool aIsShorter = certsA.size() <= certsB.size();
      const auto& shorter = aIsShorter ? certsA : certsB;
      const auto& longer = aIsShorter ? certsB : certsA;
      for (const auto& [seq, cert] : shorter) {
        const auto it = longer.find(seq);
        if (it == longer.end() || it->second.digest == cert.digest) continue;
        result.safetyViolated = true;
        SafetyWitness witness;
        witness.seq = seq;
        witness.replicaA = static_cast<util::NodeId>(a);
        witness.replicaB = static_cast<util::NodeId>(b);
        const Replica::CommitCert& certA = aIsShorter ? cert : it->second;
        const Replica::CommitCert& certB = aIsShorter ? it->second : cert;
        witness.digestA = certA.digest;
        witness.digestB = certB.digest;
        witness.votersA = certA.voters;
        witness.votersB = certB.voters;
        result.safetyWitness = std::move(witness);
        break;
      }
    }
  }

  result.network = network_.counters();
  result.eventsExecuted = simulator_.executedEvents();
  result.queueDrops = result.network.droppedQueueOverflow;
  result.peakQueueDepth = result.network.peakIngressDepth;
  for (const auto& replica : replicas_) {
    const ReplicaStats& stats = replica->stats();
    result.quotaDrops +=
        stats.quotaDrops + stats.oversizedRejected + stats.orderingDropped;
    result.replaysSuppressed += stats.replaysSuppressed;
    result.checkpointsTaken += stats.checkpointsTaken;
    result.stateTransfers += stats.stateTransfersCompleted;
    result.prePreparesParked += stats.prePreparesPended;
  }
  return result;
}

RunResult runScenario(const DeploymentConfig& config) {
  Deployment deployment(config);
  return deployment.run();
}

}  // namespace avd::pbft
