#include "pbft/wire.h"

#include <algorithm>
#include <limits>

namespace avd::pbft::wire {

namespace {

// Containers are length-prefixed; malformed lengths must fail fast rather
// than trigger huge allocations.
constexpr std::uint32_t kMaxBatch = 4096;
constexpr std::uint32_t kMaxAuthTags = 1024;
constexpr std::uint32_t kMaxProofs = 4096;
constexpr std::uint32_t kMaxClientEntries = 1 << 20;
// Pre-parse reserve() clamp: container counts are validated against the
// kMax* bounds above, but the count itself is attacker-controlled bytes,
// so speculative allocation ahead of element validation stays tiny and
// vectors grow geometrically only as real elements actually parse.
constexpr std::uint32_t kPreparseReserveCap = 64;

void putAuth(util::ByteWriter& writer, const crypto::Authenticator& auth) {
  writer.u32(static_cast<std::uint32_t>(auth.tags.size()));
  for (const crypto::MacTag tag : auth.tags) writer.u64(tag);
}

[[nodiscard]] bool getAuth(util::ByteReader& reader,
                           crypto::Authenticator& auth) {
  const auto count = reader.u32();
  if (!count || *count > kMaxAuthTags) return false;
  auth.tags.clear();
  auth.tags.reserve(std::min(*count, kPreparseReserveCap));
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto tag = reader.u64();
    if (!tag) return false;
    auth.tags.push_back(*tag);
  }
  return true;
}

void putRequest(util::ByteWriter& writer, const RequestMessage& request) {
  writer.u32(request.client);
  writer.u64(request.timestamp);
  writer.u8(request.readOnly ? 1 : 0);
  writer.blob(request.operation);
  writer.u64(request.digest);
  putAuth(writer, request.auth);
}

[[nodiscard]] RequestPtr getRequest(util::ByteReader& reader) {
  auto request = std::make_shared<RequestMessage>();
  const auto client = reader.u32();
  const auto timestamp = reader.u64();
  if (!client || !timestamp) return nullptr;
  request->client = *client;
  request->timestamp = *timestamp;
  const auto readOnly = reader.u8();
  if (!readOnly || *readOnly > 1) return nullptr;
  request->readOnly = *readOnly == 1;
  auto operation = reader.blob();
  if (!operation) return nullptr;
  request->operation = std::move(*operation);
  const auto digest = reader.u64();
  if (!digest) return nullptr;
  request->digest = *digest;
  if (!getAuth(reader, request->auth)) return nullptr;
  return request;
}

void putBatch(util::ByteWriter& writer, const std::vector<RequestPtr>& batch) {
  writer.u32(static_cast<std::uint32_t>(batch.size()));
  for (const RequestPtr& request : batch) putRequest(writer, *request);
}

[[nodiscard]] bool getBatch(util::ByteReader& reader,
                            std::vector<RequestPtr>& batch) {
  const auto count = reader.u32();
  if (!count || *count > kMaxBatch) return false;
  batch.clear();
  batch.reserve(std::min(*count, kPreparseReserveCap));
  for (std::uint32_t i = 0; i < *count; ++i) {
    RequestPtr request = getRequest(reader);
    if (request == nullptr) return false;
    batch.push_back(std::move(request));
  }
  return true;
}

void putPrePrepareBody(util::ByteWriter& writer,
                       const PrePrepareMessage& prePrepare) {
  writer.u64(prePrepare.view);
  writer.u64(prePrepare.seq);
  writer.u64(prePrepare.digest);
  writer.u32(prePrepare.replica);
  putBatch(writer, prePrepare.batch);
  putAuth(writer, prePrepare.auth);
}

[[nodiscard]] PrePreparePtr getPrePrepareBody(util::ByteReader& reader) {
  auto prePrepare = std::make_shared<PrePrepareMessage>();
  const auto view = reader.u64();
  const auto seq = reader.u64();
  const auto digest = reader.u64();
  const auto replica = reader.u32();
  if (!view || !seq || !digest || !replica) return nullptr;
  prePrepare->view = *view;
  prePrepare->seq = *seq;
  prePrepare->digest = *digest;
  prePrepare->replica = *replica;
  if (!getBatch(reader, prePrepare->batch)) return nullptr;
  if (!getAuth(reader, prePrepare->auth)) return nullptr;
  return prePrepare;
}

/// Shared shape of Prepare and Commit.
template <typename M>
void putPhase(util::ByteWriter& writer, const M& message) {
  writer.u64(message.view);
  writer.u64(message.seq);
  writer.u64(message.digest);
  writer.u32(message.replica);
  putAuth(writer, message.auth);
}

template <typename M>
[[nodiscard]] std::shared_ptr<M> getPhase(util::ByteReader& reader) {
  auto message = std::make_shared<M>();
  const auto view = reader.u64();
  const auto seq = reader.u64();
  const auto digest = reader.u64();
  const auto replica = reader.u32();
  if (!view || !seq || !digest || !replica) return nullptr;
  message->view = *view;
  message->seq = *seq;
  message->digest = *digest;
  message->replica = *replica;
  if (!getAuth(reader, message->auth)) return nullptr;
  return message;
}

void putProofs(util::ByteWriter& writer,
               const std::vector<PreparedProof>& proofs) {
  writer.u32(static_cast<std::uint32_t>(proofs.size()));
  for (const PreparedProof& proof : proofs) {
    writer.u64(proof.seq);
    writer.u64(proof.view);
    writer.u64(proof.digest);
    putBatch(writer, proof.batch);
  }
}

[[nodiscard]] bool getProofs(util::ByteReader& reader,
                             std::vector<PreparedProof>& proofs) {
  const auto count = reader.u32();
  if (!count || *count > kMaxProofs) return false;
  proofs.clear();
  proofs.reserve(std::min(*count, kPreparseReserveCap));
  for (std::uint32_t i = 0; i < *count; ++i) {
    PreparedProof proof;
    const auto seq = reader.u64();
    const auto view = reader.u64();
    const auto digest = reader.u64();
    if (!seq || !view || !digest) return false;
    proof.seq = *seq;
    proof.view = *view;
    proof.digest = *digest;
    if (!getBatch(reader, proof.batch)) return false;
    proofs.push_back(std::move(proof));
  }
  return true;
}

}  // namespace

util::Bytes encode(const sim::Message& message) {
  util::ByteWriter writer;
  const auto kind = static_cast<MsgKind>(message.kind());
  writer.u32(message.kind());
  switch (kind) {
    case MsgKind::kRequest:
      putRequest(writer, static_cast<const RequestMessage&>(message));
      break;
    case MsgKind::kPrePrepare:
      putPrePrepareBody(writer,
                        static_cast<const PrePrepareMessage&>(message));
      break;
    case MsgKind::kPrepare:
      putPhase(writer, static_cast<const PrepareMessage&>(message));
      break;
    case MsgKind::kCommit:
      putPhase(writer, static_cast<const CommitMessage&>(message));
      break;
    case MsgKind::kReply: {
      const auto& reply = static_cast<const ReplyMessage&>(message);
      writer.u64(reply.view);
      writer.u32(reply.client);
      writer.u64(reply.timestamp);
      writer.u32(reply.replica);
      writer.blob(reply.result);
      writer.u64(reply.resultDigest);
      writer.u64(reply.mac);
      break;
    }
    case MsgKind::kCheckpoint: {
      const auto& checkpoint = static_cast<const CheckpointMessage&>(message);
      writer.u64(checkpoint.seq);
      writer.u64(checkpoint.stateDigest);
      writer.u32(checkpoint.replica);
      putAuth(writer, checkpoint.auth);
      break;
    }
    case MsgKind::kViewChange: {
      const auto& viewChange = static_cast<const ViewChangeMessage&>(message);
      writer.u64(viewChange.newView);
      writer.u64(viewChange.stableSeq);
      putProofs(writer, viewChange.prepared);
      writer.u32(viewChange.replica);
      putAuth(writer, viewChange.auth);
      break;
    }
    case MsgKind::kNewView: {
      const auto& newView = static_cast<const NewViewMessage&>(message);
      writer.u64(newView.view);
      writer.u32(static_cast<std::uint32_t>(newView.prePrepares.size()));
      for (const PrePreparePtr& prePrepare : newView.prePrepares) {
        putPrePrepareBody(writer, *prePrepare);
      }
      writer.u32(newView.replica);
      putAuth(writer, newView.auth);
      break;
    }
    case MsgKind::kStateRequest: {
      const auto& request = static_cast<const StateRequestMessage&>(message);
      writer.u64(request.seq);
      writer.u32(request.replica);
      writer.u64(request.mac);
      break;
    }
    case MsgKind::kStateResponse: {
      const auto& response =
          static_cast<const StateResponseMessage&>(message);
      writer.u64(response.seq);
      writer.u64(response.stateDigest);
      writer.blob(response.snapshot);
      writer.u32(static_cast<std::uint32_t>(response.clientTimestamps.size()));
      for (const auto& [client, timestamp] : response.clientTimestamps) {
        writer.u32(client);
        writer.u64(timestamp);
      }
      writer.u32(response.replica);
      writer.u64(response.mac);
      break;
    }
    case MsgKind::kStatus: {
      const auto& status = static_cast<const StatusMessage&>(message);
      writer.u64(status.view);
      writer.u64(status.lastExecuted);
      writer.u32(status.replica);
      putAuth(writer, status.auth);
      break;
    }
    case MsgKind::kSyncSeq: {
      const auto& sync = static_cast<const SyncSeqMessage&>(message);
      writer.u64(sync.seq);
      writer.u64(sync.digest);
      putBatch(writer, sync.batch);
      writer.u32(sync.replica);
      writer.u64(sync.mac);
      break;
    }
    default:
      return {};  // non-PBFT payload
  }
  return writer.take();
}

[[nodiscard]] sim::MessagePtr decode(std::span<const std::uint8_t> buffer) {
  util::ByteReader reader(buffer);
  const auto kind = reader.u32();
  if (!kind) return nullptr;

  // The decoded object is returned only when every field parsed AND the
  // buffer held nothing else (trailing garbage = malformed frame).
  const auto finish = [&reader](sim::MessagePtr message) -> sim::MessagePtr {
    if (message == nullptr || !reader.exhausted()) return nullptr;
    return message;
  };

  switch (static_cast<MsgKind>(*kind)) {
    case MsgKind::kRequest:
      return finish(getRequest(reader));
    case MsgKind::kPrePrepare:
      return finish(getPrePrepareBody(reader));
    case MsgKind::kPrepare:
      return finish(getPhase<PrepareMessage>(reader));
    case MsgKind::kCommit:
      return finish(getPhase<CommitMessage>(reader));
    case MsgKind::kReply: {
      auto reply = std::make_shared<ReplyMessage>();
      const auto view = reader.u64();
      const auto client = reader.u32();
      const auto timestamp = reader.u64();
      const auto replica = reader.u32();
      if (!view || !client || !timestamp || !replica) return nullptr;
      reply->view = *view;
      reply->client = *client;
      reply->timestamp = *timestamp;
      reply->replica = *replica;
      auto result = reader.blob();
      if (!result) return nullptr;
      reply->result = std::move(*result);
      const auto resultDigest = reader.u64();
      const auto mac = reader.u64();
      if (!resultDigest || !mac) return nullptr;
      reply->resultDigest = *resultDigest;
      reply->mac = *mac;
      return finish(std::move(reply));
    }
    case MsgKind::kCheckpoint: {
      auto checkpoint = std::make_shared<CheckpointMessage>();
      const auto seq = reader.u64();
      const auto stateDigest = reader.u64();
      const auto replica = reader.u32();
      if (!seq || !stateDigest || !replica) return nullptr;
      checkpoint->seq = *seq;
      checkpoint->stateDigest = *stateDigest;
      checkpoint->replica = *replica;
      if (!getAuth(reader, checkpoint->auth)) return nullptr;
      return finish(std::move(checkpoint));
    }
    case MsgKind::kViewChange: {
      auto viewChange = std::make_shared<ViewChangeMessage>();
      const auto newView = reader.u64();
      const auto stableSeq = reader.u64();
      if (!newView || !stableSeq) return nullptr;
      viewChange->newView = *newView;
      viewChange->stableSeq = *stableSeq;
      if (!getProofs(reader, viewChange->prepared)) return nullptr;
      const auto replica = reader.u32();
      if (!replica) return nullptr;
      viewChange->replica = *replica;
      if (!getAuth(reader, viewChange->auth)) return nullptr;
      return finish(std::move(viewChange));
    }
    case MsgKind::kNewView: {
      auto newView = std::make_shared<NewViewMessage>();
      const auto view = reader.u64();
      const auto count = reader.u32();
      if (!view || !count || *count > kMaxProofs) return nullptr;
      newView->view = *view;
      newView->prePrepares.reserve(std::min(*count, kPreparseReserveCap));
      for (std::uint32_t i = 0; i < *count; ++i) {
        PrePreparePtr prePrepare = getPrePrepareBody(reader);
        if (prePrepare == nullptr) return nullptr;
        newView->prePrepares.push_back(std::move(prePrepare));
      }
      const auto replica = reader.u32();
      if (!replica) return nullptr;
      newView->replica = *replica;
      if (!getAuth(reader, newView->auth)) return nullptr;
      return finish(std::move(newView));
    }
    case MsgKind::kStateRequest: {
      auto request = std::make_shared<StateRequestMessage>();
      const auto seq = reader.u64();
      const auto replica = reader.u32();
      const auto mac = reader.u64();
      if (!seq || !replica || !mac) return nullptr;
      request->seq = *seq;
      request->replica = *replica;
      request->mac = *mac;
      return finish(std::move(request));
    }
    case MsgKind::kStateResponse: {
      auto response = std::make_shared<StateResponseMessage>();
      const auto seq = reader.u64();
      const auto stateDigest = reader.u64();
      if (!seq || !stateDigest) return nullptr;
      response->seq = *seq;
      response->stateDigest = *stateDigest;
      auto snapshot = reader.blob();
      if (!snapshot) return nullptr;
      response->snapshot = std::move(*snapshot);
      const auto count = reader.u32();
      if (!count || *count > kMaxClientEntries) return nullptr;
      response->clientTimestamps.reserve(
          std::min(*count, kPreparseReserveCap));
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto client = reader.u32();
        const auto timestamp = reader.u64();
        if (!client || !timestamp) return nullptr;
        response->clientTimestamps.emplace_back(*client, *timestamp);
      }
      const auto replica = reader.u32();
      const auto mac = reader.u64();
      if (!replica || !mac) return nullptr;
      response->replica = *replica;
      response->mac = *mac;
      return finish(std::move(response));
    }
    case MsgKind::kStatus: {
      auto status = std::make_shared<StatusMessage>();
      const auto view = reader.u64();
      const auto lastExecuted = reader.u64();
      const auto replica = reader.u32();
      if (!view || !lastExecuted || !replica) return nullptr;
      status->view = *view;
      status->lastExecuted = *lastExecuted;
      status->replica = *replica;
      if (!getAuth(reader, status->auth)) return nullptr;
      return finish(std::move(status));
    }
    case MsgKind::kSyncSeq: {
      auto sync = std::make_shared<SyncSeqMessage>();
      const auto seq = reader.u64();
      const auto digest = reader.u64();
      if (!seq || !digest) return nullptr;
      sync->seq = *seq;
      sync->digest = *digest;
      if (!getBatch(reader, sync->batch)) return nullptr;
      const auto replica = reader.u32();
      const auto mac = reader.u64();
      if (!replica || !mac) return nullptr;
      sync->replica = *replica;
      sync->mac = *mac;
      return finish(std::move(sync));
    }
    default:
      return nullptr;
  }
}

std::size_t encodedSize(const sim::Message& message) {
  return encode(message).size();
}

}  // namespace avd::pbft::wire
