// PBFT replica state machine.
//
// Implements the full Castro-Liskov protocol: request handling with
// retransmission caching, primary batching, the three-phase agreement
// (pre-prepare / prepare / commit), in-order execution, periodic checkpoints
// with log garbage collection, and the view-change / new-view protocol.
//
// Two implementation details matter for the paper's findings and are
// reproduced deliberately:
//
//  1. The request ("view-change") timer. By default there is a SINGLE timer
//     per replica: it is armed when a request is received directly from a
//     client, and *cleared when any directly-received request executes* —
//     even though other direct requests may still be pending. This is the
//     bug AVD discovered (§6): a malicious primary that executes one request
//     per timer period keeps every backup's timer perpetually reset while
//     starving everyone else. Config::perRequestTimers enables the fixed
//     semantics (one timer per pending request) for the ablation.
//
//  2. Pre-prepare validation verifies the *receiving replica's own* entry of
//     each piggybacked request's MAC authenticator. A request whose
//     authenticator is valid for the primary but corrupt for ≥ 2f backups is
//     ordered by the primary yet can never gather a prepare certificate,
//     stalling the execution pipeline at its sequence number until a view
//     change fills the hole with a null request — the Big MAC attack.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "crypto/authenticator.h"
#include "crypto/keychain.h"
#include "pbft/config.h"
#include "pbft/log.h"
#include "pbft/message.h"
#include "pbft/service.h"
#include "pbft/stable_storage.h"
#include "sim/node.h"

namespace avd::pbft {

/// Behaviour knobs for a (possibly malicious) replica. A correct replica
/// keeps all defaults; AVD's node-synthesis tools set these to instantiate
/// attacker replicas (§2: malicious nodes are controlled by the platform).
struct ReplicaBehavior {
  /// Slow-primary attack (§6): when primary, withhold ordering and
  /// pre-prepare exactly one pending request per drip period.
  bool slowPrimary = false;

  /// Drip period as a fraction of requestTimeout. Must leave enough margin
  /// for the commit to land before the backups' request timers fire.
  double slowPrimaryFraction = 0.8;

  /// If set, the slow primary orders only this client's requests (the
  /// colluding-client variant that zeroes useful throughput).
  util::NodeId colludingClient = util::kNoNode;

  /// Send spurious VIEW-CHANGE messages at this interval (0 = never).
  sim::Time spuriousViewChangeInterval = 0;

  /// Suppress outgoing PREPARE / COMMIT messages (silent-replica attacks).
  bool silentPrepares = false;
  bool silentCommits = false;

  /// Equivocation attack: when primary, send conflicting pre-prepares for
  /// the same sequence number to different backups (a safety attack that
  /// correct PBFT must absorb — the split prepare votes can stall a
  /// sequence and cost a view change, but never diverge execution).
  bool equivocate = false;

  /// Clock-skew fault: all timers at this replica fire after delay *
  /// timerSkew (< 1 = fast clock, premature timeouts; > 1 = slow clock).
  double timerSkew = 1.0;
};

/// Counters exposed for tests, impact analysis, and benches.
struct ReplicaStats {
  std::uint64_t requestsReceived = 0;
  std::uint64_t requestsBadMac = 0;
  std::uint64_t prePreparesRejected = 0;
  /// Pre-prepares parked because a piggybacked request could not (yet) be
  /// authenticated; resolved if a valid retransmission arrives later.
  std::uint64_t prePreparesPended = 0;
  /// Parked pre-prepares adopted on quorum authority: 2f+1 matching commits
  /// certify the batch digest, superseding the missing client MAC.
  std::uint64_t prePreparesAdoptedByQuorum = 0;
  std::uint64_t batchesOrdered = 0;
  std::uint64_t requestsExecuted = 0;
  std::uint64_t viewChangesInitiated = 0;
  std::uint64_t checkpointsTaken = 0;
  std::uint64_t repliesResent = 0;
  /// Read-only requests answered tentatively (no ordering).
  std::uint64_t readOnlyServed = 0;
  /// 1 if this replica hit the view-change crash bug (fail-stopped).
  std::uint64_t crashedOnViewChange = 0;
  /// Sequences executed via f+1 sync attestations (lost-message recovery).
  std::uint64_t sequencesSynced = 0;
  /// State transfers completed: a quorum-corroborated snapshot was adopted
  /// after falling behind a stable checkpoint.
  std::uint64_t stateTransfersCompleted = 0;

  // --- Resource accounting (flood tools / Aardvark-style defenses) --------
  /// Requests rejected by per-client admission quotas.
  std::uint64_t quotaDrops = 0;
  /// Reply-cache resends suppressed by the per-window replay cap.
  std::uint64_t replaysSuppressed = 0;
  /// Requests rejected for exceeding Config::maxRequestBytes.
  std::uint64_t oversizedRejected = 0;
  /// Requests rejected because the ordering queue hit maxOrderingQueue.
  std::uint64_t orderingDropped = 0;
  /// Parked pre-prepares evicted (or refused) at maxParkedPrePrepares.
  std::uint64_t parkedEvicted = 0;
  /// Status rounds whose sync pushes hit the per-peer byte budget.
  std::uint64_t syncBytesCapped = 0;
  /// Reply-cache entries evicted at stable-checkpoint advance.
  std::uint64_t replyCacheEvicted = 0;
  /// High-water marks.
  std::uint64_t peakOrderingQueue = 0;
  std::uint64_t peakParkedBytes = 0;
};

class Replica final : public sim::Node {
 public:
  Replica(util::NodeId id, const Config& config,
          const crypto::Keychain* keychain, std::unique_ptr<Service> service,
          ReplicaBehavior behavior = {});

  void start() override;
  void receive(util::NodeId from, const sim::MessagePtr& message) override;

  /// Crash recovery: wipes volatile state, reloads the StableStorage
  /// record, and rejoins the protocol with an immediate status round (peers
  /// push what we missed; anything older than our log window arrives via
  /// checkpoint state transfer).
  void onRestart() override;

  // --- Observability -------------------------------------------------------
  util::ViewId view() const noexcept { return view_; }
  bool isPrimary() const noexcept {
    return config_.primaryOf(view_) == id() && !inViewChange_;
  }
  util::SeqNum lastExecuted() const noexcept { return lastExecuted_; }
  util::SeqNum stableCheckpoint() const noexcept { return stableSeq_; }
  bool inViewChange() const noexcept { return inViewChange_; }
  const ReplicaStats& stats() const noexcept { return stats_; }
  /// Total bytes of cached last-replies — regression observability for the
  /// reply-cache eviction satellite (bounded under a long replay storm).
  std::size_t replyCacheBytes() const noexcept;
  Service& service() noexcept { return *service_; }
  crypto::MacService& macs() noexcept { return macs_; }
  const StableStorage& stableStorage() const noexcept { return stable_; }

  /// seq -> digest of the executed batch; the cross-replica safety oracle
  /// compares these maps.
  const std::map<util::SeqNum, std::uint64_t>& executionTrace() const noexcept {
    return executedDigests_;
  }

  /// Commit certificate snapshotted at execution time: the executed digest
  /// plus the commit voters that endorsed it. Recorded per sequence because
  /// checkpoint GC destroys log entries — the oracle needs the voter sets
  /// afterwards to show WHO double-voted when two replicas execute
  /// conflicting digests. Sequences executed through f+1 sync attestations
  /// carry no commit votes and record an empty voter set.
  struct CommitCert {
    std::uint64_t digest = 0;
    std::vector<util::NodeId> voters;
  };
  const std::map<util::SeqNum, CommitCert>& commitCerts() const noexcept {
    return commitCerts_;
  }

 private:
  struct ClientRecord {
    util::RequestId lastExecutedTs = 0;
    ReplyPtr lastReply;
    /// Latest unexecuted request received directly from the client.
    RequestPtr pendingDirect;
    /// Fixed-timer mode only: this client's pending-request timer.
    sim::TimerId timer = 0;
    bool timerArmed = false;
    /// Highest timestamp handed to the primary's batching queue.
    util::RequestId lastQueuedTs = 0;
    /// Admission control: window index and usage (requests admitted, cached
    /// replies resent) within it.
    std::int64_t admissionWindow = -1;
    std::uint32_t admittedInWindow = 0;
    std::uint32_t resendsInWindow = 0;
  };

  std::uint32_t n() const noexcept { return config_.replicaCount(); }
  bool isReplicaId(util::NodeId node) const noexcept { return node < n(); }
  util::NodeId currentPrimary() const noexcept {
    return config_.primaryOf(view_);
  }

  /// Multicasts an authenticated message to all other replicas.
  template <typename M>
  void multicastToReplicas(std::shared_ptr<M> message);

  // --- Message handlers -----------------------------------------------------
  void onRequest(util::NodeId from, const RequestPtr& request);
  void onPrePrepare(util::NodeId from, const PrePreparePtr& prePrepare);
  void onPrepare(util::NodeId from, const PrepareMessage& prepare);
  void onCommit(util::NodeId from, const CommitMessage& commit);
  void onCheckpoint(util::NodeId from, const CheckpointMessage& checkpoint);
  void onViewChange(util::NodeId from, const ViewChangePtr& viewChange);
  void onNewView(util::NodeId from, const NewViewPtr& newView);

  // --- Ordering (primary) ---------------------------------------------------
  void enqueueForOrdering(const RequestPtr& request);
  void scheduleBatchFlush();
  void flushBatch();
  void orderBatch(std::vector<RequestPtr> batch);
  void dripOneRequest();  // slow-primary behaviour

  // Ordering-queue facade: a single FIFO deque by default, per-client FIFO
  // lanes drained round-robin under Config::fairClientScheduling.
  std::size_t orderingSize() const noexcept;
  bool orderingEmpty() const noexcept { return orderingSize() == 0; }
  /// Appends one request, honouring maxOrderingQueue (newest rejected);
  /// returns whether it was queued.
  bool orderingPush(const RequestPtr& request);
  /// Removes and returns up to `take` requests in service order.
  std::vector<RequestPtr> orderingTake(std::size_t take);
  /// Removes and returns the next request of `client` (kNoNode = any), or
  /// nullptr. Used by the slow-primary drip.
  RequestPtr orderingTakeFor(util::NodeId client);
  void orderingClear();

  // --- Admission control (Aardvark-style, Config::clientAdmissionControl) ---
  /// Charges one admission-window slot for `client`; false = over quota.
  bool admitRequest(ClientRecord& record);
  /// Charges one reply-resend slot; false = replay suppressed this window.
  bool admitResend(ClientRecord& record);

  // --- Agreement ------------------------------------------------------------
  bool acceptPrePrepare(const PrePreparePtr& prePrepare);
  /// Re-attempts pre-prepares parked on `digest` after a valid copy of that
  /// request arrived.
  void retryPendingPrePrepares(std::uint64_t digest);
  /// Adopts a parked pre-prepare once 2f+1 commits certify its digest (the
  /// quorum vouches for request authenticity; >= f+1 correct replicas
  /// verified the client MACs we could not).
  bool adoptQuorumCertifiedPending(util::SeqNum seq);
  void maybeSendCommit(util::SeqNum seq);
  void maybeExecute();
  void executeEntry(util::SeqNum seq, LogEntry& entry);

  // --- Request timer (single-timer bug vs per-request fix) ------------------
  void noteDirectRequest(const RequestPtr& request);
  void onRequestExecuted(util::NodeId client, util::RequestId timestamp);
  void armSingleTimer();
  void onRequestTimerExpired();
  bool hasPendingDirectRequests() const;

  // --- Aardvark-style throughput guard ----------------------------------------
  void checkPrimaryThroughput();

  // --- Status / sync subprotocol ---------------------------------------------
  void broadcastStatus();
  void sendStatusNow();
  void onStatus(util::NodeId from, const StatusMessage& status);
  void onSyncSeq(util::NodeId from,
                 const std::shared_ptr<const SyncSeqMessage>& sync);
  /// Executes in-order sequences for which f+1 matching attestations have
  /// accumulated.
  void drainSyncVotes();

  // --- Checkpoints & state transfer ------------------------------------------
  void takeCheckpoint(util::SeqNum seq);
  void checkCheckpointStable(util::SeqNum seq);
  void requestStateTransfer(util::SeqNum seq, util::NodeId source);
  void onStateRequest(util::NodeId from, const StateRequestMessage& request);
  void onStateResponse(util::NodeId from, const StateResponseMessage& response);

  // --- Stable storage ----------------------------------------------------------
  /// Writes the current protocol-critical state to stable storage. Called at
  /// the protocol's persistence points: stable-checkpoint advance, view
  /// installation, and joining a view change.
  void persistStableState();

  // --- View changes -----------------------------------------------------------
  void startViewChange(util::ViewId newView);
  void maybeSendNewView(util::ViewId newView);
  void installNewView(util::ViewId newView,
                      const std::vector<PrePreparePtr>& prePrepares);
  void onViewChangeTimerExpired();
  void sendSpuriousViewChange();

  Config config_;
  crypto::MacService macs_;
  std::unique_ptr<Service> service_;
  ReplicaBehavior behavior_;

  util::ViewId view_ = 0;
  bool inViewChange_ = false;
  util::ViewId targetView_ = 0;

  util::SeqNum nextSeq_ = 1;  // primary only: next sequence to assign
  util::SeqNum lastExecuted_ = 0;
  util::SeqNum stableSeq_ = 0;  // low watermark

  ReplicaLog log_;
  // Ordered so that iteration (new-view queue rebuild, timer scans) is
  // deterministic and platform-independent.
  std::map<util::NodeId, ClientRecord> clients_;

  /// Requests whose authenticator entry verified for us, by digest. A
  /// pre-prepare is acceptable when every batched request verifies directly
  /// OR a previously-authenticated copy with the same digest is held — the
  /// Castro-Liskov implementation matches digests against directly received
  /// requests, which is why a single corrupted transmission round does NOT
  /// stall the protocol (§6: no view change "if every retransmission from
  /// the malicious client was correct").
  std::unordered_map<std::uint64_t, RequestPtr> authedRequests_;
  /// Pre-prepares waiting for request authentication, and the reverse index
  /// from missing request digest to waiting sequence numbers.
  std::map<util::SeqNum, PrePreparePtr> pendingPrePrepares_;
  std::unordered_map<std::uint64_t, std::set<util::SeqNum>> pendingByDigest_;

  // Primary batching. orderingQueue_ is the default shared FIFO;
  // fairQueues_/fairQueued_/fairCursor_ replace it under fair scheduling
  // (one lane per client, drained round-robin).
  std::deque<RequestPtr> orderingQueue_;
  std::map<util::NodeId, std::deque<RequestPtr>> fairQueues_;
  std::size_t fairQueued_ = 0;
  util::NodeId fairCursor_ = 0;
  sim::TimerId batchTimer_ = 0;
  bool batchTimerArmed_ = false;
  sim::TimerId dripTimer_ = 0;

  // Single request timer (default, buggy semantics).
  sim::TimerId requestTimer_ = 0;
  bool requestTimerArmed_ = false;

  // Checkpoint votes: seq -> digest -> voters.
  std::map<util::SeqNum, std::map<std::uint64_t, std::map<util::NodeId, bool>>>
      checkpointVotes_;
  /// Our own checkpoints within the log window, kept with their snapshots so
  /// lagging peers can be served state transfers.
  struct OwnCheckpoint {
    std::uint64_t digest = 0;
    util::Bytes snapshot;
    std::vector<std::pair<util::NodeId, util::RequestId>> clientTimestamps;
  };
  std::map<util::SeqNum, OwnCheckpoint> ownCheckpoints_;
  bool stateTransferInFlight_ = false;

  // Stable storage (survives crash–restart; everything else protocol-side is
  // volatile and wiped by onRestart).
  StableStorage stable_;
  /// Voters of the quorum that made the current stable checkpoint stable.
  std::vector<util::NodeId> stableProof_;
  /// Service snapshot at construction, restored when recovering with no
  /// stable record (crash before the first persistence point).
  util::Bytes initialSnapshot_;

  // View-change votes: target view -> replica -> message.
  std::map<util::ViewId, std::map<util::NodeId, ViewChangePtr>>
      viewChangeVotes_;
  sim::TimerId vcTimer_ = 0;
  bool vcTimerArmed_ = false;
  std::uint32_t vcAttempts_ = 0;
  util::ViewId newViewSentFor_ = 0;  // highest view we multicast NEW-VIEW for
  /// The NEW-VIEW that installed the current view (ours or relayed), kept
  /// for status-driven retransmission to peers stranded in older views.
  NewViewPtr latestNewView_;

  /// Sync attestations: seq -> digest -> attesting replica -> batch.
  std::map<util::SeqNum,
           std::map<std::uint64_t,
                    std::map<util::NodeId, std::shared_ptr<const SyncSeqMessage>>>>
      syncVotes_;

  /// Executed-count snapshot at the start of the current guard window.
  std::uint64_t guardWindowBaseline_ = 0;

  /// Per-peer sync-push byte budget: peer -> (status-window index, bytes
  /// pushed within it). Bounds status-round amplification.
  std::map<util::NodeId, std::pair<std::int64_t, std::size_t>> syncBudget_;
  /// Wire bytes currently parked in pendingPrePrepares_ (peak tracked in
  /// stats_.peakParkedBytes).
  std::size_t parkedBytes_ = 0;
  /// Frozen client-timestamp snapshot of the PREVIOUS stable checkpoint.
  /// Reply-cache entries at or below these timestamps are evicted when the
  /// next checkpoint stabilizes — one full checkpoint window of grace, so a
  /// client retransmitting across the eviction still finds its reply.
  std::map<util::NodeId, util::RequestId> replyCacheFrozen_;

  std::map<util::SeqNum, std::uint64_t> executedDigests_;
  /// Like executedDigests_, survives restarts: the oracle must span
  /// incarnations.
  std::map<util::SeqNum, CommitCert> commitCerts_;
  ReplicaStats stats_;
};

}  // namespace avd::pbft
