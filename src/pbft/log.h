// Per-sequence-number protocol log.
//
// Tracks, for every in-window sequence number, the accepted pre-prepare and
// the prepare/commit certificates being accumulated for it. Votes are keyed
// by replica and carry the digest they endorse, so votes that race ahead of
// the pre-prepare are held and only counted once they match the accepted
// digest. Garbage collection follows the checkpoint protocol: once a
// checkpoint becomes stable at sequence s, everything at or below s is
// discarded and the watermarks advance.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "pbft/message.h"

namespace avd::pbft {

struct LogEntry {
  /// Pre-prepare accepted for this sequence in `view` (null until then).
  PrePreparePtr prePrepare;
  util::ViewId view = 0;
  std::uint64_t digest = 0;

  /// PREPARE votes: replica -> endorsed digest. Never includes the primary
  /// (its pre-prepare stands in for its prepare).
  std::map<util::NodeId, std::uint64_t> prepares;
  /// COMMIT votes: replica -> endorsed digest (includes own commit).
  std::map<util::NodeId, std::uint64_t> commits;

  bool prepareSent = false;
  bool commitSent = false;
  bool executed = false;

  /// Memory of the highest-view prepared certificate this replica EVER held
  /// for this sequence (PBFT's P-set entry). Live certificate fields above
  /// are wiped when a new view installs, but this memory must survive:
  /// a committed value anywhere implies 2f+1 replicas hold its prepared
  /// certificate, and their view-change messages must keep carrying it even
  /// across interrupted re-agreement attempts — otherwise a later new-view
  /// could null out a sequence some replica already executed.
  bool everPrepared = false;
  util::ViewId preparedView = 0;
  std::uint64_t preparedDigest = 0;
  std::vector<RequestPtr> preparedBatch;

  /// Records the live certificate as the ever-prepared memory (monotone in
  /// view; within a view the digest is fixed by the accepted pre-prepare).
  void recordPrepared() {
    if (everPrepared && preparedView > view) return;
    everPrepared = true;
    preparedView = view;
    preparedDigest = digest;
    preparedBatch = prePrepare->batch;
  }

  std::size_t matchingPrepares() const noexcept {
    return countMatching(prepares);
  }
  std::size_t matchingCommits() const noexcept { return countMatching(commits); }

  /// Prepared certificate: accepted pre-prepare + 2f matching prepares.
  bool prepared(std::uint32_t f) const noexcept {
    return prePrepare != nullptr && matchingPrepares() >= 2 * f;
  }
  /// Committed certificate: prepared + 2f+1 matching commits.
  bool committed(std::uint32_t f) const noexcept {
    return prepared(f) && matchingCommits() >= 2 * f + 1;
  }

 private:
  std::size_t countMatching(
      const std::map<util::NodeId, std::uint64_t>& votes) const noexcept {
    if (prePrepare == nullptr) return 0;
    std::size_t matching = 0;
    for (const auto& [replica, voteDigest] : votes) {
      if (voteDigest == digest) ++matching;
    }
    return matching;
  }
};

class ReplicaLog {
 public:
  /// Returns (creating if needed) the entry at `seq`.
  LogEntry& at(util::SeqNum seq) { return entries_[seq]; }

  /// Entry lookup without creation; nullptr when absent.
  LogEntry* find(util::SeqNum seq);
  const LogEntry* find(util::SeqNum seq) const;

  /// Drops all entries with seq <= stableSeq (checkpoint GC).
  void truncateBelow(util::SeqNum stableSeq);

  /// Prepared-but-possibly-uncommitted certificates above `stableSeq`, for
  /// inclusion in a VIEW-CHANGE message.
  std::vector<PreparedProof> preparedProofsAbove(util::SeqNum stableSeq,
                                                 std::uint32_t f) const;

  /// Clears certificate progress for entries that have not executed, as part
  /// of installing a new view (fresh certificates are gathered there).
  void resetUnexecutedForNewView();

  std::size_t size() const noexcept { return entries_.size(); }
  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

 private:
  std::map<util::SeqNum, LogEntry> entries_;
};

}  // namespace avd::pbft
