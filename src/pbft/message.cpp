#include "pbft/message.h"

#include "common/hash.h"

namespace avd::pbft {

std::uint64_t requestDigest(util::NodeId client, util::RequestId timestamp,
                            const util::Bytes& operation, bool readOnly) {
  util::ByteWriter writer;
  writer.u32(static_cast<std::uint32_t>(MsgKind::kRequest));
  writer.u32(client);
  writer.u64(timestamp);
  writer.blob(operation);
  writer.u8(readOnly ? 1 : 0);
  return util::fnv1a(writer.bytes());
}

std::uint64_t batchDigest(const std::vector<RequestPtr>& batch) {
  // Domain-separated so an empty batch (null request) has a fixed digest
  // distinct from any request digest.
  std::uint64_t digest = util::fnv1a("pbft.batch");
  for (const RequestPtr& request : batch) {
    digest = util::hashCombine(digest, request->digest);
  }
  return digest;
}

std::uint64_t phaseDigest(MsgKind phase, util::ViewId view, util::SeqNum seq,
                          std::uint64_t digest, util::NodeId replica) {
  std::uint64_t h = util::fnv1a("pbft.phase");
  h = util::hashCombine(h, static_cast<std::uint64_t>(phase));
  h = util::hashCombine(h, view);
  h = util::hashCombine(h, seq);
  h = util::hashCombine(h, digest);
  h = util::hashCombine(h, replica);
  return h;
}

std::uint64_t replyDigest(const ReplyMessage& reply) {
  std::uint64_t h = util::fnv1a("pbft.reply");
  h = util::hashCombine(h, reply.view);
  h = util::hashCombine(h, reply.client);
  h = util::hashCombine(h, reply.timestamp);
  h = util::hashCombine(h, reply.replica);
  h = util::hashCombine(h, reply.resultDigest);
  return h;
}

std::uint64_t viewChangeDigest(const ViewChangeMessage& viewChange) {
  std::uint64_t h = util::fnv1a("pbft.viewchange");
  h = util::hashCombine(h, viewChange.newView);
  h = util::hashCombine(h, viewChange.stableSeq);
  h = util::hashCombine(h, viewChange.replica);
  for (const PreparedProof& proof : viewChange.prepared) {
    h = util::hashCombine(h, proof.seq);
    h = util::hashCombine(h, proof.view);
    h = util::hashCombine(h, proof.digest);
  }
  return h;
}

std::uint64_t newViewDigest(const NewViewMessage& newView) {
  std::uint64_t h = util::fnv1a("pbft.newview");
  h = util::hashCombine(h, newView.view);
  h = util::hashCombine(h, newView.replica);
  for (const PrePreparePtr& pp : newView.prePrepares) {
    h = util::hashCombine(h, pp->seq);
    h = util::hashCombine(h, pp->digest);
  }
  return h;
}

std::uint64_t stateRequestDigest(const StateRequestMessage& request) {
  std::uint64_t h = util::fnv1a("pbft.statereq");
  h = util::hashCombine(h, request.seq);
  h = util::hashCombine(h, request.replica);
  return h;
}

std::uint64_t stateResponseDigest(const StateResponseMessage& response) {
  std::uint64_t h = util::fnv1a("pbft.stateresp");
  h = util::hashCombine(h, response.seq);
  h = util::hashCombine(h, response.stateDigest);
  h = util::hashCombine(h, response.replica);
  h = util::hashCombine(h, util::fnv1a(response.snapshot));
  for (const auto& [client, timestamp] : response.clientTimestamps) {
    h = util::hashCombine(h, client);
    h = util::hashCombine(h, timestamp);
  }
  return h;
}

std::uint64_t statusDigest(const StatusMessage& status) {
  std::uint64_t h = util::fnv1a("pbft.status");
  h = util::hashCombine(h, status.view);
  h = util::hashCombine(h, status.lastExecuted);
  h = util::hashCombine(h, status.replica);
  return h;
}

std::uint64_t syncSeqDigest(const SyncSeqMessage& sync) {
  std::uint64_t h = util::fnv1a("pbft.syncseq");
  h = util::hashCombine(h, sync.seq);
  h = util::hashCombine(h, sync.digest);
  h = util::hashCombine(h, sync.replica);
  return h;
}

}  // namespace avd::pbft
