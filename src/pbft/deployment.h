// Full simulated PBFT deployment and impact measurement.
//
// A Deployment assembles replicas, clients and the simulated network —
// the in-process equivalent of the paper's Emulab testbed — runs the
// workload for a warmup + measurement window, and reports the metric AVD
// optimizes: throughput and latency *observed by the correct clients* (§3:
// "the impact on the correct, unmodified nodes of the target system").
// Individual AVD tests construct a fresh Deployment each time, matching the
// paper's per-test re-initialization.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keychain.h"
#include "pbft/client.h"
#include "pbft/config.h"
#include "pbft/replica.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace avd::pbft {

enum class ServiceKind { kCounter, kKv };

struct DeploymentConfig {
  Config pbft;
  std::uint32_t correctClients = 10;
  std::uint32_t maliciousClients = 0;
  ClientBehavior correctClientBehavior;
  ClientBehavior maliciousClientBehavior;
  /// Behaviour overrides by replica id (absent = correct replica).
  std::map<util::NodeId, ReplicaBehavior> replicaBehaviors;
  sim::LinkModel link{sim::usec(500), sim::usec(100)};
  sim::Time clientRetx = sim::msec(150);
  sim::Time warmup = sim::sec(1);
  sim::Time measure = sim::sec(4);
  std::uint64_t seed = 1;
  ServiceKind service = ServiceKind::kCounter;

  std::uint32_t totalClients() const noexcept {
    return correctClients + maliciousClients;
  }
};

/// Witness of a safety violation: the two conflicting commit certificates
/// the oracle found at one sequence number. Voter-set intersection shows
/// who double-voted (the twinned identities); an empty voter set means the
/// replica executed the sequence via f+1 sync attestations, not commits.
struct SafetyWitness {
  util::SeqNum seq = 0;
  util::NodeId replicaA = 0;
  util::NodeId replicaB = 0;
  std::uint64_t digestA = 0;
  std::uint64_t digestB = 0;
  std::vector<util::NodeId> votersA;
  std::vector<util::NodeId> votersB;
};

/// Compact one-token-per-field rendering with no commas or quotes, safe to
/// embed in CSV cells and JSON strings, e.g.
/// "seq=5 r2=00000000deadbeef[votes 0.1.2] r3=00000000cafef00d[synced]".
std::string formatSafetyWitness(const SafetyWitness& witness);

/// Outcome of one test run.
struct RunResult {
  /// Requests completed by correct clients per second of measured time.
  double throughputRps = 0.0;
  /// Mean completion latency of correct-client requests (seconds).
  double avgLatencySec = 0.0;
  /// Latency percentiles of correct-client requests (seconds).
  double p50LatencySec = 0.0;
  double p99LatencySec = 0.0;
  std::uint64_t correctCompleted = 0;
  std::uint64_t maliciousCompleted = 0;
  std::uint64_t viewChangesInitiated = 0;
  util::ViewId maxView = 0;
  /// True if two non-twin replicas committed different digests at the same
  /// sequence number — a PBFT safety violation. Within the f bound
  /// (including up to f twinned identities) this must never fire; the
  /// twins tool hunts for it beyond the bound.
  bool safetyViolated = false;
  /// The first conflicting certificate pair found (set iff safetyViolated).
  std::optional<SafetyWitness> safetyWitness;
  sim::NetworkCounters network;
  std::uint64_t eventsExecuted = 0;
  /// Resource-exhaustion observability (flood tools / defenses).
  /// Ingress-queue overflow drops across all nodes (= network counter,
  /// surfaced for campaign outcomes).
  std::uint64_t queueDrops = 0;
  /// Replica-side admission rejections: quota + oversized + bounded
  /// ordering-queue drops, summed over replicas.
  std::uint64_t quotaDrops = 0;
  /// Reply-cache resends suppressed by replay suppression (all replicas).
  std::uint64_t replaysSuppressed = 0;
  /// Highest ingress-queue depth any node reached.
  std::uint64_t peakQueueDepth = 0;
  /// Total replica crash–restart cycles over the run (churn faults).
  std::uint64_t restarts = 0;
  /// Protocol-transition observability (see src/avd/gen/protocol_events.h):
  /// checkpoints taken, state transfers completed, and pre-prepares parked
  /// pending authentication, summed over replicas.
  std::uint64_t checkpointsTaken = 0;
  std::uint64_t stateTransfers = 0;
  std::uint64_t prePreparesParked = 0;
  /// Seconds from the LAST replica restart to the first correct-client
  /// completion after it — how long the deployment took to come back. 0 when
  /// no restarts happened; the full remaining run time if it never recovered.
  double recoveryLatencySec = 0.0;
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config);

  /// Runs warmup + measurement and returns the collected result.
  RunResult run();

  /// Advances virtual time (for tests that want stepwise control).
  void runFor(sim::Time duration);

  /// Collects metrics over the window [warmup, warmup + measure].
  RunResult collect() const;

  // --- Accessors ------------------------------------------------------------
  sim::Simulator& simulator() noexcept { return simulator_; }
  sim::Network& network() noexcept { return network_; }
  const crypto::Keychain& keychain() const noexcept { return keychain_; }
  const DeploymentConfig& config() const noexcept { return config_; }

  std::uint32_t replicaCount() const noexcept {
    return config_.pbft.replicaCount();
  }
  Replica& replica(std::uint32_t index) { return *replicas_.at(index); }

  /// Mints a second physical replica behind replica `id`'s logical identity
  /// — same id, keys, service kind and behavior, but genesis state (the
  /// Twins "amnesia" shape). The caller owns it, registers it via
  /// Network::registerTwin, start()s it, and keeps it alive for the run;
  /// fi::TwinFault wraps all of that.
  std::unique_ptr<Replica> makeTwinReplica(util::NodeId id) const;

  /// Clients are laid out as: malicious [0, m), then correct [m, m+c).
  Client& maliciousClient(std::uint32_t index) {
    return *clients_.at(index);
  }
  Client& correctClient(std::uint32_t index) {
    return *clients_.at(config_.maliciousClients + index);
  }
  util::NodeId maliciousClientId(std::uint32_t index) const noexcept {
    return replicaCount() + index;
  }
  util::NodeId correctClientId(std::uint32_t index) const noexcept {
    return replicaCount() + config_.maliciousClients + index;
  }

 private:
  static std::unique_ptr<Service> makeService(ServiceKind kind);
  /// The link model actually installed: fairClientScheduling also turns on
  /// per-sender ingress lanes (Aardvark's resource isolation spans the
  /// network and the scheduler — one switch enables the coherent defense).
  static sim::LinkModel effectiveLink(const DeploymentConfig& config);

  DeploymentConfig config_;
  crypto::Keychain keychain_;
  sim::Simulator simulator_;
  sim::Network network_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Client>> clients_;
  bool started_ = false;
};

/// Convenience: build, run and summarize one deployment in a single call —
/// the shape of "execute one test scenario" used all over the benches.
RunResult runScenario(const DeploymentConfig& config);

}  // namespace avd::pbft
