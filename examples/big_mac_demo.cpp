// The Big MAC attack, step by step (paper §6; originally Clement et al.,
// Aardvark NSDI'09).
//
// A PBFT client authenticates each request with a MAC *authenticator* — a
// vector with one MAC per replica. A faulty client can make that vector
// inconsistent: valid for the primary, garbage for every backup. The
// primary orders the request; no backup can ever authenticate it; the
// sequence number stalls; the stall starves every other client; the request
// timers force a view change — and the historical implementation crashes in
// the view-change path, taking the whole deployment down.
//
// Build & run:  ./build/examples/big_mac_demo
#include <cstdio>

#include "faultinject/behaviors.h"
#include "pbft/deployment.h"

using namespace avd;

namespace {

void report(const char* label, pbft::Deployment& deployment) {
  const pbft::RunResult result = deployment.collect();
  std::uint64_t crashed = 0;
  std::uint64_t pended = 0;
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    crashed += deployment.replica(r).stats().crashedOnViewChange;
    pended += deployment.replica(r).stats().prePreparesPended;
  }
  std::printf("%-28s throughput %8.1f req/s | view changes %3llu | "
              "parked pre-prepares %4llu | crashed replicas %llu\n",
              label, result.throughputRps,
              static_cast<unsigned long long>(result.viewChangesInitiated),
              static_cast<unsigned long long>(pended),
              static_cast<unsigned long long>(crashed));
}

}  // namespace

int main() {
  std::printf("PBFT f=1 (4 replicas), 20 correct clients, 1 faulty client\n\n");

  {
    pbft::Deployment healthy(fi::makeBigMacScenario(20, 0, 42));
    healthy.run();
    report("no corruption:", healthy);
  }
  {
    // Corrupt every authenticator entry except the primary's, in every
    // transmission round — "corrupting the MAC in all messages".
    const std::uint64_t mask = fi::bigMacMaskValidOnlyFor(/*valid=*/0, 4);
    std::printf("\nattack mask = 0x%llx (valid only for replica 0)\n",
                static_cast<unsigned long long>(mask));
    pbft::Deployment attacked(fi::makeBigMacScenario(20, mask, 42));
    attacked.run();
    report("Big MAC, buggy view change:", attacked);
  }
  {
    pbft::DeploymentConfig fixedConfig =
        fi::makeBigMacScenario(20, fi::bigMacMaskValidOnlyFor(0, 4), 42);
    fixedConfig.pbft.viewChangeCrashBug = false;  // the repaired code path
    pbft::Deployment fixed(fixedConfig);
    fixed.run();
    report("Big MAC, fixed view change:", fixed);
  }
  {
    // The stealth variant: rotate which replica can authenticate each
    // transmission round. Digest matching prevents the view change, but
    // in-order execution still stalls behind every poisoned sequence.
    pbft::Deployment stealth(
        fi::makeBigMacScenario(20, fi::rotatingBigMacMask(), 42));
    stealth.run();
    report("rotating mask (stealth):", stealth);
  }

  std::printf(
      "\nreading the rows: the buggy deployment loses its quorum outright;\n"
      "the fixed one pays one view change and keeps serving; the stealth\n"
      "mask silently costs ~10x throughput with zero protocol alarms.\n");
  return 0;
}
