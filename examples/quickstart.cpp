// Quickstart: point AVD at a PBFT deployment and let it hunt.
//
// This is the 60-second tour of the public API:
//   1. describe the test-parameter hyperspace (one dimension per tool knob);
//   2. bind it to the system under test with an executor;
//   3. run the feedback-guided Test Controller (Algorithm 1);
//   4. inspect what it found.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "avd/controller.h"
#include "avd/pbft_executor.h"

using namespace avd;

int main() {
  // 1. The hyperspace: the MAC-corruption tool's 12-bit Gray-coded bitmask
  //    and the number of correct clients sharing the deployment.
  core::Hyperspace space;
  space.add(core::Dimension::grayBitmask("mac_mask", 12));
  space.add(core::Dimension::range("correct_clients", 10, 50, 10));

  // 2. The executor instantiates one fresh simulated PBFT deployment per
  //    test scenario and measures the impact on the correct clients.
  core::PbftExecutorOptions options;
  options.measure = sim::msec(1500);
  core::PbftAttackExecutor executor(std::move(space), options);

  // 3. Algorithm 1: random battleships opening, then impact-guided mutation
  //    through tool plugins.
  core::Controller controller(executor,
                              core::defaultPlugins(executor.space()),
                              core::ControllerOptions{}, /*seed=*/2011);
  std::printf("exploring %llu scenarios with a 40-test budget...\n",
              static_cast<unsigned long long>(
                  executor.space().totalScenarios()));
  controller.runTests(40);

  // 4. Results.
  std::printf("executed %zu tests, max impact %.3f\n",
              controller.executedTests(), controller.maxImpact());
  if (const auto best = controller.best()) {
    std::printf(
        "strongest attack: mask=0x%llx, %lld correct clients -> "
        "throughput %.1f req/s (impact %.3f), %llu view changes\n",
        static_cast<unsigned long long>(
            executor.space().valueOf(best->point, "mac_mask", 0)),
        static_cast<long long>(
            executor.space().valueOf(best->point, "correct_clients", 0)),
        best->outcome.throughputRps, best->outcome.impact,
        static_cast<unsigned long long>(best->outcome.viewChanges));
  }
  if (const auto firstStrong = controller.testsToReach(0.9)) {
    std::printf("first strong attack found after %zu tests\n", *firstStrong);
  }
  return 0;
}
