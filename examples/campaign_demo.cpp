// Campaign demo: run AVD as a resumable, parallel campaign against the
// quorum KV store, then show what the campaign directory makes possible —
// kill-safe resumption and a deduplicated vulnerability report.
//
// Everything lands in ./campaign-demo; re-running the binary resumes the
// previous campaign if one is incomplete, which you can see by interrupting
// it (Ctrl-C / kill -9) partway through.
#include <cstdio>
#include <filesystem>
#include <memory>

#include "avd/quorum_executor.h"
#include "campaign/dedup.h"
#include "campaign/journal.h"
#include "campaign/runner.h"

using namespace avd;

int main() {
  const std::string dir = "campaign-demo";

  campaign::CampaignOptions options;
  options.seed = 2011;
  options.totalTests = 120;
  options.workers = 4;
  options.outDir = dir;
  options.system = "quorum";
  options.checkpointEvery = 10;

  campaign::CampaignRunner runner(
      [] {
        return std::make_unique<core::QuorumApiExecutor>(
            core::makeQuorumApiHyperspace());
      },
      options);

  // Resume when an earlier (possibly killed) campaign left a manifest and
  // has budget remaining; otherwise start fresh.
  bool resuming = false;
  if (const auto manifest = campaign::loadManifest(dir)) {
    const auto checkpoint = campaign::loadCheckpoint(dir);
    resuming = !checkpoint || checkpoint->completed < manifest->totalTests;
    if (!resuming) std::filesystem::remove_all(dir);
  }
  std::printf("%s campaign in ./%s (%zu tests, %zu workers)\n",
              resuming ? "resuming" : "starting", dir.c_str(),
              options.totalTests, options.workers);

  const campaign::CampaignResult result =
      resuming ? runner.resume() : runner.run();

  std::printf("\nexecuted %zu scenarios, %zu failed, %zu timed out\n",
              result.executed, result.failed, result.timedOut);
  std::printf("max impact %.3f\n\n", result.maxImpact);

  // The triage view: a long campaign rediscovers the same attack over and
  // over; dedup reports each *behaviorally distinct* vulnerability once.
  const core::Hyperspace space = core::makeQuorumApiHyperspace();
  std::printf("%zu distinct vulnerability class(es):\n",
              result.classes.size());
  for (const campaign::VulnClass& cls : result.classes) {
    std::printf("  %3zu hit(s), best %.3f:  %s\n", cls.count,
                cls.exemplar.outcome.impact,
                campaign::signatureLabel(space, cls.signature).c_str());
  }

  std::printf(
      "\ntry: kill this process mid-run and start it again — the journal\n"
      "in ./%s replays and the campaign continues where it stopped.\n",
      dir.c_str());
  return 0;
}
