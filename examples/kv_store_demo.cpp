// A replicated key-value store on PBFT — the application developer's view,
// plus an API assessment with AVD (§2: the platform "can be used ... to
// evaluate an Application Programming Interface before deployment").
//
// Part 1 runs a KV workload through a healthy deployment and checks that
// all replicas converge to the same store contents. Part 2 turns AVD loose
// on the same deployment to ask: how much damage can one faulty client of
// this API do?
//
// Build & run:  ./build/examples/kv_store_demo
#include <cstdio>
#include <string>

#include "avd/controller.h"
#include "avd/pbft_executor.h"
#include "pbft/deployment.h"

using namespace avd;

int main() {
  // --- Part 1: the replicated KV store under an honest workload -----------
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  config.service = pbft::ServiceKind::kKv;
  config.correctClients = 8;
  config.warmup = sim::msec(200);
  config.measure = sim::sec(2);
  config.seed = 123;
  // Each client PUTs to its own key space: op i is PUT("k<i%32>", "v<i>").
  config.correctClientBehavior.opGenerator = [](util::RequestId i) {
    return pbft::KvService::encodePut("k" + std::to_string(i % 32),
                                      "v" + std::to_string(i));
  };

  pbft::Deployment deployment(config);
  const pbft::RunResult result = deployment.run();
  std::printf("honest KV workload: %.1f req/s, avg latency %.1f ms\n",
              result.throughputRps, result.avgLatencySec * 1e3);

  bool converged = true;
  const std::uint64_t digest0 =
      deployment.replica(0).service().stateDigest();
  for (std::uint32_t r = 1; r < deployment.replicaCount(); ++r) {
    if (deployment.replica(r).service().stateDigest() != digest0) {
      converged = false;
    }
  }
  std::printf("replica state digests %s (0x%llx)\n",
              converged ? "AGREE" : "DIVERGE",
              static_cast<unsigned long long>(digest0));

  // --- Part 2: assess the API with AVD ------------------------------------
  std::printf("\nassessing the KV API against one faulty client...\n");
  core::Hyperspace space;
  space.add(core::Dimension::grayBitmask("mac_mask", 12));
  core::PbftExecutorOptions options;
  options.service = pbft::ServiceKind::kKv;
  options.defaultCorrectClients = 8;
  options.measure = sim::msec(1500);
  core::PbftAttackExecutor executor(std::move(space), options);
  core::Controller controller(executor,
                              core::defaultPlugins(executor.space()),
                              core::ControllerOptions{}, 321);
  controller.runTests(30);

  std::printf("30 tests: max impact %.3f", controller.maxImpact());
  if (const auto best = controller.best()) {
    std::printf(" (mask 0x%llx -> %.1f req/s)",
                static_cast<unsigned long long>(
                    executor.space().valueOf(best->point, "mac_mask", 0)),
                best->outcome.throughputRps);
  }
  std::printf(
      "\nverdict: the ordering layer, not the KV semantics, is the attack\n"
      "surface — one faulty client of this API can starve all others.\n");
  return converged ? 0 : 1;
}
