// The slow-primary vulnerability AVD discovered (paper §6).
//
// PBFT replicas guard liveness with a view-change timer for client requests,
// but the implementation keeps ONE timer per replica, cleared whenever any
// directly-received request executes. A malicious primary therefore only
// has to execute a single request per timer period (5 s by default) to keep
// every backup's timer perpetually reset while starving everyone else:
// 0.2 requests/second. Add a colluding client whose requests are the only
// ones served and the useful throughput is exactly zero — forever, because
// the timer never fires and the primary is never deposed.
//
// Build & run:  ./build/examples/slow_primary_demo
#include <cstdio>

#include "faultinject/behaviors.h"
#include "pbft/deployment.h"

using namespace avd;

namespace {

void runCase(const char* label, std::uint32_t clients, bool colluding,
             bool perRequestTimers) {
  const pbft::RunResult result = pbft::runScenario(
      fi::makeSlowPrimaryScenario(clients, colluding, perRequestTimers, 7));
  std::printf("%-44s %10.2f req/s  (correct done %6llu, colluder done %5llu, "
              "view %llu)\n",
              label, result.throughputRps,
              static_cast<unsigned long long>(result.correctCompleted),
              static_cast<unsigned long long>(result.maliciousCompleted),
              static_cast<unsigned long long>(result.maxView));
}

}  // namespace

int main() {
  std::printf(
      "PBFT f=1, 10 correct clients, default 5 s request timer, 30 s run\n\n");

  runCase("single shared timer, honest primary:", 10, false, true);
  runCase("single shared timer, slow primary:", 10, false, false);
  runCase("single shared timer, slow primary + colluder:", 10, true, false);
  runCase("per-request timers (fix), slow primary + colluder:", 10, true,
          true);

  std::printf(
      "\nthe second row is the paper's 0.2 req/s (one request per 5 s\n"
      "period); the third is the total-starvation variant (useful\n"
      "throughput exactly 0 while the colluder is served happily); the\n"
      "fourth shows the fix — per-request timers depose the slow primary\n"
      "after one period and throughput snaps back. Aardvark prevents the\n"
      "same attack by enforcing minimum primary throughput.\n");
  return 0;
}
