// Assessing a storage API with AVD before deployment (§2).
//
// You built a quorum-replicated KV store. It is fast, it survives two
// crashed replicas, your integration tests are green. AVD's question: what
// can one malicious *participant* do through the API you are about to ship?
//
// Build & run:  ./build/examples/api_assessment
#include <cstdio>

#include "avd/controller.h"
#include "avd/quorum_executor.h"
#include "quorum/deployment.h"

using namespace avd;

int main() {
  // First, the view your own tests give you: healthy numbers.
  quorum::QuorumConfig config;
  config.replicas = 5;
  config.readQuorum = 3;
  config.writeQuorum = 3;
  config.honestClients = 8;
  config.seed = 99;
  const quorum::QuorumResult healthy = quorum::runQuorumScenario(config);
  std::printf("healthy store: %.0f ops/s, %.1f ms avg latency, "
              "%.0f%% stale reads\n",
              healthy.opsPerSec, healthy.avgLatencySec * 1e3,
              healthy.staleFraction * 100);

  // Now AVD's view. This assessment asks specifically what one malicious
  // CLIENT can do through the public API, so the space only has the
  // client-side knobs: timestamp inflation and target spread.
  core::Hyperspace space;
  space.add(core::Dimension::range("ts_inflation_log2", 0, 40, 1));
  space.add(core::Dimension::range("victim_keys", 1, 8, 1));
  core::QuorumApiExecutor executor(std::move(space), {});
  core::Controller avd(executor, core::defaultPlugins(executor.space()),
                       core::ControllerOptions{}, 99);
  avd.runTests(30);

  std::printf("\nAVD, 30 tests later: max impact %.2f\n", avd.maxImpact());
  if (const auto best = avd.best()) {
    std::printf("worst finding: inflation 2^%lld us over %lld keys\n",
                static_cast<long long>(executor.space().valueOf(
                    best->point, "ts_inflation_log2", -1)),
                static_cast<long long>(executor.space().valueOf(
                    best->point, "victim_keys", -1)));
    std::printf("while the attack runs, throughput still reads %.0f ops/s — "
                "your dashboards stay green.\n",
                best->outcome.throughputRps);
  }

  std::printf(
      "\nlesson: the API accepts client-supplied timestamps for last-write-\n"
      "wins reconciliation, so any client can shadow any key forever. Fix\n"
      "candidates: server-assigned timestamps, per-key ACLs, or bounding\n"
      "accepted clock skew.\n");
  return 0;
}
