// avd_cli — command-line front end to the AVD platform.
//
//   avd_cli explore --system pbft|pbft-churn|pbft-flood|pbft-twins|quorum
//                   --strategy avd|random|genetic
//                   [--tests N] [--seed S] [--csv FILE] [--json FILE]
//                   [--threshold T]
//       Run an exploration against the chosen target system and print (or
//       export) the per-test history and summary.
//
//   avd_cli attack --name NAME [--clients N] [--seed S]
//                  [--rate R] [--bytes B] [--kind K] [--target T]
//       Replay one of the named, known attack scenarios and print its
//       measured damage. `avd_cli list` shows the names. The flood
//       attacks take --rate/--bytes/--kind/--target overrides.
//
//   avd_cli campaign [--system pbft|pbft-churn|pbft-flood|pbft-twins|quorum]
//                    [--tests N] [--seed S]
//                    [--workers W] [--out DIR] [--resume DIR]
//                    [--checkpoint-every N] [--timeout-ms MS] [--min-impact X]
//       Run AVD exploration as a resumable, parallel campaign: W executor
//       workers, an append-only journal + checkpoint in DIR, and a
//       deduplicated vulnerability-class report at the end. `--resume DIR`
//       continues a killed campaign exactly where its journal stops.
//
//   avd_cli fleet [--system ...] [--tests N] [--seed S]
//                 [--spawn W] [--remote R] [--batch B] [--out DIR]
//                 [--resume DIR] [--checkpoint-every N] [--timeout-ms MS]
//                 [--min-impact X] [--heartbeat-ms MS] [--max-respawns N]
//                 [--bind ADDR[:PORT]] [--allow-any-bind 1]
//       Multi-process campaign: this process becomes the coordinator, owns
//       the controller and journal, and spawns W fleet-worker child
//       processes (plus accepts R remote workers over loopback TCP). A
//       crashed or wedged worker is killed, respawned with capped backoff,
//       and its in-flight scenarios are re-executed elsewhere. SIGTERM
//       drains gracefully. `avd_cli campaign --resume DIR` also recognizes
//       fleet campaign directories and resumes them here.
//
//   avd_cli fleet-worker [--connect HOST:PORT]
//       Worker mode: executes scenarios for a coordinator. Spawned workers
//       inherit their socket on fd 3; remote workers pass --connect with
//       the coordinator's listen port.
//
//   avd_cli power [--budget N] [--threshold T] [--seeds a,b,c]
//       The §4 attacker-power ladder.
//
//   avd_cli list
//       Enumerate systems, strategies and named attacks.
//
// Unknown flags are errors (exit status 2), not silently ignored.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "avd/attacker_power.h"
#include "avd/controller.h"
#include "avd/explorers.h"
#include "avd/genetic.h"
#include "avd/pbft_executor.h"
#include "avd/quorum_executor.h"
#include "avd/report.h"
#include "campaign/dedup.h"
#include "campaign/fleet/coordinator.h"
#include "campaign/fleet/worker.h"
#include "campaign/journal.h"
#include "campaign/runner.h"
#include "common/proc.h"
#include "faultinject/behaviors.h"
#include "faultinject/churn.h"
#include "faultinject/flood.h"
#include "pbft/deployment.h"

using namespace avd;

namespace {

/// Minimal --flag VALUE parser; flags may appear in any order. Every
/// command declares its flag vocabulary: a flag outside it (or a flag
/// without a value) is a usage error, so a typo like `--seeed 7` fails
/// loudly instead of silently exploring with the default seed.
class Args {
 public:
  Args(int argc, char** argv, int firstFlag,
       std::initializer_list<const char*> allowed) {
    for (int i = firstFlag; i < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      const std::string key = argv[i] + 2;
      const bool known =
          std::any_of(allowed.begin(), allowed.end(),
                      [&](const char* flag) { return key == flag; });
      if (!known) {
        std::fprintf(stderr, "unknown flag '--%s' for this command\n",
                     key.c_str());
        std::exit(2);
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for '--%s'\n", key.c_str());
        std::exit(2);
      }
      values_[key] = argv[i + 1];
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  long long getInt(const std::string& key, long long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double getDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: avd_cli explore|campaign|fleet|attack|power|list "
      "[--flag value ...]\n"
      "  explore      --system pbft|pbft-churn|pbft-flood|pbft-twins|"
      "quorum\n"
      "               --strategy avd|random|genetic\n"
      "               --tests N  --seed S  --threshold T  --csv FILE "
      "--json FILE\n"
      "  campaign     --system pbft|pbft-churn|pbft-flood|pbft-twins|"
      "quorum\n"
      "               --tests N  --seed S  --workers W\n"
      "               --out DIR  --resume DIR  --checkpoint-every N\n"
      "               --timeout-ms MS  --min-impact X\n"
      "  fleet        --system ...  --tests N  --seed S\n"
      "               --spawn W  --remote R  --batch B\n"
      "               --out DIR  --resume DIR  --checkpoint-every N\n"
      "               --timeout-ms MS  --min-impact X  --heartbeat-ms MS\n"
      "               --max-respawns N  --bind ADDR[:PORT]\n"
      "               --allow-any-bind 1   (multi-process campaign; SIGTERM\n"
      "               drains gracefully, workers are respawned on crash;\n"
      "               the remote-worker listener stays on 127.0.0.1 unless\n"
      "               --bind names another interface — 0.0.0.0 additionally\n"
      "               needs --allow-any-bind 1)\n"
      "  fleet-worker --connect HOST:PORT   (worker mode; spawned workers\n"
      "               inherit their socket on fd 3)\n"
      "  attack       --name NAME  --clients N  --seed S\n"
      "               --rate R  --bytes B  --kind K  --target T  "
      "(flood only)\n"
      "  power        --budget N  --threshold T  --seeds a,b,c\n"
      "unknown flags are errors; run 'avd_cli list' for systems, strategies\n"
      "and attacks\n");
  return 2;
}

std::unique_ptr<core::ScenarioExecutor> makeExecutor(
    const std::string& system, std::uint64_t seed) {
  if (system == "pbft") {
    core::PbftExecutorOptions options;
    options.pbft.requestTimeout = sim::msec(400);
    options.pbft.viewChangeTimeout = sim::msec(400);
    options.clientRetx = sim::msec(100);
    options.link = sim::LinkModel{sim::msec(5), sim::usec(500)};
    options.warmup = sim::msec(400);
    options.measure = sim::msec(3000);
    options.baseSeed = seed;
    return std::make_unique<core::PbftAttackExecutor>(
        core::makePaperMacHyperspace(), options);
  }
  if (system == "pbft-churn") {
    // Same deployment as "pbft", but the hyperspace explores crash-restart
    // timing instead of MAC corruption: which replica to cycle, when, for
    // how long, and at what repeat period.
    core::PbftExecutorOptions options;
    options.pbft.requestTimeout = sim::msec(400);
    options.pbft.viewChangeTimeout = sim::msec(400);
    options.clientRetx = sim::msec(100);
    options.link = sim::LinkModel{sim::msec(5), sim::usec(500)};
    options.warmup = sim::msec(400);
    options.measure = sim::msec(3000);
    options.baseSeed = seed;
    return std::make_unique<core::PbftAttackExecutor>(
        core::makeChurnHyperspace(), options);
  }
  if (system == "pbft-flood" || system == "pbft-flood-defended") {
    // Resource-exhaustion hyperspace over a bounded-ingress deployment; the
    // -defended variant runs the same space against the admission-control +
    // fair-scheduling profile (the ablation pair).
    core::PbftExecutorOptions options =
        core::makeFloodExecutorOptions(system == "pbft-flood-defended");
    options.baseSeed = seed;
    return std::make_unique<core::PbftAttackExecutor>(
        core::makeFloodHyperspace(), options);
  }
  if (system == "pbft-twins") {
    // Safety-hunting hyperspace: twinned identities behind a deterministic
    // partition schedule. A shorter measure window than the liveness
    // systems — divergence shows up within the first virtual second — and
    // a small client population keep each scenario cheap.
    core::PbftExecutorOptions options;
    options.pbft.requestTimeout = sim::msec(400);
    options.pbft.viewChangeTimeout = sim::msec(400);
    options.clientRetx = sim::msec(100);
    options.link = sim::LinkModel{sim::msec(5), sim::usec(500)};
    options.warmup = sim::msec(400);
    options.measure = sim::msec(2000);
    options.baseSeed = seed;
    return std::make_unique<core::PbftAttackExecutor>(
        core::makeTwinsHyperspace(), options);
  }
  if (system == "quorum") {
    core::QuorumExecutorOptions options;
    options.baseSeed = seed;
    return std::make_unique<core::QuorumApiExecutor>(
        core::makeQuorumApiHyperspace(), options);
  }
  std::fprintf(
      stderr,
      "unknown system '%s' (pbft|pbft-churn|pbft-flood|pbft-twins|quorum)\n",
      system.c_str());
  std::exit(2);
}

int cmdExplore(const Args& args) {
  const std::string system = args.get("system", "pbft");
  const std::string strategy = args.get("strategy", "avd");
  const auto tests = static_cast<std::size_t>(args.getInt("tests", 60));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2011));
  const double threshold = args.getDouble("threshold", 0.9);

  const auto executor = makeExecutor(system, seed);
  std::vector<core::TestRecord> history;

  std::printf("exploring %s with strategy '%s', %zu tests, seed %llu...\n",
              system.c_str(), strategy.c_str(), tests,
              static_cast<unsigned long long>(seed));
  if (strategy == "avd") {
    core::Controller controller(*executor,
                                core::defaultPlugins(executor->space()),
                                core::ControllerOptions{}, seed);
    controller.runTests(tests);
    history = controller.history();
  } else if (strategy == "random") {
    core::Controller controller = core::makeRandomExplorer(*executor, seed);
    controller.runTests(tests);
    history = controller.history();
  } else if (strategy == "genetic") {
    core::GeneticExplorer genetic(*executor,
                                  core::defaultPlugins(executor->space()),
                                  core::GeneticOptions{}, seed);
    genetic.runTests(tests);
    history = genetic.history();
  } else {
    std::fprintf(stderr, "unknown strategy '%s' (avd|random|genetic)\n",
                 strategy.c_str());
    return 2;
  }

  const std::string summary =
      core::summaryJson(executor->space(), history, threshold);
  std::fputs(summary.c_str(), stdout);

  const std::string csvPath = args.get("csv", "");
  if (!csvPath.empty()) {
    if (!core::writeFile(csvPath,
                         core::historyCsv(executor->space(), history))) {
      std::fprintf(stderr, "failed to write %s\n", csvPath.c_str());
      return 1;
    }
    std::printf("history written to %s\n", csvPath.c_str());
  }
  const std::string jsonPath = args.get("json", "");
  if (!jsonPath.empty() && !core::writeFile(jsonPath, summary)) {
    std::fprintf(stderr, "failed to write %s\n", jsonPath.c_str());
    return 1;
  }
  return 0;
}

/// Shared tail of `campaign` and `fleet`: summary lines, the deduplicated
/// class report, and classes.json. Returns the process exit status.
int reportCampaignResult(const campaign::CampaignResult& result,
                         const std::string& system, std::uint64_t seed,
                         const std::string& outDir) {
  std::printf("executed %zu scenarios (%zu failed, %zu timed out)%s\n",
              result.executed, result.failed, result.timedOut,
              result.aborted ? " — ABORTED: every worker wedged" : "");
  if (result.workerCrashes + result.respawns + result.reassigned > 0) {
    std::printf(
        "fleet: %zu worker crash(es), %zu respawn(s), %zu scenario(s) "
        "reassigned\n",
        result.workerCrashes, result.respawns, result.reassigned);
  }
  std::printf("max impact %.3f\n", result.maxImpact);
  std::printf("%zu distinct vulnerability class(es):\n",
              result.classes.size());

  const auto executor = makeExecutor(system, seed);
  for (const campaign::VulnClass& cls : result.classes) {
    std::printf("  [%4zu hits, best %.3f at test %zu] %s\n", cls.count,
                cls.exemplar.outcome.impact, cls.exemplarTest,
                campaign::signatureLabel(executor->space(), cls.signature)
                    .c_str());
  }
  if (!outDir.empty()) {
    const std::string classesPath = outDir + "/classes.json";
    if (core::writeFile(classesPath, campaign::vulnClassesJson(
                                         executor->space(), result.classes))) {
      std::printf("journal/checkpoint/classes written to %s\n",
                  outDir.c_str());
    }
  }
  return result.aborted ? 1 : 0;
}

/// Set by the SIGTERM/SIGINT handler while a fleet coordinator runs; the
/// coordinator polls it and drains gracefully.
std::atomic<bool> gFleetDrain{false};

/// Runs (or resumes) a fleet campaign. `campaign --resume` delegates here
/// when the manifest says mode="fleet", so either spelling resumes a fleet
/// directory. On resume the manifest overrides every flag-derived option.
int runFleetCampaign(const std::string& resumeDir,
                     campaign::fleet::FleetOptions options, std::string system,
                     std::uint64_t seed) {
  if (!resumeDir.empty()) {
    const auto manifest = campaign::loadManifest(resumeDir);
    if (!manifest) {
      std::fprintf(stderr, "no campaign manifest in '%s'\n",
                   resumeDir.c_str());
      return 1;
    }
    if (manifest->mode != "fleet") {
      std::fprintf(stderr,
                   "'%s' is a single-process campaign; use 'avd_cli campaign "
                   "--resume %s'\n",
                   resumeDir.c_str(), resumeDir.c_str());
      return 2;
    }
    system = manifest->system;
    seed = manifest->seed;
    options.campaign.outDir = resumeDir;
    // resume() re-reads the manifest for the full option set; spawn and
    // remoteSlots matter here because the constructor binds the TCP
    // listener before resume() runs.
    options.spawn = static_cast<std::size_t>(manifest->spawn);
    options.remoteSlots =
        manifest->workers > manifest->spawn
            ? static_cast<std::size_t>(manifest->workers - manifest->spawn)
            : 0;
    options.campaign.totalTests =
        static_cast<std::size_t>(manifest->totalTests);
    options.batch = static_cast<std::size_t>(manifest->batch);
  }
  if (system != "pbft" && system != "pbft-churn" && system != "pbft-flood" &&
      system != "pbft-flood-defended" && system != "pbft-twins" &&
      system != "quorum") {
    std::fprintf(
        stderr,
        "unknown system '%s' (pbft|pbft-churn|pbft-flood|pbft-twins|quorum)\n",
        system.c_str());
    return 2;
  }
  options.campaign.seed = seed;
  options.campaign.system = system;

  options.launcher = [](std::size_t) {
    return util::spawnWithSocket({util::selfExePath(), "fleet-worker"});
  };
  gFleetDrain.store(false);
  options.drainFlag = &gFleetDrain;
  util::installSignalHandler(SIGTERM, [](int) { gFleetDrain.store(true); });
  util::installSignalHandler(SIGINT, [](int) { gFleetDrain.store(true); });

  const std::size_t spawn = options.spawn;
  const std::size_t remote = options.remoteSlots;
  const std::string bindAddr = options.bindAddr;
  const std::size_t tests = options.campaign.totalTests;
  const std::string outDir = options.campaign.outDir;
  const std::string where = outDir.empty() ? "" : ", dir " + outDir;

  campaign::CampaignResult result;
  try {
    campaign::fleet::FleetCoordinator coordinator(
        std::move(options), [system, seed] { return makeExecutor(system, seed); });
    std::printf(
        "%s fleet campaign on %s: %zu tests, %zu spawned + %zu remote "
        "worker(s), seed %llu%s\n",
        resumeDir.empty() ? "starting" : "resuming", system.c_str(), tests,
        spawn, remote, static_cast<unsigned long long>(seed), where.c_str());
    if (coordinator.listenPort() != 0) {
      std::printf(
          "remote workers: avd_cli fleet-worker --connect %s:%u\n",
          bindAddr.c_str(), coordinator.listenPort());
    }
    result = resumeDir.empty() ? coordinator.run() : coordinator.resume();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet campaign failed: %s\n", e.what());
    return 1;
  }
  return reportCampaignResult(result, system, seed, outDir);
}

int cmdFleet(const Args& args) {
  campaign::fleet::FleetOptions options;
  options.campaign.totalTests =
      static_cast<std::size_t>(args.getInt("tests", 200));
  options.campaign.outDir = args.get("out", "");
  options.campaign.checkpointEvery =
      static_cast<std::size_t>(args.getInt("checkpoint-every", 16));
  options.campaign.scenarioTimeoutMs =
      static_cast<std::uint64_t>(args.getInt("timeout-ms", 0));
  options.campaign.dedupMinImpact = args.getDouble("min-impact", 0.5);
  options.spawn = static_cast<std::size_t>(args.getInt("spawn", 2));
  options.remoteSlots = static_cast<std::size_t>(args.getInt("remote", 0));
  options.batch = static_cast<std::size_t>(args.getInt("batch", 4));
  options.heartbeatMs =
      static_cast<std::uint64_t>(args.getInt("heartbeat-ms", 200));
  options.maxWorkerRespawns =
      static_cast<std::size_t>(args.getInt("max-respawns", 8));
  const std::string bind = args.get("bind", "");
  if (!bind.empty()) {
    // ADDR or ADDR:PORT; PORT 0 (or absent) keeps the ephemeral default.
    const std::size_t colon = bind.rfind(':');
    if (colon == std::string::npos) {
      options.bindAddr = bind;
    } else {
      options.bindAddr = bind.substr(0, colon);
      options.bindPort =
          static_cast<std::uint16_t>(std::atoll(bind.c_str() + colon + 1));
    }
    if (options.bindAddr == "0.0.0.0" &&
        args.getInt("allow-any-bind", 0) == 0) {
      std::fprintf(stderr,
                   "refusing to bind 0.0.0.0: the worker protocol is "
                   "unauthenticated; pass --allow-any-bind 1 to expose it\n");
      return 2;
    }
  }
  return runFleetCampaign(
      args.get("resume", ""), std::move(options), args.get("system", "quorum"),
      static_cast<std::uint64_t>(args.getInt("seed", 2011)));
}

int cmdFleetWorker(const Args& args) {
  int fd = util::kChildSocketFd;
  const std::string connect = args.get("connect", "");
  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                   connect.c_str());
      return campaign::fleet::kWorkerExitBadConfig;
    }
    const std::string host = connect.substr(0, colon);
    const auto port = static_cast<std::uint16_t>(
        std::atoll(connect.c_str() + colon + 1));
    const auto sock = util::connectTcp(host, port);
    if (!sock) {
      std::fprintf(stderr, "cannot connect to coordinator at %s\n",
                   connect.c_str());
      return campaign::fleet::kWorkerExitBadConfig;
    }
    fd = *sock;
  }
  return campaign::fleet::runWorker(
      fd, [](const std::string& system, std::uint64_t seed) {
        return makeExecutor(system, seed);
      });
}

int cmdCampaign(const Args& args) {
  const std::string resumeDir = args.get("resume", "");
  std::string system = args.get("system", "quorum");
  std::uint64_t seed = static_cast<std::uint64_t>(args.getInt("seed", 2011));

  campaign::CampaignOptions options;
  options.totalTests = static_cast<std::size_t>(args.getInt("tests", 200));
  options.workers = static_cast<std::size_t>(args.getInt("workers", 1));
  options.outDir = args.get("out", "");
  options.checkpointEvery =
      static_cast<std::size_t>(args.getInt("checkpoint-every", 16));
  options.scenarioTimeoutMs =
      static_cast<std::uint64_t>(args.getInt("timeout-ms", 0));
  options.dedupMinImpact = args.getDouble("min-impact", 0.5);

  if (!resumeDir.empty()) {
    // The manifest pins system/seed/budget; flags are ignored on resume.
    const auto manifest = campaign::loadManifest(resumeDir);
    if (!manifest) {
      std::fprintf(stderr, "no campaign manifest in '%s'\n",
                   resumeDir.c_str());
      return 1;
    }
    if (manifest->mode == "fleet") {
      // A fleet directory resumes under the fleet coordinator, whichever
      // command the user typed; the manifest supplies every option.
      return runFleetCampaign(resumeDir, campaign::fleet::FleetOptions{},
                              manifest->system, manifest->seed);
    }
    system = manifest->system;
    seed = manifest->seed;
    options.outDir = resumeDir;
    options.totalTests = manifest->totalTests;
    options.workers = manifest->workers;
  }
  if (system != "pbft" && system != "pbft-churn" && system != "pbft-flood" &&
      system != "pbft-flood-defended" && system != "pbft-twins" &&
      system != "quorum") {
    std::fprintf(
        stderr,
        "unknown system '%s' (pbft|pbft-churn|pbft-flood|pbft-twins|quorum)\n",
        system.c_str());
    return 2;
  }
  options.seed = seed;
  options.system = system;

  campaign::CampaignRunner runner(
      [system, seed] { return makeExecutor(system, seed); }, options);

  const std::string where =
      options.outDir.empty() ? "" : ", dir " + options.outDir;
  std::printf("%s campaign on %s: %zu tests, %zu worker(s), seed %llu%s\n",
              resumeDir.empty() ? "starting" : "resuming", system.c_str(),
              options.totalTests, options.workers,
              static_cast<unsigned long long>(seed), where.c_str());

  campaign::CampaignResult result;
  try {
    result = resumeDir.empty() ? runner.run() : runner.resume();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }
  return reportCampaignResult(result, system, seed, options.outDir);
}

int cmdAttack(const Args& args) {
  const std::string name = args.get("name", "big-mac");
  const auto clients = static_cast<std::uint32_t>(args.getInt("clients", 20));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 17));

  pbft::DeploymentConfig config;
  if (name == "big-mac") {
    config = fi::makeBigMacScenario(clients, fi::bigMacMaskValidOnlyFor(0, 4),
                                    seed);
  } else if (name == "big-mac-fixed") {
    config = fi::makeBigMacScenario(clients, fi::bigMacMaskValidOnlyFor(0, 4),
                                    seed);
    config.pbft.viewChangeCrashBug = false;
  } else if (name == "rotating") {
    config = fi::makeBigMacScenario(clients, fi::rotatingBigMacMask(), seed);
  } else if (name == "slow-primary") {
    config = fi::makeSlowPrimaryScenario(clients, false, false, seed);
  } else if (name == "colluding") {
    config = fi::makeSlowPrimaryScenario(clients, true, false, seed);
  } else if (name == "aardvark-guard") {
    config = fi::makeSlowPrimaryScenario(clients, true, false, seed);
    config.pbft.primaryThroughputGuard = true;
    config.pbft.guardWindow = sim::sec(2);
  } else if (name == "churn") {
    // No message-level attack: repeated crash-restart cycles against one
    // backup exercise durable-state recovery and the rejoin protocol.
    config = fi::makeBigMacScenario(clients, 0, seed);
  } else if (name == "flood" || name == "flood-defended") {
    // Resource exhaustion against a bounded-ingress deployment; the
    // -defended variant enables admission control + fair scheduling.
    config = fi::makeBigMacScenario(clients, 0, seed);
    const core::PbftExecutorOptions bounded = core::makeFloodExecutorOptions();
    config.link.ingressCapacity = bounded.link.ingressCapacity;
    config.link.ingressByteBudget = bounded.link.ingressByteBudget;
    config.link.ingressServiceTime = bounded.link.ingressServiceTime;
    if (name == "flood-defended") {
      fi::enableFloodDefenses(config.pbft);
      config.link.fairIngress = true;
    }
  } else if (name == "baseline") {
    config = fi::makeBigMacScenario(clients, 0, seed);
  } else {
    std::fprintf(stderr, "unknown attack '%s'; see 'avd_cli list'\n",
                 name.c_str());
    return 2;
  }

  pbft::Deployment deployment(config);
  std::unique_ptr<fi::FloodClient> flood;
  if (name == "flood" || name == "flood-defended") {
    fi::FloodOptions floodOptions;
    const auto kind = args.getInt("kind", 1);
    floodOptions.kind =
        kind >= 1 && kind <= 4 ? static_cast<fi::FloodKind>(kind)
                               : fi::FloodKind::kRequestSpam;
    const auto rate = args.getInt("rate", 16000);
    floodOptions.interval =
        rate > 0 ? std::max<sim::Time>(sim::sec(1) / rate, 1) : sim::msec(1);
    floodOptions.payloadBytes = static_cast<std::size_t>(
        std::max<long long>(args.getInt("bytes", 1), 1));
    const auto target = args.getInt("target", -1);
    floodOptions.target =
        target >= 0 &&
                target < static_cast<long long>(config.pbft.replicaCount())
            ? static_cast<util::NodeId>(target)
            : util::kNoNode;
    flood = std::make_unique<fi::FloodClient>(
        config.pbft.replicaCount() + config.totalClients(), config.pbft,
        &deployment.keychain(), floodOptions);
    deployment.network().registerNode(flood.get());
    flood->install();
  }
  std::shared_ptr<fi::ChurnFault> churn;
  if (name == "churn") {
    fi::ChurnFault::Options churnOptions;
    churnOptions.target = 1;
    churnOptions.firstCrash = sim::msec(500);
    churnOptions.downtime = sim::msec(400);
    churnOptions.period = sim::msec(1200);
    churn = std::make_shared<fi::ChurnFault>(&deployment.simulator(),
                                             &deployment.network(),
                                             churnOptions);
    churn->install();
  }
  const pbft::RunResult result = deployment.run();
  std::uint64_t crashed = 0;
  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    crashed += deployment.replica(r).stats().crashedOnViewChange;
  }
  std::printf("attack: %s, %u correct clients, seed %llu\n", name.c_str(),
              clients, static_cast<unsigned long long>(seed));
  std::printf("  throughput      %12.2f req/s\n", result.throughputRps);
  std::printf("  avg latency     %12.4f s (p50 %.4f, p99 %.4f)\n",
              result.avgLatencySec, result.p50LatencySec,
              result.p99LatencySec);
  std::printf("  correct done    %12llu\n",
              static_cast<unsigned long long>(result.correctCompleted));
  std::printf("  malicious done  %12llu\n",
              static_cast<unsigned long long>(result.maliciousCompleted));
  std::printf("  view changes    %12llu (max view %llu)\n",
              static_cast<unsigned long long>(result.viewChangesInitiated),
              static_cast<unsigned long long>(result.maxView));
  std::printf("  crashed replicas%12llu\n",
              static_cast<unsigned long long>(crashed));
  if (result.restarts > 0) {
    std::printf("  restarts        %12llu\n",
                static_cast<unsigned long long>(result.restarts));
    std::printf("  recovery latency%12.4f s\n", result.recoveryLatencySec);
  }
  if (flood != nullptr) {
    std::printf("  flood sent      %12llu\n",
                static_cast<unsigned long long>(flood->messagesSent()));
    std::printf("  queue drops     %12llu (peak depth %llu)\n",
                static_cast<unsigned long long>(result.queueDrops),
                static_cast<unsigned long long>(result.peakQueueDepth));
    std::printf("  quota drops     %12llu\n",
                static_cast<unsigned long long>(result.quotaDrops));
    std::printf("  replays stopped %12llu\n",
                static_cast<unsigned long long>(result.replaysSuppressed));
  }
  std::printf("  safety violated %12s\n",
              result.safetyViolated ? "YES (BUG!)" : "no");
  return result.safetyViolated ? 1 : 0;
}

int cmdPower(const Args& args) {
  const auto budget = static_cast<std::size_t>(args.getInt("budget", 120));
  const double threshold = args.getDouble("threshold", 0.95);
  std::vector<std::uint64_t> seeds;
  {
    std::string list = args.get("seeds", "11,22,33");
    std::size_t start = 0;
    while (start < list.size()) {
      const std::size_t comma = list.find(',', start);
      seeds.push_back(std::strtoull(
          list.substr(start, comma - start).c_str(), nullptr, 10));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  std::printf("%-16s %8s %10s %14s\n", "power level", "found", "median",
              "strong frac");
  for (const core::AttackerPower power :
       {core::AttackerPower::kBlindFuzz, core::AttackerPower::kGrayFeedback,
        core::AttackerPower::kProtocolAware}) {
    std::vector<std::size_t> finds;
    double strongFraction = 0;
    int found = 0;
    for (const std::uint64_t seed : seeds) {
      const core::PowerMeasurement measurement =
          core::measureAttackerPower(power, threshold, budget, seed);
      if (measurement.found) ++found;
      finds.push_back(measurement.testsToFind);
      strongFraction += measurement.strongFraction;
    }
    std::sort(finds.begin(), finds.end());
    std::printf("%-16s %5d/%zu %10zu %14.2f\n",
                core::powerName(power).c_str(), found, seeds.size(),
                finds[finds.size() / 2],
                strongFraction / static_cast<double>(seeds.size()));
  }
  return 0;
}

int cmdList() {
  std::printf(
      "systems:    pbft (MAC-corruption hyperspace, 204800 scenarios)\n"
      "            pbft-churn (crash-restart timing hyperspace)\n"
      "            pbft-flood (resource-exhaustion hyperspace over a\n"
      "                        bounded-ingress deployment; -defended runs\n"
      "                        the same space with the Aardvark profile)\n"
      "            pbft-twins (twinned-identity equivocation hyperspace;\n"
      "                        hunts safety violations, not liveness)\n"
      "            quorum (timestamp/victims/replica-behaviour space)\n"
      "strategies: avd (Algorithm 1), random, genetic\n"
      "attacks:    baseline        no attack, for reference numbers\n"
      "            big-mac         inconsistent authenticators -> view\n"
      "                            change -> historical crash bug\n"
      "            big-mac-fixed   same, against the repaired view change\n"
      "            rotating        stealth mask: ~10x slowdown, no alarms\n"
      "            slow-primary    one request per 5 s timer period\n"
      "            colluding       slow primary + colluding client: 0 req/s\n"
      "            aardvark-guard  colluding attack vs the throughput guard\n"
      "            churn           periodic crash-restart of one backup\n"
      "            flood           resource exhaustion (--kind 1 spam,\n"
      "                            2 replay storm, 3 oversized, 4 status\n"
      "                            amplify; --rate/--bytes/--target)\n"
      "            flood-defended  same flood vs admission control + fair\n"
      "                            scheduling + bounded queues\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "explore") {
    return cmdExplore(Args(argc, argv, 2,
                           {"system", "strategy", "tests", "seed",
                            "threshold", "csv", "json"}));
  }
  if (command == "campaign") {
    return cmdCampaign(Args(argc, argv, 2,
                            {"system", "tests", "seed", "workers", "out",
                             "resume", "checkpoint-every", "timeout-ms",
                             "min-impact"}));
  }
  if (command == "fleet") {
    return cmdFleet(Args(argc, argv, 2,
                         {"system", "tests", "seed", "spawn", "remote",
                          "batch", "out", "resume", "checkpoint-every",
                          "timeout-ms", "min-impact", "heartbeat-ms",
                          "max-respawns", "bind", "allow-any-bind"}));
  }
  if (command == "fleet-worker") {
    return cmdFleetWorker(Args(argc, argv, 2, {"connect"}));
  }
  if (command == "attack") {
    return cmdAttack(Args(argc, argv, 2,
                          {"name", "clients", "seed", "rate", "bytes", "kind",
                           "target"}));
  }
  if (command == "power") {
    return cmdPower(Args(argc, argv, 2, {"budget", "threshold", "seeds"}));
  }
  if (command == "list") return cmdList();
  return usage();
}
