#include "lexer.h"

#include <algorithm>
#include <cctype>

namespace avd::lint {
namespace {

bool identStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool identChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses an `avd-lint allow(naked-lock, unordered-iter)` directive out of
/// one comment's text and records it for `line` (and `line + 1` when the
/// comment stands alone on its line, so a directive can annotate the
/// statement below it).
void parseDirective(std::string_view comment, std::size_t line,
                    bool commentOwnsLine, const std::string& path,
                    Suppressions& out) {
  const auto tagPos = comment.find("avd-lint:");
  if (tagPos == std::string_view::npos) return;
  const auto allowPos = comment.find("allow(", tagPos);
  if (allowPos == std::string_view::npos) {
    out.errors.push_back({path, line, "bad-suppression",
                          "avd-lint directive without allow(...) clause",
                          false});
    return;
  }
  const auto close = comment.find(')', allowPos);
  if (close == std::string_view::npos) {
    out.errors.push_back({path, line, "bad-suppression",
                          "unterminated avd-lint allow(...) clause", false});
    return;
  }
  std::string_view list =
      comment.substr(allowPos + 6, close - (allowPos + 6));
  Directive directive;
  directive.line = line;
  directive.coveredLines.insert(line);
  if (commentOwnsLine) directive.coveredLines.insert(line + 1);
  std::size_t start = 0;
  while (start <= list.size()) {
    auto end = list.find(',', start);
    if (end == std::string_view::npos) end = list.size();
    std::string_view rule = list.substr(start, end - start);
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front()))) {
      rule.remove_prefix(1);
    }
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back()))) {
      rule.remove_suffix(1);
    }
    if (!rule.empty()) {
      if (rule != "*" && !isKnownRule(rule)) {
        out.errors.push_back({path, line, "bad-suppression",
                              "unknown rule '" + std::string(rule) +
                                  "' in avd-lint allow()",
                              false});
      } else {
        directive.rules.insert(std::string(rule));
        out.byLine[line].insert(std::string(rule));
        if (commentOwnsLine) out.byLine[line + 1].insert(std::string(rule));
      }
    }
    start = end + 1;
  }
  if (!directive.rules.empty()) {
    out.directives.push_back(std::move(directive));
  }
}

}  // namespace

LexResult lex(const std::string& path, std::string_view src) {
  LexResult out;
  std::size_t line = 1;
  bool lineHasCode = false;  // any token before a comment on this line?
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back({kind, std::move(text), line});
    lineHasCode = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      lineHasCode = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line (honoring continuations),
    // so macro bodies and #if branches can never double-declare symbols in
    // the index. Comments on the directive line are still harvested.
    if (c == '#' && !lineHasCode) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        // A comment opening on the directive line is handled by the main
        // loop so its directive text is not lost.
        if (src[i] == '/' && i + 1 < n &&
            (src[i + 1] == '/' || src[i + 1] == '*')) {
          break;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      parseDirective(src.substr(start, i - start), line, !lineHasCode, path,
                     out.suppressions);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t startLine = line;
      const bool ownsLine = !lineHasCode;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      parseDirective(src.substr(start, i - start), startLine, ownsLine, path,
                     out.suppressions);
      continue;
    }
    // Raw string literal: R"delim( ... )delim". A valid delimiter is at
    // most 16 chars and cannot contain space, parentheses, backslash,
    // quote, or newline (C++ [lex.string]); on a malformed prefix the 'R'
    // lexes as a plain identifier and the quote as an ordinary string, so
    // one bad literal can never swallow the rest of the file.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      bool wellFormed = true;
      while (j < n && src[j] != '(') {
        const char d = src[j];
        if (delim.size() >= 16 || d == ' ' || d == ')' || d == '\\' ||
            d == '"' || d == '\n') {
          wellFormed = false;
          break;
        }
        delim.push_back(d);
        ++j;
      }
      if (j >= n) wellFormed = false;
      if (!wellFormed) {
        push(TokKind::kIdent, "R");
        ++i;
        continue;
      }
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      const std::size_t stop = end == std::string_view::npos ? n : end + closer.size();
      line += static_cast<std::size_t>(
          std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                     src.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
      push(TokKind::kString, "<raw-string>");
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      push(quote == '"' ? TokKind::kString : TokKind::kChar, "<literal>");
      i = std::min(n, j + 1);
      continue;
    }
    if (identStart(c)) {
      std::size_t j = i;
      while (j < n && identChar(src[j])) ++j;
      push(TokKind::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (identChar(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
      ++j;
      }
      push(TokKind::kNumber, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    // Fused operators the rules pattern-match on.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      push(TokKind::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      push(TokKind::kPunct, "->");
      i += 2;
      continue;
    }
    if (c == '[' && i + 1 < n && src[i + 1] == '[') {
      push(TokKind::kPunct, "[[");
      i += 2;
      continue;
    }
    if (c == ']' && i + 1 < n && src[i + 1] == ']') {
      push(TokKind::kPunct, "]]");
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared token-stream helpers

const std::string kEmptyTokenText;

const std::string& text(const std::vector<Token>& toks, std::size_t i) {
  return i < toks.size() ? toks[i].text : kEmptyTokenText;
}

bool isIdent(const std::vector<Token>& toks, std::size_t i) {
  return i < toks.size() && toks[i].kind == TokKind::kIdent;
}

std::size_t skipBalanced(const std::vector<Token>& toks, std::size_t open,
                         const std::string& opener, const std::string& closer) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == opener) {
      ++depth;
    } else if (toks[i].text == closer) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

bool plainOrQualifiedBy(const std::vector<Token>& toks, std::size_t i,
                        const std::set<std::string>& namespaces) {
  if (i == 0) return true;
  const std::string& prev = toks[i - 1].text;
  if (prev == "." || prev == "->") return false;
  if (prev == "::") {
    return i >= 2 && namespaces.contains(toks[i - 2].text);
  }
  return true;
}

bool isCapConstant(const std::string& name) {
  return name.size() >= 2 && name[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(name[1]));
}

std::string lowered(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool pathEndsWith(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace avd::lint
