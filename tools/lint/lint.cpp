#include "lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <unordered_set>

namespace avd::lint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
//
// A C++-aware lexer that is just rich enough for the rules: it strips
// comments (harvesting suppression directives as it goes), understands
// string/char/raw-string literals so byte content can never fake a token,
// and keeps line numbers for diagnostics. Multi-char operators are only
// fused where a rule needs to see them as one unit (`::`, `->`, `[[`, `]]`).

enum class TokKind { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line;
};

struct Suppressions {
  // line -> rules allowed on that line ("*" = all rules).
  std::map<std::size_t, std::set<std::string>> byLine;
  // Malformed or unknown allow() directives found while lexing.
  std::vector<Finding> errors;
};

bool identStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool identChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses an `avd-lint: allow(naked-lock, unordered-iter)` directive out of
/// one comment's text and records it for `line` (and `line + 1` when the
/// comment stands alone on its line, so a directive can annotate the
/// statement below it).
void parseDirective(std::string_view comment, std::size_t line,
                    bool commentOwnsLine, const std::string& path,
                    Suppressions& out) {
  const auto tagPos = comment.find("avd-lint:");
  if (tagPos == std::string_view::npos) return;
  const auto allowPos = comment.find("allow(", tagPos);
  if (allowPos == std::string_view::npos) {
    out.errors.push_back({path, line, "bad-suppression",
                          "avd-lint directive without allow(...) clause",
                          false});
    return;
  }
  const auto close = comment.find(')', allowPos);
  if (close == std::string_view::npos) {
    out.errors.push_back({path, line, "bad-suppression",
                          "unterminated avd-lint allow(...) clause", false});
    return;
  }
  std::string_view list =
      comment.substr(allowPos + 6, close - (allowPos + 6));
  std::size_t start = 0;
  while (start <= list.size()) {
    auto end = list.find(',', start);
    if (end == std::string_view::npos) end = list.size();
    std::string_view rule = list.substr(start, end - start);
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front()))) {
      rule.remove_prefix(1);
    }
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back()))) {
      rule.remove_suffix(1);
    }
    if (!rule.empty()) {
      if (rule != "*" && !isKnownRule(rule)) {
        out.errors.push_back({path, line, "bad-suppression",
                              "unknown rule '" + std::string(rule) +
                                  "' in avd-lint allow()",
                              false});
      } else {
        out.byLine[line].insert(std::string(rule));
        if (commentOwnsLine) out.byLine[line + 1].insert(std::string(rule));
      }
    }
    start = end + 1;
  }
}

struct LexResult {
  std::vector<Token> tokens;
  Suppressions suppressions;
};

LexResult lex(const std::string& path, std::string_view src) {
  LexResult out;
  std::size_t line = 1;
  bool lineHasCode = false;  // any token before a comment on this line?
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back({kind, std::move(text), line});
    lineHasCode = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      lineHasCode = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      parseDirective(src.substr(start, i - start), line, !lineHasCode, path,
                     out.suppressions);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t startLine = line;
      const bool ownsLine = !lineHasCode;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      parseDirective(src.substr(start, i - start), startLine, ownsLine, path,
                     out.suppressions);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      const std::size_t stop = end == std::string_view::npos ? n : end + closer.size();
      line += static_cast<std::size_t>(
          std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                     src.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
      push(TokKind::kString, "<raw-string>");
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      push(quote == '"' ? TokKind::kString : TokKind::kChar, "<literal>");
      i = std::min(n, j + 1);
      continue;
    }
    if (identStart(c)) {
      std::size_t j = i;
      while (j < n && identChar(src[j])) ++j;
      push(TokKind::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (identChar(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
      ++j;
      }
      push(TokKind::kNumber, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    // Fused operators the rules pattern-match on.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      push(TokKind::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      push(TokKind::kPunct, "->");
      i += 2;
      continue;
    }
    if (c == '[' && i + 1 < n && src[i + 1] == '[') {
      push(TokKind::kPunct, "[[");
      i += 2;
      continue;
    }
    if (c == ']' && i + 1 < n && src[i + 1] == ']') {
      push(TokKind::kPunct, "]]");
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token-stream helpers

const std::string kEmpty;

const std::string& text(const std::vector<Token>& toks, std::size_t i) {
  return i < toks.size() ? toks[i].text : kEmpty;
}

bool isIdent(const std::vector<Token>& toks, std::size_t i) {
  return i < toks.size() && toks[i].kind == TokKind::kIdent;
}

/// Index one past the matching closer, starting at the opener index.
std::size_t skipBalanced(const std::vector<Token>& toks, std::size_t open,
                         const std::string& opener, const std::string& closer) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == opener) {
      ++depth;
    } else if (toks[i].text == closer) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

/// True when the identifier at `i` is unqualified or qualified by one of
/// `namespaces` (e.g. `std::rand` yes, `sim::time` no, `obj.rand` no).
bool plainOrQualifiedBy(const std::vector<Token>& toks, std::size_t i,
                        const std::unordered_set<std::string>& namespaces) {
  if (i == 0) return true;
  const std::string& prev = toks[i - 1].text;
  if (prev == "." || prev == "->") return false;
  if (prev == "::") {
    return i >= 2 && namespaces.contains(toks[i - 2].text);
  }
  return true;
}

bool isCapConstant(const std::string& name) {
  return name.size() >= 2 && name[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(name[1]));
}

std::string lowered(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool pathEndsWith(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct Ctx {
  const std::string& path;
  const std::vector<Token>& toks;
  std::vector<Finding>& findings;

  void report(std::size_t tokenIndex, std::string rule, std::string message) {
    findings.push_back({path, toks[tokenIndex].line, std::move(rule),
                        std::move(message), false});
  }
};

// ---------------------------------------------------------------------------
// R1 `nondeterminism` — consensus and controller paths must be replayable
// from an explicit seed; wall clocks and libc RNGs make a scenario
// irreproducible. common/rng is the one sanctioned randomness source.

void ruleNondeterminism(Ctx& ctx) {
  if (ctx.path.find("common/rng") != std::string::npos) return;
  static const std::unordered_set<std::string> kBannedCalls = {
      "rand",    "srand",   "rand_r", "drand48", "lrand48",
      "mrand48", "random",  "time",   "clock",   "gettimeofday",
      "clock_gettime"};
  static const std::unordered_set<std::string> kBannedTypes = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock"};
  static const std::unordered_set<std::string> kStdish = {"std", "chrono"};
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    const std::string& name = toks[i].text;
    if (kBannedTypes.contains(name)) {
      if (plainOrQualifiedBy(toks, i, kStdish)) {
        ctx.report(i, "nondeterminism",
                   "'" + name +
                       "' is a nondeterministic source; draw from "
                       "common/rng (avd::util::Rng) instead");
      }
      continue;
    }
    if (kBannedCalls.contains(name) && text(toks, i + 1) == "(" &&
        plainOrQualifiedBy(toks, i, kStdish)) {
      ctx.report(i, "nondeterminism",
                 "call to '" + name +
                     "' makes this path nondeterministic; use the seeded "
                     "avd::util::Rng from common/rng");
    }
  }
}

// ---------------------------------------------------------------------------
// R2 `unchecked-parse` — wire parsing must be total and its results must be
// impossible to ignore. Two checks:
//   (a) any function declaration returning std::optional must carry
//       [[nodiscard]] (declaration-site enforcement);
//   (b) a statement that calls a ByteReader accessor and drops the result
//       (`reader.u32();`) silently desynchronizes the cursor;
//   (c) in pbft wire codec files, every `get*` / `decode` parse function
//       must be declared [[nodiscard]].

const std::unordered_set<std::string>& readerAccessors() {
  static const std::unordered_set<std::string> kAccessors = {
      "u8", "u16", "u32", "u64", "i64", "blob", "str"};
  return kAccessors;
}

/// Whether `nodiscard` appears between the previous declaration boundary
/// and token `i` (exclusive). Boundaries: ; { } ) — enough to isolate the
/// specifier/attribute run in front of a return type.
bool nodiscardBefore(const std::vector<Token>& toks, std::size_t i) {
  while (i-- > 0) {
    const std::string& t = toks[i].text;
    if (t == ";" || t == "{" || t == "}" || t == ")") return false;
    if (t == "nodiscard") return true;
  }
  return false;
}

void ruleUncheckedParse(Ctx& ctx) {
  const auto& toks = ctx.toks;
  const bool wireFile = ctx.path.find("pbft/wire") != std::string::npos;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    const std::string& name = toks[i].text;

    // (a) std::optional<...> funcName( ... — declaration without nodiscard.
    if (name == "optional" && text(toks, i + 1) == "<") {
      const std::size_t afterArgs = skipBalanced(toks, i + 1, "<", ">");
      // Unqualified declarator name only: out-of-line definitions
      // (`std::optional<T> Class::fn()`) inherit from their declaration.
      if (isIdent(toks, afterArgs) && text(toks, afterArgs + 1) == "(" &&
          !nodiscardBefore(toks, i)) {
        ctx.report(afterArgs, "unchecked-parse",
                   "function '" + toks[afterArgs].text +
                       "' returns std::optional but is not [[nodiscard]]; "
                       "a dropped parse result hides truncation");
      }
      continue;
    }

    // (b) `<reader-ish>.u32();` as a full statement discards the result and
    // still advances the read cursor.
    if (readerAccessors().contains(name) && i >= 2 &&
        (text(toks, i - 1) == "." || text(toks, i - 1) == "->") &&
        isIdent(toks, i - 2) &&
        lowered(toks[i - 2].text).find("reader") != std::string::npos &&
        text(toks, i + 1) == "(") {
      const std::string& stmtPrev = i >= 3 ? toks[i - 3].text : kEmpty;
      const bool statementStart = i < 3 || stmtPrev == ";" ||
                                  stmtPrev == "{" || stmtPrev == "}" ||
                                  stmtPrev == ")";
      const std::size_t afterCall = skipBalanced(toks, i + 1, "(", ")");
      if (statementStart && text(toks, afterCall) == ";") {
        ctx.report(i, "unchecked-parse",
                   "result of " + toks[i - 2].text + "." + name +
                       "() is discarded; every ByteReader read must be "
                       "checked before use");
      }
      continue;
    }

    // (c) wire codec parse functions must be [[nodiscard]] at declaration.
    if (wireFile &&
        (name == "decode" || (name.size() > 3 && name.compare(0, 3, "get") == 0 &&
                              std::isupper(static_cast<unsigned char>(name[3])))) &&
        text(toks, i + 1) == "(" && i > 0 &&
        (toks[i - 1].kind == TokKind::kIdent || toks[i - 1].text == ">" ||
         toks[i - 1].text == "&" || toks[i - 1].text == "*")) {
      const std::size_t afterParams = skipBalanced(toks, i + 1, "(", ")");
      const std::string& next = text(toks, afterParams);
      if ((next == "{" || next == ";") && !nodiscardBefore(toks, i)) {
        ctx.report(i, "unchecked-parse",
                   "wire parse function '" + name +
                       "' must be [[nodiscard]]: ignoring a parse result "
                       "accepts malformed input");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3 `uncapped-reserve` — reserve()/resize() fed by a value parsed off the
// wire (a dereferenced optional) is an attacker-controlled allocation. The
// expression must clamp with a compile-time `kFoo` cap constant
// (e.g. `reserve(std::min<std::size_t>(*count, kWireReserveCap))`).

void ruleUncappedReserve(Ctx& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    const std::string& name = toks[i].text;
    if (name != "reserve" && name != "resize") continue;
    const std::string& prev = toks[i - 1].text;
    if (prev != "." && prev != "->") continue;
    if (text(toks, i + 1) != "(") continue;
    const std::size_t end = skipBalanced(toks, i + 1, "(", ")");

    bool derefArg = false;
    bool hasCap = false;
    for (std::size_t j = i + 2; j + 1 < end; ++j) {
      const std::string& t = toks[j].text;
      if (toks[j].kind == TokKind::kIdent && isCapConstant(t)) hasCap = true;
      if (t == "*" && isIdent(toks, j + 1)) {
        // Unary deref iff no value expression ends right before the `*`.
        const std::string& before = toks[j - 1].text;
        const bool binary = toks[j - 1].kind == TokKind::kIdent ||
                            toks[j - 1].kind == TokKind::kNumber ||
                            before == ")" || before == "]";
        if (!binary) derefArg = true;
      }
    }
    if (derefArg && !hasCap) {
      ctx.report(i, "uncapped-reserve",
                 "reserve/resize sized by a parsed wire count without a "
                 "compile-time cap constant; clamp with std::min(..., kCap) "
                 "before allocating");
    }
  }
}

// ---------------------------------------------------------------------------
// R4 `naked-lock` — manual mutex lock()/unlock() cannot survive exceptions
// or early returns; scoped RAII guards (lock_guard / unique_lock /
// scoped_lock) are mandatory.

void ruleNakedLock(Ctx& ctx) {
  const auto& toks = ctx.toks;
  static const std::unordered_set<std::string> kLockCalls = {"lock", "unlock",
                                                             "try_lock"};
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    const std::string receiver = lowered(toks[i].text);
    if (receiver.find("mutex") == std::string::npos &&
        receiver.find("mtx") == std::string::npos) {
      continue;
    }
    // Member form `mutex_.lock()` or accessor form `mtx().lock()`.
    std::size_t dot = i + 1;
    if (text(toks, dot) == "(" && text(toks, dot + 1) == ")") dot += 2;
    if (text(toks, dot) != "." && text(toks, dot) != "->") continue;
    if (!kLockCalls.contains(text(toks, dot + 1))) continue;
    if (text(toks, dot + 2) != "(") continue;
    ctx.report(dot + 1, "naked-lock",
               "naked " + toks[i].text + "." + toks[dot + 1].text +
                   "(); use std::lock_guard/std::unique_lock so the mutex "
                   "is released on every path");
  }
}

// ---------------------------------------------------------------------------
// R5 `unordered-iter` — replica and controller decision loops must not
// iterate hash containers: iteration order varies across standard library
// implementations, which silently breaks run-for-run replay of consensus
// decisions. Declarations are harvested across the whole file set so a
// member declared in replica.h is tracked inside replica.cpp.

bool unorderedIterScope(const std::string& path) {
  return pathEndsWith(path, "pbft/replica.cpp") ||
         pathEndsWith(path, "avd/controller.cpp") ||
         pathEndsWith(path, "campaign/runner.cpp") ||
         pathEndsWith(path, "campaign/dedup.cpp") ||
         pathEndsWith(path, "faultinject/churn.cpp");
}

bool unorderedDeclScope(const std::string& path) {
  return unorderedIterScope(path) || pathEndsWith(path, "pbft/replica.h") ||
         pathEndsWith(path, "pbft/stable_storage.h") ||
         pathEndsWith(path, "avd/controller.h") ||
         pathEndsWith(path, "campaign/runner.h") ||
         pathEndsWith(path, "campaign/dedup.h") ||
         pathEndsWith(path, "faultinject/churn.h");
}

std::set<std::string> collectUnorderedDecls(const std::vector<Token>& toks) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    if (toks[i].text != "unordered_map" && toks[i].text != "unordered_set") {
      continue;
    }
    if (text(toks, i + 1) != "<") continue;
    const std::size_t afterArgs = skipBalanced(toks, i + 1, "<", ">");
    if (isIdent(toks, afterArgs) && text(toks, afterArgs + 1) != "(") {
      names.insert(toks[afterArgs].text);
    }
  }
  return names;
}

void ruleUnorderedIter(Ctx& ctx, const std::set<std::string>& unordered) {
  if (!unorderedIterScope(ctx.path) || unordered.empty()) return;
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression names an unordered container.
    if (isIdent(toks, i) && toks[i].text == "for" &&
        text(toks, i + 1) == "(") {
      const std::size_t end = skipBalanced(toks, i + 1, "(", ")");
      std::size_t depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        if (toks[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j + 1 < end; ++j) {
          if (isIdent(toks, j) && unordered.contains(toks[j].text)) {
            ctx.report(j, "unordered-iter",
                       "iteration over hash container '" + toks[j].text +
                           "' in an ordering-sensitive path; use std::map / "
                           "std::set or sort the keys first");
            break;
          }
        }
      }
      continue;
    }
    // Explicit iterator walk: container.begin() / cbegin() / rbegin().
    if (isIdent(toks, i) && unordered.contains(toks[i].text) &&
        (text(toks, i + 1) == "." || text(toks, i + 1) == "->")) {
      const std::string& member = text(toks, i + 2);
      if ((member == "begin" || member == "cbegin" || member == "rbegin") &&
          text(toks, i + 3) == "(") {
        ctx.report(i, "unordered-iter",
                   "iterator walk over hash container '" + toks[i].text +
                       "' in an ordering-sensitive path; iteration order is "
                       "implementation-defined");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R6 `detached-thread` — a detached thread outlives every join point, so
// campaign shutdown, sanitizer reports, and test teardown race against it.
// Every thread in this repo must be owned by something that joins it
// (common/thread_pool or std::jthread); `.detach()` is banned repo-wide.

void ruleDetachedThread(Ctx& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks, i) || toks[i].text != "detach") continue;
    const std::string& prev = toks[i - 1].text;
    if (prev != "." && prev != "->") continue;
    if (text(toks, i + 1) != "(") continue;
    ctx.report(i, "detached-thread",
               "thread detach() abandons the join point; own the thread via "
               "common/thread_pool or std::jthread so shutdown can wait "
               "for it");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface

const std::vector<RuleInfo>& ruleRegistry() {
  static const std::vector<RuleInfo> kRules = {
      {"nondeterminism",
       "R1: no libc/chrono randomness or wall clocks outside common/rng; "
       "consensus paths must replay from a seed"},
      {"unchecked-parse",
       "R2: std::optional-returning and wire parse functions are "
       "[[nodiscard]]; ByteReader results must not be dropped"},
      {"uncapped-reserve",
       "R3: no reserve()/resize() on a parsed wire count without a "
       "compile-time kCap clamp"},
      {"naked-lock",
       "R4: no manual mutex lock()/unlock(); RAII guards only"},
      {"unordered-iter",
       "R5: no hash-container iteration in the ordering-sensitive loops of "
       "pbft/replica.cpp, avd/controller.cpp, campaign/runner.cpp, "
       "campaign/dedup.cpp, or faultinject/churn.cpp"},
      {"detached-thread",
       "R6: no std::thread::detach(); every thread must have an owner "
       "that joins it"},
      {"bad-suppression",
       "meta: avd-lint allow() directives must name known rules"},
  };
  return kRules;
}

bool isKnownRule(std::string_view rule) {
  const auto& rules = ruleRegistry();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const RuleInfo& info) { return info.id == rule; });
}

std::vector<Finding> lintFiles(const std::vector<SourceFile>& files,
                               const Options& options) {
  std::vector<LexResult> lexed;
  lexed.reserve(files.size());
  std::set<std::string> unorderedNames;
  for (const SourceFile& file : files) {
    lexed.push_back(lex(file.path, file.text));
    if (unorderedDeclScope(file.path)) {
      const auto declared = collectUnorderedDecls(lexed.back().tokens);
      unorderedNames.insert(declared.begin(), declared.end());
    }
  }

  std::vector<Finding> findings;
  for (std::size_t f = 0; f < files.size(); ++f) {
    std::vector<Finding> local;
    Ctx ctx{files[f].path, lexed[f].tokens, local};
    ruleNondeterminism(ctx);
    ruleUncheckedParse(ctx);
    ruleUncappedReserve(ctx);
    ruleNakedLock(ctx);
    ruleUnorderedIter(ctx, unorderedNames);
    ruleDetachedThread(ctx);

    const auto& allowed = lexed[f].suppressions.byLine;
    for (Finding& finding : local) {
      if (const auto it = allowed.find(finding.line); it != allowed.end()) {
        finding.suppressed =
            it->second.contains("*") || it->second.contains(finding.rule);
      }
    }
    // Directive errors are never suppressible.
    local.insert(local.end(), lexed[f].suppressions.errors.begin(),
                 lexed[f].suppressions.errors.end());

    for (Finding& finding : local) {
      if (!finding.suppressed || options.includeSuppressed) {
        findings.push_back(std::move(finding));
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lintSource(std::string_view path, std::string_view text,
                                const Options& options) {
  return lintFiles({{std::string(path), std::string(text)}}, options);
}

std::string toJson(const std::vector<Finding>& findings) {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            static constexpr char kHex[] = "0123456789abcdef";
            out += "\\u00";
            out.push_back(kHex[(c >> 4) & 0xF]);
            out.push_back(kHex[c & 0xF]);
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  };
  std::string json = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) json += ",";
    json += "\n  {\"file\": \"" + escape(f.file) + "\", \"line\": " +
            std::to_string(f.line) + ", \"rule\": \"" + escape(f.rule) +
            "\", \"suppressed\": " + (f.suppressed ? "true" : "false") +
            ", \"message\": \"" + escape(f.message) + "\"}";
  }
  json += findings.empty() ? "]" : "\n]";
  json += "\n";
  return json;
}

std::size_t unsuppressedCount(const std::vector<Finding>& findings) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [](const Finding& f) { return !f.suppressed; }));
}

}  // namespace avd::lint
