#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>

#include "effects.h"
#include "index.h"
#include "lexer.h"
#include "model.h"

namespace avd::lint {
namespace {

struct Ctx {
  const std::string& path;
  const std::vector<Token>& toks;
  std::vector<Finding>& findings;

  void report(std::size_t tokenIndex, std::string rule, std::string message) {
    findings.push_back({path, toks[tokenIndex].line, std::move(rule),
                        std::move(message), false});
  }
};

// ---------------------------------------------------------------------------
// R1 `nondeterminism` — consensus and controller paths must be replayable
// from an explicit seed; wall clocks and libc RNGs make a scenario
// irreproducible. common/rng is the one sanctioned randomness source.

void ruleNondeterminism(Ctx& ctx) {
  if (ctx.path.find("common/rng") != std::string::npos) return;
  static const std::set<std::string> kBannedCalls = {
      "rand",    "srand",   "rand_r", "drand48", "lrand48",
      "mrand48", "random",  "time",   "clock",   "gettimeofday",
      "clock_gettime"};
  static const std::set<std::string> kBannedTypes = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock"};
  static const std::set<std::string> kStdish = {"std", "chrono"};
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    const std::string& name = toks[i].text;
    if (kBannedTypes.contains(name)) {
      if (plainOrQualifiedBy(toks, i, kStdish)) {
        ctx.report(i, "nondeterminism",
                   "'" + name +
                       "' is a nondeterministic source; draw from "
                       "common/rng (avd::util::Rng) instead");
      }
      continue;
    }
    if (kBannedCalls.contains(name) && text(toks, i + 1) == "(" &&
        plainOrQualifiedBy(toks, i, kStdish)) {
      ctx.report(i, "nondeterminism",
                 "call to '" + name +
                     "' makes this path nondeterministic; use the seeded "
                     "avd::util::Rng from common/rng");
    }
  }
}

// ---------------------------------------------------------------------------
// R2 `unchecked-parse` — wire parsing must be total and its results must be
// impossible to ignore. Three checks:
//   (a) any function declaration returning std::optional must carry
//       [[nodiscard]] (declaration-site enforcement);
//   (b) a statement that calls a ByteReader accessor and drops the result
//       (`reader.u32();`) silently desynchronizes the cursor;
//   (c) in pbft wire codec files, every `get*` / `decode` parse function
//       must be declared [[nodiscard]].

const std::set<std::string>& readerAccessors() {
  static const std::set<std::string> kAccessors = {
      "u8", "u16", "u32", "u64", "i64", "blob", "str"};
  return kAccessors;
}

/// Whether `nodiscard` appears between the previous declaration boundary
/// and token `i` (exclusive). Boundaries: ; { } ) — enough to isolate the
/// specifier/attribute run in front of a return type.
bool nodiscardBefore(const std::vector<Token>& toks, std::size_t i) {
  while (i-- > 0) {
    const std::string& t = toks[i].text;
    if (t == ";" || t == "{" || t == "}" || t == ")") return false;
    if (t == "nodiscard") return true;
  }
  return false;
}

void ruleUncheckedParse(Ctx& ctx) {
  const auto& toks = ctx.toks;
  const bool wireFile = ctx.path.find("pbft/wire") != std::string::npos;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    const std::string& name = toks[i].text;

    // (a) std::optional<...> funcName( ... — declaration without nodiscard.
    if (name == "optional" && text(toks, i + 1) == "<") {
      const std::size_t afterArgs = skipBalanced(toks, i + 1, "<", ">");
      // Unqualified declarator name only: out-of-line definitions
      // (`std::optional<T> Class::fn()`) inherit from their declaration.
      if (isIdent(toks, afterArgs) && text(toks, afterArgs + 1) == "(" &&
          !nodiscardBefore(toks, i)) {
        ctx.report(afterArgs, "unchecked-parse",
                   "function '" + toks[afterArgs].text +
                       "' returns std::optional but is not [[nodiscard]]; "
                       "a dropped parse result hides truncation");
      }
      continue;
    }

    // (b) `<reader-ish>.u32();` as a full statement discards the result and
    // still advances the read cursor.
    if (readerAccessors().contains(name) && i >= 2 &&
        (text(toks, i - 1) == "." || text(toks, i - 1) == "->") &&
        isIdent(toks, i - 2) &&
        lowered(toks[i - 2].text).find("reader") != std::string::npos &&
        text(toks, i + 1) == "(") {
      const std::string& stmtPrev =
          i >= 3 ? toks[i - 3].text : kEmptyTokenText;
      const bool statementStart = i < 3 || stmtPrev == ";" ||
                                  stmtPrev == "{" || stmtPrev == "}" ||
                                  stmtPrev == ")";
      const std::size_t afterCall = skipBalanced(toks, i + 1, "(", ")");
      if (statementStart && text(toks, afterCall) == ";") {
        ctx.report(i, "unchecked-parse",
                   "result of " + toks[i - 2].text + "." + name +
                       "() is discarded; every ByteReader read must be "
                       "checked before use");
      }
      continue;
    }

    // (c) wire codec parse functions must be [[nodiscard]] at declaration.
    if (wireFile &&
        (name == "decode" || (name.size() > 3 && name.compare(0, 3, "get") == 0 &&
                              std::isupper(static_cast<unsigned char>(name[3])))) &&
        text(toks, i + 1) == "(" && i > 0 &&
        (toks[i - 1].kind == TokKind::kIdent || toks[i - 1].text == ">" ||
         toks[i - 1].text == "&" || toks[i - 1].text == "*")) {
      const std::size_t afterParams = skipBalanced(toks, i + 1, "(", ")");
      const std::string& next = text(toks, afterParams);
      if ((next == "{" || next == ";") && !nodiscardBefore(toks, i)) {
        ctx.report(i, "unchecked-parse",
                   "wire parse function '" + name +
                       "' must be [[nodiscard]]: ignoring a parse result "
                       "accepts malformed input");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3 `uncapped-reserve` — reserve()/resize() fed by a value parsed off the
// wire (a dereferenced optional) is an attacker-controlled allocation. The
// expression must clamp with a compile-time `kFoo` cap constant
// (e.g. `reserve(std::min<std::size_t>(*count, kWireReserveCap))`).

void ruleUncappedReserve(Ctx& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    const std::string& name = toks[i].text;
    if (name != "reserve" && name != "resize") continue;
    const std::string& prev = toks[i - 1].text;
    if (prev != "." && prev != "->") continue;
    if (text(toks, i + 1) != "(") continue;
    const std::size_t end = skipBalanced(toks, i + 1, "(", ")");

    bool derefArg = false;
    bool hasCap = false;
    for (std::size_t j = i + 2; j + 1 < end; ++j) {
      const std::string& t = toks[j].text;
      if (toks[j].kind == TokKind::kIdent && isCapConstant(t)) hasCap = true;
      if (t == "*" && isIdent(toks, j + 1)) {
        // Unary deref iff no value expression ends right before the `*`.
        const std::string& before = toks[j - 1].text;
        const bool binary = toks[j - 1].kind == TokKind::kIdent ||
                            toks[j - 1].kind == TokKind::kNumber ||
                            before == ")" || before == "]";
        if (!binary) derefArg = true;
      }
    }
    if (derefArg && !hasCap) {
      ctx.report(i, "uncapped-reserve",
                 "reserve/resize sized by a parsed wire count without a "
                 "compile-time cap constant; clamp with std::min(..., kCap) "
                 "before allocating");
    }
  }
}

// ---------------------------------------------------------------------------
// R4 `naked-lock` — manual mutex lock()/unlock() cannot survive exceptions
// or early returns; scoped RAII guards (lock_guard / unique_lock /
// scoped_lock) are mandatory.

void ruleNakedLock(Ctx& ctx) {
  const auto& toks = ctx.toks;
  static const std::set<std::string> kLockCalls = {"lock", "unlock",
                                                   "try_lock"};
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    const std::string receiver = lowered(toks[i].text);
    if (receiver.find("mutex") == std::string::npos &&
        receiver.find("mtx") == std::string::npos) {
      continue;
    }
    // Member form `mutex_.lock()` or accessor form `mtx().lock()`.
    std::size_t dot = i + 1;
    if (text(toks, dot) == "(" && text(toks, dot + 1) == ")") dot += 2;
    if (text(toks, dot) != "." && text(toks, dot) != "->") continue;
    if (!kLockCalls.contains(text(toks, dot + 1))) continue;
    if (text(toks, dot + 2) != "(") continue;
    ctx.report(dot + 1, "naked-lock",
               "naked " + toks[i].text + "." + toks[dot + 1].text +
                   "(); use std::lock_guard/std::unique_lock so the mutex "
                   "is released on every path");
  }
}

// ---------------------------------------------------------------------------
// R5 `unordered-iter` — replica and controller decision loops must not
// iterate hash containers: iteration order varies across standard library
// implementations, which silently breaks run-for-run replay of consensus
// decisions. Declarations are harvested across the whole file set so a
// member declared in replica.h is tracked inside replica.cpp.

bool unorderedIterScope(const std::string& path) {
  return pathEndsWith(path, "pbft/replica.cpp") ||
         pathEndsWith(path, "avd/controller.cpp") ||
         pathEndsWith(path, "campaign/runner.cpp") ||
         pathEndsWith(path, "campaign/dedup.cpp") ||
         pathEndsWith(path, "campaign/fleet/coordinator.cpp") ||
         pathEndsWith(path, "campaign/fleet/shard.cpp") ||
         pathEndsWith(path, "campaign/fleet/worker.cpp") ||
         pathEndsWith(path, "faultinject/churn.cpp") ||
         pathEndsWith(path, "faultinject/flood.cpp") ||
         pathEndsWith(path, "faultinject/twins.cpp") ||
         pathEndsWith(path, "sim/network.cpp");
}

bool unorderedDeclScope(const std::string& path) {
  return unorderedIterScope(path) || pathEndsWith(path, "pbft/replica.h") ||
         pathEndsWith(path, "pbft/stable_storage.h") ||
         pathEndsWith(path, "avd/controller.h") ||
         pathEndsWith(path, "campaign/runner.h") ||
         pathEndsWith(path, "campaign/dedup.h") ||
         pathEndsWith(path, "campaign/fleet/coordinator.h") ||
         pathEndsWith(path, "campaign/fleet/shard.h") ||
         pathEndsWith(path, "faultinject/churn.h") ||
         pathEndsWith(path, "faultinject/flood.h") ||
         pathEndsWith(path, "faultinject/twins.h") ||
         pathEndsWith(path, "sim/network.h");
}

void ruleUnorderedIter(Ctx& ctx, const std::set<std::string>& unordered) {
  if (!unorderedIterScope(ctx.path) || unordered.empty()) return;
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression names an unordered container.
    if (isIdent(toks, i) && toks[i].text == "for" &&
        text(toks, i + 1) == "(") {
      const std::size_t end = skipBalanced(toks, i + 1, "(", ")");
      std::size_t depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        if (toks[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j + 1 < end; ++j) {
          if (isIdent(toks, j) && unordered.contains(toks[j].text)) {
            ctx.report(j, "unordered-iter",
                       "iteration over hash container '" + toks[j].text +
                           "' in an ordering-sensitive path; use std::map / "
                           "std::set or sort the keys first");
            break;
          }
        }
      }
      continue;
    }
    // Explicit iterator walk: container.begin() / cbegin() / rbegin().
    if (isIdent(toks, i) && unordered.contains(toks[i].text) &&
        (text(toks, i + 1) == "." || text(toks, i + 1) == "->")) {
      const std::string& member = text(toks, i + 2);
      if ((member == "begin" || member == "cbegin" || member == "rbegin") &&
          text(toks, i + 3) == "(") {
        ctx.report(i, "unordered-iter",
                   "iterator walk over hash container '" + toks[i].text +
                       "' in an ordering-sensitive path; iteration order is "
                       "implementation-defined");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R6 `detached-thread` — a detached thread outlives every join point, so
// campaign shutdown, sanitizer reports, and test teardown race against it.
// Every thread in this repo must be owned by something that joins it
// (common/thread_pool or std::jthread); `.detach()` is banned repo-wide.

void ruleDetachedThread(Ctx& ctx) {
  const auto& toks = ctx.toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks, i) || toks[i].text != "detach") continue;
    const std::string& prev = toks[i - 1].text;
    if (prev != "." && prev != "->") continue;
    if (text(toks, i + 1) != "(") continue;
    ctx.report(i, "detached-thread",
               "thread detach() abandons the join point; own the thread via "
               "common/thread_pool or std::jthread so shutdown can wait "
               "for it");
  }
}

// ---------------------------------------------------------------------------
// R7 `lock-order` — build the static lock-acquisition graph across function
// boundaries and flag cycles. An edge A -> B means "B was acquired while A
// was held", either directly (two guards in one scope) or through a call
// (a function called with A held transitively acquires B). Any cycle in
// that graph is a potential deadlock; any self-edge is a double acquisition
// of a non-recursive mutex. The runtime lockdep in src/common/lockdep.h
// checks the same invariant dynamically under AVD_SANITIZE builds.

struct EdgeWitness {
  std::string file;
  std::size_t line = 0;
  std::string detail;
};

bool witnessLess(const EdgeWitness& a, const EdgeWitness& b) {
  if (a.file != b.file) return a.file < b.file;
  return a.line < b.line;
}

/// True when lock `holder` is still held at token `at` inside its function.
bool heldAt(const LockSite& holder, std::size_t at) {
  return !holder.deferred && holder.tokenIndex < at && at < holder.scopeEnd;
}

void ruleLockOrder(const RepoIndex& index,
                   std::map<std::string, std::vector<Finding>>& byFile) {
  // Flatten functions and seed each with the mutexes it acquires itself.
  struct FnRef {
    std::size_t file;
    std::size_t fn;
  };
  std::vector<FnRef> flat;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> flatIndex;
  for (std::size_t f = 0; f < index.files.size(); ++f) {
    for (std::size_t g = 0; g < index.files[f].functions.size(); ++g) {
      flatIndex[{f, g}] = flat.size();
      flat.push_back({f, g});
    }
  }
  std::vector<std::set<std::string>> acquires(flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const FunctionInfo& fn =
        index.files[flat[i].file].functions[flat[i].fn];
    for (const LockSite& lock : fn.locks) {
      if (!lock.deferred) acquires[i].insert(lock.mutexId);
    }
  }

  // Transitive closure over the unqualified-name call graph (fixpoint; the
  // graph is tiny, so the quadratic worklist is fine).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      const FunctionInfo& fn =
          index.files[flat[i].file].functions[flat[i].fn];
      for (const CallSite& call : fn.calls) {
        auto [lo, hi] = index.functionsByName.equal_range(call.callee);
        for (auto it = lo; it != hi; ++it) {
          const std::size_t j = flatIndex.at(it->second);
          for (const std::string& m : acquires[j]) {
            if (acquires[i].insert(m).second) changed = true;
          }
        }
      }
    }
  }

  // Edge set with one (deterministic: lexicographically first) witness each.
  std::map<std::pair<std::string, std::string>, EdgeWitness> edges;
  const auto addEdge = [&](const std::string& from, const std::string& to,
                           EdgeWitness witness) {
    auto [it, inserted] = edges.emplace(std::make_pair(from, to), witness);
    if (!inserted && witnessLess(witness, it->second)) {
      it->second = std::move(witness);
    }
  };

  for (std::size_t i = 0; i < flat.size(); ++i) {
    const FileIndex& file = index.files[flat[i].file];
    const FunctionInfo& fn = file.functions[flat[i].fn];
    // Direct: guard taken while another guard is alive in the same body.
    for (const LockSite& inner : fn.locks) {
      if (inner.deferred) continue;
      for (const LockSite& outer : fn.locks) {
        if (&outer == &inner || !heldAt(outer, inner.tokenIndex)) continue;
        addEdge(outer.mutexId, inner.mutexId,
                {file.path, inner.line,
                 fn.qualified + " acquires '" + inner.mutexId +
                     "' while holding '" + outer.mutexId + "'"});
      }
    }
    // Indirect: call made with locks held, callee transitively acquires.
    for (const CallSite& call : fn.calls) {
      if (call.heldLocks.empty()) continue;
      auto [lo, hi] = index.functionsByName.equal_range(call.callee);
      for (auto it = lo; it != hi; ++it) {
        const std::size_t j = flatIndex.at(it->second);
        if (j == flatIndex.at({flat[i].file, flat[i].fn})) continue;
        for (const std::string& m : acquires[j]) {
          for (const std::size_t h : call.heldLocks) {
            addEdge(fn.locks[h].mutexId, m,
                    {file.path, call.line,
                     fn.qualified + " calls " + call.callee +
                         "() (which acquires '" + m + "') while holding '" +
                         fn.locks[h].mutexId + "'"});
          }
        }
      }
    }
  }

  // Self-edges: double acquisition of a (non-recursive) mutex.
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const auto& [edge, witness] : edges) {
    if (edge.first == edge.second) {
      byFile[witness.file].push_back(
          {witness.file, witness.line, "lock-order",
           "re-acquisition of '" + edge.first +
               "' while already held (" + witness.detail +
               "); self-deadlock on a non-recursive mutex"});
    } else {
      adjacency[edge.first].push_back(edge.second);
    }
  }

  // Cycles among distinct mutexes: iterative DFS from every node; report
  // each cycle once, keyed by its sorted node set.
  std::set<std::set<std::string>> reported;
  for (const auto& [start, unused] : adjacency) {
    (void)unused;
    // DFS stack of (node, next-neighbor index) with the current path.
    std::vector<std::pair<std::string, std::size_t>> stack{{start, 0}};
    std::set<std::string> onPath{start};
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto it = adjacency.find(node);
      if (it == adjacency.end() || next >= it->second.size()) {
        onPath.erase(node);
        stack.pop_back();
        continue;
      }
      const std::string& succ = it->second[next++];
      if (succ == start) {
        // Found a cycle through `start`: collect it from the stack.
        std::set<std::string> nodes;
        std::vector<std::string> path;
        for (const auto& [n, unused2] : stack) {
          (void)unused2;
          nodes.insert(n);
          path.push_back(n);
        }
        if (reported.insert(nodes).second) {
          std::string desc;
          EdgeWitness first{};
          bool haveFirst = false;
          for (std::size_t p = 0; p < path.size(); ++p) {
            const std::string& from = path[p];
            const std::string& to = path[(p + 1) % path.size()];
            const EdgeWitness& w = edges.at({from, to});
            if (!haveFirst || witnessLess(w, first)) {
              first = w;
              haveFirst = true;
            }
            if (!desc.empty()) desc += "; ";
            desc += "'" + from + "' -> '" + to + "' at " + w.file + ":" +
                    std::to_string(w.line);
          }
          byFile[first.file].push_back(
              {first.file, first.line, "lock-order",
               "lock-order cycle (potential deadlock): " + desc});
        }
        continue;
      }
      if (onPath.contains(succ)) continue;  // cycle not through `start`
      onPath.insert(succ);
      stack.emplace_back(succ, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// R8 `timer-capture` — a setTimer callback outlives the statement that
// created it by design; by the time it fires, references and iterators
// captured at arm time may point into freed or rehashed storage (the stale
// timer bug class the sim's incarnation counters exist to suppress).
// Callbacks must capture by value — keys, ids, and `this` (the incarnation
// guard makes `this` safe), never `[&]`, `[&name]`, or an iterator local.

void ruleTimerCapture(const RepoIndex& index,
                      std::map<std::string, std::vector<Finding>>& byFile) {
  for (const FileIndex& file : index.files) {
    for (const FunctionInfo& fn : file.functions) {
      for (const TimerLambda& timer : fn.timers) {
        auto& out = byFile[file.path];
        if (timer.capturesAllByRef) {
          out.push_back(
              {file.path, timer.line, "timer-capture",
               "setTimer callback in " + fn.qualified +
                   " captures by reference by default ([&]); a fired timer "
                   "may touch dead state — capture what it needs by value"});
        }
        for (const std::string& name : timer.refCaptures) {
          out.push_back(
              {file.path, timer.line, "timer-capture",
               "setTimer callback in " + fn.qualified + " captures '&" +
                   name +
                   "' by reference; the referent can die before the timer "
                   "fires — capture by value with an incarnation guard"});
        }
        for (const std::string& name : timer.valueCaptures) {
          if (fn.iteratorLocals.contains(name)) {
            out.push_back(
                {file.path, timer.line, "timer-capture",
                 "setTimer callback in " + fn.qualified +
                     " captures iterator '" + name +
                     "' ; iterators into mutable containers are invalidated "
                     "before the timer fires — capture the key instead"});
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R9 `tainted-size` — intra-procedural dataflow from ByteReader length/count
// reads to resize/reserve arguments and loop bounds. A length read off the
// wire is attacker-controlled; before it sizes an allocation or bounds a
// loop it must pass through an expression that clamps it against a named
// `k*Cap` constant or validates it against `remaining()`. The analysis is a
// linear statement scan: assignment propagates taint, a clamping statement
// sanitizes every tainted variable it mentions.

const std::set<std::string>& sizeAccessors() {
  static const std::set<std::string> kSizeAccessors = {"u8", "u16", "u32",
                                                       "u64", "i64"};
  return kSizeAccessors;
}

struct TaintScan {
  const FileIndex& file;
  const FunctionInfo& fn;
  std::vector<Finding>& out;
  std::set<std::string> tainted;    // unsanitized wire-derived sizes
  std::set<std::string> sanitized;  // clamped at least once

  const std::vector<Token>& toks() const { return file.tokens; }

  /// Index of the assignment `=` in [begin, end) at paren depth 0, or 0.
  /// Comparison/compound operators (`==`, `!=`, `<=`, `>=`, `+=`...) are
  /// excluded by inspecting the neighboring tokens.
  std::size_t findAssign(std::size_t begin, std::size_t end) const {
    std::size_t depth = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::string& t = toks()[i].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (t != "=" || depth != 0) continue;
      const std::string& prev = i > begin ? toks()[i - 1].text : kEmptyTokenText;
      const std::string& next = text(toks(), i + 1);
      if (prev == "=" || prev == "!" || prev == "<" || prev == ">") continue;
      if (next == "=") continue;
      return i;
    }
    return 0;
  }

  bool containsSanitizer(std::size_t begin, std::size_t end) const {
    for (std::size_t i = begin; i < end; ++i) {
      if (toks()[i].kind != TokKind::kIdent) continue;
      if (isCapConstant(toks()[i].text)) return true;
      if (toks()[i].text == "remaining" && text(toks(), i + 1) == "(") {
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> taintedIn(std::size_t begin,
                                     std::size_t end) const {
    std::vector<std::string> found;
    for (std::size_t i = begin; i < end; ++i) {
      if (toks()[i].kind == TokKind::kIdent &&
          tainted.contains(toks()[i].text)) {
        found.push_back(toks()[i].text);
      }
    }
    return found;
  }

  /// `name = <reader>.u32()`-shaped source in [begin, end): returns the
  /// bound variable, or "" when no size read (or no binding) is present.
  std::string sourceBinding(std::size_t begin, std::size_t end) const {
    for (std::size_t i = begin + 2; i < end; ++i) {
      if (toks()[i].kind != TokKind::kIdent ||
          !sizeAccessors().contains(toks()[i].text)) {
        continue;
      }
      if (text(toks(), i + 1) != "(") continue;
      const std::string& sep = toks()[i - 1].text;
      if (sep != "." && sep != "->") continue;
      if (!isIdent(toks(), i - 2) ||
          lowered(toks()[i - 2].text).find("reader") == std::string::npos) {
        continue;
      }
      const std::size_t eq = findAssign(begin, end);
      if (eq > begin && eq < i && isIdent(toks(), eq - 1)) {
        return toks()[eq - 1].text;
      }
      return {};
    }
    return {};
  }

  void report(std::size_t line, const std::string& var,
              const std::string& use) {
    out.push_back(
        {file.path, line, "tainted-size",
         "'" + var + "' in " + fn.qualified +
             " derives from a ByteReader length read and reaches a " + use +
             " without a clamp; bound it with std::min(..., k*Cap) or "
             "validate against remaining() first"});
  }

  /// One statement (or extracted loop condition when `isBound`).
  void statement(std::size_t begin, std::size_t end, bool isBound) {
    if (begin >= end) return;
    const std::string bound = sourceBinding(begin, end);
    if (!bound.empty()) {
      if (containsSanitizer(begin, end)) {
        sanitized.insert(bound);
        tainted.erase(bound);
      } else {
        tainted.insert(bound);
        sanitized.erase(bound);
      }
      return;
    }
    const std::vector<std::string> vars = taintedIn(begin, end);
    if (vars.empty()) {
      // A plain re-assignment from untainted data clears older taint.
      const std::size_t eq = findAssign(begin, end);
      if (eq > begin && isIdent(toks(), eq - 1)) {
        tainted.erase(toks()[eq - 1].text);
      }
      return;
    }
    if (containsSanitizer(begin, end)) {
      for (const std::string& v : vars) {
        sanitized.insert(v);
        tainted.erase(v);
      }
      return;
    }
    if (isBound) {
      report(toks()[begin].line, vars.front(), "loop bound");
      return;
    }
    // Allocation sink: .reserve( / .resize( with a tainted var in the args.
    for (std::size_t i = begin + 1; i < end; ++i) {
      const std::string& t = toks()[i].text;
      if ((t != "reserve" && t != "resize") ||
          (toks()[i - 1].text != "." && toks()[i - 1].text != "->") ||
          text(toks(), i + 1) != "(") {
        continue;
      }
      const std::size_t argsEnd = skipBalanced(toks(), i + 1, "(", ")");
      const auto inArgs = taintedIn(i + 2, argsEnd > 0 ? argsEnd - 1 : i + 2);
      if (!inArgs.empty()) {
        report(toks()[i].line, inArgs.front(), t + "() size");
        return;
      }
    }
    // Assignment propagation: lhs inherits the rhs taint.
    const std::size_t eq = findAssign(begin, end);
    if (eq > begin && isIdent(toks(), eq - 1) &&
        !taintedIn(eq + 1, end).empty()) {
      tainted.insert(toks()[eq - 1].text);
      sanitized.erase(toks()[eq - 1].text);
    }
  }

  void run() {
    const std::size_t bodyEnd = fn.bodyEnd > 0 ? fn.bodyEnd - 1 : 0;
    std::size_t stmtStart = fn.bodyBegin + 1;
    std::size_t i = stmtStart;
    while (i < bodyEnd) {
      const std::string& t = toks()[i].text;
      if ((t == "for" || t == "while") && text(toks(), i + 1) == "(") {
        statement(stmtStart, i, false);
        const std::size_t headerEnd = skipBalanced(toks(), i + 1, "(", ")");
        // Condition = between the first and second top-level `;` of a
        // classic for; the whole header for while / range-for.
        std::size_t condBegin = i + 2;
        std::size_t condEnd = headerEnd > 0 ? headerEnd - 1 : i + 2;
        if (t == "for") {
          std::size_t depth = 0;
          std::vector<std::size_t> semis;
          for (std::size_t j = i + 2; j < condEnd; ++j) {
            const std::string& h = toks()[j].text;
            if (h == "(" || h == "[" || h == "{") ++depth;
            if (h == ")" || h == "]" || h == "}") --depth;
            if (h == ";" && depth == 0) semis.push_back(j);
          }
          if (semis.size() >= 2) {
            // The init clause is an ordinary statement (may bind taint).
            statement(i + 2, semis[0], false);
            condBegin = semis[0] + 1;
            condEnd = semis[1];
          }
        }
        statement(condBegin, condEnd, true);
        stmtStart = headerEnd;
        i = headerEnd;
        continue;
      }
      if (t == ";" || t == "{" || t == "}") {
        statement(stmtStart, i, false);
        stmtStart = i + 1;
      }
      ++i;
    }
    statement(stmtStart, bodyEnd, false);
  }
};

void ruleTaintedSize(const RepoIndex& index,
                     std::map<std::string, std::vector<Finding>>& byFile) {
  for (const FileIndex& file : index.files) {
    for (const FunctionInfo& fn : file.functions) {
      TaintScan scan{file, fn, byFile[file.path], {}, {}};
      scan.run();
    }
  }
}

// ---------------------------------------------------------------------------
// R11 `wire-symmetry` — every field the encoder writes for a message kind
// must be read back by the decoder in the same order, width, and loop
// nesting (and vice versa). This is the static twin of the corpus
// round-trip oracle: a reordered or widened field desynchronizes the read
// cursor for every later field, which the corpus only catches for inputs
// it happens to contain. put*/get* helper pairs are checked first, then
// each kind's switch arms with helpers flattened in.

void ruleWireSymmetry(const ProtocolModel& model,
                      std::map<std::string, std::vector<Finding>>& byFile) {
  if (!model.hasCodec()) return;

  // Helper pairs, matched by suffix (putAuth <-> getAuth).
  std::map<std::string, std::pair<std::string, std::string>> pairs;
  for (const auto& [name, arm] : model.helpers) {
    (void)arm;
    const std::string suffix = helperSuffix(name);
    if (suffix.empty()) continue;
    if (name.compare(0, 3, "put") == 0) pairs[suffix].first = name;
    else pairs[suffix].second = name;
  }

  std::set<std::string> badHelpers;
  const auto compareSides =
      [&](const std::string& what, const CodecArm& encode,
          const CodecArm& decode) -> bool {
    const std::vector<WireOp> w = flattenOps(model, encode.ops, badHelpers);
    const std::vector<WireOp> r = flattenOps(model, decode.ops, badHelpers);
    const std::size_t common = std::min(w.size(), r.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (w[i].op != r[i].op) {
        byFile[r[i].file].push_back(
            {r[i].file, r[i].line, "wire-symmetry",
             what + " field #" + std::to_string(i + 1) +
                 ": encoder writes '" + w[i].op + "' but decoder reads '" +
                 r[i].op + "'; the wire layouts have diverged"});
        return false;
      }
      if (w[i].loopDepth != r[i].loopDepth) {
        byFile[r[i].file].push_back(
            {r[i].file, r[i].line, "wire-symmetry",
             what + " field #" + std::to_string(i + 1) + " ('" + w[i].op +
                 "'): encoder loop depth " + std::to_string(w[i].loopDepth) +
                 " vs decoder loop depth " + std::to_string(r[i].loopDepth) +
                 "; a repeated field is read a different number of times "
                 "than it is written"});
        return false;
      }
    }
    if (w.size() != r.size()) {
      const CodecArm& at = w.size() > r.size() ? decode : encode;
      byFile[at.file].push_back(
          {at.file, at.line, "wire-symmetry",
           what + ": encoder writes " + std::to_string(w.size()) +
               " fields but decoder reads " + std::to_string(r.size()) +
               "; trailing fields are silently dropped or invented"});
      return false;
    }
    return true;
  };

  for (const auto& [suffix, names] : pairs) {
    if (names.first.empty() || names.second.empty()) continue;
    const CodecArm& put = model.helpers.at(names.first);
    const CodecArm& get = model.helpers.at(names.second);
    if (!compareSides("wire helper pair " + names.first + "/" + names.second,
                      put, get)) {
      // Collapse the pair to a placeholder so one broken helper does not
      // cascade into every kind that calls it.
      badHelpers.insert(suffix);
    }
  }

  for (const std::string& kind : model.kinds) {
    const auto enc = model.encodeArms.find(kind);
    const auto dec = model.decodeArms.find(kind);
    const bool hasEnc = enc != model.encodeArms.end();
    const bool hasDec = dec != model.decodeArms.end();
    if (hasEnc && !hasDec) {
      byFile[enc->second.file].push_back(
          {enc->second.file, enc->second.line, "wire-symmetry",
           "message kind " + kind +
               " has an encode arm but no decode arm; every encodable kind "
               "must be parseable"});
      continue;
    }
    if (!hasEnc && hasDec) {
      byFile[dec->second.file].push_back(
          {dec->second.file, dec->second.line, "wire-symmetry",
           "message kind " + kind +
               " has a decode arm but no encode arm; dead parser or missing "
               "encoder"});
      continue;
    }
    if (hasEnc && hasDec) {
      compareSides("message kind " + kind, enc->second, dec->second);
    }
  }
}

// ---------------------------------------------------------------------------
// R12 `handler-exhaustive` — the dispatch plane must be closed: every kind
// a handler can send has a decode arm (a registered parser), every kind
// with a decode arm is reachable through some receive() dispatch arm, and
// every kind a dispatch arm names is actually parseable. A hole in any
// direction is a message that can be produced but never consumed (or
// parsed but never acted on) — exactly the silent-drop class the dynamic
// campaign can only find if a scenario happens to exercise the kind.

void ruleHandlerExhaustive(const ProtocolModel& model,
                           std::map<std::string, std::vector<Finding>>& byFile) {
  if (model.kindEnum.empty() || model.decodeArms.empty()) return;

  for (const SendSite& send : model.sends) {
    if (!model.decodeArms.contains(send.kind)) {
      byFile[send.file].push_back(
          {send.file, send.line, "handler-exhaustive",
           send.function + " sends " + send.kind +
               " but no decode arm parses it; the receiver will reject the "
               "message as malformed"});
    }
  }

  if (!model.receiveArms.empty()) {
    std::set<std::string> handled;
    for (const auto& [owner, kinds] : model.receiveArms) {
      (void)owner;
      handled.insert(kinds.begin(), kinds.end());
    }
    for (const auto& [kind, arm] : model.decodeArms) {
      if (!handled.contains(kind)) {
        byFile[arm.file].push_back(
            {arm.file, arm.line, "handler-exhaustive",
             "message kind " + kind +
                 " is parsed but no receive() dispatch arm handles it; the "
                 "kind is unreachable and will be silently dropped"});
      }
    }
    for (const auto& [owner, kinds] : model.receiveArms) {
      for (const std::string& kind : kinds) {
        if (!model.decodeArms.contains(kind)) {
          byFile[model.kindEnumFile].push_back(
              {model.kindEnumFile, 1, "handler-exhaustive",
               owner + "::receive dispatches on " + kind +
                   " but no decode arm parses it; the arm can never fire"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R13 `quorum-consistency` — every quorum-threshold comparison must
// normalize to a canonical certificate formula: the forms returned by the
// quorum-named helpers (2f+1 in this codebase) plus the PBFT weak
// certificate f+1 and the prepared-predicate 2f (self + 2f matching).
// A vote count compared against a bare integer literal is flagged as a
// magic-number quorum: it silently stops scaling when f changes.

void ruleQuorumConsistency(const ProtocolModel& model,
                           std::map<std::string, std::vector<Finding>>& byFile) {
  std::set<std::pair<int, int>> canonical(model.namedQuorumForms.begin(),
                                          model.namedQuorumForms.end());
  canonical.insert({2, 1});  // strong certificate 2f+1
  canonical.insert({1, 1});  // weak certificate f+1
  canonical.insert({2, 0});  // prepared: self + 2f matching

  const auto formula = [](int a, int b) {
    std::string s = a == 1 ? "f" : std::to_string(a) + "f";
    if (b != 0) s += "+" + std::to_string(b);
    return s;
  };

  for (const QuorumSite& site : model.quorums) {
    if (canonical.contains({site.a, site.b})) continue;
    byFile[site.file].push_back(
        {site.file, site.line, "quorum-consistency",
         "threshold '" + site.spelling + "' in " + site.function +
             " normalizes to " + formula(site.a, site.b) +
             ", which matches no canonical certificate formula (2f+1 strong, "
             "2f prepared, f+1 weak); inconsistent thresholds split the "
             "certificate"});
  }
  for (const MagicQuorumSite& site : model.magicQuorums) {
    byFile[site.file].push_back(
        {site.file, site.line, "quorum-consistency",
         "vote count '" + site.counted + "' is compared against the magic "
         "number " + std::to_string(site.literal) +
             "; spell the quorum as a function of f (e.g. config.quorum()) "
             "so it scales with the replica set"});
  }
}

// ---------------------------------------------------------------------------
// R14 `event-coverage` — every model-extracted protocol transition must
// have at least one runtime counter emission site (an increment of a
// counter whose name matches the transition). Coverage-guided exploration
// keys off these counters; a transition that fires without incrementing
// anything is invisible to the search and its instrumentation has rotted.

void ruleEventCoverage(const ProtocolModel& model,
                       std::map<std::string, std::vector<Finding>>& byFile) {
  for (const Transition& transition : model.transitions) {
    if (!transition.emissions.empty()) continue;
    byFile[transition.file].push_back(
        {transition.file, transition.line, "event-coverage",
         "protocol transition '" + transition.name + "' (" +
             transition.function +
             ") has no runtime counter emission; increment a counter such "
             "as " + transition.counter +
             " where the transition completes so coverage-guided search can "
             "observe it"});
  }
}

// ---------------------------------------------------------------------------
// R10 `stale-suppression` — every `avd-lint allow(rule)` directive must
// still suppress at least one finding of that rule on its covered lines.
// A stale directive is worse than none: it documents a defect that no
// longer exists and silently swallows the next real one. Like
// bad-suppression, R10 findings are themselves unsuppressible.

void ruleStaleSuppression(const FileIndex& file,
                          const std::vector<Finding>& rawFindings,
                          std::vector<Finding>& out) {
  for (const Directive& directive : file.suppressions.directives) {
    for (const std::string& rule : directive.rules) {
      bool live = false;
      for (const Finding& finding : rawFindings) {
        if (finding.rule == "bad-suppression" ||
            finding.rule == "stale-suppression") {
          continue;
        }
        if (!directive.coveredLines.contains(finding.line)) continue;
        if (rule == "*" || finding.rule == rule) {
          live = true;
          break;
        }
      }
      if (!live) {
        out.push_back({file.path, directive.line, "stale-suppression",
                       "avd-lint allow(" + rule +
                           ") suppresses nothing here; remove the stale "
                           "directive so it cannot mask a future finding"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Phase 4 rules (R15-R18) — consumers of the whole-program effect inference
// in effects.cpp. Each reports into the file that owns the witness token, so
// every finding stays suppressible at its own line.

// R15 `determinism-boundary` — the interprocedural generalization of R1:
// no wall-clock or ambient-rng effect may be *reachable* from the
// simulator/replica/controller scope, not merely spelled there. Direct
// leaves are reported at the leaf; effects imported through a callee
// outside the protected scope are reported at the call site with the
// witness chain (a protected callee reports at its own definition instead,
// so a deep chain yields one finding per function, not a cascade).

void ruleDeterminismBoundary(
    const RepoIndex& index, const EffectIndex& eff,
    std::map<std::string, std::vector<Finding>>& byFile) {
  for (std::size_t i = 0; i < eff.flat.size(); ++i) {
    const FileIndex& file = index.files[eff.flat[i].first];
    if (!determinismCriticalPath(file.path)) continue;
    if ((eff.fn[i].total & kEffectNondet) == 0) continue;
    const FunctionInfo& fn = file.functions[eff.flat[i].second];

    for (const LeafSite& leaf : harvestLeafSites(file, fn)) {
      const unsigned bits = leaf.effects & kEffectNondet;
      if (bits == 0) continue;
      byFile[file.path].push_back(
          {file.path, leaf.line, "determinism-boundary",
           "'" + leaf.name + "' is a nondeterministic effect (" +
               effectSetNames(bits) +
               ") in determinism-critical code; every run must be a pure "
               "function of the seed — draw time and randomness from "
               "common/rng",
           false});
    }

    std::set<std::pair<std::string, std::size_t>> reported;
    for (const CallSite& call : fn.calls) {
      if (globalCallForm(file.tokens, call.tokenIndex)) continue;
      auto [lo, hi] = index.functionsByName.equal_range(call.callee);
      for (auto it = lo; it != hi; ++it) {
        const std::size_t j = eff.flatIndex.at(it->second);
        const unsigned bits = eff.fn[j].total & kEffectNondet;
        if (bits == 0) continue;
        if (determinismCriticalPath(index.files[eff.flat[j].first].path)) {
          continue;  // the callee is in scope and reports itself
        }
        for (std::size_t b = 0; b < kEffectCount; ++b) {
          if ((bits & (1u << b)) == 0) continue;
          if (!reported.insert({call.callee, b}).second) continue;
          byFile[file.path].push_back(
              {file.path, call.line, "determinism-boundary",
               "call to '" + call.callee +
                   "' reaches the nondeterministic effect '" +
                   std::string(effectName(b)) + "' (root: " +
                   eff.fn[j].witness[b].root +
                   "); determinism-critical code must not observe wall "
                   "clocks or ambient rng — route through common/rng",
               false});
        }
      }
    }
  }
}

// R16 `syscall-discipline` — raw POSIX is an effect-module privilege, and
// interruptible syscalls must be written for the signal-rich world the
// fleet actually runs in: (a) a `::`-spelled POSIX call outside the
// designated modules is a boundary violation; (b) an interruptible call
// whose result is dropped, or whose enclosing body never mentions EINTR,
// turns every mid-call signal into silent corruption or a spurious
// failure.

void ruleSyscallDiscipline(const RepoIndex& index,
                           std::map<std::string, std::vector<Finding>>& byFile) {
  for (const FileIndex& file : index.files) {
    const bool designated = designatedEffectModule(file.path);
    for (const FunctionInfo& fn : file.functions) {
      const std::vector<LeafSite> leaves = harvestLeafSites(file, fn);
      bool bodyMentionsEintr = false;
      for (std::size_t i = fn.bodyBegin;
           i < fn.bodyEnd && i < file.tokens.size(); ++i) {
        if (isIdent(file.tokens, i) && file.tokens[i].text == "EINTR") {
          bodyMentionsEintr = true;
          break;
        }
      }
      for (const LeafSite& leaf : leaves) {
        if (!leaf.posix) continue;
        if (!designated) {
          byFile[file.path].push_back(
              {file.path, leaf.line, "syscall-discipline",
               "raw POSIX call '" + leaf.name +
                   "' outside the designated effect modules; route it "
                   "through common/framing, common/proc, common/logging, "
                   "campaign/journal, or campaign/fleet/shard",
               false});
        }
        if (!leaf.interruptible) continue;
        if (leaf.discarded) {
          byFile[file.path].push_back(
              {file.path, leaf.line, "syscall-discipline",
               "result of interruptible '" + leaf.name +
                   "' is discarded; bind it, check for failure, and retry "
                   "on EINTR",
               false});
        } else if (!bodyMentionsEintr) {
          byFile[file.path].push_back(
              {file.path, leaf.line, "syscall-discipline",
               "interruptible '" + leaf.name + "' in '" + fn.qualified +
                   "' has no EINTR handling; a signal mid-call surfaces as "
                   "a spurious failure — loop while errno == EINTR",
               false});
        }
      }
    }
  }
}

// R17 `durability-ordering` — crash consistency is an ordering contract:
//   (a) in journal/shard/checkpoint writers, an atomic-publish rename needs
//       a durability barrier on both sides — fsync the file *before* the
//       rename (or the new name can expose un-durable bytes) and fsync the
//       parent directory *after* it (or the rename itself is not durable
//       and the "committed" file vanishes on power loss);
//   (b) in the fleet, an outcome frame must not be sent before the same
//       outcome is appended to the worker's shard — ack-before-persist
//       means a coordinator crash after the ack cannot re-fold the outcome
//       from the shard on --resume.

bool durabilityWriterPath(const std::string& path) {
  return path.find("journal") != std::string::npos ||
         path.find("shard") != std::string::npos ||
         path.find("checkpoint") != std::string::npos;
}

/// True when any identifier inside the call's argument list is `ident`.
bool callArgsContainIdent(const std::vector<Token>& toks, std::size_t i,
                          const std::string& ident) {
  if (text(toks, i + 1) != "(") return false;
  const std::size_t end = skipBalanced(toks, i + 1, "(", ")");
  for (std::size_t j = i + 2; j + 1 < end; ++j) {
    if (isIdent(toks, j) && toks[j].text == ident) return true;
  }
  return false;
}

void ruleDurabilityOrdering(
    const RepoIndex& index,
    std::map<std::string, std::vector<Finding>>& byFile) {
  for (const FileIndex& file : index.files) {
    const bool writer = durabilityWriterPath(file.path);
    const bool fleet = file.path.find("fleet") != std::string::npos;
    if (!writer && !fleet) continue;
    const std::vector<Token>& toks = file.tokens;
    for (const FunctionInfo& fn : file.functions) {
      if (writer) {
        std::vector<std::size_t> barriers;
        std::vector<std::size_t> renames;
        for (std::size_t i = fn.bodyBegin;
             i < fn.bodyEnd && i < toks.size(); ++i) {
          if (!isIdent(toks, i) || text(toks, i + 1) != "(") continue;
          const std::string& name = toks[i].text;
          const std::string& prev = i > 0 ? toks[i - 1].text : kEmptyTokenText;
          const bool member = prev == "." || prev == "->";
          if (member ? name == "sync"
                     : (lowered(name).find("fsync") != std::string::npos ||
                        name == "fdatasync")) {
            barriers.push_back(i);
          } else if (!member && (name == "rename" || name == "renameat")) {
            renames.push_back(i);
          }
        }
        for (std::size_t r : renames) {
          bool before = false;
          bool after = false;
          for (std::size_t b : barriers) {
            if (b < r) before = true;
            if (b > r) after = true;
          }
          if (!before) {
            byFile[file.path].push_back(
                {file.path, toks[r].line, "durability-ordering",
                 "rename without a preceding fsync: a crash can publish "
                 "the destination name with un-durable bytes — fsync the "
                 "file before renaming over the target",
                 false});
          }
          if (!after) {
            byFile[file.path].push_back(
                {file.path, toks[r].line, "durability-ordering",
                 "rename without a following parent-directory fsync: the "
                 "rename is not durable until the directory entry is "
                 "synced, so the published file can vanish after power "
                 "loss",
                 false});
          }
        }
      }
      if (fleet) {
        std::size_t firstPersist = SIZE_MAX;
        std::vector<std::size_t> sends;
        for (std::size_t i = fn.bodyBegin;
             i < fn.bodyEnd && i < toks.size(); ++i) {
          if (!isIdent(toks, i)) continue;
          const std::string& name = toks[i].text;
          if (name != "append" && name != "writeFrame") continue;
          if (!callArgsContainIdent(toks, i, "encodeDone")) continue;
          if (name == "append") {
            firstPersist = std::min(firstPersist, i);
          } else {
            sends.push_back(i);
          }
        }
        for (std::size_t s : sends) {
          if (firstPersist < s) continue;
          byFile[file.path].push_back(
              {file.path, toks[s].line, "durability-ordering",
               "outcome frame is sent before the shard append "
               "(ack-before-persist): a coordinator crash after this send "
               "cannot re-fold the outcome from the shard on --resume — "
               "append to the shard first",
               false});
        }
      }
    }
  }
}

// R18 `blocking-under-lock` — joins the phase-1 held-lock sets with the
// effect inference: a call made while a mutex is held must not reach a
// blocking effect (sleep, join, blocking syscall), because a blocked
// holder stalls every contender — and under the fleet's signal/kill
// schedule, possibly forever. Condition-variable waits are the sanctioned
// exception (they release the lock while parked).

void ruleBlockingUnderLock(
    const RepoIndex& index, const EffectIndex& eff,
    std::map<std::string, std::vector<Finding>>& byFile) {
  static const std::set<std::string> kCondvarOps = {
      "wait", "wait_for", "wait_until", "notify_one", "notify_all"};
  for (std::size_t i = 0; i < eff.flat.size(); ++i) {
    const FileIndex& file = index.files[eff.flat[i].first];
    const FunctionInfo& fn = file.functions[eff.flat[i].second];
    bool anyHeld = false;
    for (const CallSite& call : fn.calls) {
      if (!call.heldLocks.empty()) {
        anyHeld = true;
        break;
      }
    }
    if (!anyHeld) continue;

    const std::vector<LeafSite> leaves = harvestLeafSites(file, fn);
    std::map<std::size_t, const LeafSite*> leafAt;
    for (const LeafSite& leaf : leaves) leafAt[leaf.tokenIndex] = &leaf;

    for (const CallSite& call : fn.calls) {
      if (call.heldLocks.empty()) continue;

      // A blocking leaf at the call token itself (::waitpid, sleep_for,
      // thread.join) is conclusive, even for names the condvar exception
      // would otherwise cover.
      std::string how;
      if (const auto it = leafAt.find(call.tokenIndex);
          it != leafAt.end() && (it->second->effects & kEffectBlock) != 0) {
        how = "'" + it->second->name + "'";
      } else if (!kCondvarOps.contains(call.callee) &&
                 !globalCallForm(file.tokens, call.tokenIndex)) {
        auto [lo, hi] = index.functionsByName.equal_range(call.callee);
        for (auto jt = lo; jt != hi; ++jt) {
          const std::size_t j = eff.flatIndex.at(jt->second);
          if ((eff.fn[j].total & kEffectBlock) == 0) continue;
          const std::size_t blockBit = 5;  // log2(kEffectBlock)
          how = "'" + call.callee + "' which reaches " +
                eff.fn[j].witness[blockBit].root;
          break;
        }
      }
      if (how.empty()) continue;

      std::string held;
      std::set<std::string> seen;
      for (std::size_t lockIdx : call.heldLocks) {
        const std::string& id = fn.locks[lockIdx].mutexId;
        if (!seen.insert(id).second) continue;
        if (!held.empty()) held += ", ";
        held += "'" + id + "'";
      }
      byFile[file.path].push_back(
          {file.path, call.line, "blocking-under-lock",
           "'" + fn.qualified + "' blocks in " + how + " while holding " +
               held +
               "; a blocked holder stalls every contender — release the "
               "lock before waiting",
           false});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface

const std::vector<RuleInfo>& ruleRegistry() {
  static const std::vector<RuleInfo> kRules = {
      {"nondeterminism",
       "R1: no libc/chrono randomness or wall clocks outside common/rng; "
       "consensus paths must replay from a seed"},
      {"unchecked-parse",
       "R2: std::optional-returning and wire parse functions are "
       "[[nodiscard]]; ByteReader results must not be dropped"},
      {"uncapped-reserve",
       "R3: no reserve()/resize() on a parsed wire count without a "
       "compile-time kCap clamp"},
      {"naked-lock",
       "R4: no manual mutex lock()/unlock(); RAII guards only"},
      {"unordered-iter",
       "R5: no hash-container iteration in the ordering-sensitive loops of "
       "pbft/replica.cpp, avd/controller.cpp, campaign/runner.cpp, "
       "campaign/dedup.cpp, campaign/fleet/{coordinator,shard,worker}.cpp, "
       "faultinject/churn.cpp, faultinject/flood.cpp, or sim/network.cpp"},
      {"detached-thread",
       "R6: no std::thread::detach(); every thread must have an owner "
       "that joins it"},
      {"lock-order",
       "R7: the cross-file lock-acquisition graph must be acyclic; a cycle "
       "or re-acquisition is a potential deadlock (cross-checked at runtime "
       "by common/lockdep under AVD_SANITIZE)"},
      {"timer-capture",
       "R8: setTimer callbacks capture by value only — no [&], no &name, "
       "no iterators into mutable containers"},
      {"tainted-size",
       "R9: a ByteReader length read must be clamped against a k*Cap "
       "constant or remaining() before sizing an allocation or bounding a "
       "loop"},
      {"wire-symmetry",
       "R11: every field encode* writes for a message kind is read by the "
       "matching decode* in the same order, width, and loop nesting — and "
       "vice versa (static twin of the corpus round-trip oracle)"},
      {"handler-exhaustive",
       "R12: every kind a handler sends has a registered decode arm, every "
       "parsed kind reaches a receive() dispatch arm, and every dispatched "
       "kind is parseable"},
      {"quorum-consistency",
       "R13: quorum thresholds normalize to a canonical certificate formula "
       "(2f+1 / 2f / f+1); vote counts must not be compared against magic "
       "integer literals"},
      {"event-coverage",
       "R14: every model-extracted protocol transition (view change, "
       "checkpoint, state transfer, park/unpark, quota drop, ingress "
       "overflow, crash/rejoin) has a runtime counter emission site"},
      {"determinism-boundary",
       "R15: no wall-clock or ambient-rng effect is reachable through the "
       "call graph from sim/pbft/avd code, except via common/rng (the "
       "whole-program generalization of R1)"},
      {"syscall-discipline",
       "R16: raw POSIX calls are confined to common/framing, common/proc, "
       "common/logging, campaign/journal, and campaign/fleet/shard; every "
       "interruptible call checks its result and retries on EINTR"},
      {"durability-ordering",
       "R17: journal/shard/checkpoint writers order write -> fsync -> "
       "rename -> parent-dir fsync, and fleet workers append an outcome "
       "to their shard before sending the frame (no ack-before-persist)"},
      {"blocking-under-lock",
       "R18: no blocking effect (sleep, join, blocking syscall) is "
       "reachable from a call made while a mutex is held; condvar waits "
       "are the sanctioned exception"},
      {"stale-suppression",
       "R10: an avd-lint allow() directive that no longer suppresses a "
       "finding is itself an error"},
      {"bad-suppression",
       "meta: avd-lint allow() directives must name known rules"},
  };
  return kRules;
}

bool isKnownRule(std::string_view rule) {
  const auto& rules = ruleRegistry();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const RuleInfo& info) { return info.id == rule; });
}

std::vector<Finding> lintFiles(const std::vector<SourceFile>& files,
                               const Options& options) {
  // Phase 1: repo-wide semantic index (lex + symbols + locks + calls).
  RepoIndex index = buildIndex(files);

  // R5 harvests declarations only from its path scope.
  std::set<std::string> unorderedNames;
  for (const FileIndex& file : index.files) {
    if (unorderedDeclScope(file.path)) {
      unorderedNames.insert(file.unorderedDecls.begin(),
                            file.unorderedDecls.end());
    }
  }

  // Phase 2a: per-file token rules (R1-R6).
  std::map<std::string, std::vector<Finding>> byFile;
  for (const FileIndex& file : index.files) {
    std::vector<Finding>& local = byFile[file.path];
    Ctx ctx{file.path, file.tokens, local};
    ruleNondeterminism(ctx);
    ruleUncheckedParse(ctx);
    ruleUncappedReserve(ctx);
    ruleNakedLock(ctx);
    ruleUnorderedIter(ctx, unorderedNames);
    ruleDetachedThread(ctx);
  }

  // Phase 2b: cross-file index rules (R7-R9).
  ruleLockOrder(index, byFile);
  ruleTimerCapture(index, byFile);
  ruleTaintedSize(index, byFile);

  // Phase 3: protocol-model extraction and the conformance rules
  // (R11-R14). The model is empty when no pbft/sim sources are in the
  // set, which makes every phase-3 rule vacuous.
  const ProtocolModel model = extractModel(index);
  ruleWireSymmetry(model, byFile);
  ruleHandlerExhaustive(model, byFile);
  ruleQuorumConsistency(model, byFile);
  ruleEventCoverage(model, byFile);

  // Phase 4: whole-program effect inference (leaf harvest + call-graph
  // fixpoint) and its consumers (R15-R18).
  const EffectIndex effects = inferEffects(index);
  ruleDeterminismBoundary(index, effects, byFile);
  ruleSyscallDiscipline(index, byFile);
  ruleDurabilityOrdering(index, byFile);
  ruleBlockingUnderLock(index, effects, byFile);

  // Phase 2c: suppression audit (R10) over the pre-suppression findings,
  // then suppression application and directive errors.
  std::vector<Finding> findings;
  for (const FileIndex& file : index.files) {
    std::vector<Finding>& local = byFile[file.path];
    ruleStaleSuppression(file, local, local);

    const auto& allowed = file.suppressions.byLine;
    for (Finding& finding : local) {
      if (finding.rule == "stale-suppression") continue;  // unsuppressible
      if (const auto it = allowed.find(finding.line); it != allowed.end()) {
        finding.suppressed =
            it->second.contains("*") || it->second.contains(finding.rule);
      }
    }
    // Directive errors are never suppressible.
    local.insert(local.end(), file.suppressions.errors.begin(),
                 file.suppressions.errors.end());

    for (Finding& finding : local) {
      if (!finding.suppressed || options.includeSuppressed) {
        findings.push_back(std::move(finding));
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

std::vector<Finding> lintSource(std::string_view path, std::string_view text,
                                const Options& options) {
  return lintFiles({{std::string(path), std::string(text)}}, options);
}

std::string toJson(const std::vector<Finding>& findings) {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            static constexpr char kHex[] = "0123456789abcdef";
            out += "\\u00";
            out.push_back(kHex[(c >> 4) & 0xF]);
            out.push_back(kHex[c & 0xF]);
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  };
  std::string json = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) json += ",";
    json += "\n  {\"file\": \"" + escape(f.file) + "\", \"line\": " +
            std::to_string(f.line) + ", \"rule\": \"" + escape(f.rule) +
            "\", \"suppressed\": " + (f.suppressed ? "true" : "false") +
            ", \"message\": \"" + escape(f.message) + "\"}";
  }
  json += findings.empty() ? "]" : "\n]";
  json += "\n";
  return json;
}

std::vector<Finding> parseFindingsJson(std::string_view json) {
  // A minimal parser for the flat format toJson() emits: an array of
  // objects whose values are strings, integers, or booleans. Anything it
  // does not recognize is skipped.
  std::vector<Finding> findings;
  std::size_t i = 0;
  const std::size_t n = json.size();

  const auto skipSpace = [&] {
    while (i < n && std::isspace(static_cast<unsigned char>(json[i]))) ++i;
  };
  const auto parseString = [&]() -> std::string {
    std::string out;
    ++i;  // opening quote
    while (i < n && json[i] != '"') {
      if (json[i] == '\\' && i + 1 < n) {
        ++i;
        switch (json[i]) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned value = 0;
            for (int d = 0; d < 4 && i + 1 < n; ++d) {
              const char c = json[++i];
              value <<= 4;
              if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
            }
            out.push_back(static_cast<char>(value & 0xFF));
            break;
          }
          default: out.push_back(json[i]);
        }
      } else {
        out.push_back(json[i]);
      }
      ++i;
    }
    if (i < n) ++i;  // closing quote
    return out;
  };

  while (i < n) {
    if (json[i] != '{') {
      ++i;
      continue;
    }
    ++i;
    Finding finding;
    for (;;) {
      skipSpace();
      if (i >= n || json[i] == '}') {
        if (i < n) ++i;
        break;
      }
      if (json[i] != '"') {
        ++i;
        continue;
      }
      const std::string key = parseString();
      skipSpace();
      if (i < n && json[i] == ':') ++i;
      skipSpace();
      if (i < n && json[i] == '"') {
        const std::string value = parseString();
        if (key == "file") finding.file = value;
        else if (key == "rule") finding.rule = value;
        else if (key == "message") finding.message = value;
      } else {
        std::string raw;
        while (i < n && json[i] != ',' && json[i] != '}') raw.push_back(json[i++]);
        while (!raw.empty() && std::isspace(static_cast<unsigned char>(raw.back()))) {
          raw.pop_back();
        }
        if (key == "line") {
          std::size_t value = 0;
          for (char c : raw) {
            if (c >= '0' && c <= '9') value = value * 10 + static_cast<std::size_t>(c - '0');
          }
          finding.line = value;
        } else if (key == "suppressed") {
          finding.suppressed = raw == "true";
        }
      }
      skipSpace();
      if (i < n && json[i] == ',') ++i;
    }
    if (!finding.rule.empty()) findings.push_back(std::move(finding));
  }
  return findings;
}

std::vector<Finding> diffAgainstBaseline(
    const std::vector<Finding>& current,
    const std::vector<Finding>& baseline) {
  std::map<std::string, std::size_t> budget;
  for (const Finding& f : baseline) {
    budget[f.file + '\0' + f.rule + '\0' + f.message] += 1;
  }
  std::vector<Finding> fresh;
  for (const Finding& f : current) {
    const std::string key = f.file + '\0' + f.rule + '\0' + f.message;
    if (const auto it = budget.find(key);
        it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(f);
  }
  return fresh;
}

std::size_t unsuppressedCount(const std::vector<Finding>& findings) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [](const Finding& f) { return !f.suppressed; }));
}

}  // namespace avd::lint
