// avd_lint phase 1 — repo-wide semantic index.
//
// Phase 1 walks every translation unit once and extracts the facts the
// cross-file rules reason over: function definitions (with owning class),
// mutex declarations (class members, locals, globals), RAII lock-acquisition
// sites with their lexical scopes, call sites with the set of locks held at
// the call, `setTimer` callback lambdas with their capture lists, iterator-
// typed locals, and `ByteReader` read sites. Phase 2 (lint.cpp) runs the
// rule families over the finished index; nothing in this module reports
// findings except the lexer's directive errors carried through.
//
// The index is deliberately an over-approximation: scopes are tracked by
// brace depth, lambdas are attributed to their enclosing function, and
// callees are resolved by unqualified name. Rules that consume it are
// written so the over-approximation can only widen, never miss, a class of
// defect — and every rule remains suppressible at the witness line.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace avd::lint {

/// A scoped RAII guard acquisition (lock_guard/unique_lock/scoped_lock).
struct LockSite {
  std::string mutexName;     // identifier at the guard site (e.g. "mutex_")
  std::string mutexId;       // canonical identity, resolved by finishIndex()
  std::size_t tokenIndex = 0;
  std::size_t line = 0;
  std::size_t scopeDepth = 0;  // brace depth where the guard lives
  std::size_t scopeEnd = 0;    // token index where the guard dies
  bool deferred = false;       // std::defer_lock / try_to_lock: not acquired
};

/// A call site inside a function body, with the locks held at that token.
struct CallSite {
  std::string callee;  // unqualified name
  std::size_t tokenIndex = 0;
  std::size_t line = 0;
  std::vector<std::size_t> heldLocks;  // indices into FunctionInfo::locks
};

/// One setTimer(...) invocation whose callback is a lambda literal.
struct TimerLambda {
  std::size_t line = 0;
  bool capturesAllByRef = false;        // [&] default capture
  std::vector<std::string> refCaptures;    // [&name] explicit by-reference
  std::vector<std::string> valueCaptures;  // [name] / [name = init] by value
};

/// A `reader.u32()`-family read, with the variable it initializes (if the
/// statement is a declaration) — the taint source set for R9.
struct ReaderRead {
  std::string accessor;       // u8/u16/u32/u64/i64/blob/str
  std::string boundVariable;  // "" when the result is not bound to a name
  std::size_t line = 0;
};

struct FunctionInfo {
  std::string name;       // unqualified (constructors keep the class name)
  std::string owner;      // qualifying/enclosing class, may be empty
  std::string qualified;  // owner::name or name
  std::size_t line = 0;
  std::size_t bodyBegin = 0;  // token index of the opening '{'
  std::size_t bodyEnd = 0;    // token index one past the closing '}'
  std::vector<LockSite> locks;
  std::vector<CallSite> calls;
  std::vector<TimerLambda> timers;
  std::vector<ReaderRead> readerReads;
  std::set<std::string> iteratorLocals;  // names assigned from begin()/find()
  std::set<std::string> localMutexes;    // mutexes declared in the body
};

struct FileIndex {
  std::string path;
  std::vector<Token> tokens;
  Suppressions suppressions;
  std::vector<FunctionInfo> functions;
  /// class -> mutex member names declared in this file.
  std::map<std::string, std::set<std::string>> classMutexMembers;
  /// Namespace-scope mutexes declared in this file.
  std::set<std::string> globalMutexes;
  /// Variables declared as unordered_map/unordered_set (R5 harvest).
  std::set<std::string> unorderedDecls;
};

struct RepoIndex {
  std::vector<FileIndex> files;
  /// Merged across files: class -> mutex member names.
  std::map<std::string, std::set<std::string>> classMutexMembers;
  /// Merged namespace-scope mutexes.
  std::set<std::string> globalMutexes;
  /// Unqualified function name -> (file index, function index) definitions.
  std::multimap<std::string, std::pair<std::size_t, std::size_t>>
      functionsByName;
};

/// Phase 1: lex and index every file, then resolve mutex identities
/// (member locks to "Class::name", locals to "function:name") across the
/// whole set.
RepoIndex buildIndex(const std::vector<SourceFile>& files);

}  // namespace avd::lint
