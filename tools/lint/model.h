// avd_lint phase 3 — static protocol-model extraction.
//
// Phase 3 walks the phase-1 semantic index over the protocol sources
// (`src/pbft/` + `src/sim/`) and reconstructs the message-plane model the
// protocol rules (R11-R14) reason over:
//
//   - the message-kind enum (`MsgKind`) with enumerator values,
//   - the message-struct -> kind map (from `kind()` overrides),
//   - every encode/decode function with the ordered field writes/reads in
//     each per-kind switch arm (primitive ByteWriter/ByteReader accessor
//     ops plus put*/get* helper calls, annotated with loop depth),
//   - every put*/get* wire helper with its own op sequence,
//   - every `receive()` dispatch arm and the kinds it consumes,
//   - every message-construction (send) site,
//   - every quorum-threshold comparison normalized to a linear `a*f + b`
//     form (resolving `quorum()`-style named definitions),
//   - every `setTimer` arming site, and
//   - every protocol transition (view change, checkpoint, state transfer,
//     park/unpark, quota drop, ingress overflow, crash/rejoin) with the
//     runtime counter emission sites that observe it.
//
// The same model drives the generated runtime event taxonomy
// (`src/avd/gen/protocol_events.h`, via `avd_lint --gen-events`): the
// coverage map key space for ROADMAP item 2 is derived mechanically from
// the sources instead of being hand-maintained in three places.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "index.h"

namespace avd::lint {

/// One wire field operation: a primitive ByteWriter/ByteReader accessor
/// (`u8/u16/u32/u64/i64/blob/str`) or a put*/get* helper call.
struct WireOp {
  std::string op;        // accessor name, or the helper callee name
  bool isCall = false;   // true for put*/get* helper calls
  std::size_t loopDepth = 0;  // 0 at statement level, +1 per enclosing loop
  std::string file;
  std::size_t line = 0;
};

/// One side (encode or decode) of a kind's codec: the ordered ops of its
/// switch arm, with the arm's location.
struct CodecArm {
  bool present = false;
  std::string file;
  std::size_t line = 0;
  std::vector<WireOp> ops;
};

/// A `make_shared<SomeMessage>` construction site — the static send set.
struct SendSite {
  std::string kind;      // enumerator, e.g. "kPrepare"
  std::string function;  // qualified enclosing function
  std::string file;
  std::size_t line = 0;
};

/// A quorum-threshold expression adjacent to a comparison, normalized to
/// `a*f + b` (e.g. `2*f+1` -> {2,1}, `config_.quorum()` resolved through
/// its definition).
struct QuorumSite {
  int a = 0;
  int b = 0;
  bool fromNamedDefinition = false;  // resolved via a quorum() call
  std::string spelling;              // as written, for diagnostics
  std::string function;              // qualified enclosing function
  std::string file;
  std::size_t line = 0;
};

/// A count-vs-integer-literal comparison in protocol code (a candidate
/// magic-number quorum).
struct MagicQuorumSite {
  std::string counted;  // the vote-count identifier being compared
  long long literal = 0;
  std::string file;
  std::size_t line = 0;
};

/// One setTimer(...) arming site.
struct TimerArmSite {
  std::string function;  // qualified enclosing function
  std::string file;
  std::size_t line = 0;
};

/// A runtime counter write (`++x`, `x++`, `x += ...`, `x = ...`) whose
/// identifier matches a transition's counter pattern.
struct EmissionSite {
  std::string counter;  // the matched identifier
  std::string file;
  std::size_t line = 0;
};

/// A model-extracted protocol transition: the trigger function exists in
/// the indexed sources; `emissions` holds every counter write observing it.
struct Transition {
  std::string name;        // e.g. "state-transfer"
  std::string enumName;    // generated-event enumerator, e.g. "kStateTransfer"
  std::string counter;     // canonical runtime counter name
  std::string function;    // qualified trigger function
  std::string file;
  std::size_t line = 0;
  std::vector<EmissionSite> emissions;
};

struct ProtocolModel {
  /// Name of the message-kind enum ("" when no protocol sources are in
  /// the file set — every rule over the model is then vacuous).
  std::string kindEnum;
  std::string kindEnumFile;
  /// Enumerators in declaration order with their values.
  std::vector<std::string> kinds;
  std::map<std::string, std::uint32_t> kindValues;
  /// Message struct -> enumerator (from `kind()` overrides).
  std::map<std::string, std::string> structToKind;
  /// Per-kind codec arms.
  std::map<std::string, CodecArm> encodeArms;
  std::map<std::string, CodecArm> decodeArms;
  /// put*/get* helper name -> its op sequence (unflattened).
  std::map<std::string, CodecArm> helpers;
  /// receive() dispatch: owner class -> kinds referenced in its body.
  std::map<std::string, std::set<std::string>> receiveArms;
  std::vector<SendSite> sends;
  std::vector<QuorumSite> quorums;
  std::vector<MagicQuorumSite> magicQuorums;
  /// Linear forms of quorum-named definitions (e.g. quorum() -> {2,1}).
  std::vector<std::pair<int, int>> namedQuorumForms;
  std::vector<TimerArmSite> timers;
  std::vector<Transition> transitions;

  bool hasCodec() const {
    return !encodeArms.empty() || !decodeArms.empty();
  }
};

/// True for files the protocol model is extracted from.
bool inModelScope(const std::string& path);

/// Extracts the protocol model from the phase-1 index. Files outside the
/// model scope (neither `pbft/` nor `sim/` in the path) are ignored.
ProtocolModel extractModel(const RepoIndex& index);

/// Flattens a codec arm's op sequence: helper calls whose definition is in
/// the model are spliced in (loop depths compose); unknown helpers stay
/// opaque. `badHelpers` (asymmetric pairs already reported) collapse to a
/// matching placeholder so one broken helper doesn't cascade into every
/// kind that uses it.
std::vector<WireOp> flattenOps(const ProtocolModel& model,
                               const std::vector<WireOp>& ops,
                               const std::set<std::string>& badHelpers);

/// Strips the put/get prefix from a helper name and lowercases the rest:
/// putAuth/getAuth -> "auth". Returns "" when the name has no such prefix.
std::string helperSuffix(const std::string& name);

/// Renders the generated runtime event taxonomy header
/// (`src/avd/gen/protocol_events.h`) from the model. Deterministic: same
/// sources, same bytes.
std::string generateEventsHeader(const ProtocolModel& model);

}  // namespace avd::lint
