// avd_lint phase 3 — protocol-model extraction (see model.h).
//
// Everything here is derived from the phase-1 index plus one more token
// walk per function body. The extraction is an over-approximation in the
// same spirit as phase 1: op order and loop depth are tracked exactly,
// helper calls are resolved by name repo-wide, and anything the model
// cannot see (an undefined helper, a non-literal enumerator value) stays
// opaque rather than guessed at.
#include "model.h"

#include <algorithm>
#include <cctype>
#include <functional>

#include "lexer.h"

namespace avd::lint {
namespace {

const std::set<std::string>& wireAccessorSet() {
  static const std::set<std::string> kAccessors = {
      "u8", "u16", "u32", "u64", "i64", "blob", "str"};
  return kAccessors;
}

/// The protocol-transition spec: the one authoritative list tying each
/// transition to its trigger function (matched by lowered-substring), its
/// canonical runtime counter, and the counter-identifier patterns R14
/// accepts as an emission site. The generated taxonomy's transition events
/// come from this table, filtered to triggers that exist in the sources.
struct TransitionSpec {
  const char* name;       // taxonomy name suffix, e.g. "state-transfer"
  const char* enumName;   // generated enumerator, e.g. "kStateTransfer"
  const char* trigger;    // lowered substring of the trigger function name
  const char* counter;    // canonical counter for the generated metadata
  std::vector<const char*> patterns;  // lowered substrings of emission idents
};

const std::vector<TransitionSpec>& transitionSpecs() {
  static const std::vector<TransitionSpec> kSpecs = {
      {"view-change", "kViewChange", "startviewchange",
       "ReplicaStats::viewChangesInitiated", {"viewchange"}},
      {"checkpoint", "kCheckpoint", "takecheckpoint",
       "ReplicaStats::checkpointsTaken", {"checkpoint"}},
      {"state-transfer", "kStateTransfer", "requeststatetransfer",
       "ReplicaStats::stateTransfersCompleted", {"statetransfer"}},
      {"park-unpark", "kParkUnpark", "retrypendingpreprepares",
       "ReplicaStats::prePreparesPended", {"prepreparespended", "parked"}},
      {"quota-drop", "kQuotaDrop", "admitrequest",
       "ReplicaStats::quotaDrops", {"quotadrop"}},
      {"ingress-overflow", "kIngressOverflow", "enqueueingress",
       "NetworkCounters::droppedQueueOverflow",
       {"droppedqueueoverflow", "queueoverflow"}},
      {"crash-rejoin", "kCrashRejoin", "onrestart",
       "SimNode::restarts", {"restart"}},
  };
  return kSpecs;
}

bool allDigits(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

long long digitValue(const std::string& s) {
  long long value = 0;
  for (char c : s) value = value * 10 + (c - '0');
  return value;
}

bool isPutGetName(const std::string& name) {
  if (name.size() < 4) return false;
  if (name.compare(0, 3, "put") != 0 && name.compare(0, 3, "get") != 0) {
    return false;
  }
  return std::isupper(static_cast<unsigned char>(name[3])) != 0;
}

// --- Wire-op collection ----------------------------------------------------

struct RawOp {
  WireOp op;
  std::size_t tokenIndex = 0;
  bool isWrite = false;
};

/// Collects primitive writer/reader accessor ops and put*/get* helper calls
/// in the token range [begin, end), annotated with the loop depth at the
/// op (braced for/while/do bodies only — the wire codec has no others).
std::vector<RawOp> collectOps(const FileIndex& file, std::size_t begin,
                              std::size_t end) {
  const std::vector<Token>& toks = file.tokens;
  std::vector<RawOp> ops;
  std::vector<std::size_t> loopEnds;  // token index one past each loop body
  for (std::size_t i = begin; i < end; ++i) {
    while (!loopEnds.empty() && i >= loopEnds.back()) loopEnds.pop_back();
    if (!isIdent(toks, i)) continue;
    const std::string& name = toks[i].text;

    if (name == "for" || name == "while") {
      if (text(toks, i + 1) != "(") continue;
      const std::size_t afterCond = skipBalanced(toks, i + 1, "(", ")");
      if (text(toks, afterCond) == "{") {
        loopEnds.push_back(skipBalanced(toks, afterCond, "{", "}"));
      } else {
        // Unbraced body: the loop covers the single statement up to the
        // next ';' at bracket depth 0 (`for (...) writer.u64(tag);`).
        std::size_t depth = 0;
        std::size_t j = afterCond;
        while (j < end) {
          const std::string& t = toks[j].text;
          if (t == "(" || t == "[" || t == "{") ++depth;
          if (t == ")" || t == "]" || t == "}") --depth;
          if (t == ";" && depth == 0) break;
          ++j;
        }
        loopEnds.push_back(j + 1);
      }
      continue;
    }
    if (name == "do" && text(toks, i + 1) == "{") {
      loopEnds.push_back(skipBalanced(toks, i + 1, "{", "}"));
      continue;
    }

    // Primitive accessor on a writer-ish / reader-ish receiver.
    if (wireAccessorSet().contains(name) && i >= 2 &&
        (text(toks, i - 1) == "." || text(toks, i - 1) == "->") &&
        isIdent(toks, i - 2) && text(toks, i + 1) == "(") {
      const std::string receiver = lowered(toks[i - 2].text);
      const bool write = receiver.find("writer") != std::string::npos;
      const bool read = receiver.find("reader") != std::string::npos;
      if (!write && !read) continue;
      ops.push_back({{name, false, loopEnds.size(), file.path, toks[i].line},
                     i,
                     write});
      continue;
    }

    // put*/get* helper call (free function; `getPhase<T>(...)` included).
    if (isPutGetName(name) && (i == 0 || (text(toks, i - 1) != "." &&
                                          text(toks, i - 1) != "->" &&
                                          text(toks, i - 1) != "::"))) {
      std::size_t call = i + 1;
      if (text(toks, call) == "<") call = skipBalanced(toks, call, "<", ">");
      if (text(toks, call) != "(") continue;
      ops.push_back({{name, true, loopEnds.size(), file.path, toks[i].line},
                     i,
                     name.compare(0, 3, "put") == 0});
    }
  }
  return ops;
}

// --- Enum extraction -------------------------------------------------------

struct EnumDef {
  std::string name;
  std::string file;
  std::vector<std::string> enumerators;
  std::map<std::string, std::uint32_t> values;
};

void collectEnums(const FileIndex& file, std::vector<EnumDef>& out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!isIdent(toks, i) || toks[i].text != "enum") continue;
    std::size_t nameAt = i + 1;
    if (text(toks, nameAt) == "class" || text(toks, nameAt) == "struct") {
      ++nameAt;
    }
    if (!isIdent(toks, nameAt)) continue;
    std::size_t j = nameAt + 1;
    if (text(toks, j) == ":") {
      while (j < toks.size() && text(toks, j) != "{" && text(toks, j) != ";") {
        ++j;
      }
    }
    if (text(toks, j) != "{") continue;  // forward declaration
    const std::size_t bodyEnd = skipBalanced(toks, j, "{", "}");

    EnumDef def;
    def.name = toks[nameAt].text;
    def.file = file.path;
    std::uint32_t next = 0;
    std::size_t k = j + 1;
    while (k + 1 < bodyEnd) {
      if (!isIdent(toks, k)) {
        ++k;
        continue;
      }
      const std::string& enumerator = toks[k].text;
      std::uint32_t value = next;
      if (text(toks, k + 1) == "=" && k + 2 < bodyEnd &&
          allDigits(text(toks, k + 2))) {
        value = static_cast<std::uint32_t>(digitValue(toks[k + 2].text));
      }
      def.enumerators.push_back(enumerator);
      def.values[enumerator] = value;
      next = value + 1;
      // Advance past the initializer to the separating comma.
      std::size_t depth = 0;
      ++k;
      while (k + 1 < bodyEnd) {
        const std::string& t = toks[k].text;
        if (t == "(" || t == "{" || t == "[") ++depth;
        if (t == ")" || t == "}" || t == "]") --depth;
        if (t == "," && depth == 0) {
          ++k;
          break;
        }
        ++k;
      }
    }
    if (!def.enumerators.empty()) out.push_back(std::move(def));
    i = bodyEnd;
  }
}

// --- Switch-arm segmentation -----------------------------------------------

struct ArmRef {
  std::string enumerator;  // "" for default or a non-kind label
  std::size_t caseTok = 0;
  std::size_t armBegin = 0;
  std::size_t armEnd = 0;
};

std::vector<ArmRef> switchArms(const std::vector<Token>& toks,
                               std::size_t bodyBegin, std::size_t bodyEnd,
                               const std::string& enumName,
                               const std::set<std::string>& enumerators) {
  std::vector<ArmRef> arms;
  for (std::size_t i = bodyBegin; i < bodyEnd; ++i) {
    if (!isIdent(toks, i) || toks[i].text != "switch") continue;
    if (text(toks, i + 1) != "(") continue;
    const std::size_t afterCond = skipBalanced(toks, i + 1, "(", ")");
    if (text(toks, afterCond) != "{") continue;
    const std::size_t swEnd = skipBalanced(toks, afterCond, "{", "}");

    std::vector<ArmRef> local;
    std::size_t depth = 0;
    for (std::size_t j = afterCond + 1; j + 1 < swEnd; ++j) {
      const std::string& t = toks[j].text;
      if (t == "{") ++depth;
      if (t == "}") --depth;
      if (depth != 0 || toks[j].kind != TokKind::kIdent) continue;
      if (t != "case" && t != "default") continue;
      ArmRef arm;
      arm.caseTok = j;
      std::size_t k = j + 1;
      if (t == "case") {
        if (text(toks, k) == enumName && text(toks, k + 1) == "::") k += 2;
        if (isIdent(toks, k) && enumerators.contains(toks[k].text) &&
            text(toks, k + 1) == ":") {
          arm.enumerator = toks[k].text;
        }
        while (k < swEnd && text(toks, k) != ":") ++k;
      }
      arm.armBegin = k + 1;
      if (!local.empty()) local.back().armEnd = j;
      local.push_back(arm);
    }
    if (!local.empty()) local.back().armEnd = swEnd - 1;
    arms.insert(arms.end(), local.begin(), local.end());
    i = swEnd;
  }
  return arms;
}

// --- Quorum-threshold collection -------------------------------------------

struct LinearMatch {
  int a = 0;
  int b = 0;
  std::size_t next = 0;
  std::string spelling;
};

/// Matches an `f` reference at `i`: bare `f` / `f_`, or a one-hop member
/// chain like `config_.f`. Returns the index after the reference.
std::size_t matchFRef(const std::vector<Token>& toks, std::size_t i) {
  if (!isIdent(toks, i)) return 0;
  const std::string& t = toks[i].text;
  if (t == "f" || t == "f_") return i + 1;
  if ((t == "config" || t == "config_" || t == "cfg" || t == "cfg_") &&
      (text(toks, i + 1) == "." || text(toks, i + 1) == "->") &&
      text(toks, i + 2) == "f") {
    return i + 3;
  }
  return 0;
}

std::string spellingOf(const std::vector<Token>& toks, std::size_t begin,
                       std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end; ++i) out += toks[i].text;
  return out;
}

/// Matches `[N *] f-ref [+ M]` starting at `i`.
[[nodiscard]] std::optional<LinearMatch> matchLinear(
    const std::vector<Token>& toks, std::size_t i) {
  LinearMatch m;
  std::size_t j = 0;
  if (allDigits(text(toks, i))) {
    if (text(toks, i + 1) != "*") return std::nullopt;
    j = matchFRef(toks, i + 2);
    if (j == 0) return std::nullopt;
    m.a = static_cast<int>(digitValue(toks[i].text));
  } else {
    j = matchFRef(toks, i);
    if (j == 0) return std::nullopt;
    m.a = 1;
  }
  if (text(toks, j) == "+" && allDigits(text(toks, j + 1))) {
    m.b = static_cast<int>(digitValue(toks[j + 1].text));
    j += 2;
  }
  m.next = j;
  m.spelling = spellingOf(toks, i, j);
  return m;
}

/// Matches a call chain ending in a quorum-named nullary call
/// (`quorum()`, `config_.quorum()`), resolved through `namedForms`.
[[nodiscard]] std::optional<LinearMatch> matchQuorumCall(
    const std::vector<Token>& toks, std::size_t i,
    const std::map<std::string, std::pair<int, int>>& namedForms) {
  if (!isIdent(toks, i)) return std::nullopt;
  std::size_t j = i;
  while ((text(toks, j + 1) == "." || text(toks, j + 1) == "->") &&
         isIdent(toks, j + 2)) {
    j += 2;
  }
  const std::string& callee = toks[j].text;
  if (lowered(callee).find("quorum") == std::string::npos) return std::nullopt;
  if (text(toks, j + 1) != "(" || text(toks, j + 2) != ")") return std::nullopt;
  const auto it = namedForms.find(callee);
  if (it == namedForms.end()) return std::nullopt;
  LinearMatch m;
  m.a = it->second.first;
  m.b = it->second.second;
  m.next = j + 3;
  m.spelling = spellingOf(toks, i, j + 1) + "()";
  return m;
}

/// Lowered identifiers that plausibly hold a vote/ack count (the
/// magic-number check's guard against flagging arbitrary comparisons).
bool isCountishStem(const std::string& loweredName) {
  static const std::vector<std::string> kStems = {
      "votes", "voters",  "matching", "tally", "acks",
      "quorum", "prepares", "commits", "replies", "certs"};
  return std::any_of(kStems.begin(), kStems.end(), [&](const std::string& s) {
    return loweredName.find(s) != std::string::npos;
  });
}

/// Count-ish expression ending right before token `i` (exclusive):
/// `X.size()`, `matchingFoo()`, or a bare count-ish identifier.
bool countishBefore(const std::vector<Token>& toks, std::size_t i,
                    std::string* name) {
  if (i >= 4 && text(toks, i - 1) == ")" && text(toks, i - 2) == "(" &&
      isIdent(toks, i - 3)) {
    const std::string& callee = toks[i - 3].text;
    if ((callee == "size" || callee == "count") && i >= 6 &&
        (text(toks, i - 4) == "." || text(toks, i - 4) == "->") &&
        isIdent(toks, i - 5)) {
      if (!isCountishStem(lowered(toks[i - 5].text))) return false;
      *name = toks[i - 5].text;
      return true;
    }
    if (!isCountishStem(lowered(callee))) return false;
    *name = callee;
    return true;
  }
  if (i >= 1 && isIdent(toks, i - 1) &&
      isCountishStem(lowered(toks[i - 1].text))) {
    *name = toks[i - 1].text;
    return true;
  }
  return false;
}

/// Count-ish expression starting at token `i`.
bool countishAfter(const std::vector<Token>& toks, std::size_t i,
                   std::string* name) {
  if (!isIdent(toks, i)) return false;
  if ((text(toks, i + 1) == "." || text(toks, i + 1) == "->") &&
      (text(toks, i + 2) == "size" || text(toks, i + 2) == "count") &&
      text(toks, i + 3) == "(") {
    if (!isCountishStem(lowered(toks[i].text))) return false;
    *name = toks[i].text;
    return true;
  }
  if (!isCountishStem(lowered(toks[i].text))) return false;
  *name = toks[i].text;
  return true;
}

const std::set<std::string>& exprContinuations() {
  static const std::set<std::string> kOps = {"*", "+", "-", "/", "%", "."};
  return kOps;
}

void collectQuorums(
    const FileIndex& file, const FunctionInfo& fn,
    const std::map<std::string, std::pair<int, int>>& namedForms,
    ProtocolModel& model) {
  const std::vector<Token>& toks = file.tokens;
  const std::size_t end = fn.bodyEnd > 0 ? fn.bodyEnd - 1 : 0;
  for (std::size_t i = fn.bodyBegin + 1; i < end; ++i) {
    const std::string& t = toks[i].text;
    if (t != "<" && t != ">") continue;
    // Shift operators lex as two identical punct tokens.
    if (text(toks, i + 1) == t || (i > 0 && text(toks, i - 1) == t)) continue;
    const std::size_t rhs = text(toks, i + 1) == "=" ? i + 2 : i + 1;

    const auto record = [&](const LinearMatch& m, bool named) {
      model.quorums.push_back({m.a, m.b, named, m.spelling, fn.qualified,
                               file.path, toks[i].line});
    };

    bool matched = false;
    if (const auto m = matchLinear(toks, rhs)) {
      record(*m, false);
      matched = true;
    } else if (const auto m = matchQuorumCall(toks, rhs, namedForms)) {
      record(*m, true);
      matched = true;
    }
    if (!matched) {
      // Left-hand-side form: a linear/quorum expression ending at `i`.
      const std::size_t lo = i > 8 ? i - 8 : fn.bodyBegin + 1;
      for (std::size_t s = lo; s < i && !matched; ++s) {
        if (const auto m = matchLinear(toks, s); m && m->next == i) {
          record(*m, false);
          matched = true;
        } else if (const auto q = matchQuorumCall(toks, s, namedForms);
                   q && q->next == i) {
          record(*q, true);
          matched = true;
        }
      }
    }
    if (matched) continue;

    // Magic-number candidate: count-ish expression vs bare integer >= 2.
    std::string counted;
    if (allDigits(text(toks, rhs)) && digitValue(toks[rhs].text) >= 2 &&
        !exprContinuations().contains(text(toks, rhs + 1)) &&
        countishBefore(toks, i, &counted)) {
      model.magicQuorums.push_back(
          {counted, digitValue(toks[rhs].text), file.path, toks[i].line});
    } else if (i >= 2 && allDigits(toks[i - 1].text) &&
               digitValue(toks[i - 1].text) >= 2 &&
               !exprContinuations().contains(text(toks, i - 2)) &&
               countishAfter(toks, rhs, &counted)) {
      model.magicQuorums.push_back(
          {counted, digitValue(toks[i - 1].text), file.path, toks[i].line});
    }
  }
}

// --- Emission scan ---------------------------------------------------------

/// True when the identifier at `i` is written with an increment form:
/// `++x`, `x++`, or `x += ...` (member chains included). Plain `=`
/// assignment does NOT count — `stateTransferInFlight_ = false` is a flag
/// write, not an event emission.
bool isIncrementWrite(const std::vector<Token>& toks, std::size_t i) {
  if (text(toks, i + 1) == "+" && text(toks, i + 2) == "+") return true;
  if (text(toks, i + 1) == "+" && text(toks, i + 2) == "=") return true;
  // Walk to the head of a `a.b.c` chain, then look for prefix `++`.
  std::size_t s = i;
  while (s >= 2 && (text(toks, s - 1) == "." || text(toks, s - 1) == "->") &&
         isIdent(toks, s - 2)) {
    s -= 2;
  }
  return s >= 2 && text(toks, s - 1) == "+" && text(toks, s - 2) == "+";
}

}  // namespace

bool inModelScope(const std::string& path) {
  return path.find("pbft/") != std::string::npos ||
         path.find("sim/") != std::string::npos;
}

std::string helperSuffix(const std::string& name) {
  if (!isPutGetName(name)) return {};
  return lowered(name.substr(3));
}

ProtocolModel extractModel(const RepoIndex& index) {
  ProtocolModel model;

  // Pass 1: enums and quorum-named definitions across the model scope.
  std::vector<EnumDef> enums;
  std::map<std::string, std::pair<int, int>> namedForms;
  for (const FileIndex& file : index.files) {
    if (!inModelScope(file.path)) continue;
    collectEnums(file, enums);
    for (const FunctionInfo& fn : file.functions) {
      if (lowered(fn.name).find("quorum") == std::string::npos) continue;
      // `return <linear>;` bodies resolve the call form.
      if (text(file.tokens, fn.bodyBegin + 1) != "return") continue;
      const auto m = matchLinear(file.tokens, fn.bodyBegin + 2);
      if (m && text(file.tokens, m->next) == ";") {
        namedForms[fn.name] = {m->a, m->b};
      }
    }
  }
  for (const auto& [name, form] : namedForms) {
    (void)name;
    model.namedQuorumForms.push_back(form);
  }

  // Kind enum selection: the enum most referenced as `Name::` across the
  // model scope (the codec and dispatch sites all qualify with it).
  std::map<std::string, std::size_t> enumRefs;
  for (const EnumDef& def : enums) enumRefs[def.name] = 0;
  for (const FileIndex& file : index.files) {
    if (!inModelScope(file.path)) continue;
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!isIdent(toks, i) || text(toks, i + 1) != "::") continue;
      const auto it = enumRefs.find(toks[i].text);
      if (it != enumRefs.end()) ++it->second;
    }
  }
  const EnumDef* kindEnum = nullptr;
  std::size_t bestRefs = 0;
  for (const EnumDef& def : enums) {
    const std::size_t refs = enumRefs[def.name];
    if (kindEnum == nullptr || refs > bestRefs ||
        (refs == bestRefs && def.name < kindEnum->name)) {
      kindEnum = &def;
      bestRefs = refs;
    }
  }
  if (kindEnum != nullptr) {
    model.kindEnum = kindEnum->name;
    model.kindEnumFile = kindEnum->file;
    model.kinds = kindEnum->enumerators;
    model.kindValues = kindEnum->values;
  }
  const std::set<std::string> enumerators(model.kinds.begin(),
                                          model.kinds.end());

  const auto scanKindRefs = [&](const FileIndex& file, std::size_t begin,
                                std::size_t end, std::set<std::string>& out) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = begin; i + 2 < end; ++i) {
      if (isIdent(toks, i) && toks[i].text == model.kindEnum &&
          text(toks, i + 1) == "::" && isIdent(toks, i + 2) &&
          enumerators.contains(toks[i + 2].text)) {
        out.insert(toks[i + 2].text);
      }
    }
  };

  // Pass 2: per-function extraction.
  for (const FileIndex& file : index.files) {
    if (!inModelScope(file.path)) continue;
    const std::vector<Token>& toks = file.tokens;
    const bool pbftFile = file.path.find("pbft/") != std::string::npos;

    for (const FunctionInfo& fn : file.functions) {
      // struct -> kind: `kind()` overrides returning a MsgKind cast.
      if (fn.name == "kind" && !fn.owner.empty() && !model.kindEnum.empty()) {
        std::set<std::string> refs;
        scanKindRefs(file, fn.bodyBegin, fn.bodyEnd, refs);
        if (refs.size() == 1) model.structToKind[fn.owner] = *refs.begin();
      }

      // receive() dispatch arms.
      if (fn.name == "receive" && !fn.owner.empty() &&
          !model.kindEnum.empty()) {
        std::set<std::string> refs;
        scanKindRefs(file, fn.bodyBegin, fn.bodyEnd, refs);
        if (!refs.empty()) {
          model.receiveArms[fn.owner].insert(refs.begin(), refs.end());
        }
      }

      const std::vector<RawOp> ops = collectOps(file, fn.bodyBegin, fn.bodyEnd);

      // Wire helpers: put*/get* free functions with their full-body ops.
      if (isPutGetName(fn.name) && !ops.empty()) {
        CodecArm arm;
        arm.present = true;
        arm.file = file.path;
        arm.line = fn.line;
        for (const RawOp& raw : ops) arm.ops.push_back(raw.op);
        model.helpers[fn.name] = std::move(arm);
      }

      // Codec switch arms: bucket ops into per-kind case ranges.
      if (!ops.empty() && !model.kindEnum.empty()) {
        for (const ArmRef& arm : switchArms(toks, fn.bodyBegin, fn.bodyEnd,
                                            model.kindEnum, enumerators)) {
          if (arm.enumerator.empty()) continue;
          CodecArm codec;
          codec.present = true;
          codec.file = file.path;
          codec.line = toks[arm.caseTok].line;
          std::size_t writes = 0;
          std::size_t reads = 0;
          for (const RawOp& raw : ops) {
            if (raw.tokenIndex < arm.armBegin || raw.tokenIndex >= arm.armEnd) {
              continue;
            }
            codec.ops.push_back(raw.op);
            ++(raw.isWrite ? writes : reads);
          }
          if (codec.ops.empty()) continue;
          auto& side = writes >= reads ? model.encodeArms : model.decodeArms;
          side[arm.enumerator] = std::move(codec);
        }
      }

      // Send sites: message-struct construction.
      for (std::size_t i = fn.bodyBegin; i + 1 < fn.bodyEnd; ++i) {
        if (!isIdent(toks, i) || toks[i].text != "make_shared") continue;
        if (text(toks, i + 1) != "<") continue;
        const std::size_t close = skipBalanced(toks, i + 1, "<", ">");
        std::string structName;
        for (std::size_t j = close - 1; j > i + 1; --j) {
          if (isIdent(toks, j)) {
            structName = toks[j].text;
            break;
          }
        }
        const auto it = model.structToKind.find(structName);
        if (it != model.structToKind.end()) {
          model.sends.push_back(
              {it->second, fn.qualified, file.path, toks[i].line});
        }
      }

      // Timer arming sites (from the phase-1 index).
      for (const TimerLambda& timer : fn.timers) {
        model.timers.push_back({fn.qualified, file.path, timer.line});
      }

      // Quorum-threshold comparisons (pbft sources only).
      if (pbftFile) collectQuorums(file, fn, namedForms, model);
    }
  }

  // Pass 3: transitions — triggers from the function index, emissions from
  // an increment-write scan over every model-scope file.
  for (const TransitionSpec& spec : transitionSpecs()) {
    Transition transition;
    transition.name = spec.name;
    transition.enumName = spec.enumName;
    transition.counter = spec.counter;
    for (const FileIndex& file : index.files) {
      if (!inModelScope(file.path) || !transition.function.empty()) continue;
      for (const FunctionInfo& fn : file.functions) {
        if (lowered(fn.name).find(spec.trigger) != std::string::npos) {
          transition.function = fn.qualified;
          transition.file = file.path;
          transition.line = fn.line;
          break;
        }
      }
    }
    if (transition.function.empty()) continue;  // not part of this protocol

    for (const FileIndex& file : index.files) {
      if (!inModelScope(file.path)) continue;
      const std::vector<Token>& toks = file.tokens;
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks, i)) continue;
        const std::string name = lowered(toks[i].text);
        const bool matches = std::any_of(
            spec.patterns.begin(), spec.patterns.end(),
            [&](const char* p) { return name.find(p) != std::string::npos; });
        if (matches && isIncrementWrite(toks, i)) {
          transition.emissions.push_back(
              {toks[i].text, file.path, toks[i].line});
        }
      }
    }
    model.transitions.push_back(std::move(transition));
  }

  return model;
}

std::vector<WireOp> flattenOps(const ProtocolModel& model,
                               const std::vector<WireOp>& ops,
                               const std::set<std::string>& badHelpers) {
  std::vector<WireOp> out;
  std::set<std::string> active;  // recursion guard

  const std::function<void(const std::vector<WireOp>&, std::size_t)> walk =
      [&](const std::vector<WireOp>& seq, std::size_t depth) {
        for (const WireOp& op : seq) {
          if (!op.isCall) {
            WireOp flat = op;
            flat.loopDepth += depth;
            out.push_back(std::move(flat));
            continue;
          }
          const std::string suffix = helperSuffix(op.op);
          const auto it = model.helpers.find(op.op);
          if (!badHelpers.contains(suffix) && it != model.helpers.end() &&
              !active.contains(suffix)) {
            active.insert(suffix);
            walk(it->second.ops, depth + op.loopDepth);
            active.erase(suffix);
            continue;
          }
          // Asymmetric (already reported) or undefined helper: keep it as a
          // placeholder that matches its counterpart on the other side.
          WireOp flat = op;
          flat.op = "helper:" + (suffix.empty() ? lowered(op.op) : suffix);
          flat.loopDepth += depth;
          out.push_back(std::move(flat));
        }
      };
  walk(ops, 0);
  return out;
}

namespace {

/// kPrePrepare -> "prePrepare" (taxonomy name fragment).
std::string eventFragment(const std::string& enumerator) {
  std::string s = enumerator;
  if (s.size() > 1 && s[0] == 'k' &&
      std::isupper(static_cast<unsigned char>(s[1])) != 0) {
    s.erase(0, 1);
  }
  if (!s.empty()) {
    s[0] = static_cast<char>(std::tolower(static_cast<unsigned char>(s[0])));
  }
  return s;
}

/// kRequest -> "kMsgRequest" (generated enumerator for a message event).
std::string messageEnumerator(const std::string& enumerator) {
  std::string s = enumerator;
  if (s.size() > 1 && s[0] == 'k') s.erase(0, 1);
  return "kMsg" + s;
}

}  // namespace

std::string generateEventsHeader(const ProtocolModel& model) {
  struct Row {
    std::string enumName;
    std::string name;
    std::string kind;
    std::uint32_t wireKind;
    std::string counter;
    std::string source;
  };
  std::vector<Row> rows;
  for (const std::string& k : model.kinds) {
    const auto it = model.kindValues.find(k);
    rows.push_back({messageEnumerator(k), "msg." + eventFragment(k), "message",
                    it != model.kindValues.end() ? it->second : 0u,
                    "NetworkCounters::deliveredByKind", model.kindEnumFile});
  }
  for (const Transition& t : model.transitions) {
    rows.push_back({t.enumName, "transition." + t.name, "transition", 0u,
                    t.counter, t.function + " (" + t.file + ")"});
  }

  std::string out;
  out +=
      "// Generated by `avd_lint --gen-events`. DO NOT EDIT.\n"
      "//\n"
      "// The runtime protocol-event taxonomy, extracted statically from the\n"
      "// message-kind enum and the protocol transitions of src/pbft/ +\n"
      "// src/sim/ (tools/lint/model.cpp). The `lint.gen` CTest regenerates\n"
      "// this header and fails on any drift, so instrumentation, the dedup\n"
      "// signature, and the future coverage map all key off one mechanical\n"
      "// inventory instead of three hand-maintained lists.\n"
      "#pragma once\n"
      "\n"
      "#include <array>\n"
      "#include <cstddef>\n"
      "#include <cstdint>\n"
      "#include <string_view>\n"
      "\n"
      "namespace avd::gen {\n"
      "\n"
      "enum class ProtocolEvent : std::uint32_t {\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += "  " + rows[i].enumName + " = " + std::to_string(i) + ",\n";
  }
  out +=
      "};\n"
      "\n"
      "inline constexpr std::size_t kProtocolEventCount = " +
      std::to_string(rows.size()) +
      ";\n"
      "\n"
      "struct ProtocolEventInfo {\n"
      "  ProtocolEvent event;\n"
      "  std::string_view name;     // taxonomy name, e.g. "
      "\"msg.prePrepare\"\n"
      "  std::string_view kind;     // \"message\" | \"transition\"\n"
      "  std::uint32_t wireKind;    // " +
      (model.kindEnum.empty() ? std::string("MsgKind") : model.kindEnum) +
      " value for messages, 0 otherwise\n"
      "  std::string_view counter;  // runtime counter observing the event\n"
      "  std::string_view source;   // extraction provenance\n"
      "};\n"
      "\n"
      "inline constexpr std::array<ProtocolEventInfo, kProtocolEventCount>\n"
      "    kProtocolEvents = {{\n";
  for (const Row& row : rows) {
    out += "        {ProtocolEvent::" + row.enumName + ", \"" + row.name +
           "\", \"" + row.kind + "\", " + std::to_string(row.wireKind) +
           "u,\n         \"" + row.counter + "\", \"" + row.source + "\"},\n";
  }
  out +=
      "    }};\n"
      "\n"
      "inline constexpr std::string_view protocolEventName(ProtocolEvent e) {\n"
      "  return kProtocolEvents[static_cast<std::size_t>(e)].name;\n"
      "}\n"
      "\n"
      "// --- Outcome bands and journal keys ---------------------------------"
      "------\n"
      "//\n"
      "// The dedup-signature bands and the byte-stable journal field names.\n"
      "// src/campaign/dedup.cpp, src/campaign/journal.cpp, and\n"
      "// src/avd/report.cpp consume these; the values are part of the\n"
      "// on-disk journal/classes format and must only change deliberately\n"
      "// (regenerate + migrate).\n"
      "\n"
      "struct OutcomeBand {\n"
      "  std::string_view metric;      // journal field the band is over\n"
      "  std::string_view dedupLabel;  // human label in signature strings\n"
      "  std::uint64_t lo;             // value <= lo  -> band 1\n"
      "  std::uint64_t hi;             // value <= hi  -> band 2, else 3\n"
      "  std::array<std::string_view, 4> bandNames;\n"
      "};\n"
      "\n"
      "inline constexpr OutcomeBand kViewChangeBand{\n"
      "    \"viewChanges\", \"view changes\", 3, 10, "
      "{{\"none\", \"1-3\", \"4-10\", \">10\"}}};\n"
      "inline constexpr OutcomeBand kRestartBand{\n"
      "    \"restarts\", \"restarts\", 2, 8, "
      "{{\"none\", \"1-2\", \"3-8\", \">8\"}}};\n"
      "inline constexpr OutcomeBand kResourceBand{\n"
      "    \"queueDrops+quotaDrops\", \"resource drops\", 100, 10000,\n"
      "    {{\"none\", \"1-100\", \"101-10k\", \">10k\"}}};\n"
      "\n"
      "/// Band index of `value` under `band` (0 = none).\n"
      "inline constexpr int bandOf(const OutcomeBand& band, "
      "std::uint64_t value) {\n"
      "  if (value == 0) return 0;\n"
      "  if (value <= band.lo) return 1;\n"
      "  if (value <= band.hi) return 2;\n"
      "  return 3;\n"
      "}\n"
      "\n"
      "inline constexpr std::string_view kSafetyLabel = \"SAFETY "
      "VIOLATED\";\n"
      "\n"
      "inline constexpr std::string_view kJournalKeyViewChanges = "
      "\"viewChanges\";\n"
      "inline constexpr std::string_view kJournalKeyRestarts = "
      "\"restarts\";\n"
      "inline constexpr std::string_view kJournalKeyRecoveryLatencySec =\n"
      "    \"recoveryLatencySec\";\n"
      "inline constexpr std::string_view kJournalKeyQueueDrops = "
      "\"queueDrops\";\n"
      "inline constexpr std::string_view kJournalKeyQuotaDrops = "
      "\"quotaDrops\";\n"
      "/// Optional: only present on journal lines whose scenario violated\n"
      "/// safety (pre-twins journals never carry it and must keep "
      "decoding).\n"
      "inline constexpr std::string_view kJournalKeySafetyWitness =\n"
      "    \"safetyWitness\";\n"
      "\n"
      "}  // namespace avd::gen\n";
  return out;
}

}  // namespace avd::lint
