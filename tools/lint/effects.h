// avd_lint phase 4 — whole-program effect inference.
//
// Phase 4 walks every function body in the phase-1 index and harvests its
// *leaf effect sites*: the intrinsic operations that touch the world
// outside the deterministic sandbox — wall clocks (`std::chrono::
// system_clock`, libc `time`), ambient randomness (`std::random_device`,
// `rand`), filesystem and descriptor I/O (`::open`, `::write`,
// `std::filesystem`, `std::ofstream`), sockets (`::send`, `::poll`),
// process control (`::fork`, `::waitpid`, `std::signal`), and blocking
// waits (`sleep_for`, a blocking `::recv`, `thread::join`). A call-graph
// fixpoint — the same quadratic worklist R7 uses for lock sets — then
// propagates those leaves into a per-function *total* effect set, with a
// witness chain (the call site that imported the effect plus the ultimate
// leaf) kept per effect bit for diagnostics.
//
// The rules that consume the inference live in lint.cpp:
//
//   R15 determinism-boundary  no time/rng effect reachable from the
//                             replica/simulator/controller paths, except
//                             through common/rng
//   R16 syscall-discipline    raw POSIX confined to the designated effect
//                             modules; interruptible calls check their
//                             result and retry EINTR
//   R17 durability-ordering   write -> fsync -> rename -> parent-dir
//                             fsync in journal/shard/checkpoint writers;
//                             shard-append before outcome-frame send
//   R18 blocking-under-lock   no blocking effect reachable from a call
//                             made while a mutex is held
//
// Detection is deliberately syntactic about *form*: a POSIX leaf must be
// spelled with global qualification (`::waitpid(...)`) — the repo's
// invariant idiom — so the simulator's own `send(to, msg)` message-plane
// members can never alias libc. `avd_lint --gen-effects` renders the
// inferred map as deterministic JSON (tools/lint/effects.json, gated by
// the `lint.effects` ctest exactly like the generated event taxonomy).
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "index.h"

namespace avd::lint {

// The effect lattice: a bitmask ordered by set inclusion. Join is `|`,
// bottom is 0 (pure), and the fixpoint is monotone, so it terminates.
inline constexpr unsigned kEffectTime = 1u << 0;   // wall-clock time
inline constexpr unsigned kEffectRng = 1u << 1;    // ambient randomness
inline constexpr unsigned kEffectFs = 1u << 2;     // filesystem / fd I/O
inline constexpr unsigned kEffectNet = 1u << 3;    // sockets / network
inline constexpr unsigned kEffectProc = 1u << 4;   // process control
inline constexpr unsigned kEffectBlock = 1u << 5;  // blocking wait
inline constexpr std::size_t kEffectCount = 6;
inline constexpr unsigned kEffectNondet = kEffectTime | kEffectRng;

/// Canonical short name of one effect bit ("time", "rng", ...).
const char* effectName(std::size_t bitIndex);

/// Comma-joined names of every set bit ("fs,net"); "pure" for 0.
std::string effectSetNames(unsigned mask);

/// One intrinsic effect site inside a function body.
struct LeafSite {
  std::string name;            // as spelled: "waitpid", "system_clock", ...
  std::size_t tokenIndex = 0;
  std::size_t line = 0;
  unsigned effects = 0;
  bool posix = false;          // `::`-qualified POSIX intrinsic (R16 scope)
  bool interruptible = false;  // must check its result and retry EINTR
  bool discarded = false;      // call result dropped at statement level
};

/// True when the call at token `i` is spelled with global qualification
/// (`::name(...)`): it targets the C namespace, i.e. it *is* a leaf
/// intrinsic, and must never resolve to an indexed definition — the
/// simulator's `send(to, msg)` message plane shares names with libc.
bool globalCallForm(const std::vector<Token>& toks, std::size_t i);

/// Harvests every leaf effect site of one function. Nondeterminism leaves
/// (time/rng) on lines carrying an `allow(nondeterminism)` or
/// `allow(determinism-boundary)` directive are skipped entirely — a
/// sanctioned wall-clock read (bench timing) must not leak its effect into
/// callers through the fixpoint.
std::vector<LeafSite> harvestLeafSites(const FileIndex& file,
                                       const FunctionInfo& fn);

/// Why a function carries an effect bit: the line (in the function's own
/// file) where the effect enters, the callee that imported it ("" for a
/// direct leaf), and the ultimate leaf intrinsic at the end of the chain.
struct EffectWitness {
  std::size_t line = 0;
  std::string via;   // callee name, empty when the leaf is in this body
  std::string root;  // e.g. "'::waitpid' (src/common/proc.cpp:74)"
};

struct FunctionEffects {
  unsigned direct = 0;  // leaves in this body
  unsigned total = 0;   // direct | union of callees' totals (fixpoint)
  std::array<EffectWitness, kEffectCount> witness;  // per set bit of total
};

/// Whole-repo effect map, parallel to a flattening of
/// `index.files[f].functions[g]` in index order.
struct EffectIndex {
  std::vector<std::pair<std::size_t, std::size_t>> flat;  // (file, fn)
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> flatIndex;
  std::vector<FunctionEffects> fn;
};

/// The modules allowed to contain raw POSIX calls (R16); everything else
/// must route the effect through one of them.
bool designatedEffectModule(const std::string& path);

/// The replay-critical scope of R15: simulator, replica, and controller
/// sources, where every run must be a pure function of the seed.
bool determinismCriticalPath(const std::string& path);

/// Phase 4 entry point: harvest leaves, run the call-graph fixpoint.
/// Functions defined under common/rng are the sanctioned randomness
/// boundary: their effects are masked to pure so a seeded draw does not
/// count as ambient rng in callers.
EffectIndex inferEffects(const RepoIndex& index);

/// Renders the inferred map as deterministic JSON: every function with a
/// non-empty total effect set, sorted by (file, line, name). Same sources,
/// same bytes — the `lint.effects` gate diffs this against the checked-in
/// tools/lint/effects.json.
std::string generateEffectsJson(const RepoIndex& index,
                                const EffectIndex& effects);

}  // namespace avd::lint
