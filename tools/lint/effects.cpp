// avd_lint phase 4 — whole-program effect inference (see effects.h).
#include "effects.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace avd::lint {
namespace {

// --- Leaf intrinsic tables ------------------------------------------------
//
// POSIX names are matched only in global-qualified form (`::open`) — the
// repo's invariant idiom for raw syscalls — because the simulator's own
// message plane spells `send(to, msg)` / `broadcast(...)` as plain calls
// everywhere, and a name table that accepted plain spellings would alias
// the deterministic world onto libc. The two std-spelled POSIX wrappers the
// tree uses (`std::signal`, `std::raise`) are listed separately.

const std::set<std::string>& posixFsCalls() {
  static const std::set<std::string> kSet = {
      "open",   "openat",   "creat",  "close",  "unlink", "unlinkat",
      "rename", "renameat", "fsync",  "fdatasync", "mkdir", "rmdir",
      "readlink", "ftruncate", "lseek", "stat",  "fstat",  "mkfifo",
      "read",   "write",    "pread",  "pwrite", "pipe",   "dup",
      "dup2",   "fcntl"};
  return kSet;
}

const std::set<std::string>& posixNetCalls() {
  static const std::set<std::string> kSet = {
      "socket",   "socketpair", "bind",     "listen",     "accept",
      "accept4",  "connect",    "send",     "recv",       "sendto",
      "recvfrom", "sendmsg",    "recvmsg",  "setsockopt", "getsockopt",
      "getsockname", "getpeername", "shutdown", "inet_pton", "poll",
      "ppoll",    "select",     "epoll_wait"};
  return kSet;
}

const std::set<std::string>& posixProcCalls() {
  static const std::set<std::string> kSet = {
      "fork",  "vfork", "execv",  "execve", "execvp", "waitpid",
      "wait",  "kill",  "getpid", "setsid", "prctl",  "pthread_kill",
      "_exit"};
  return kSet;
}

// Sleeps and signal waits: POSIX, and pure blocking rather than I/O.
const std::set<std::string>& posixBlockCalls() {
  static const std::set<std::string> kSet = {"usleep", "nanosleep", "sleep",
                                             "pause", "sigwait"};
  return kSet;
}

// POSIX process-control names the tree legitimately spells through <csignal>
// with std:: qualification.
const std::set<std::string>& stdSpelledPosix() {
  static const std::set<std::string> kSet = {"signal", "raise"};
  return kSet;
}

// Calls that park the thread until the outside world responds. `send` and
// `write` are deliberately absent: the worker holds its write mutex across
// writeFrame by design, and a short socket send is not a wait.
const std::set<std::string>& blockingPosix() {
  static const std::set<std::string> kSet = {
      "poll", "ppoll",   "select", "epoll_wait", "accept", "connect",
      "recv", "recvfrom", "waitpid", "wait"};
  return kSet;
}

// Argument flags that turn a nominally blocking call non-blocking (and
// exempt it from the EINTR-retry discipline: it returns immediately).
const std::set<std::string>& nonblockingFlags() {
  static const std::set<std::string> kSet = {"WNOHANG", "MSG_DONTWAIT",
                                             "O_NONBLOCK", "SOCK_NONBLOCK"};
  return kSet;
}

// Interruptible calls (R16b): a signal can abort them with EINTR, so the
// call site must bind the result and the surrounding loop must retry.
const std::set<std::string>& interruptiblePosix() {
  static const std::set<std::string> kSet = {
      "read", "write",  "send",   "recv", "sendto", "recvfrom",
      "accept", "connect", "poll", "ppoll", "select", "waitpid",
      "wait", "epoll_wait"};
  return kSet;
}

const std::set<std::string>& libcTimeCalls() {
  static const std::set<std::string> kSet = {"time", "clock", "gettimeofday",
                                             "clock_gettime"};
  return kSet;
}

const std::set<std::string>& libcRngCalls() {
  static const std::set<std::string> kSet = {"rand",    "srand",   "rand_r",
                                             "drand48", "lrand48", "mrand48",
                                             "random"};
  return kSet;
}

// Wall-clock chrono types: any `clock::now()` / `clock::time_point` use is
// a time effect at the type token ("steady" counts too — steady_clock is
// still host time, invisible to the simulated clock).
const std::set<std::string>& chronoClockTypes() {
  static const std::set<std::string> kSet = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  return kSet;
}

bool suppressedNondetLine(const Suppressions& sup, std::size_t line) {
  auto it = sup.byLine.find(line);
  if (it == sup.byLine.end()) return false;
  return it->second.contains("*") || it->second.contains("nondeterminism") ||
         it->second.contains("determinism-boundary");
}

// How the identifier at `i` is spelled as a call head. Phase 4 needs its
// own helper (not plainOrQualifiedBy) because global qualification
// (`::open`) is exactly the form the POSIX tables require, and that helper
// treats it as "qualified by an unknown namespace" and rejects it.
struct CallShape {
  bool isCall = false;
  bool member = false;          // obj.name( / ptr->name(
  bool global = false;          // ::name(
  std::string qualifier;        // ns::name( -> "ns"; "" when plain/global
};

/// Statement keywords that can legally precede a global-`::` call
/// (`return ::close(fd)`); the lexer classes them as identifiers, but they
/// never name a namespace or class.
bool statementKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "return", "throw",     "case",     "new",      "delete",
      "sizeof", "co_return", "co_yield", "co_await", "not",
      "and",    "or"};
  return kKeywords.contains(t);
}

CallShape callShapeAt(const std::vector<Token>& toks, std::size_t i) {
  CallShape s;
  if (text(toks, i + 1) != "(") return s;
  s.isCall = true;
  if (i == 0) return s;
  const std::string& prev = toks[i - 1].text;
  if (prev == "." || prev == "->") {
    s.member = true;
  } else if (prev == "::") {
    if (i >= 2 && toks[i - 2].kind == TokKind::kIdent &&
        !statementKeyword(toks[i - 2].text)) {
      s.qualifier = toks[i - 2].text;
    } else {
      s.global = true;
    }
  }
  return s;
}

// True when any identifier inside the call's argument parentheses is one of
// `names`. `i` is the callee token; returns false for non-calls.
bool argsContain(const std::vector<Token>& toks, std::size_t i,
                 const std::set<std::string>& names) {
  if (text(toks, i + 1) != "(") return false;
  const std::size_t end = skipBalanced(toks, i + 1, "(", ")");
  for (std::size_t j = i + 2; j + 1 < end; ++j) {
    if (isIdent(toks, j) && names.contains(toks[j].text)) return true;
  }
  return false;
}

// True when the call's result is dropped at statement level: the token
// before the expression head is a statement boundary and the token after
// the closing paren ends the statement.
bool resultDiscarded(const std::vector<Token>& toks, std::size_t i,
                     bool global) {
  const std::size_t head = (global && i >= 1) ? i - 1 : i;
  if (head > 0) {
    const std::string& before = toks[head - 1].text;
    if (before != ";" && before != "{" && before != "}") return false;
  }
  const std::size_t close = skipBalanced(toks, i + 1, "(", ")");
  return text(toks, close) == ";";
}

void pushLeaf(std::vector<LeafSite>& out, const std::vector<Token>& toks,
              std::size_t i, std::string name, unsigned effects, bool posix,
              bool interruptible, bool global) {
  LeafSite leaf;
  leaf.name = std::move(name);
  leaf.tokenIndex = i;
  leaf.line = toks[i].line;
  leaf.effects = effects;
  leaf.posix = posix;
  leaf.interruptible = interruptible;
  if (interruptible) leaf.discarded = resultDiscarded(toks, i, global);
  out.push_back(leaf);
}

}  // namespace

bool globalCallForm(const std::vector<Token>& toks, std::size_t i) {
  const CallShape s = callShapeAt(toks, i);
  return s.isCall && s.global;
}

const char* effectName(std::size_t bitIndex) {
  static const char* const kNames[kEffectCount] = {"time", "rng",  "fs",
                                                   "net",  "proc", "block"};
  return bitIndex < kEffectCount ? kNames[bitIndex] : "?";
}

std::string effectSetNames(unsigned mask) {
  if (mask == 0) return "pure";
  std::string out;
  for (std::size_t b = 0; b < kEffectCount; ++b) {
    if ((mask & (1u << b)) == 0) continue;
    if (!out.empty()) out += ",";
    out += effectName(b);
  }
  return out;
}

bool designatedEffectModule(const std::string& path) {
  static const char* const kModules[] = {
      "common/framing", "common/proc", "common/logging", "campaign/journal",
      "campaign/fleet/shard"};
  for (const char* module : kModules) {
    if (path.find(module) != std::string::npos) return true;
  }
  return false;
}

bool determinismCriticalPath(const std::string& path) {
  return path.find("sim/") != std::string::npos ||
         path.find("pbft/") != std::string::npos ||
         path.find("avd/") != std::string::npos ||
         path.find("faultinject/twins") != std::string::npos;
}

std::vector<LeafSite> harvestLeafSites(const FileIndex& file,
                                       const FunctionInfo& fn) {
  std::vector<LeafSite> out;
  const std::vector<Token>& toks = file.tokens;
  static const std::set<std::string> kStdNs = {"std"};
  static const std::set<std::string> kChronoNs = {"std", "chrono"};
  static const std::set<std::string> kStreamTypes = {"ofstream", "ifstream",
                                                     "fstream"};
  for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd && i < toks.size(); ++i) {
    if (!isIdent(toks, i)) continue;
    const std::string& name = toks[i].text;
    const std::size_t line = toks[i].line;

    // Type-level time/rng leaves: not calls, matched at the type token.
    if (chronoClockTypes().contains(name) &&
        plainOrQualifiedBy(toks, i, kChronoNs)) {
      if (!suppressedNondetLine(file.suppressions, line)) {
        pushLeaf(out, toks, i, name, kEffectTime, false, false, false);
      }
      continue;
    }
    if (name == "random_device" && plainOrQualifiedBy(toks, i, kStdNs)) {
      if (!suppressedNondetLine(file.suppressions, line)) {
        pushLeaf(out, toks, i, name, kEffectRng, false, false, false);
      }
      continue;
    }
    // std::filesystem operations and stream objects: a filesystem effect at
    // the namespace/type token, call or not (constructing the stream opens
    // the file).
    if (name == "filesystem" && plainOrQualifiedBy(toks, i, kStdNs) &&
        text(toks, i + 1) == "::") {
      pushLeaf(out, toks, i, name, kEffectFs, false, false, false);
      continue;
    }
    if (kStreamTypes.contains(name) && plainOrQualifiedBy(toks, i, kStdNs)) {
      pushLeaf(out, toks, i, name, kEffectFs, false, false, false);
      continue;
    }

    const CallShape shape = callShapeAt(toks, i);
    if (!shape.isCall) continue;

    // Blocking member leaves: thread::join and this_thread sleeps.
    if (shape.member && name == "join") {
      pushLeaf(out, toks, i, name, kEffectBlock, false, false, false);
      continue;
    }
    if ((name == "sleep_for" || name == "sleep_until") &&
        shape.qualifier == "this_thread") {
      pushLeaf(out, toks, i, name, kEffectBlock, false, false, false);
      continue;
    }
    if (shape.member) continue;

    // Libc time/rng: plain or std-qualified (they come from <ctime> /
    // <cstdlib> both ways). Not marked as POSIX leaves — nondeterminism
    // is R1/R15's charter, the R16 module boundary is for the syscall
    // surface.
    const bool plainOrStd =
        shape.global || shape.qualifier.empty() || shape.qualifier == "std";
    if (libcTimeCalls().contains(name) && plainOrStd) {
      if (!suppressedNondetLine(file.suppressions, line)) {
        pushLeaf(out, toks, i, name, kEffectTime, false, false, shape.global);
      }
      continue;
    }
    if (libcRngCalls().contains(name) && plainOrStd) {
      if (!suppressedNondetLine(file.suppressions, line)) {
        pushLeaf(out, toks, i, name, kEffectRng, false, false, shape.global);
      }
      continue;
    }

    // Raw POSIX: global `::name(...)` only, plus the two std-spelled
    // process-control wrappers.
    const bool posixForm =
        shape.global ||
        (shape.qualifier == "std" && stdSpelledPosix().contains(name));
    if (!posixForm) continue;

    unsigned effects = 0;
    if (posixFsCalls().contains(name)) effects |= kEffectFs;
    if (posixNetCalls().contains(name)) effects |= kEffectNet;
    if (posixProcCalls().contains(name) || stdSpelledPosix().contains(name)) {
      effects |= kEffectProc;
    }
    if (posixBlockCalls().contains(name)) effects |= kEffectBlock;
    if (effects == 0) continue;

    const bool nonblockingArgs = argsContain(toks, i, nonblockingFlags());
    if (blockingPosix().contains(name) && !nonblockingArgs) {
      effects |= kEffectBlock;
    }
    const bool interruptible =
        interruptiblePosix().contains(name) && !nonblockingArgs;
    pushLeaf(out, toks, i, name, effects, true, interruptible, shape.global);
  }
  return out;
}

EffectIndex inferEffects(const RepoIndex& index) {
  EffectIndex eff;
  std::vector<bool> masked;
  for (std::size_t f = 0; f < index.files.size(); ++f) {
    const bool rngBoundary =
        index.files[f].path.find("common/rng") != std::string::npos;
    for (std::size_t g = 0; g < index.files[f].functions.size(); ++g) {
      eff.flatIndex[{f, g}] = eff.flat.size();
      eff.flat.emplace_back(f, g);
      masked.push_back(rngBoundary);
    }
  }
  eff.fn.resize(eff.flat.size());

  // Seed with direct leaves; the witness root names the leaf in place.
  for (std::size_t i = 0; i < eff.flat.size(); ++i) {
    if (masked[i]) continue;
    const FileIndex& file = index.files[eff.flat[i].first];
    const FunctionInfo& fn = file.functions[eff.flat[i].second];
    for (const LeafSite& leaf : harvestLeafSites(file, fn)) {
      eff.fn[i].direct |= leaf.effects;
      for (std::size_t b = 0; b < kEffectCount; ++b) {
        const unsigned bit = 1u << b;
        if ((leaf.effects & bit) == 0 || (eff.fn[i].total & bit) != 0) {
          continue;
        }
        eff.fn[i].total |= bit;
        eff.fn[i].witness[b].line = leaf.line;
        eff.fn[i].witness[b].via.clear();
        eff.fn[i].witness[b].root = "'" + leaf.name + "' (" + file.path + ":" +
                                    std::to_string(leaf.line) + ")";
      }
    }
  }

  // Quadratic worklist over the call graph, like the R7 lock-order
  // fixpoint: each pass unions every resolvable callee's total into the
  // caller until nothing changes. Effects only accumulate, so the pass
  // count is bounded by kEffectCount * |functions|.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < eff.flat.size(); ++i) {
      if (masked[i]) continue;
      const FileIndex& file = index.files[eff.flat[i].first];
      const FunctionInfo& fn = file.functions[eff.flat[i].second];
      for (const CallSite& call : fn.calls) {
        // `::name(...)` is the intrinsic itself (already harvested as a
        // leaf), never a call into an indexed definition.
        if (globalCallForm(file.tokens, call.tokenIndex)) continue;
        auto [lo, hi] = index.functionsByName.equal_range(call.callee);
        for (auto it = lo; it != hi; ++it) {
          const std::size_t j = eff.flatIndex.at(it->second);
          if (masked[j]) continue;
          const unsigned add = eff.fn[j].total & ~eff.fn[i].total;
          if (add == 0) continue;
          eff.fn[i].total |= add;
          for (std::size_t b = 0; b < kEffectCount; ++b) {
            if ((add & (1u << b)) == 0) continue;
            eff.fn[i].witness[b].line = call.line;
            eff.fn[i].witness[b].via = call.callee;
            eff.fn[i].witness[b].root = eff.fn[j].witness[b].root;
          }
          changed = true;
        }
      }
    }
  }
  return eff;
}

std::string generateEffectsJson(const RepoIndex& index,
                                const EffectIndex& effects) {
  struct Row {
    std::string file;
    std::size_t line;
    std::string function;
    unsigned direct;
    unsigned total;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < effects.flat.size(); ++i) {
    if (effects.fn[i].total == 0) continue;
    const FileIndex& file = index.files[effects.flat[i].first];
    const FunctionInfo& fn = file.functions[effects.flat[i].second];
    rows.push_back({file.path, fn.line, fn.qualified, effects.fn[i].direct,
                    effects.fn[i].total});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.function < b.function;
  });

  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };

  std::string json = "{\n  \"version\": 1,\n  \"effects\": [";
  for (std::size_t b = 0; b < kEffectCount; ++b) {
    if (b != 0) json += ", ";
    json += "\"";
    json += effectName(b);
    json += "\"";
  }
  json += "],\n  \"functions\": [\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    json += "    {\"file\": \"" + escape(rows[r].file) +
            "\", \"line\": " + std::to_string(rows[r].line) +
            ", \"function\": \"" + escape(rows[r].function) +
            "\", \"direct\": \"" + effectSetNames(rows[r].direct) +
            "\", \"total\": \"" + effectSetNames(rows[r].total) + "\"}";
    json += (r + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace avd::lint
