#include "index.h"

#include <algorithm>
#include <optional>

namespace avd::lint {
namespace {

// Keywords that can precede a '(' without being a function name. Anything
// here must never be indexed as a definition or recorded as a call.
const std::set<std::string>& keywordSet() {
  static const std::set<std::string> kKeywords = {
      "if",       "for",     "while",    "switch",   "catch",  "return",
      "sizeof",   "alignof", "decltype", "noexcept", "throw",  "new",
      "delete",   "static_assert",       "operator", "defined", "else",
      "do",       "case",    "goto",     "co_await", "co_return",
      "co_yield", "typeid",  "alignas",  "requires", "explicit",
      "constexpr"};  // `if constexpr (...)` must not look like a call
  return kKeywords;
}

bool isGuardName(const std::string& name) {
  return name == "lock_guard" || name == "unique_lock" ||
         name == "scoped_lock" || name == "shared_lock";
}

/// std::mutex-family type token (optionally preceded by std::) or the
/// lockdep wrapper type.
bool isMutexType(const std::vector<Token>& toks, std::size_t i) {
  if (!isIdent(toks, i)) return false;
  const std::string& name = toks[i].text;
  if (name == "mutex" || name == "recursive_mutex" ||
      name == "shared_mutex" || name == "timed_mutex" ||
      name == "recursive_timed_mutex") {
    static const std::set<std::string> kStd = {"std"};
    return plainOrQualifiedBy(toks, i, kStd);
  }
  if (name == "Mutex") {
    static const std::set<std::string> kLockdep = {"lockdep"};
    return plainOrQualifiedBy(toks, i, kLockdep);
  }
  return false;
}

const std::set<std::string>& readerAccessorSet() {
  static const std::set<std::string> kAccessors = {
      "u8", "u16", "u32", "u64", "i64", "blob", "str"};
  return kAccessors;
}

const std::set<std::string>& iteratorYieldingMembers() {
  static const std::set<std::string> kMembers = {
      "begin", "cbegin", "rbegin", "end",   "cend", "rend",
      "find",  "lower_bound",      "upper_bound",   "erase", "insert"};
  return kMembers;
}

/// Splits the token range (begin, end) — exclusive of the delimiters — into
/// top-level comma-separated argument ranges.
std::vector<std::pair<std::size_t, std::size_t>> splitArgs(
    const std::vector<Token>& toks, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  std::size_t depth = 0;
  std::size_t start = begin;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = toks[i].text;
    if (t == "(" || t == "{" || t == "[") ++depth;
    if (t == ")" || t == "}" || t == "]") --depth;
    if (t == "," && depth == 0) {
      args.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < end) args.emplace_back(start, end);
  return args;
}

/// Last identifier in an argument range: `this->mutex_` -> mutex_,
/// `parent.mtx_` -> mtx_, `*mu` -> mu.
std::string lastIdentIn(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end) {
  for (std::size_t i = end; i-- > begin;) {
    if (toks[i].kind == TokKind::kIdent) return toks[i].text;
  }
  return {};
}

bool rangeContainsIdent(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end, std::string_view name) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == name) return true;
  }
  return false;
}

// --- Function definition detection -----------------------------------------

struct DefMatch {
  std::string name;
  std::string owner;
  std::size_t bodyBegin;  // index of '{'
};

/// Skips one constructor-initializer item (`member(init)` / `member{init}`),
/// returning the index after it, or `i` if the shape does not match.
std::size_t skipInitItem(const std::vector<Token>& toks, std::size_t i) {
  if (!isIdent(toks, i)) return i;
  std::size_t j = i + 1;
  while (text(toks, j) == "::" && isIdent(toks, j + 1)) j += 2;
  if (text(toks, j) == "<") j = skipBalanced(toks, j, "<", ">");
  if (text(toks, j) == "(") return skipBalanced(toks, j, "(", ")");
  if (text(toks, j) == "{") return skipBalanced(toks, j, "{", "}");
  return i;
}

/// Tries to match a function definition whose name token is at `i` (the
/// identifier directly followed by '('). Returns the body position on
/// success. `currentClass` is the enclosing class body, if any.
[[nodiscard]] std::optional<DefMatch> matchFunctionDef(
    const std::vector<Token>& toks,
                                         std::size_t i,
                                         const std::string& currentClass) {
  const std::string& name = toks[i].text;
  if (keywordSet().contains(name) || isGuardName(name)) return std::nullopt;
  if (i > 0) {
    const std::string& prev = toks[i - 1].text;
    if (prev == "." || prev == "->") return std::nullopt;  // method call
  }
  std::size_t afterArgs = skipBalanced(toks, i + 1, "(", ")");
  if (afterArgs >= toks.size()) return std::nullopt;

  // Specifier run after the parameter list.
  std::size_t j = afterArgs;
  bool sawInitList = false;
  while (j < toks.size()) {
    const std::string& t = toks[j].text;
    if (t == "const" || t == "override" || t == "final" || t == "&" ||
        t == "&&" || t == "mutable" || t == "try") {
      ++j;
    } else if (t == "noexcept") {
      ++j;
      if (text(toks, j) == "(") j = skipBalanced(toks, j, "(", ")");
    } else if (t == "[[") {
      j = skipBalanced(toks, j, "[[", "]]");
    } else if (t == "->") {
      // Trailing return type: consume type tokens up to '{' or a breaker.
      ++j;
      while (j < toks.size()) {
        const std::string& r = toks[j].text;
        if (r == "{" || r == ";" || r == "=" || r == ")") break;
        if (r == "<") {
          j = skipBalanced(toks, j, "<", ">");
        } else if (r == "(") {
          j = skipBalanced(toks, j, "(", ")");
        } else {
          ++j;
        }
      }
    } else if (t == ":" && !sawInitList) {
      // Constructor member-initializer list.
      sawInitList = true;
      ++j;
      for (;;) {
        const std::size_t next = skipInitItem(toks, j);
        if (next == j) break;
        j = next;
        if (text(toks, j) == ",") {
          ++j;
          continue;
        }
        break;
      }
    } else {
      break;
    }
  }
  if (text(toks, j) != "{") return std::nullopt;

  DefMatch match;
  match.bodyBegin = j;
  match.name = name;
  match.owner = currentClass;
  // Qualified out-of-line definition: Class::name or Class::~Class.
  if (i >= 2 && toks[i - 1].text == "::" && isIdent(toks, i - 2)) {
    match.owner = toks[i - 2].text;
  } else if (i >= 3 && toks[i - 1].text == "~" && toks[i - 2].text == "::" &&
             isIdent(toks, i - 3)) {
    match.owner = toks[i - 3].text;
    match.name = "~" + name;
  } else if (i >= 1 && toks[i - 1].text == "~") {
    match.name = "~" + name;  // in-class destructor
  }
  return match;
}

// --- Function body scan -----------------------------------------------------

void scanBody(const std::vector<Token>& toks, FunctionInfo& fn) {
  std::size_t depth = 1;  // we start just inside the opening '{'
  std::vector<std::size_t> active;  // indices into fn.locks, innermost last

  std::size_t i = fn.bodyBegin + 1;
  const std::size_t end = fn.bodyEnd > 0 ? fn.bodyEnd - 1 : fn.bodyEnd;
  while (i < end) {
    const std::string& t = toks[i].text;
    if (t == "{") {
      ++depth;
      ++i;
      continue;
    }
    if (t == "}") {
      // Guards declared in the closing block die here.
      for (auto it = active.begin(); it != active.end();) {
        if (fn.locks[*it].scopeDepth == depth) {
          fn.locks[*it].scopeEnd = i;
          it = active.erase(it);
        } else {
          ++it;
        }
      }
      --depth;
      ++i;
      continue;
    }
    if (toks[i].kind != TokKind::kIdent) {
      ++i;
      continue;
    }
    const std::string& name = toks[i].text;

    // RAII guard declaration.
    if (isGuardName(name)) {
      std::size_t j = i + 1;
      if (text(toks, j) == "<") j = skipBalanced(toks, j, "<", ">");
      if (isIdent(toks, j)) ++j;  // the guard variable name (may be absent)
      const std::string& opener = text(toks, j);
      if (opener != "(" && opener != "{") {
        ++i;  // a guard type mention without a declaration (alias, param)
        continue;
      }
      const std::string closer = opener == "(" ? ")" : "}";
      const std::size_t argsEnd = skipBalanced(toks, j, opener, closer);
      const auto args = splitArgs(toks, j + 1, argsEnd - 1);
      bool deferred = false;
      for (const auto& [ab, ae] : args) {
        if (rangeContainsIdent(toks, ab, ae, "defer_lock") ||
            rangeContainsIdent(toks, ab, ae, "try_to_lock")) {
          deferred = true;
        }
      }
      const bool multi = name == "scoped_lock";
      const std::size_t mutexArgs = multi ? args.size() : std::min<std::size_t>(1, args.size());
      for (std::size_t a = 0; a < mutexArgs; ++a) {
        if (rangeContainsIdent(toks, args[a].first, args[a].second, "adopt_lock") ||
            rangeContainsIdent(toks, args[a].first, args[a].second, "defer_lock") ||
            rangeContainsIdent(toks, args[a].first, args[a].second, "try_to_lock")) {
          continue;  // a lock-tag argument, not a mutex
        }
        std::string mutexName =
            lastIdentIn(toks, args[a].first, args[a].second);
        if (mutexName.empty()) continue;
        LockSite site;
        site.mutexName = std::move(mutexName);
        site.tokenIndex = i;
        site.line = toks[i].line;
        site.scopeDepth = depth;
        site.scopeEnd = end;  // refined when the block closes
        site.deferred = deferred;
        fn.locks.push_back(std::move(site));
        if (!deferred) active.push_back(fn.locks.size() - 1);
      }
      i = argsEnd;
      continue;
    }

    // setTimer with a lambda-literal callback.
    if (name == "setTimer" && text(toks, i + 1) == "(") {
      const std::size_t argsEnd = skipBalanced(toks, i + 1, "(", ")");
      const auto args = splitArgs(toks, i + 2, argsEnd - 1);
      for (const auto& [ab, ae] : args) {
        if (ab >= ae || toks[ab].text != "[") continue;
        const std::size_t capEnd = skipBalanced(toks, ab, "[", "]");
        TimerLambda timer;
        timer.line = toks[i].line;
        const auto captures = splitArgs(toks, ab + 1, capEnd - 1);
        for (const auto& [cb, ce] : captures) {
          if (cb >= ce) continue;
          if (toks[cb].text == "&") {
            if (ce - cb == 1) {
              timer.capturesAllByRef = true;
            } else if (isIdent(toks, cb + 1)) {
              timer.refCaptures.push_back(toks[cb + 1].text);
            }
          } else if (isIdent(toks, cb)) {
            timer.valueCaptures.push_back(toks[cb].text);
          }
        }
        fn.timers.push_back(std::move(timer));
        break;  // one callback per setTimer call
      }
      // Fall through to the generic scan so captures/locks inside the
      // lambda body are still attributed to this function.
      ++i;
      continue;
    }

    // Iterator-typed local: `auto it = container.find(...)` and friends.
    if (name == "auto") {
      std::size_t j = i + 1;
      while (text(toks, j) == "const" || text(toks, j) == "&" ||
             text(toks, j) == "*") {
        ++j;
      }
      if (isIdent(toks, j) && text(toks, j + 1) == "=") {
        std::size_t k = j + 2;
        std::size_t exprDepth = 0;
        bool iteratorInit = false;
        while (k < end) {
          const std::string& e = toks[k].text;
          if (e == "(" || e == "{" || e == "[") ++exprDepth;
          if (e == ")" || e == "}" || e == "]") {
            if (exprDepth == 0) break;
            --exprDepth;
          }
          if (e == ";" && exprDepth == 0) break;
          if ((e == "." || e == "->") && isIdent(toks, k + 1) &&
              iteratorYieldingMembers().contains(toks[k + 1].text) &&
              text(toks, k + 2) == "(") {
            iteratorInit = true;
          }
          ++k;
        }
        if (iteratorInit) fn.iteratorLocals.insert(toks[j].text);
      }
      ++i;
      continue;
    }

    // Local mutex declaration.
    if (isMutexType(toks, i) && isIdent(toks, i + 1)) {
      const std::string& follow = text(toks, i + 2);
      if (follow == ";" || follow == "{" || follow == "(" || follow == "=") {
        fn.localMutexes.insert(toks[i + 1].text);
        ++i;
        continue;
      }
    }

    // ByteReader accessor read (taint source harvest for R9).
    if (readerAccessorSet().contains(name) && i >= 2 &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        isIdent(toks, i - 2) &&
        lowered(toks[i - 2].text).find("reader") != std::string::npos &&
        text(toks, i + 1) == "(") {
      ReaderRead read;
      read.accessor = name;
      read.line = toks[i].line;
      if (i >= 4 && toks[i - 3].text == "=" && isIdent(toks, i - 4)) {
        read.boundVariable = toks[i - 4].text;
      }
      fn.readerReads.push_back(std::move(read));
      ++i;
      continue;
    }

    // Generic call site.
    if (text(toks, i + 1) == "(" && !keywordSet().contains(name)) {
      CallSite call;
      call.callee = name;
      call.tokenIndex = i;
      call.line = toks[i].line;
      for (const std::size_t lockIdx : active) {
        if (!fn.locks[lockIdx].deferred) call.heldLocks.push_back(lockIdx);
      }
      fn.calls.push_back(std::move(call));
    }
    ++i;
  }
  // Function-exit: close any still-active guard scopes.
  for (const std::size_t lockIdx : active) {
    fn.locks[lockIdx].scopeEnd = end;
  }
}

// --- File-level scan --------------------------------------------------------

void scanFile(FileIndex& file) {
  const std::vector<Token>& toks = file.tokens;

  struct Context {
    enum class Kind { kNamespace, kClass, kBrace } kind;
    std::string name;
  };
  std::vector<Context> contexts;

  const auto currentClass = [&]() -> std::string {
    for (auto it = contexts.rbegin(); it != contexts.rend(); ++it) {
      if (it->kind == Context::Kind::kClass) return it->name;
    }
    return {};
  };

  std::size_t i = 0;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;

    if (t == "{") {
      contexts.push_back({Context::Kind::kBrace, {}});
      ++i;
      continue;
    }
    if (t == "}") {
      if (!contexts.empty()) contexts.pop_back();
      ++i;
      continue;
    }
    if (toks[i].kind != TokKind::kIdent) {
      ++i;
      continue;
    }

    // namespace [name] {
    if (t == "namespace") {
      std::size_t j = i + 1;
      std::string name;
      while (isIdent(toks, j)) {
        name = toks[j].text;
        ++j;
        if (text(toks, j) == "::") ++j;
      }
      if (text(toks, j) == "{") {
        contexts.push_back({Context::Kind::kNamespace, name});
        i = j + 1;
        continue;
      }
      ++i;
      continue;
    }

    // class/struct Name ... { (skip `enum class` and forward declarations)
    if ((t == "class" || t == "struct") &&
        (i == 0 || toks[i - 1].text != "enum")) {
      std::size_t j = i + 1;
      while (text(toks, j) == "[[") j = skipBalanced(toks, j, "[[", "]]");
      if (isIdent(toks, j)) {
        const std::string className = toks[j].text;
        ++j;
        if (text(toks, j) == "final") ++j;
        // Base-clause: consume up to '{' or ';' at angle-bracket depth 0.
        if (text(toks, j) == ":") {
          while (j < toks.size() && toks[j].text != "{" &&
                 toks[j].text != ";") {
            if (toks[j].text == "<") {
              j = skipBalanced(toks, j, "<", ">");
            } else {
              ++j;
            }
          }
        }
        if (text(toks, j) == "{") {
          contexts.push_back({Context::Kind::kClass, className});
          i = j + 1;
          continue;
        }
      }
      ++i;
      continue;
    }

    // Mutex declarations at class/namespace scope.
    if (isMutexType(toks, i) && isIdent(toks, i + 1)) {
      const std::string& follow = text(toks, i + 2);
      if (follow == ";" || follow == "{" || follow == "=") {
        const std::string owner = currentClass();
        if (!owner.empty()) {
          file.classMutexMembers[owner].insert(toks[i + 1].text);
        } else {
          file.globalMutexes.insert(toks[i + 1].text);
        }
        if (follow == "{") {
          i = skipBalanced(toks, i + 2, "{", "}");
        } else {
          i += 2;
        }
        continue;
      }
    }

    // Unordered-container declarations (R5 harvest, path-scoped in phase 2).
    if ((t == "unordered_map" || t == "unordered_set") &&
        text(toks, i + 1) == "<") {
      const std::size_t afterArgs = skipBalanced(toks, i + 1, "<", ">");
      if (isIdent(toks, afterArgs) && text(toks, afterArgs + 1) != "(") {
        file.unorderedDecls.insert(toks[afterArgs].text);
      }
      // Do not skip: the declarator may itself be a function definition.
    }

    // Function definition?
    if (text(toks, i + 1) == "(") {
      if (auto match = matchFunctionDef(toks, i, currentClass())) {
        FunctionInfo fn;
        fn.name = std::move(match->name);
        fn.owner = std::move(match->owner);
        fn.qualified =
            fn.owner.empty() ? fn.name : fn.owner + "::" + fn.name;
        fn.line = toks[i].line;
        fn.bodyBegin = match->bodyBegin;
        fn.bodyEnd = skipBalanced(toks, match->bodyBegin, "{", "}");
        scanBody(toks, fn);
        file.functions.push_back(std::move(fn));
        i = file.functions.back().bodyEnd;
        continue;
      }
    }
    ++i;
  }
}

}  // namespace

RepoIndex buildIndex(const std::vector<SourceFile>& files) {
  RepoIndex index;
  index.files.reserve(files.size());
  for (const SourceFile& source : files) {
    FileIndex file;
    file.path = source.path;
    LexResult lexed = lex(source.path, source.text);
    file.tokens = std::move(lexed.tokens);
    file.suppressions = std::move(lexed.suppressions);
    scanFile(file);
    index.files.push_back(std::move(file));
  }

  // Merge the cross-file maps.
  for (std::size_t f = 0; f < index.files.size(); ++f) {
    const FileIndex& file = index.files[f];
    for (const auto& [cls, members] : file.classMutexMembers) {
      index.classMutexMembers[cls].insert(members.begin(), members.end());
    }
    index.globalMutexes.insert(file.globalMutexes.begin(),
                               file.globalMutexes.end());
    for (std::size_t fn = 0; fn < file.functions.size(); ++fn) {
      index.functionsByName.emplace(file.functions[fn].name,
                                    std::make_pair(f, fn));
    }
  }

  // Resolve every lock site to a canonical mutex identity. Member locks in
  // a class with a matching declaration anywhere in the set resolve to
  // "Class::name"; locals to "function:name"; the rest merge by raw name
  // (conservative: distinct unknown mutexes that share a spelling alias).
  for (FileIndex& file : index.files) {
    for (FunctionInfo& fn : file.functions) {
      for (LockSite& lock : fn.locks) {
        const auto owned = index.classMutexMembers.find(fn.owner);
        if (!fn.owner.empty() && owned != index.classMutexMembers.end() &&
            owned->second.contains(lock.mutexName)) {
          lock.mutexId = fn.owner + "::" + lock.mutexName;
          continue;
        }
        if (fn.localMutexes.contains(lock.mutexName)) {
          lock.mutexId = fn.qualified + ":" + lock.mutexName;
          continue;
        }
        // Unique class member with this name anywhere in the repo?
        std::string uniqueOwner;
        bool ambiguous = false;
        for (const auto& [cls, members] : index.classMutexMembers) {
          if (members.contains(lock.mutexName)) {
            if (!uniqueOwner.empty()) {
              ambiguous = true;
              break;
            }
            uniqueOwner = cls;
          }
        }
        if (!ambiguous && !uniqueOwner.empty()) {
          lock.mutexId = uniqueOwner + "::" + lock.mutexName;
        } else if (index.globalMutexes.contains(lock.mutexName)) {
          lock.mutexId = "::" + lock.mutexName;
        } else {
          lock.mutexId = lock.mutexName;
        }
      }
    }
  }
  return index;
}

}  // namespace avd::lint
