// avd_lint phase 0 — tokenizer.
//
// A C++-aware lexer that is just rich enough for the rule set: it strips
// comments (harvesting suppression directives as it goes), understands
// string/char/raw-string literals so byte content can never fake a token,
// skips preprocessor directives (a rule must never fire on a disabled
// branch's tokens twice), and keeps line numbers for diagnostics.
// Multi-char operators are only fused where a rule needs to see them as one
// unit (`::`, `->`, `[[`, `]]`).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

namespace avd::lint {

enum class TokKind { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line;
};

/// One `avd-lint allow(...)` directive as written in the source. R10
/// audits these records: every rule listed must actually suppress a
/// finding on one of `coveredLines`, or the directive is stale.
struct Directive {
  std::size_t line = 0;                 // line the comment appears on
  std::set<std::size_t> coveredLines;   // line (+ line+1 when standalone)
  std::set<std::string> rules;          // names listed in allow(); "*" = all
};

struct Suppressions {
  // line -> rules allowed on that line ("*" = all rules).
  std::map<std::size_t, std::set<std::string>> byLine;
  // Every well-formed directive, in source order (for R10).
  std::vector<Directive> directives;
  // Malformed or unknown allow() directives found while lexing.
  std::vector<Finding> errors;
};

struct LexResult {
  std::vector<Token> tokens;
  Suppressions suppressions;
};

LexResult lex(const std::string& path, std::string_view src);

// --- Token-stream helpers shared by the index and the rules ---------------

extern const std::string kEmptyTokenText;

const std::string& text(const std::vector<Token>& toks, std::size_t i);
bool isIdent(const std::vector<Token>& toks, std::size_t i);

/// Index one past the matching closer, starting at the opener index.
std::size_t skipBalanced(const std::vector<Token>& toks, std::size_t open,
                         const std::string& opener, const std::string& closer);

/// True when the identifier at `i` is unqualified or qualified by one of
/// `namespaces` (e.g. `std::rand` yes, `sim::time` no, `obj.rand` no).
bool plainOrQualifiedBy(const std::vector<Token>& toks, std::size_t i,
                        const std::set<std::string>& namespaces);

/// `kLikeThis` compile-time cap/constant naming convention.
bool isCapConstant(const std::string& name);

std::string lowered(std::string s);

bool pathEndsWith(const std::string& path, std::string_view suffix);

}  // namespace avd::lint
