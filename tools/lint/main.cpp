// avd_lint CLI — walks source trees, runs the rule set, prints findings.
//
// Usage:
//   avd_lint [--json] [--include-suppressed] [--list-rules]
//            [--baseline findings.json] [--gen-events out.h]
//            [--check-events checked-in.h] [--gen-effects out.json]
//            [--check-effects checked-in.json] <path>...
//
// Paths may be files or directories (directories are walked recursively for
// .h/.cpp files). Exit status is 0 when no unsuppressed finding exists,
// 1 when violations remain, 2 on usage/IO errors — so a CTest entry is just
// `avd_lint ${CMAKE_SOURCE_DIR}/src`.
//
// With --baseline, findings that match the committed baseline (by file,
// rule, and message — line-insensitive) are accepted and only *new*
// findings fail: the gate becomes a ratchet that can never loosen.
//
// With --gen-events, the protocol-event taxonomy extracted from the given
// paths is written to the output header (src/avd/gen/protocol_events.h in
// the tree) instead of linting. --check-events regenerates the taxonomy
// and diffs it against the checked-in header: exit 1 on drift (the
// `lint.gen` CTest gate). --gen-effects / --check-effects do the same for
// the phase-4 effect map (tools/lint/effects.json, the `lint.effects`
// gate): the checked-in JSON is the reviewed record of which functions
// carry which effects, so a new effect on a hot path shows up in the diff.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "effects.h"
#include "index.h"
#include "lint.h"
#include "model.h"

namespace {

namespace fs = std::filesystem;
using avd::lint::Finding;
using avd::lint::SourceFile;

bool isSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool readFile(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int usage() {
  std::cerr << "usage: avd_lint [--json] [--include-suppressed] "
               "[--list-rules] [--baseline findings.json] "
               "[--gen-events out.h] [--check-events checked-in.h] "
               "[--gen-effects out.json] [--check-effects checked-in.json] "
               "<file-or-dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool includeSuppressed = false;
  std::string baselinePath;
  std::string genEventsPath;
  std::string checkEventsPath;
  std::string genEffectsPath;
  std::string checkEffectsPath;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--include-suppressed") {
      includeSuppressed = true;
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "avd_lint: --baseline requires a file argument\n";
        return usage();
      }
      baselinePath = argv[++i];
    } else if (arg == "--gen-events") {
      if (i + 1 >= argc) {
        std::cerr << "avd_lint: --gen-events requires an output path\n";
        return usage();
      }
      genEventsPath = argv[++i];
    } else if (arg == "--check-events") {
      if (i + 1 >= argc) {
        std::cerr << "avd_lint: --check-events requires the checked-in "
                     "header path\n";
        return usage();
      }
      checkEventsPath = argv[++i];
    } else if (arg == "--gen-effects") {
      if (i + 1 >= argc) {
        std::cerr << "avd_lint: --gen-effects requires an output path\n";
        return usage();
      }
      genEffectsPath = argv[++i];
    } else if (arg == "--check-effects") {
      if (i + 1 >= argc) {
        std::cerr << "avd_lint: --check-effects requires the checked-in "
                     "json path\n";
        return usage();
      }
      checkEffectsPath = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& rule : avd::lint::ruleRegistry()) {
        std::cout << rule.id << "\t" << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "avd_lint: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<SourceFile> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && isSourceFile(it->path())) {
          files.push_back({it->path().generic_string(), {}});
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back({root.generic_string(), {}});
    } else {
      std::cerr << "avd_lint: cannot access '" << root.string() << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  for (SourceFile& file : files) {
    if (!readFile(file.path, file.text)) {
      std::cerr << "avd_lint: cannot read '" << file.path << "'\n";
      return 2;
    }
  }

  if (!genEventsPath.empty() || !checkEventsPath.empty()) {
    const avd::lint::RepoIndex index = avd::lint::buildIndex(files);
    const avd::lint::ProtocolModel model = avd::lint::extractModel(index);
    const std::string header = avd::lint::generateEventsHeader(model);
    if (!genEventsPath.empty()) {
      std::ofstream out(genEventsPath, std::ios::binary);
      if (!out || !(out << header)) {
        std::cerr << "avd_lint: cannot write '" << genEventsPath << "'\n";
        return 2;
      }
      return 0;
    }
    std::string checkedIn;
    if (!readFile(checkEventsPath, checkedIn)) {
      std::cerr << "avd_lint: cannot read '" << checkEventsPath << "'\n";
      return 2;
    }
    if (checkedIn != header) {
      std::cerr << "avd_lint: '" << checkEventsPath
                << "' is stale: the protocol-event taxonomy extracted from "
                   "the sources differs from the checked-in header.\n"
                   "Regenerate with: avd_lint --gen-events "
                << checkEventsPath << " <paths>\n";
      return 1;
    }
    return 0;
  }

  if (!genEffectsPath.empty() || !checkEffectsPath.empty()) {
    const avd::lint::RepoIndex index = avd::lint::buildIndex(files);
    const avd::lint::EffectIndex effects = avd::lint::inferEffects(index);
    const std::string rendered =
        avd::lint::generateEffectsJson(index, effects);
    if (!genEffectsPath.empty()) {
      std::ofstream out(genEffectsPath, std::ios::binary);
      if (!out || !(out << rendered)) {
        std::cerr << "avd_lint: cannot write '" << genEffectsPath << "'\n";
        return 2;
      }
      return 0;
    }
    std::string checkedIn;
    if (!readFile(checkEffectsPath, checkedIn)) {
      std::cerr << "avd_lint: cannot read '" << checkEffectsPath << "'\n";
      return 2;
    }
    if (checkedIn != rendered) {
      std::cerr << "avd_lint: '" << checkEffectsPath
                << "' is stale: the effect map inferred from the sources "
                   "differs from the checked-in json.\n"
                   "Regenerate with: avd_lint --gen-effects "
                << checkEffectsPath << " <paths>\n";
      return 1;
    }
    return 0;
  }

  avd::lint::Options options;
  options.includeSuppressed = includeSuppressed;
  std::vector<Finding> findings = avd::lint::lintFiles(files, options);

  if (!baselinePath.empty()) {
    std::string baselineText;
    if (!readFile(baselinePath, baselineText)) {
      std::cerr << "avd_lint: cannot read baseline '" << baselinePath
                << "'\n";
      return 2;
    }
    findings = avd::lint::diffAgainstBaseline(
        findings, avd::lint::parseFindingsJson(baselineText));
  }

  if (json) {
    std::cout << avd::lint::toJson(findings);
  } else {
    for (const Finding& finding : findings) {
      std::cout << finding.file << ":" << finding.line << ": ["
                << finding.rule << (finding.suppressed ? ", suppressed" : "")
                << "] " << finding.message << "\n";
    }
    const std::size_t bad = avd::lint::unsuppressedCount(findings);
    std::cout << files.size() << " files scanned, " << bad
              << (baselinePath.empty() ? " unsuppressed finding(s)\n"
                                       : " new unsuppressed finding(s)\n");
  }
  return avd::lint::unsuppressedCount(findings) == 0 ? 0 : 1;
}
