// avd_lint — repo-specific static analysis for the AVD codebase.
//
// A deliberately small, dependency-free C++ analyzer. v4 is a five-phase
// engine: phase 0/1 (lexer.h / index.h) tokenizes every translation unit
// and builds a repo-wide semantic index (functions, mutexes, lock sites,
// call graph, setTimer lambdas, ByteReader reads); phase 2 (this module)
// runs the token/index rule families; phase 3 (model.h) extracts the
// protocol model and checks wire/handler conformance; phase 4 (effects.h)
// runs a call-graph effect-inference fixpoint and checks the effect rules:
//
//   R1  nondeterminism        R2  unchecked-parse     R3  uncapped-reserve
//   R4  naked-lock            R5  unordered-iter      R6  detached-thread
//   R7  lock-order            R8  timer-capture       R9  tainted-size
//   R11 wire-symmetry         R12 handler-exhaustive  R13 quorum-consistency
//   R14 event-coverage        R15 determinism-boundary
//   R16 syscall-discipline    R17 durability-ordering
//   R18 blocking-under-lock   R10 stale-suppression
//   (+ the bad-suppression meta rule)
//
// The rule set is documented in docs/STATIC_ANALYSIS.md; each rule can be
// suppressed per line with an `avd-lint allow(naked-lock)` style comment
// naming the rule id (R10 then audits that every such directive still
// suppresses something). A committed baseline (`--baseline findings.json`)
// turns the CI gate into a ratchet: only *new* findings fail the build.
//
// The analysis lives in a library so tests can seed violations through the
// same entry points the CLI uses (tools/lint/main.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace avd::lint {

/// One diagnostic produced by a rule.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;     // registry id, e.g. "nondeterminism"
  std::string message;  // human-readable explanation
  bool suppressed = false;
};

/// Static description of a rule, surfaced by `avd_lint --list-rules`.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// All rules this build knows about, in diagnostic order R1..R18 + meta.
const std::vector<RuleInfo>& ruleRegistry();

/// True iff `rule` names a registered rule (used to reject typos in
/// suppression comments — a misspelled allow() must not silently pass).
bool isKnownRule(std::string_view rule);

/// An in-memory source file. `path` drives the path-scoped rules
/// (e.g. the common/rng exemption for R1 and the R5 file scope), so tests
/// can pretend a fixture lives anywhere in the tree.
struct SourceFile {
  std::string path;
  std::string text;
};

struct Options {
  /// Report suppressed findings too (flagged `suppressed: true`).
  bool includeSuppressed = false;
};

/// Lints a set of files as one unit. Phase 1 indexes the whole set before
/// any rule runs, so cross-file facts (a mutex member declared in a header
/// and locked in a .cpp, a callee defined in another TU) are visible to
/// every rule.
std::vector<Finding> lintFiles(const std::vector<SourceFile>& files,
                               const Options& options = {});

/// Convenience wrapper for a single in-memory file.
std::vector<Finding> lintSource(std::string_view path, std::string_view text,
                                const Options& options = {});

/// Serializes findings as a JSON array (machine-readable report; also the
/// on-disk baseline format).
std::string toJson(const std::vector<Finding>& findings);

/// Parses a findings array previously produced by toJson() (the committed
/// baseline). Tolerant of whitespace; unknown keys are ignored.
std::vector<Finding> parseFindingsJson(std::string_view json);

/// Baseline diff: returns the findings in `current` that are not accounted
/// for by `baseline`. Matching is by (file, rule, message) as a multiset —
/// line numbers are deliberately ignored so unrelated edits that shift
/// lines do not resurrect baselined findings.
std::vector<Finding> diffAgainstBaseline(const std::vector<Finding>& current,
                                         const std::vector<Finding>& baseline);

/// Count of findings that are not suppressed.
std::size_t unsuppressedCount(const std::vector<Finding>& findings);

}  // namespace avd::lint
