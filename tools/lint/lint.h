// avd_lint — repo-specific static analysis for the AVD codebase.
//
// A deliberately small, dependency-free C++ linter that tokenizes source
// files and enforces rules general-purpose tools cannot know about:
// determinism of consensus paths, totality of wire parsing, allocation
// bounds on attacker-controlled counts, RAII locking, and iteration-order
// stability. The rule set is documented in docs/STATIC_ANALYSIS.md; each
// rule can be suppressed per line with an `avd-lint: allow(naked-lock)`
// style comment naming the rule id.
//
// The analysis lives in a library so tests can seed violations through the
// same entry points the CLI uses (tools/lint/main.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace avd::lint {

/// One diagnostic produced by a rule.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;     // registry id, e.g. "nondeterminism"
  std::string message;  // human-readable explanation
  bool suppressed = false;
};

/// Static description of a rule, surfaced by `avd_lint --list-rules`.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// All rules this build knows about, in diagnostic order R1..R5.
const std::vector<RuleInfo>& ruleRegistry();

/// True iff `rule` names a registered rule (used to reject typos in
/// suppression comments — a misspelled allow() must not silently pass).
bool isKnownRule(std::string_view rule);

/// An in-memory source file. `path` drives the path-scoped rules
/// (e.g. the common/rng exemption for R1 and the R5 file scope), so tests
/// can pretend a fixture lives anywhere in the tree.
struct SourceFile {
  std::string path;
  std::string text;
};

struct Options {
  /// Report suppressed findings too (flagged `suppressed: true`).
  bool includeSuppressed = false;
};

/// Lints a set of files as one unit. Cross-file state (unordered-container
/// declarations for R5) is gathered across the whole set, so a .cpp file
/// iterating a member declared in its header is still caught.
std::vector<Finding> lintFiles(const std::vector<SourceFile>& files,
                               const Options& options = {});

/// Convenience wrapper for a single in-memory file.
std::vector<Finding> lintSource(std::string_view path, std::string_view text,
                                const Options& options = {});

/// Serializes findings as a JSON array (machine-readable report).
std::string toJson(const std::vector<Finding>& findings);

/// Count of findings that are not suppressed.
std::size_t unsuppressedCount(const std::vector<Finding>& findings);

}  // namespace avd::lint
