// Crash-restart recovery conformance: a replica that crashes and rejoins
// must never compromise safety, must recover the deployment's throughput,
// and must behave identically under a fixed seed.
//
// The suite drives recovery three ways: direct crash()/restart() calls
// between runFor() slices (precise timing against protocol phases),
// fi::ChurnFault (the scheduled fault used by the AVD churn dimensions),
// and adversarial timing (restart during state transfer, primary restart
// mid-view-change, double crashes).
#include <gtest/gtest.h>

#include <memory>

#include "faultinject/churn.h"
#include "pbft/deployment.h"

namespace avd::pbft {
namespace {

DeploymentConfig recoveryConfig(std::uint64_t seed = 71) {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(400);
  config.pbft.viewChangeTimeout = sim::msec(400);
  config.pbft.checkpointInterval = 16;
  config.pbft.watermarkWindow = 64;
  config.clientRetx = sim::msec(100);
  config.correctClients = 8;
  config.warmup = sim::msec(400);
  config.measure = sim::sec(3);
  config.seed = seed;
  return config;
}

void expectAgreement(Deployment& deployment) {
  const auto& trace0 = deployment.replica(0).executionTrace();
  for (std::uint32_t r = 1; r < deployment.replicaCount(); ++r) {
    for (const auto& [seq, digest] : deployment.replica(r).executionTrace()) {
      const auto it = trace0.find(seq);
      if (it != trace0.end()) {
        EXPECT_EQ(it->second, digest) << "replica " << r << " seq " << seq;
      }
    }
  }
}

// --- throughput conformance -------------------------------------------------

TEST(RecoveryConformance, BackupChurnKeepsThroughputNearBaseline) {
  // Baseline: the same deployment with churn disabled.
  Deployment baseline(recoveryConfig());
  const double baselineRps = baseline.run().throughputRps;
  ASSERT_GT(baselineRps, 100.0);

  // One backup crashes mid-measurement and rejoins 200 ms later. The
  // remaining 3 of 4 replicas form an exact quorum, so ordering never
  // stops, and the rejoining backup must catch up without disturbing it.
  Deployment deployment(recoveryConfig());
  fi::ChurnFault::Options churn;
  churn.target = 2;
  churn.firstCrash = sim::msec(900);
  churn.downtime = sim::msec(200);
  auto fault = std::make_shared<fi::ChurnFault>(
      &deployment.simulator(), &deployment.network(), churn);
  fault->install();

  const RunResult result = deployment.run();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_EQ(fault->crashesInjected(), 1u);
  EXPECT_EQ(fault->restartsInjected(), 1u);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_GT(result.recoveryLatencySec, 0.0);
  EXPECT_GE(result.throughputRps, 0.8 * baselineRps)
      << "baseline " << baselineRps << " rps";
  expectAgreement(deployment);

  // The rejoined backup caught up with the others.
  EXPECT_EQ(deployment.replica(2).restarts(), 1u);
  EXPECT_GT(deployment.replica(2).lastExecuted(), 0u);
  EXPECT_GE(deployment.replica(2).lastExecuted() + 64,
            deployment.replica(0).lastExecuted());
}

TEST(RecoveryConformance, UpToFReplicasCyclingStaysSafe) {
  // f = 1: one replica may be down at any instant. Cycle one backup
  // repeatedly for the whole run — sustained churn, not a single blip.
  Deployment deployment(recoveryConfig(72));
  fi::ChurnFault::Options churn;
  churn.target = 1;
  churn.firstCrash = sim::msec(600);
  churn.downtime = sim::msec(250);
  churn.period = sim::msec(800);
  auto fault = std::make_shared<fi::ChurnFault>(
      &deployment.simulator(), &deployment.network(), churn);
  fault->install();

  const RunResult result = deployment.run();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GE(result.restarts, 3u);
  EXPECT_GT(result.correctCompleted, 0u);
  expectAgreement(deployment);
}

// --- determinism ------------------------------------------------------------

TEST(RecoveryConformance, ChurnRunIsDeterministicUnderFixedSeed) {
  auto runOnce = [] {
    Deployment deployment(recoveryConfig(73));
    fi::ChurnFault::Options churn;
    churn.target = 3;
    churn.firstCrash = sim::msec(700);
    churn.downtime = sim::msec(300);
    churn.period = sim::msec(900);
    auto fault = std::make_shared<fi::ChurnFault>(
        &deployment.simulator(), &deployment.network(), churn);
    fault->install();
    return deployment.run();
  };

  const RunResult first = runOnce();
  const RunResult second = runOnce();
  EXPECT_EQ(first.throughputRps, second.throughputRps);
  EXPECT_EQ(first.avgLatencySec, second.avgLatencySec);
  EXPECT_EQ(first.correctCompleted, second.correctCompleted);
  EXPECT_EQ(first.viewChangesInitiated, second.viewChangesInitiated);
  EXPECT_EQ(first.restarts, second.restarts);
  EXPECT_EQ(first.recoveryLatencySec, second.recoveryLatencySec);
  EXPECT_EQ(first.safetyViolated, second.safetyViolated);
}

// --- durable state ----------------------------------------------------------

TEST(RecoveryConformance, StableStorageIsWrittenAndRestoredOnRejoin) {
  Deployment deployment(recoveryConfig(74));
  deployment.runFor(sim::sec(2));  // enough for checkpoints to stabilize

  Replica& backup = deployment.replica(2);
  const std::uint64_t writesBeforeCrash = backup.stableStorage().writes();
  const util::SeqNum stableBeforeCrash = backup.stableCheckpoint();
  ASSERT_GT(stableBeforeCrash, 0u) << "checkpointing never stabilized";
  ASSERT_GT(writesBeforeCrash, 0u);

  backup.crash();
  deployment.runFor(sim::msec(300));
  backup.restart();

  // The restart resumed from the durable record, not from scratch: the
  // stable checkpoint survives, execution continues past it.
  EXPECT_GE(backup.stableCheckpoint(), stableBeforeCrash);
  deployment.runFor(sim::sec(2));
  EXPECT_GT(backup.lastExecuted(), stableBeforeCrash);
  EXPECT_FALSE(deployment.collect().safetyViolated);
  expectAgreement(deployment);
}

// --- adversarial timing edges -----------------------------------------------

TEST(RecoveryEdge, PrimaryRestartDuringViewChange) {
  Deployment deployment(recoveryConfig(75));
  deployment.runFor(sim::msec(800));

  // Crash the view-0 primary, then bring it back in the middle of the view
  // change it provoked. The recovered node must not reclaim the primary
  // role it durably lost; the new view must settle.
  deployment.replica(0).crash();
  deployment.runFor(sim::msec(500));  // inside the view-change window
  deployment.replica(0).restart();
  deployment.runFor(sim::sec(3));

  for (std::uint32_t r = 0; r < deployment.replicaCount(); ++r) {
    EXPECT_GE(deployment.replica(r).view(), 1u) << "replica " << r;
    EXPECT_FALSE(deployment.replica(r).inViewChange()) << "replica " << r;
  }
  const RunResult result = deployment.collect();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GT(result.correctCompleted, 0u);
  expectAgreement(deployment);
}

TEST(RecoveryEdge, RestartDuringStateTransferCatchesUpEventually) {
  Deployment deployment(recoveryConfig(76));
  deployment.runFor(sim::msec(600));

  // Stay down long enough for the others to advance checkpoints past this
  // replica's log, forcing a state transfer on rejoin...
  Replica& backup = deployment.replica(1);
  backup.crash();
  deployment.runFor(sim::sec(2));
  const util::SeqNum othersStable = deployment.replica(0).stableCheckpoint();
  ASSERT_GT(othersStable, backup.stableCheckpoint());

  backup.restart();
  // ...then crash it again almost immediately — mid catch-up — and
  // restart once more. The second incarnation must not be confused by
  // responses addressed to the first.
  deployment.runFor(sim::msec(40));
  backup.crash();
  deployment.runFor(sim::msec(200));
  backup.restart();
  deployment.runFor(sim::sec(3));

  EXPECT_EQ(backup.restarts(), 2u);
  EXPECT_GT(backup.lastExecuted(), othersStable)
      << "rejoined replica never caught up past the others' old checkpoint";
  EXPECT_FALSE(deployment.collect().safetyViolated);
  expectAgreement(deployment);
}

TEST(RecoveryEdge, DoubleCrashOfSameReplicaIsSafe) {
  Deployment deployment(recoveryConfig(77));
  deployment.runFor(sim::msec(700));

  Replica& backup = deployment.replica(3);
  backup.crash();
  deployment.runFor(sim::msec(250));
  backup.restart();
  deployment.runFor(sim::msec(500));
  backup.crash();
  deployment.runFor(sim::msec(250));
  backup.restart();
  deployment.runFor(sim::sec(2));

  EXPECT_EQ(backup.restarts(), 2u);
  EXPECT_GT(backup.stableStorage().writes(), 0u);
  const RunResult result = deployment.collect();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GT(result.correctCompleted, 0u);
  EXPECT_EQ(result.restarts, 2u);
  expectAgreement(deployment);
}

}  // namespace
}  // namespace avd::pbft
