// Tests for the genetic-algorithm explorer and the blind tamper tool.
#include <gtest/gtest.h>

#include <cmath>

#include "avd/genetic.h"
#include "avd/pbft_executor.h"
#include "faultinject/tamper.h"
#include "pbft/deployment.h"

namespace avd::core {
namespace {

/// Same ridge landscape the Controller tests use.
class RidgeExecutor final : public ScenarioExecutor {
 public:
  RidgeExecutor() {
    space_.add(Dimension::range("x", 0, 99));
    space_.add(Dimension::range("y", 0, 99));
  }
  Outcome execute(const Point& point) override {
    const double dx = std::abs(static_cast<double>(point[0]) - 70.0);
    const double dy = std::abs(static_cast<double>(point[1]) - 30.0);
    Outcome outcome;
    outcome.impact = std::max(0.0, 1.0 - dx / 10.0) * (1.0 - 0.6 * dy / 99.0);
    return outcome;
  }
  const Hyperspace& space() const noexcept override { return space_; }

 private:
  Hyperspace space_;
};

TEST(GeneticExplorer, RunsExactBudgetAndTracksBest) {
  RidgeExecutor executor;
  GeneticExplorer ga(executor, defaultPlugins(executor.space()),
                     GeneticOptions{}, 5);
  ga.runTests(100);
  EXPECT_EQ(ga.history().size(), 100u);
  EXPECT_GT(ga.generation(), 2u) << "several generations should complete";

  double best = 0;
  for (const TestRecord& record : ga.history()) {
    best = std::max(best, record.outcome.impact);
    EXPECT_DOUBLE_EQ(record.bestImpactSoFar, best);
  }
  EXPECT_DOUBLE_EQ(ga.maxImpact(), best);
}

TEST(GeneticExplorer, SelectionPressureClimbsTheRidge) {
  double totalBest = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RidgeExecutor executor;
    GeneticExplorer ga(executor, defaultPlugins(executor.space()),
                       GeneticOptions{}, seed);
    ga.runTests(120);
    totalBest += ga.maxImpact();
  }
  EXPECT_GT(totalBest / 8.0, 0.85)
      << "the GA should reliably reach the ridge top region";
}

TEST(GeneticExplorer, LaterGenerationsOutperformTheSeedGeneration) {
  RidgeExecutor executor;
  GeneticOptions options;
  options.populationSize = 10;
  GeneticExplorer ga(executor, defaultPlugins(executor.space()), options, 9);
  ga.runTests(100);

  double seedAvg = 0;
  double lastAvg = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    seedAvg += ga.history()[i].outcome.impact;
    lastAvg += ga.history()[90 + i].outcome.impact;
  }
  EXPECT_GT(lastAvg, seedAvg) << "evolution must improve mean fitness";
}

}  // namespace
}  // namespace avd::core

namespace avd::fi {
namespace {

TEST(TamperFault, BlindBitFlipsAreAbsorbedByAuthentication) {
  // The §4 baseline: random bit flips on 3% of all traffic. Every flip is
  // caught by a MAC/digest check, so its effect is bounded by that of an
  // equivalent drop (each request round trip spans ~20 messages, so even a
  // few percent hits most requests once) — and safety is never at risk.
  pbft::DeploymentConfig config;
  config.pbft.f = 1;
  config.correctClients = 6;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(2);
  config.seed = 31;

  pbft::Deployment deployment(config);
  auto tamper = std::make_shared<TamperFault>(0.03);
  deployment.network().addFault(tamper);
  const pbft::RunResult result = deployment.run();

  EXPECT_GT(tamper->tampered(), 50u) << "the tool must actually fire";
  EXPECT_EQ(result.network.tamperedByFaults, tamper->tampered());
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_EQ(result.maxView, 0u)
      << "blind flips never forge anything actionable";
  EXPECT_GT(result.correctCompleted, 40u)
      << "the system keeps serving through blind fuzzing";
}

TEST(TamperFault, EquivalentDropRateBoundsTheDamage) {
  const auto run = [](double tamperP, double dropP) {
    pbft::DeploymentConfig config;
    config.pbft.f = 1;
    config.correctClients = 6;
    config.warmup = sim::msec(300);
    config.measure = sim::sec(2);
    config.seed = 32;
    pbft::Deployment deployment(config);
    if (tamperP > 0) {
      deployment.network().addFault(std::make_shared<TamperFault>(tamperP));
    }
    if (dropP > 0) {
      deployment.network().addFault(std::make_shared<DropFault>(dropP));
    }
    return deployment.run().throughputRps;
  };
  const double baseline = run(0, 0);
  const double tampered = run(0.08, 0);
  const double dropped = run(0, 0.08);
  EXPECT_GT(tampered, dropped * 0.5)
      << "tampering behaves like (at worst) message loss";
  EXPECT_GT(baseline, tampered) << "but it is not free either";
}

}  // namespace
}  // namespace avd::fi
