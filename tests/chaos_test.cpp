// Randomized adversarial sweep: each seed derives a random hostile
// configuration — random corruption mask, random malicious behaviours,
// random network faults, random deployment size — and the invariants must
// hold regardless:
//
//   * SAFETY, always: no two replicas execute different batches at the
//     same sequence number.
//   * LIVENESS, whenever a correct quorum exists and the network delivers:
//     correct clients keep completing requests.
//
// This is the repository's equivalent of letting AVD run wild overnight
// and asserting the target never does the one thing BFT forbids.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "faultinject/mac_corruptor.h"
#include "faultinject/network_faults.h"
#include "faultinject/reorder.h"
#include "faultinject/tamper.h"
#include "pbft/deployment.h"

namespace avd::pbft {
namespace {

struct ChaosSetup {
  DeploymentConfig config;
  double dropRate = 0;
  double reorderRate = 0;
  double tamperRate = 0;
  bool quorumIntact = true;  // is a full correct quorum still guaranteed?
};

ChaosSetup randomSetup(std::uint64_t seed) {
  util::Rng rng(seed);
  ChaosSetup setup;
  DeploymentConfig& config = setup.config;

  config.pbft.f = 1 + static_cast<std::uint32_t>(rng.below(2));  // f in {1,2}
  config.pbft.requestTimeout = sim::msec(400);
  config.pbft.viewChangeTimeout = sim::msec(400);
  config.clientRetx = sim::msec(100);
  config.correctClients = 4 + static_cast<std::uint32_t>(rng.below(8));
  config.warmup = sim::msec(300);
  config.measure = sim::sec(3);
  config.seed = seed * 7919 + 13;

  // Up to f malicious replicas with random behaviours (staying within the
  // fault budget keeps the liveness expectation meaningful).
  const std::uint32_t maliciousReplicas =
      static_cast<std::uint32_t>(rng.below(config.pbft.f + 1));
  for (std::uint32_t i = 0; i < maliciousReplicas; ++i) {
    ReplicaBehavior behavior;
    switch (rng.below(5)) {
      case 0:
        behavior.silentPrepares = true;
        behavior.silentCommits = true;
        break;
      case 1:
        behavior.spuriousViewChangeInterval = sim::msec(150);
        break;
      case 2:
        behavior.equivocate = true;
        break;
      case 3:
        behavior.timerSkew = 0.01;
        break;
      case 4:
        behavior.slowPrimary = true;  // only bites if it is the primary
        break;
    }
    // Random replica, possibly the primary.
    config.replicaBehaviors[static_cast<util::NodeId>(
        rng.below(config.pbft.replicaCount()))] = behavior;
  }
  // Slow primaries within the fault budget can starve the system without
  // violating safety; the fixed timers keep the liveness expectation valid.
  config.pbft.perRequestTimers = true;
  // The crash bug turns Big MAC stalls into quorum loss: legitimate damage,
  // but it invalidates the liveness expectation, so run the fixed code and
  // let safety be the universal assertion.
  config.pbft.viewChangeCrashBug = false;

  // A malicious client with a random corruption mask, sometimes.
  if (rng.chance(0.7)) {
    config.maliciousClients = 1 + static_cast<std::uint32_t>(rng.below(2));
    config.maliciousClientBehavior.macPolicy =
        fi::makeMacCorruptor(rng.below(4096));
    config.maliciousClientBehavior.broadcastRequests = rng.chance(0.5);
  }

  // Mild random network hostility.
  setup.dropRate = rng.chance(0.5) ? rng.uniform() * 0.08 : 0.0;
  setup.reorderRate = rng.chance(0.5) ? rng.uniform() * 0.5 : 0.0;
  setup.tamperRate = rng.chance(0.3) ? rng.uniform() * 0.03 : 0.0;
  return setup;
}

class Chaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Chaos, SafetyAlwaysLivenessWhenQuorumIntact) {
  const ChaosSetup setup = randomSetup(GetParam());
  Deployment deployment(setup.config);
  if (setup.dropRate > 0) {
    deployment.network().addFault(
        std::make_shared<fi::DropFault>(setup.dropRate));
  }
  if (setup.reorderRate > 0) {
    deployment.network().addFault(
        std::make_shared<fi::ReorderFault>(setup.reorderRate, sim::msec(15)));
  }
  if (setup.tamperRate > 0) {
    deployment.network().addFault(
        std::make_shared<fi::TamperFault>(setup.tamperRate));
  }

  const RunResult result = deployment.run();

  EXPECT_FALSE(result.safetyViolated)
      << "divergent execution under chaos seed " << GetParam();
  if (setup.quorumIntact) {
    EXPECT_GT(result.correctCompleted, 0u)
        << "no progress at all under chaos seed " << GetParam()
        << " (drop " << setup.dropRate << ", reorder " << setup.reorderRate
        << ", tamper " << setup.tamperRate << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos,
                         ::testing::Range<std::uint64_t>(1, 31));

// --- directed partition scenarios -------------------------------------------

DeploymentConfig partitionConfig(std::uint64_t seed) {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(400);
  config.pbft.viewChangeTimeout = sim::msec(400);
  config.clientRetx = sim::msec(100);
  config.correctClients = 6;
  config.warmup = sim::msec(400);
  config.measure = sim::sec(3);
  config.seed = seed;
  return config;
}

/// Everyone except `isolated` — replicas and clients alike.
std::set<util::NodeId> allBut(const Deployment& deployment,
                              const DeploymentConfig& config,
                              util::NodeId isolated) {
  std::set<util::NodeId> rest;
  const util::NodeId total = deployment.replicaCount() +
                             config.maliciousClients + config.correctClients;
  for (util::NodeId node = 0; node < total; ++node) {
    if (node != isolated) rest.insert(node);
  }
  return rest;
}

TEST(PartitionRecovery, IsolatedBackupCatchesUpAfterHeal) {
  const DeploymentConfig config = partitionConfig(301);
  Deployment deployment(config);
  deployment.runFor(sim::msec(600));

  auto partition = std::make_shared<fi::PartitionFault>(
      std::set<util::NodeId>{2}, allBut(deployment, config, 2));
  deployment.network().addFault(partition);
  deployment.runFor(sim::sec(2));

  // 3 of 4 replicas are an exact quorum: the majority side keeps ordering
  // while the isolated backup falls behind.
  const util::SeqNum majority = deployment.replica(0).lastExecuted();
  const util::SeqNum isolated = deployment.replica(2).lastExecuted();
  EXPECT_GT(majority, isolated);

  partition->heal();
  ASSERT_TRUE(deployment.network().removeFault(partition));
  EXPECT_FALSE(deployment.network().removeFault(partition))
      << "double-remove must report the fault as already gone";
  deployment.runFor(sim::sec(3));

  EXPECT_GT(deployment.replica(2).lastExecuted(), majority)
      << "rejoined backup never caught up past the majority's old frontier";
  EXPECT_FALSE(deployment.collect().safetyViolated);
}

TEST(PartitionRecovery, CrashDuringPartitionRecoversAfterBothHeal) {
  const DeploymentConfig config = partitionConfig(302);
  Deployment deployment(config);
  deployment.runFor(sim::msec(600));

  // Isolate backup 2, then crash backup 3: only two replicas remain both
  // live and mutually connected, so ordering stalls — but must stay safe.
  auto partition = std::make_shared<fi::PartitionFault>(
      std::set<util::NodeId>{2}, allBut(deployment, config, 2));
  deployment.network().addFault(partition);
  deployment.runFor(sim::msec(300));
  deployment.replica(3).crash();
  deployment.runFor(sim::sec(2));
  EXPECT_FALSE(deployment.collect().safetyViolated);

  const std::uint64_t stalledCompleted = deployment.collect().correctCompleted;
  deployment.replica(3).restart();
  partition->heal();
  ASSERT_TRUE(deployment.network().removeFault(partition));
  deployment.runFor(sim::sec(3));

  const RunResult result = deployment.collect();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GT(result.correctCompleted, stalledCompleted)
      << "no progress after partition healed and crashed replica rejoined";
  EXPECT_EQ(deployment.replica(3).restarts(), 1u);
}

}  // namespace
}  // namespace avd::pbft
