// Runtime lockdep tests — the dynamic half of avd_lint's R7 lock-order rule.
//
// The checker core (detail::onAcquire/onRelease) is compiled into every
// build, so these tests run in the plain tier-1 configuration too, not just
// under AVD_SANITIZE. Inversions abort the process, so they are exercised
// as death tests; the clean-path tests prove the checker is silent when the
// order is consistent.
#include <gtest/gtest.h>

#include <mutex>
#include <thread>

#include "common/lockdep.h"

namespace avd::lockdep {
namespace {

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override { resetForTest(); }
  void TearDown() override { resetForTest(); }
};

// Two stand-in lock identities. The detail API only needs stable addresses.
int tokenA = 0;
int tokenB = 0;
int tokenC = 0;

void acquire(const void* m, const char* name) { detail::onAcquire(m, name); }
void release(const void* m) { detail::onRelease(m); }

TEST_F(LockdepTest, ConsistentOrderIsSilent) {
  for (int round = 0; round < 3; ++round) {
    acquire(&tokenA, "A");
    acquire(&tokenB, "B");
    release(&tokenB);
    release(&tokenA);
  }
  SUCCEED();
}

TEST_F(LockdepTest, NestedChainIsSilent) {
  acquire(&tokenA, "A");
  acquire(&tokenB, "B");
  acquire(&tokenC, "C");
  release(&tokenC);
  release(&tokenB);
  release(&tokenA);
  SUCCEED();
}

TEST_F(LockdepTest, DisjointOrdersAreSilent) {
  // A->B and C alone never relate B and C, so B->C later is fine.
  acquire(&tokenA, "A");
  acquire(&tokenB, "B");
  release(&tokenB);
  release(&tokenA);
  acquire(&tokenB, "B");
  acquire(&tokenC, "C");
  release(&tokenC);
  release(&tokenB);
  SUCCEED();
}

using LockdepDeathTest = LockdepTest;

TEST_F(LockdepDeathTest, DirectInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Establish A -> B, then attempt B -> A.
  acquire(&tokenA, "alpha");
  acquire(&tokenB, "beta");
  release(&tokenB);
  release(&tokenA);
  EXPECT_DEATH(
      {
        acquire(&tokenB, "beta");
        acquire(&tokenA, "alpha");
      },
      "lock-order inversion");
}

TEST_F(LockdepDeathTest, TransitiveInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A -> B and B -> C are recorded; C -> A closes the cycle through both.
  acquire(&tokenA, "alpha");
  acquire(&tokenB, "beta");
  release(&tokenB);
  release(&tokenA);
  acquire(&tokenB, "beta");
  acquire(&tokenC, "gamma");
  release(&tokenC);
  release(&tokenB);
  EXPECT_DEATH(
      {
        acquire(&tokenC, "gamma");
        acquire(&tokenA, "alpha");
      },
      "lock-order inversion");
}

TEST_F(LockdepDeathTest, ReacquiringAHeldLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        acquire(&tokenA, "alpha");
        acquire(&tokenA, "alpha");
      },
      "lock-order inversion");
}

TEST_F(LockdepTest, OrderGraphIsSharedAcrossThreads) {
  // Thread 1 establishes A -> B; thread 2 takes them in the same order.
  // Both succeed, proving the graph is global rather than thread-local
  // (an inversion from another thread is covered by the death tests).
  std::thread first([] {
    acquire(&tokenA, "A");
    acquire(&tokenB, "B");
    release(&tokenB);
    release(&tokenA);
  });
  first.join();
  std::thread second([] {
    acquire(&tokenA, "A");
    acquire(&tokenB, "B");
    release(&tokenB);
    release(&tokenA);
  });
  second.join();
  SUCCEED();
}

TEST_F(LockdepTest, MutexWrapperSatisfiesLockable) {
  Mutex m{"LockdepTest::m"};
  EXPECT_STREQ(m.name(), "LockdepTest::m");
  {
    const std::lock_guard<Mutex> guard(m);
  }
  {
    std::unique_lock<Mutex> lock(m, std::try_to_lock);
    EXPECT_TRUE(lock.owns_lock());
  }
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST_F(LockdepTest, CondVarWaitsOnWrapperMutex) {
  Mutex m{"LockdepTest::cv_m"};
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      const std::lock_guard<Mutex> guard(m);
      ready = true;
    }
    cv.notify_one();
  });
  {
    std::unique_lock<Mutex> lock(m);
    cv.wait(lock, [&] { return ready; });
  }
  producer.join();
  EXPECT_TRUE(ready);
}

}  // namespace
}  // namespace avd::lockdep
