// Unit and property tests for the common utility library.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/gray_code.h"
#include "common/hash.h"
#include "common/levenshtein.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace avd::util {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all 7 values should appear in 2000 draws";
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceHonorsEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(23);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(1);
  // Forks taken at different parent states differ.
  EXPECT_NE(child.next(), child2.next());
}

// --- Gray code ----------------------------------------------------------------

TEST(GrayCode, RoundTripsAllTwelveBitValues) {
  for (std::uint64_t v = 0; v < 4096; ++v) {
    EXPECT_EQ(fromGray(toGray(v)), v);
  }
}

TEST(GrayCode, IsBijectiveOverTwelveBits) {
  std::set<std::uint64_t> codes;
  for (std::uint64_t v = 0; v < 4096; ++v) codes.insert(toGray(v));
  EXPECT_EQ(codes.size(), 4096u);
  EXPECT_LE(*codes.rbegin(), 4095u) << "codes stay within the same width";
}

TEST(GrayCode, RoundTripsLargeValues) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next();
    EXPECT_EQ(fromGray(toGray(v)), v);
  }
}

TEST(GrayCode, HammingDistanceCountsDifferingBits) {
  EXPECT_EQ(hammingDistance(0, 0), 0);
  EXPECT_EQ(hammingDistance(0b1010, 0b0101), 4);
  EXPECT_EQ(hammingDistance(~0ull, 0), 64);
}

/// The property the paper's encoding relies on: adjacent indices differ in
/// exactly one mask bit.
class GrayAdjacency : public ::testing::TestWithParam<int> {};

TEST_P(GrayAdjacency, ConsecutiveCodesDifferInOneBit) {
  const int bits = GetParam();
  const std::uint64_t count = 1ull << bits;
  for (std::uint64_t v = 0; v + 1 < count; ++v) {
    EXPECT_EQ(hammingDistance(toGray(v), toGray(v + 1)), 1)
        << "at index " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, GrayAdjacency,
                         ::testing::Values(1, 4, 8, 10, 12, 16));

// --- Levenshtein ----------------------------------------------------------------

TEST(Levenshtein, KnownDistances) {
  EXPECT_EQ(levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(levenshtein("", "abc"), 3u);
  EXPECT_EQ(levenshtein("abc", ""), 3u);
  EXPECT_EQ(levenshtein("", ""), 0u);
  EXPECT_EQ(levenshtein("same", "same"), 0u);
}

TEST(Levenshtein, WorksOnNonCharElements) {
  const std::vector<int> a{1, 2, 3, 4};
  const std::vector<int> b{2, 3, 4, 5};
  EXPECT_EQ(levenshtein(std::span<const int>(a), std::span<const int>(b)), 2u);
}

/// Metric axioms on random string samples.
class LevenshteinMetric : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevenshteinMetric, SatisfiesMetricAxioms) {
  Rng rng(GetParam());
  const auto randomString = [&rng] {
    std::string s(rng.below(12), ' ');
    for (char& c : s) c = static_cast<char>('a' + rng.below(4));
    return s;
  };
  for (int i = 0; i < 50; ++i) {
    const std::string a = randomString();
    const std::string b = randomString();
    const std::string c = randomString();
    const auto ab = levenshtein(a, b);
    const auto ba = levenshtein(b, a);
    const auto ac = levenshtein(a, c);
    const auto cb = levenshtein(c, b);
    EXPECT_EQ(ab, ba) << "symmetry";
    EXPECT_EQ(levenshtein(a, a), 0u) << "identity";
    EXPECT_LE(ab, ac + cb) << "triangle inequality";
    if (a != b) {
      EXPECT_GT(ab, 0u) << "positivity";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinMetric,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Levenshtein, BoundedByLongerLength) {
  EXPECT_LE(levenshtein("abcdef", "xy"), 6u);
  EXPECT_GE(levenshtein("abcdef", "xy"), 4u);  // >= length difference
}

// --- Bytes ---------------------------------------------------------------------

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u16(0x1234);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFull);
  writer.i64(-42);

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0x1234);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.i64(), -42);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bytes, BlobAndStringRoundTrip) {
  ByteWriter writer;
  writer.str("hello");
  writer.str("");
  const Bytes payload{1, 2, 3};
  writer.blob(payload);

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_EQ(reader.str(), "");
  EXPECT_EQ(reader.blob(), payload);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bytes, TruncatedReadsReturnNullopt) {
  ByteWriter writer;
  writer.u32(7);
  ByteReader reader(writer.bytes());
  EXPECT_TRUE(reader.u64() == std::nullopt);
  EXPECT_EQ(reader.u32(), 7u);  // the failed read consumed nothing
  EXPECT_TRUE(reader.u8() == std::nullopt);
}

TEST(Bytes, BlobLengthBeyondBufferFails) {
  ByteWriter writer;
  writer.u32(100);  // claims 100 bytes follow
  writer.u8(1);
  ByteReader reader(writer.bytes());
  EXPECT_TRUE(reader.blob() == std::nullopt);
}

TEST(Bytes, ToHex) {
  const Bytes data{0x00, 0xFF, 0x1A};
  EXPECT_EQ(toHex(data), "00ff1a");
  EXPECT_EQ(toHex(Bytes{}), "");
}

// --- Hash ----------------------------------------------------------------------

TEST(Hash, Fnv1aMatchesReferenceVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, CombineIsOrderSensitive) {
  const std::uint64_t ab = hashCombine(hashCombine(0, 1), 2);
  const std::uint64_t ba = hashCombine(hashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

// --- Stats ---------------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero) {
  const Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(41);
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 100;
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(SampleSet, PercentilesAreNearestRank) {
  SampleSet samples;
  for (int i = 1; i <= 100; ++i) samples.add(i);
  EXPECT_DOUBLE_EQ(samples.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(samples.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(samples.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(samples.median(), 50.0);
}

TEST(SampleSet, EmptyIsZero) {
  const SampleSet samples;
  EXPECT_DOUBLE_EQ(samples.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(samples.mean(), 0.0);
}

TEST(Series, RenderTableAlignsRows) {
  Series s1{.name = "alpha", .x = {}, .y = {}};
  s1.add(1, 10);
  s1.add(2, 20);
  Series s2{.name = "beta", .x = {}, .y = {}};
  s2.add(1, 100);
  const std::string table = renderTable({s1, s2}, "step");
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);  // header + 2
}

// --- ThreadPool ----------------------------------------------------------------

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counters(500);
  pool.parallelFor(500, [&](std::size_t i) { ++counters[i]; });
  for (const auto& counter : counters) EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallelFor(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

}  // namespace
}  // namespace avd::util
