// Unit tests for the fault-injection tool suite: mask factories, the
// reordering tool (with Levenshtein-measured effect), the LFI-style plan
// machinery, and the network fault adapters.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/gray_code.h"
#include "common/levenshtein.h"
#include "faultinject/behaviors.h"
#include "faultinject/churn.h"
#include "faultinject/lfi.h"
#include "faultinject/mac_corruptor.h"
#include "faultinject/network_faults.h"
#include "faultinject/reorder.h"
#include "sim/network.h"
#include "sim/node.h"

namespace avd::fi {
namespace {

// --- Mask factories ---------------------------------------------------------------

TEST(Masks, ValidOnlyForCorruptsEveryoneElseEveryRound) {
  const std::uint64_t mask = bigMacMaskValidOnlyFor(0, 4, 12);
  EXPECT_EQ(mask, 0xEEEull);
  for (std::uint32_t bit = 0; bit < 12; ++bit) {
    const bool corrupts = (mask >> bit) & 1;
    EXPECT_EQ(corrupts, bit % 4 != 0) << "bit " << bit;
  }
}

TEST(Masks, ValidOnlyForOtherReplicas) {
  EXPECT_EQ(bigMacMaskValidOnlyFor(1, 4, 12), 0xDDDull);
  EXPECT_EQ(bigMacMaskValidOnlyFor(2, 4, 12), 0xBBBull);
  EXPECT_EQ(bigMacMaskValidOnlyFor(3, 4, 12), 0x777ull);
}

TEST(Masks, RotatingMaskGivesEachReplicaOneValidRound) {
  const std::uint64_t mask = rotatingBigMacMask();
  // For each replica, at least one round's call must be un-corrupted.
  for (std::uint32_t replica = 0; replica < 4; ++replica) {
    bool hasValidRound = false;
    for (std::uint32_t round = 0; round < 3; ++round) {
      if (((mask >> (round * 4 + replica)) & 1) == 0) hasValidRound = true;
    }
    EXPECT_TRUE(hasValidRound) << "replica " << replica;
  }
  // Round 0 (the round in which a fresh request is ordered by primary 0)
  // corrupts all three backups: first transmissions always stall.
  int corruptBackupsRoundZero = 0;
  for (std::uint32_t replica = 1; replica < 4; ++replica) {
    corruptBackupsRoundZero += static_cast<int>((mask >> replica) & 1);
  }
  EXPECT_EQ(corruptBackupsRoundZero, 3);
}

// --- LFI-style fault plan ------------------------------------------------------------

TEST(FaultPlan, InjectsAtExactCallNumber) {
  FaultPlan plan;
  plan.add(FaultSpec{"net::send", 2, -5, false});
  EXPECT_EQ(plan.shouldFail("net::send"), 0);  // call 0
  EXPECT_EQ(plan.shouldFail("net::send"), 0);  // call 1
  EXPECT_EQ(plan.shouldFail("net::send"), -5);  // call 2
  EXPECT_EQ(plan.shouldFail("net::send"), 0);  // call 3
  EXPECT_EQ(plan.injectedCount(), 1u);
  EXPECT_EQ(plan.callCount("net::send"), 4u);
}

TEST(FaultPlan, PersistentFaultsKeepFiring) {
  FaultPlan plan;
  plan.add(FaultSpec{"disk::write", 1, -7, true});
  EXPECT_EQ(plan.shouldFail("disk::write"), 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(plan.shouldFail("disk::write"), -7);
  EXPECT_EQ(plan.injectedCount(), 5u);
}

TEST(FaultPlan, PointsAreIndependent) {
  FaultPlan plan;
  plan.add(FaultSpec{"a", 0, -1, false});
  EXPECT_EQ(plan.shouldFail("b"), 0);
  EXPECT_EQ(plan.shouldFail("a"), -1);
  EXPECT_EQ(plan.callCount("a"), 1u);
  EXPECT_EQ(plan.callCount("b"), 1u);
  EXPECT_EQ(plan.callCount("never-called"), 0u);
  EXPECT_EQ(plan.specCount(), 1u);
}

TEST(FaultPlan, ClearRemovesEverything) {
  FaultPlan plan;
  plan.add(FaultSpec{"a", 0, -1, true});
  plan.clear();
  EXPECT_EQ(plan.shouldFail("a"), 0);
  EXPECT_EQ(plan.specCount(), 0u);
}

// --- Network adapters -----------------------------------------------------------------

class SinkNode final : public sim::Node {
 public:
  explicit SinkNode(util::NodeId id) : sim::Node(id) {}
  void receive(util::NodeId, const sim::MessagePtr& message) override {
    received.push_back(message.get());
  }
  std::vector<const sim::Message*> received;
  using sim::Node::send;
};

class TaggedMessage final : public sim::Message {
 public:
  std::uint32_t kind() const noexcept override { return 0xCAFE; }
};

TEST(SendFaultAdapter, DropsCallsThePlanFails) {
  sim::Simulator simulator(1);
  sim::Network network(&simulator, sim::LinkModel{sim::msec(1), 0});
  SinkNode sender(0);
  SinkNode receiver(1);
  network.registerNode(&sender);
  network.registerNode(&receiver);

  FaultPlan plan;
  plan.add(FaultSpec{std::string(SendFaultAdapter::kPoint), 1, -3, false});
  network.addFault(std::make_shared<SendFaultAdapter>(&plan));

  for (int i = 0; i < 4; ++i) {
    sender.send(1, std::make_shared<TaggedMessage>());
  }
  simulator.run();
  EXPECT_EQ(receiver.received.size(), 3u) << "exactly call #1 was dropped";
  EXPECT_EQ(plan.injectedCount(), 1u);
}

TEST(ReorderFault, ZeroIntensityPreservesOrder) {
  sim::Simulator simulator(2);
  sim::Network network(&simulator, sim::LinkModel{sim::msec(1), 0});
  SinkNode sender(0);
  SinkNode receiver(1);
  network.registerNode(&sender);
  network.registerNode(&receiver);
  auto tap = std::make_shared<SequenceTap>();
  network.addFault(tap);
  network.addFault(std::make_shared<ReorderFault>(0.0, sim::msec(10)));

  for (int i = 0; i < 30; ++i) {
    sender.send(1, std::make_shared<TaggedMessage>());
  }
  simulator.run();
  ASSERT_EQ(receiver.received.size(), 30u);
  EXPECT_EQ(util::levenshtein(
                std::span<const sim::Message* const>(tap->sendOrder()),
                std::span<const sim::Message* const>(receiver.received)),
            0u);
}

TEST(ReorderFault, EditDistanceGrowsWithIntensity) {
  const auto measure = [](double intensity) {
    sim::Simulator simulator(3);
    sim::Network network(&simulator, sim::LinkModel{sim::msec(1), 0});
    SinkNode sender(0);
    SinkNode receiver(1);
    network.registerNode(&sender);
    network.registerNode(&receiver);
    auto tap = std::make_shared<SequenceTap>();
    auto reorder =
        std::make_shared<ReorderFault>(intensity, sim::msec(20));
    network.addFault(tap);
    network.addFault(reorder);
    for (int i = 0; i < 200; ++i) {
      simulator.schedule(i * 100, [&sender] {
        sender.send(1, std::make_shared<TaggedMessage>());
      });
    }
    simulator.run();
    return util::levenshtein(
        std::span<const sim::Message* const>(tap->sendOrder()),
        std::span<const sim::Message* const>(receiver.received));
  };

  const std::size_t weak = measure(0.1);
  const std::size_t strong = measure(0.9);
  EXPECT_GT(weak, 0u);
  EXPECT_GT(strong, weak)
      << "the tool's mutateDistance contract: stronger intensity, larger "
         "edit distance";
}

// --- Churn tool --------------------------------------------------------------

TEST(ChurnFault, CrashRestartCycleFollowsTheConfiguredSchedule) {
  sim::Simulator simulator(1);
  sim::Network network(&simulator, sim::LinkModel{sim::msec(1), 0});
  SinkNode node(0);
  network.registerNode(&node);

  ChurnFault::Options options;
  options.target = 0;
  options.firstCrash = sim::msec(100);
  options.downtime = sim::msec(50);
  options.period = sim::msec(200);
  options.maxCycles = 3;
  ChurnFault churn(&simulator, &network, options);
  churn.install();

  simulator.runUntil(sim::msec(120));
  EXPECT_FALSE(node.alive());
  simulator.runUntil(sim::msec(180));
  EXPECT_TRUE(node.alive());
  EXPECT_EQ(node.incarnation(), 1u);

  simulator.runUntil(sim::sec(2));
  EXPECT_EQ(churn.crashesInjected(), 3u);
  EXPECT_EQ(churn.restartsInjected(), 3u);
  EXPECT_TRUE(node.alive()) << "every cycle ends with a restart";
  EXPECT_EQ(node.restarts(), 3u);
}

TEST(ChurnFault, DynamicTargetIsReResolvedAtEveryCrash) {
  sim::Simulator simulator(1);
  sim::Network network(&simulator, sim::LinkModel{sim::msec(1), 0});
  SinkNode a(0);
  SinkNode b(1);
  network.registerNode(&a);
  network.registerNode(&b);

  // Alternate victims: whichever node the selector names goes down, and the
  // restart must revive that same node even though the selector has moved on.
  std::uint32_t calls = 0;
  ChurnFault::Options options;
  options.dynamicTarget = [&calls] {
    return static_cast<util::NodeId>(calls++ % 2);
  };
  options.firstCrash = sim::msec(100);
  options.downtime = sim::msec(50);
  options.period = sim::msec(200);
  options.maxCycles = 2;
  ChurnFault churn(&simulator, &network, options);
  churn.install();

  simulator.runUntil(sim::msec(120));
  EXPECT_FALSE(a.alive());
  EXPECT_TRUE(b.alive());
  simulator.runUntil(sim::msec(320));
  EXPECT_TRUE(a.alive()) << "first victim restarted";
  EXPECT_FALSE(b.alive()) << "second cycle picked the other node";
  simulator.runUntil(sim::sec(1));
  EXPECT_TRUE(b.alive());
  EXPECT_EQ(a.restarts(), 1u);
  EXPECT_EQ(b.restarts(), 1u);
}

TEST(FlowFilter, EmptySetsMatchEverything) {
  const FlowFilter all;
  EXPECT_TRUE(all.matches(0, 1));
  EXPECT_TRUE(all.matches(42, 7));

  const FlowFilter fromOnly{.fromNodes = {1}, .toNodes = {}};
  EXPECT_TRUE(fromOnly.matches(1, 99));
  EXPECT_FALSE(fromOnly.matches(2, 99));

  const FlowFilter both{.fromNodes = {1}, .toNodes = {2}};
  EXPECT_TRUE(both.matches(1, 2));
  EXPECT_FALSE(both.matches(1, 3));
  EXPECT_FALSE(both.matches(0, 2));
}

}  // namespace
}  // namespace avd::fi
