// Protocol-conformance tests driving a single Replica with hand-crafted
// messages: acceptance rules for pre-prepares (view, sender, watermarks,
// authentication), vote counting, equivocation handling, reply discipline,
// and timer arming rules. A probe harness stands in for the rest of the
// deployment.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "crypto/keychain.h"
#include "pbft/message.h"
#include "pbft/replica.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace avd::pbft {
namespace {

/// Captures everything a node receives, for assertions.
class Probe final : public sim::Node {
 public:
  explicit Probe(util::NodeId id) : sim::Node(id) {}
  void receive(util::NodeId from, const sim::MessagePtr& message) override {
    inbox.push_back({from, message});
  }
  template <typename M>
  std::vector<std::shared_ptr<const M>> received(MsgKind kind) const {
    std::vector<std::shared_ptr<const M>> out;
    for (const auto& [from, message] : inbox) {
      if (message->kind() == static_cast<std::uint32_t>(kind)) {
        out.push_back(std::static_pointer_cast<const M>(message));
      }
    }
    return out;
  }
  std::vector<std::pair<util::NodeId, sim::MessagePtr>> inbox;
  using sim::Node::send;
};

/// Harness: replica 1 (a backup in view 0) is real; replicas 0, 2, 3 and
/// client 4 are probes we puppet.
struct Harness {
  Harness() : keychain(7), simulator(7), network(&simulator, {sim::usec(10), 0}) {
    Config config;
    config.f = 1;
    config.statusInterval = 0;      // keep the wire quiet for assertions
    config.checkpointInterval = 0;  // no checkpoint chatter
    replica = std::make_unique<Replica>(1, config, &keychain,
                                        std::make_unique<CounterService>());
    this->config = config;
    for (util::NodeId id : {0u, 2u, 3u, 4u, 5u}) {
      probes[id] = std::make_unique<Probe>(id);
    }
    network.registerNode(probes[0].get());
    network.registerNode(replica.get());
    for (util::NodeId id : {2u, 3u, 4u, 5u}) {
      network.registerNode(probes[id].get());
    }
    replica->start();
  }

  /// Advances virtual time enough for any in-flight deliveries (link
  /// latency is 10 µs) without crossing timer horizons. A plain run() would
  /// never drain: view-change timers reschedule themselves forever.
  void settle() { simulator.runUntil(simulator.now() + sim::msec(1)); }

  crypto::MacService macsOf(util::NodeId id) {
    return crypto::MacService(id, &keychain);
  }

  RequestPtr makeRequest(util::NodeId client, util::RequestId timestamp,
                         bool corruptForReplica1 = false) {
    auto request = std::make_shared<RequestMessage>();
    request->client = client;
    request->timestamp = timestamp;
    request->operation = {1};
    request->digest =
        requestDigest(client, timestamp, request->operation);
    crypto::MacService macs(client, &keychain);
    request->auth = macs.authenticate(request->digest, 4);
    if (corruptForReplica1) request->auth.tags[1] = ~request->auth.tags[1];
    return request;
  }

  PrePreparePtr makePrePrepare(util::ViewId view, util::SeqNum seq,
                               std::vector<RequestPtr> batch,
                               util::NodeId sender = 0) {
    auto prePrepare = std::make_shared<PrePrepareMessage>();
    prePrepare->view = view;
    prePrepare->seq = seq;
    prePrepare->digest = batchDigest(batch);
    prePrepare->batch = std::move(batch);
    prePrepare->replica = sender;
    crypto::MacService macs(sender, &keychain);
    prePrepare->auth = macs.authenticate(
        phaseDigest(MsgKind::kPrePrepare, view, seq, prePrepare->digest,
                    sender),
        4);
    return prePrepare;
  }

  std::shared_ptr<PrepareMessage> makePrepare(util::ViewId view,
                                              util::SeqNum seq,
                                              std::uint64_t digest,
                                              util::NodeId sender) {
    auto prepare = std::make_shared<PrepareMessage>();
    prepare->view = view;
    prepare->seq = seq;
    prepare->digest = digest;
    prepare->replica = sender;
    crypto::MacService macs(sender, &keychain);
    prepare->auth = macs.authenticate(
        phaseDigest(MsgKind::kPrepare, view, seq, digest, sender), 4);
    return prepare;
  }

  std::shared_ptr<CommitMessage> makeCommit(util::ViewId view,
                                            util::SeqNum seq,
                                            std::uint64_t digest,
                                            util::NodeId sender) {
    auto commit = std::make_shared<CommitMessage>();
    commit->view = view;
    commit->seq = seq;
    commit->digest = digest;
    commit->replica = sender;
    crypto::MacService macs(sender, &keychain);
    commit->auth = macs.authenticate(
        phaseDigest(MsgKind::kCommit, view, seq, digest, sender), 4);
    return commit;
  }

  /// Sends a message to the replica as `from` and settles.
  void deliver(util::NodeId from, sim::MessagePtr message) {
    probes[from]->send(1, std::move(message));
    settle();
  }

  Config config;
  crypto::Keychain keychain;
  sim::Simulator simulator;
  sim::Network network;
  std::unique_ptr<Replica> replica;
  std::map<util::NodeId, std::unique_ptr<Probe>> probes;
};

TEST(Conformance, BackupPreparesOnValidPrePrepare) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  h.deliver(0, h.makePrePrepare(0, 1, {request}));

  // The backup must multicast a PREPARE to every other replica.
  for (util::NodeId peer : {0u, 2u, 3u}) {
    const auto prepares =
        h.probes[peer]->received<PrepareMessage>(MsgKind::kPrepare);
    ASSERT_EQ(prepares.size(), 1u) << "peer " << peer;
    EXPECT_EQ(prepares[0]->seq, 1u);
    EXPECT_EQ(prepares[0]->digest, batchDigest({request}));
    EXPECT_EQ(prepares[0]->replica, 1u);
  }
}

TEST(Conformance, RejectsPrePrepareFromNonPrimary) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  // Replica 2 is not the primary of view 0.
  h.deliver(2, h.makePrePrepare(0, 1, {request}, /*sender=*/2));
  EXPECT_TRUE(h.probes[0]->received<PrepareMessage>(MsgKind::kPrepare).empty());
  EXPECT_EQ(h.replica->stats().prePreparesRejected, 0u)
      << "wrong-sender proposals are ignored before any deep validation";
}

TEST(Conformance, RejectsPrePrepareFromWrongView) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  h.deliver(0, h.makePrePrepare(3, 1, {request}));
  EXPECT_TRUE(h.probes[0]->received<PrepareMessage>(MsgKind::kPrepare).empty());
}

TEST(Conformance, RejectsPrePrepareOutsideWatermarks) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  const util::SeqNum beyond = h.config.watermarkWindow + 1;
  h.deliver(0, h.makePrePrepare(0, beyond, {request}));
  EXPECT_TRUE(h.probes[0]->received<PrepareMessage>(MsgKind::kPrepare).empty());
}

TEST(Conformance, RejectsTamperedPrePrepareAuthenticator) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  auto prePrepare = std::const_pointer_cast<PrePrepareMessage>(
      h.makePrePrepare(0, 1, {request}));
  prePrepare->auth.tags[1] = ~prePrepare->auth.tags[1];
  h.deliver(0, prePrepare);
  EXPECT_TRUE(h.probes[0]->received<PrepareMessage>(MsgKind::kPrepare).empty());
  EXPECT_EQ(h.replica->stats().prePreparesRejected, 1u);
}

TEST(Conformance, RejectsDigestMismatchedBatch) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  auto prePrepare = std::const_pointer_cast<PrePrepareMessage>(
      h.makePrePrepare(0, 1, {request}));
  prePrepare->digest ^= 1;  // lie about the batch digest
  // Re-authenticate so only the digest lie remains.
  crypto::MacService macs(0, &h.keychain);
  prePrepare->auth = macs.authenticate(
      phaseDigest(MsgKind::kPrePrepare, 0, 1, prePrepare->digest, 0), 4);
  h.deliver(0, prePrepare);
  EXPECT_TRUE(h.probes[0]->received<PrepareMessage>(MsgKind::kPrepare).empty());
  EXPECT_EQ(h.replica->stats().prePreparesRejected, 1u);
}

TEST(Conformance, AcceptOnceIgnoresEquivocation) {
  Harness h;
  const RequestPtr requestA = h.makeRequest(4, 1);
  const RequestPtr requestB = h.makeRequest(5, 1);
  h.deliver(0, h.makePrePrepare(0, 1, {requestA}));
  h.deliver(0, h.makePrePrepare(0, 1, {requestB}));  // conflicting proposal

  // Only the first proposal gets a prepare; the conflicting one is ignored.
  const auto prepares =
      h.probes[2]->received<PrepareMessage>(MsgKind::kPrepare);
  ASSERT_EQ(prepares.size(), 1u);
  EXPECT_EQ(prepares[0]->digest, batchDigest({requestA}));
}

TEST(Conformance, UnauthenticatedRequestParksPrePrepareUntilRetransmission) {
  Harness h;
  const RequestPtr poisoned = h.makeRequest(4, 1, /*corruptForReplica1=*/true);
  h.deliver(0, h.makePrePrepare(0, 1, {poisoned}));
  EXPECT_TRUE(h.probes[0]->received<PrepareMessage>(MsgKind::kPrepare).empty());
  EXPECT_EQ(h.replica->stats().prePreparesPended, 1u);

  // An honest retransmission of the same request (valid MAC, same digest)
  // releases the parked pre-prepare.
  const RequestPtr honest = h.makeRequest(4, 1, false);
  h.deliver(4, honest);
  EXPECT_EQ(
      h.probes[0]->received<PrepareMessage>(MsgKind::kPrepare).size(), 1u);
}

TEST(Conformance, QuorumCommitCertificateUnblocksParkedPrePrepare) {
  Harness h;
  const RequestPtr poisoned = h.makeRequest(4, 1, true);
  const std::uint64_t digest = batchDigest({poisoned});
  h.deliver(0, h.makePrePrepare(0, 1, {poisoned}));
  EXPECT_EQ(h.replica->lastExecuted(), 0u);

  // Commits from the other three replicas certify the digest.
  h.deliver(0, h.makeCommit(0, 1, digest, 0));
  h.deliver(2, h.makeCommit(0, 1, digest, 2));
  h.deliver(3, h.makeCommit(0, 1, digest, 3));

  EXPECT_EQ(h.replica->lastExecuted(), 1u)
      << "quorum authority supersedes the missing client MAC";
  EXPECT_EQ(h.replica->stats().prePreparesAdoptedByQuorum, 1u);
  // The client must receive this replica's reply.
  EXPECT_EQ(h.probes[4]->received<ReplyMessage>(MsgKind::kReply).size(), 1u);
}

TEST(Conformance, CommitsAndExecutesWithQuorum) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  const std::uint64_t digest = batchDigest({request});
  h.deliver(0, h.makePrePrepare(0, 1, {request}));
  h.deliver(2, h.makePrepare(0, 1, digest, 2));
  // prepared (own + replica 2 = 2f): the replica must commit.
  const auto commits =
      h.probes[0]->received<CommitMessage>(MsgKind::kCommit);
  ASSERT_EQ(commits.size(), 1u);

  h.deliver(0, h.makeCommit(0, 1, digest, 0));
  h.deliver(2, h.makeCommit(0, 1, digest, 2));
  EXPECT_EQ(h.replica->lastExecuted(), 1u);
  EXPECT_EQ(h.probes[4]->received<ReplyMessage>(MsgKind::kReply).size(), 1u);
}

TEST(Conformance, ExecutionIsInOrderAcrossGaps) {
  Harness h;
  const RequestPtr r1 = h.makeRequest(4, 1);
  const RequestPtr r2 = h.makeRequest(5, 1);
  const auto driveToCommit = [&](util::SeqNum seq, const RequestPtr& request) {
    const std::uint64_t digest = batchDigest({request});
    h.deliver(0, h.makePrePrepare(0, seq, {request}));
    h.deliver(2, h.makePrepare(0, seq, digest, 2));
    h.deliver(0, h.makeCommit(0, seq, digest, 0));
    h.deliver(2, h.makeCommit(0, seq, digest, 2));
  };
  driveToCommit(2, r2);  // seq 2 commits first
  EXPECT_EQ(h.replica->lastExecuted(), 0u) << "gap at seq 1 blocks execution";
  driveToCommit(1, r1);
  EXPECT_EQ(h.replica->lastExecuted(), 2u) << "both execute once 1 commits";
}

TEST(Conformance, MismatchedPrepareDigestsNeverFormCertificate) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  h.deliver(0, h.makePrePrepare(0, 1, {request}));
  h.deliver(2, h.makePrepare(0, 1, 0xBAD, 2));
  h.deliver(3, h.makePrepare(0, 1, 0xBAD, 3));
  EXPECT_TRUE(h.probes[0]->received<CommitMessage>(MsgKind::kCommit).empty());
}

TEST(Conformance, BadClientMacDropsRequestSilently) {
  Harness h;
  h.deliver(4, h.makeRequest(4, 1, /*corruptForReplica1=*/true));
  EXPECT_EQ(h.replica->stats().requestsBadMac, 1u);
  // Not forwarded to the primary either.
  EXPECT_TRUE(h.probes[0]->inbox.empty());
}

TEST(Conformance, BackupForwardsDirectRequestsToPrimary) {
  Harness h;
  h.deliver(4, h.makeRequest(4, 1));
  const auto forwarded =
      h.probes[0]->received<RequestMessage>(MsgKind::kRequest);
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0]->client, 4u);
}

TEST(Conformance, StarvedDirectRequestTriggersViewChange) {
  Harness h;
  h.deliver(4, h.makeRequest(4, 1));
  EXPECT_FALSE(h.replica->inViewChange());
  // Let the request timer (5 s default) expire with nothing executed.
  h.simulator.runUntil(h.simulator.now() + h.config.requestTimeout +
                       sim::msec(1));
  EXPECT_TRUE(h.replica->inViewChange());
  const auto viewChanges =
      h.probes[0]->received<ViewChangeMessage>(MsgKind::kViewChange);
  ASSERT_EQ(viewChanges.size(), 1u);
  EXPECT_EQ(viewChanges[0]->newView, 1u);
}

TEST(Conformance, ExecutedRequestRetransmissionGetsCachedReply) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  const std::uint64_t digest = batchDigest({request});
  h.deliver(0, h.makePrePrepare(0, 1, {request}));
  h.deliver(2, h.makePrepare(0, 1, digest, 2));
  h.deliver(0, h.makeCommit(0, 1, digest, 0));
  h.deliver(2, h.makeCommit(0, 1, digest, 2));
  ASSERT_EQ(h.replica->lastExecuted(), 1u);
  const std::size_t repliesBefore =
      h.probes[4]->received<ReplyMessage>(MsgKind::kReply).size();

  h.deliver(4, h.makeRequest(4, 1));  // retransmission of executed request
  EXPECT_EQ(h.probes[4]->received<ReplyMessage>(MsgKind::kReply).size(),
            repliesBefore + 1)
      << "served from the reply cache";
  EXPECT_EQ(h.replica->stats().repliesResent, 1u);
  EXPECT_EQ(h.replica->stats().requestsExecuted, 1u) << "no re-execution";
}

TEST(Conformance, StaleTimestampIsIgnored) {
  Harness h;
  const RequestPtr r2 = h.makeRequest(4, 2);
  const std::uint64_t digest = batchDigest({r2});
  h.deliver(0, h.makePrePrepare(0, 1, {r2}));
  h.deliver(2, h.makePrepare(0, 1, digest, 2));
  h.deliver(0, h.makeCommit(0, 1, digest, 0));
  h.deliver(2, h.makeCommit(0, 1, digest, 2));
  ASSERT_EQ(h.replica->lastExecuted(), 1u);

  h.probes[4]->inbox.clear();
  h.deliver(4, h.makeRequest(4, 1));  // older timestamp than executed
  EXPECT_TRUE(h.probes[4]->inbox.empty()) << "no reply, no forwarding";
}

TEST(Conformance, ViewChangeMessagesCarryPreparedProofs) {
  Harness h;
  const RequestPtr request = h.makeRequest(4, 1);
  const std::uint64_t digest = batchDigest({request});
  h.deliver(0, h.makePrePrepare(0, 1, {request}));
  h.deliver(2, h.makePrepare(0, 1, digest, 2));  // prepared, not committed

  // Ask the replica to view-change by starving a direct request (sent by
  // the client itself, so the timer arms).
  h.deliver(5, h.makeRequest(5, 1));
  h.simulator.runUntil(h.simulator.now() + h.config.requestTimeout +
                       sim::msec(1));
  const auto viewChanges =
      h.probes[2]->received<ViewChangeMessage>(MsgKind::kViewChange);
  ASSERT_EQ(viewChanges.size(), 1u);
  ASSERT_EQ(viewChanges[0]->prepared.size(), 1u);
  EXPECT_EQ(viewChanges[0]->prepared[0].seq, 1u);
  EXPECT_EQ(viewChanges[0]->prepared[0].digest, digest);
  EXPECT_EQ(viewChanges[0]->prepared[0].view, 0u);
}

TEST(Conformance, NewViewInstallsAndResumes) {
  Harness h;
  // Drive the replica into a view change for view 1 (primary: replica 1 is
  // NOT primary of view 1... view 1's primary is replica 1 itself).
  // Starve a request so the replica votes for view 1.
  h.deliver(4, h.makeRequest(4, 1));
  h.simulator.runUntil(h.simulator.now() + h.config.requestTimeout +
                       sim::msec(1));
  ASSERT_TRUE(h.replica->inViewChange());

  // As primary of view 1, the replica needs 2f+1 = 3 view-change votes
  // (its own plus two others) and must then multicast NEW-VIEW.
  for (util::NodeId voter : {2u, 3u}) {
    auto viewChange = std::make_shared<ViewChangeMessage>();
    viewChange->newView = 1;
    viewChange->stableSeq = 0;
    viewChange->replica = voter;
    crypto::MacService macs(voter, &h.keychain);
    viewChange->auth = macs.authenticate(viewChangeDigest(*viewChange), 4);
    h.deliver(voter, viewChange);
  }

  EXPECT_FALSE(h.replica->inViewChange());
  EXPECT_EQ(h.replica->view(), 1u);
  EXPECT_TRUE(h.replica->isPrimary());
  for (util::NodeId peer : {0u, 2u, 3u}) {
    EXPECT_EQ(h.probes[peer]->received<NewViewMessage>(MsgKind::kNewView).size(),
              1u)
        << "peer " << peer;
  }
}

}  // namespace
}  // namespace avd::pbft
