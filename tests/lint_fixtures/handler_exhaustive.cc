// R12 positive fixture: the dispatch plane has a hole in every direction —
// a kind that is sent but never parsed, a kind that is parsed but never
// dispatched, and a dispatch arm on a kind no decoder produces. Linted,
// never compiled.
#include <cstdint>
#include <memory>

namespace fixture {

enum class MsgKind : std::uint8_t {
  kPing = 1,
  kPong = 2,
  kStatus = 3,
};

MsgKind Ping::kind() const { return MsgKind::kPing; }
MsgKind Pong::kind() const { return MsgKind::kPong; }

void encodeBody(Writer& writer, const Body& body, MsgKind kind) {
  switch (kind) {
    case MsgKind::kPong:
      writer.u32(body.id);
      break;
    case MsgKind::kStatus:
      writer.u64(body.seq);
      break;
    default:
      break;
  }
}

void decodeBody(Reader& reader, Body& body, MsgKind kind) {
  switch (kind) {
    case MsgKind::kPong:
      body.id = reader.u32();
      break;
    case MsgKind::kStatus:
      body.seq = reader.u64();
      break;
    default:
      break;
  }
}

// Sends kPing, which no decode arm parses: the receiver rejects it.
void Node::broadcastPing() {
  auto message = std::make_shared<Ping>();
  publish(message);
}

// Dispatches kPing (never parseable, the arm is dead) and kPong; kStatus
// is parsed above but never reaches a dispatch arm.
void Node::receive(std::uint32_t from, const MessagePtr& message) {
  switch (message->kind()) {
    case MsgKind::kPing:
      handlePing(from);
      break;
    case MsgKind::kPong:
      handlePong(from);
      break;
    default:
      break;
  }
}

}  // namespace fixture
