// Seeded violations for R1 `nondeterminism`. NOT compiled — linted by
// lint_test.cpp, which expects one finding per marked line.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int jitterMs() {
  return rand() % 50;  // VIOLATION: libc rand()
}

void seedFromWallClock() {
  srand(static_cast<unsigned>(time(nullptr)));  // VIOLATION: srand + time
}

unsigned hardwareEntropy() {
  std::random_device device;  // VIOLATION: std::random_device
  return device();
}

// Legitimate uses that must NOT be flagged.
struct Scheduler {
  int time = 0;        // field named `time`, no call
  int rand;            // field named `rand`, no call
  int runtime(int t) { return time + t; }
};

int simClockRead();
int viaNamespace() { return sim::time(3); }  // qualified, not libc time()

}  // namespace fixture
