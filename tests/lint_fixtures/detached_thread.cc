// Seeded R6 violations: detached threads have no join point, so campaign
// shutdown and sanitizer teardown race against them. Joined threads and the
// unrelated free function `detach(...)` must pass.
#include <thread>

void detach(int);  // free function, not a thread member — must not fire

void spawnsAndAbandons() {
  std::thread worker([] {});
  worker.detach();  // VIOLATION: owner gives up the join point
}

void abandonsViaPointer(std::thread* t) {
  t->detach();  // VIOLATION: same through a pointer
}

void temporaryFireAndForget() {
  std::thread([] {}).detach();  // VIOLATION: classic fire-and-forget
}

void joinsProperly() {
  std::thread worker([] {});
  worker.join();  // pass: join point kept
  detach(3);      // pass: free call, no receiver
}
