// Clean under R18: the condition-variable wait releases the lock while
// parked (the sanctioned exception), and the thread join happens after
// the guard scope ends. NOT compiled — linted by lint_test.cpp.
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture_pool {

struct Pool {
  std::mutex mu;
  std::condition_variable cv;
  std::thread worker;
  bool ready = false;

  void park() {
    std::unique_lock<std::mutex> hold(mu);
    while (!ready) cv.wait(hold);
  }

  void drain() {
    {
      std::lock_guard<std::mutex> hold(mu);
      ready = true;
    }
    cv.notify_one();
    worker.join();
  }
};

}  // namespace fixture_pool
