// Seeded R18 violations: a sleep and a thread join while the pool mutex
// is held — a blocked holder stalls every contender. NOT compiled —
// linted by lint_test.cpp.
#include <chrono>
#include <mutex>
#include <thread>

namespace fixture_pool {

struct Pool {
  std::mutex mu;
  std::thread worker;

  void throttle() {
    std::lock_guard<std::mutex> hold(mu);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  void drain() {
    std::lock_guard<std::mutex> hold(mu);
    worker.join();
  }
};

}  // namespace fixture_pool
