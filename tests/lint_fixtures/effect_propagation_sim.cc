// Cross-TU effect-propagation caller: no nondeterministic leaf is spelled
// here, but the call imports the wall-clock effect of wallNowMs()
// (defined in effect_propagation_util.cc) into the determinism-critical
// scope — the R15 finding lands on the call site with the leaf as root.
// NOT compiled — linted by lint_test.cpp under a src/sim/ pretend path.
namespace fixture_util {
long long wallNowMs();
}

namespace fixture_sim {

long long deadline(long long horizonMs) {
  return fixture_util::wallNowMs() + horizonMs;
}

}  // namespace fixture_sim
