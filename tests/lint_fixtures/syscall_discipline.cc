// Seeded R16 violations: raw POSIX outside the designated effect modules
// (four boundary findings), an interruptible read whose result is
// discarded, and an interruptible read with no EINTR handling. NOT
// compiled — linted by lint_test.cpp under a non-designated pretend path.
namespace fixture_io {

int readHeader(const char* path, char* buf, unsigned long cap) {
  const int fd = ::open(path, 0);
  if (fd < 0) return -1;
  ::read(fd, buf, cap);
  const long got = ::read(fd, buf, cap);
  ::close(fd);
  return static_cast<int>(got);
}

}  // namespace fixture_io
