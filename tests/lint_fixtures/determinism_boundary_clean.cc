// Clean under R15: all randomness flows from a seeded generator handed in
// by the caller, so every run replays exactly from the seed. NOT compiled —
// linted by lint_test.cpp under a src/sim/ pretend path.
#include <cstdint>

namespace fixture_sim {

// Deterministic xorshift; state comes from the campaign seed.
struct SeededRng {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

std::uint64_t pickLane(SeededRng& rng, std::uint64_t lanes) {
  return lanes == 0 ? 0 : rng.next() % lanes;
}

}  // namespace fixture_sim
