// R8 negative fixture: callbacks capture stable values — `this` (guarded by
// the node's incarnation counter) and plain keys. An iterator local may
// exist as long as the lambda does not capture it. Linted, never compiled.
#include <map>

namespace fixture {

class Session {
 public:
  void arm() {
    const int peer = 7;
    auto it = peers_.find(peer);
    if (it != peers_.end()) {
      setTimer(10, [this, peer] { poke(peer); });
      setTimer(20, [this] { fire(); });
    }
  }
  void fire();
  void poke(int peer);

 private:
  void setTimer(int delayMs, void (*callback)());
  std::map<int, int> peers_;
};

}  // namespace fixture
