// Suppression-syntax fixture: every violation here carries an allow()
// directive, so the file must produce findings but zero UNSUPPRESSED
// findings. NOT compiled — linted by lint_test.cpp.
#include <cstdlib>
#include <mutex>

namespace fixture {

// Trailing same-line suppression.
int jitter() {
  return rand() % 10;  // avd-lint: allow(nondeterminism)
}

class Guarded {
 public:
  void touch() {
    // Standalone directive on the line above the violation.
    // avd-lint: allow(naked-lock)
    mutex_.lock();
    ++value_;
    mutex_.unlock();  // avd-lint: allow(naked-lock)
  }

  void wildcard() {
    mutex_.lock();  // avd-lint: allow(*)
    --value_;
    mutex_.unlock();  // avd-lint: allow(*)
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace fixture
