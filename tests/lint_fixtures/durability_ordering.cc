// Seeded R17 violations, linted as a fleet shard writer:
//   publish()       — atomic-publish rename with no durability barrier on
//                     either side (needs fsync-before and parent-dir
//                     fsync-after);
//   reportOutcome() — the outcome frame is sent before the shard append
//                     (ack-before-persist: a coordinator crash after the
//                     send cannot re-fold the outcome on --resume).
// NOT compiled — linted by lint_test.cpp under a fleet/shard pretend path.
#include <cstdio>
#include <string>

namespace fixture_shard {

struct Shard {
  bool append(const std::string& line);
  bool sync();
};

bool writeFrame(int fd, const std::string& payload);
std::string encodeDone(unsigned long test);

bool publish(const std::string& tmp, const std::string& path) {
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool reportOutcome(int fd, Shard& shard, unsigned long test) {
  if (!writeFrame(fd, encodeDone(test))) return false;
  return shard.append(encodeDone(test));
}

}  // namespace fixture_shard
