// R14 negative fixture: the view-change transition increments its
// observing counter where it completes. Linted, never compiled.
#include <cstdint>

namespace fixture {

void Replica::startViewChange() {
  view_ = view_ + 1;
  ++stats_.viewChangesInitiated;
  broadcastViewChangeMessage();
}

}  // namespace fixture
