// R11 positive fixture: a field-reordered put/get helper pair, a repeated
// field written in a loop but read once, and a kind whose decoder drops a
// trailing field. Linted, never compiled.
#include <cstdint>

namespace fixture {

enum class MsgKind : std::uint8_t {
  kPing = 1,
  kBatch = 2,
};

// Field-reordered helper pair: the encoder writes id then seq, the decoder
// reads seq first — every later field desynchronizes.
void putHeader(Writer& writer, const Header& header) {
  writer.u32(header.id);
  writer.u64(header.seq);
}

[[nodiscard]] Header getHeader(Reader& reader) {
  Header header;
  header.seq = reader.u64();
  header.id = reader.u32();
  return header;
}

// Loop asymmetry: the tag list is written four times but read once.
void putTags(Writer& writer, const Tags& tags) {
  for (int i = 0; i < 4; ++i) writer.u64(tags.value(i));
}

[[nodiscard]] Tags getTags(Reader& reader) {
  Tags tags;
  tags.first = reader.u64();
  return tags;
}

void encodeBody(Writer& writer, const Body& body, MsgKind kind) {
  switch (kind) {
    case MsgKind::kPing:
      writer.u32(body.id);
      writer.u64(body.nonce);
      break;
    case MsgKind::kBatch:
      writer.u32(body.id);
      writer.str(body.payload);
      break;
  }
}

void decodeBody(Reader& reader, Body& body, MsgKind kind) {
  switch (kind) {
    case MsgKind::kPing:
      body.id = reader.u32();  // the trailing nonce is never read
      break;
    case MsgKind::kBatch:
      body.id = reader.u32();
      body.payload = reader.str();
      break;
  }
}

}  // namespace fixture
