// R12 negative fixture: the dispatch plane is closed — every sent kind has
// a decode arm, every decoded kind has a dispatch arm, and every dispatch
// arm names a parseable kind. Linted, never compiled.
#include <cstdint>
#include <memory>

namespace fixture {

enum class MsgKind : std::uint8_t {
  kPing = 1,
  kPong = 2,
};

MsgKind Ping::kind() const { return MsgKind::kPing; }
MsgKind Pong::kind() const { return MsgKind::kPong; }

void encodeBody(Writer& writer, const Body& body, MsgKind kind) {
  switch (kind) {
    case MsgKind::kPing:
      writer.u32(body.id);
      break;
    case MsgKind::kPong:
      writer.u64(body.seq);
      break;
  }
}

void decodeBody(Reader& reader, Body& body, MsgKind kind) {
  switch (kind) {
    case MsgKind::kPing:
      body.id = reader.u32();
      break;
    case MsgKind::kPong:
      body.seq = reader.u64();
      break;
  }
}

void Node::broadcastPing() {
  auto message = std::make_shared<Ping>();
  publish(message);
}

void Node::receive(std::uint32_t from, const MessagePtr& message) {
  switch (message->kind()) {
    case MsgKind::kPing:
      handlePing(from);
      break;
    case MsgKind::kPong:
      handlePong(from);
      break;
    default:
      break;
  }
}

}  // namespace fixture
