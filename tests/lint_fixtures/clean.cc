// Negative fixture: idiomatic AVD code that must produce ZERO findings.
// NOT compiled — linted by lint_test.cpp under the pretend path
// src/pbft/replica.cpp (the strictest rule scope).
#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace fixture {

constexpr std::uint32_t kMaxEntries = 256;

class CleanReplica {
 public:
  [[nodiscard]] std::optional<std::uint64_t> nextDelay() {
    return rng_.below(50);  // seeded Rng is the sanctioned randomness
  }

  bool parseEntries(avd::util::ByteReader& reader) {
    const auto count = reader.u32();
    if (!count || *count > kMaxEntries) return false;
    entries_.clear();
    entries_.reserve(std::min(*count, kMaxEntries));
    for (std::uint32_t i = 0; i < *count; ++i) {
      const auto value = reader.u64();
      if (!value) return false;
      entries_.push_back(*value);
    }
    return true;
  }

  void record(std::uint64_t digest, std::uint64_t seq) {
    const std::lock_guard<std::mutex> guard(mutex_);
    byDigest_[digest] = seq;  // point insert: no iteration-order dependence
    ordered_[seq] = digest;
  }

  [[nodiscard]] std::uint64_t replayDigest() const {
    std::uint64_t acc = 0;
    for (const auto& [seq, digest] : ordered_) acc ^= digest + seq;
    return acc;
  }

 private:
  avd::util::Rng rng_{42};
  std::vector<std::uint64_t> entries_;
  std::unordered_map<std::uint64_t, std::uint64_t> byDigest_;
  std::map<std::uint64_t, std::uint64_t> ordered_;
  std::mutex mutex_;
};

}  // namespace fixture
