// R7 negative fixture: nested locking is fine as long as every path agrees
// on the order, including through calls. Linted, never compiled.
#include <mutex>

namespace fixture {

class Account {
 public:
  void deposit() {
    const std::lock_guard<std::mutex> ledger(ledgerMutex_);
    const std::lock_guard<std::mutex> audit(auditMutex_);
    balance_ += 1;
  }
  void withdraw() {
    // Same order as deposit(): ledger before audit.
    const std::lock_guard<std::mutex> ledger(ledgerMutex_);
    const std::lock_guard<std::mutex> audit(auditMutex_);
    balance_ -= 1;
  }

 private:
  std::mutex ledgerMutex_;
  std::mutex auditMutex_;
  int balance_ = 0;
};

class Journal {
 public:
  void flushJournal() {
    const std::lock_guard<std::mutex> g(diskMutex_);
    flushed_ = true;
  }
  void append() {
    // Takes buf, releases it, then calls into disk: no lock is held across
    // the call, so no order edge exists.
    {
      const std::lock_guard<std::mutex> g(bufMutex_);
      flushed_ = false;
    }
    flushJournal();
  }
  void rotate() {
    const std::lock_guard<std::mutex> g1(bufMutex_);
    const std::lock_guard<std::mutex> g2(diskMutex_);
    flushed_ = false;
  }

 private:
  std::mutex bufMutex_;
  std::mutex diskMutex_;
  bool flushed_ = false;
};

}  // namespace fixture
