// Seeded R15 violations: the simulator reads the wall clock and ambient
// entropy directly, so a run is no longer a pure function of the seed.
// R1 flags the same leaves as spelled nondeterminism; R15 flags them as
// effects inside the determinism-critical scope. NOT compiled — linted by
// lint_test.cpp under a src/sim/ pretend path.
#include <chrono>
#include <cstdlib>

namespace fixture_sim {

// Direct wall-clock leaf in determinism-critical scope.
long long tickDeadlineNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// Direct ambient-rng leaf in determinism-critical scope.
int jitter() { return std::rand() % 7; }

}  // namespace fixture_sim
