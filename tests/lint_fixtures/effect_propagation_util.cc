// Cross-TU effect-propagation helper: a wall-clock read outside the
// determinism-critical scope. On its own this file draws only an R1
// finding at the leaf; the R15 finding appears in the *caller's* TU
// (effect_propagation_sim.cc), with this leaf as the witness root. NOT
// compiled — linted by lint_test.cpp together with its sim counterpart.
#include <chrono>

namespace fixture_util {

long long wallNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture_util
