// R9 positive fixture: wire-read lengths flow into an allocation size and a
// loop bound with no clamp anywhere on the path. Linted, never compiled.
#include <cstdint>
#include <vector>

namespace fixture {

void loadEntries(Reader& reader, std::vector<int>& out) {
  const auto count = reader.u32();
  if (!count) return;
  const std::size_t n = *count;  // taint propagates through the copy
  out.reserve(n);                // attacker-sized allocation
}

void sumEntries(Reader& reader) {
  const auto total = reader.u64();
  if (!total) return;
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < *total; ++i) {  // attacker-bounded loop
    sum += i;
  }
  consume(sum);
}

}  // namespace fixture
