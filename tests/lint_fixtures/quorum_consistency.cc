// R13 positive fixture: one threshold that normalizes to a non-canonical
// linear form and one vote count compared against a bare magic number.
// Linted, never compiled.
#include <cstdint>

namespace fixture {

// Normalizes to 3f+2 — matches no canonical certificate formula.
bool oddCertificate(std::uint32_t acks, std::uint32_t f) {
  return acks >= 3 * f + 2;
}

// A magic-number quorum: stops scaling the moment f changes.
bool enoughVotes(std::uint32_t votes) {
  return votes >= 3;
}

}  // namespace fixture
