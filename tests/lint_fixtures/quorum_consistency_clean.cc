// R13 negative fixture: every threshold spells a canonical certificate
// formula — the strong 2f+1, the weak f+1, the prepared 2f, and a call to
// the quorum-named helper. Linted, never compiled.
#include <cstdint>

namespace fixture {

std::uint32_t quorum(std::uint32_t f) { return 2 * f + 1; }

bool strongCertificate(std::uint32_t votes, std::uint32_t f) {
  return votes >= 2 * f + 1;
}

bool weakCertificate(std::uint32_t votes, std::uint32_t f) {
  return votes >= f + 1;
}

bool preparedCertificate(std::uint32_t matching, std::uint32_t f) {
  return matching >= 2 * f;
}

}  // namespace fixture
