// Seeded violations for R2 `unchecked-parse`. NOT compiled — linted by
// lint_test.cpp under the pretend path src/pbft/wire_fixture.cpp so the
// wire-codec sub-rule applies too.
#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace fixture {

std::optional<std::uint32_t> parseHeader();  // VIOLATION: no [[nodiscard]]

[[nodiscard]] std::optional<std::uint32_t> parseFooter();  // ok

bool getFrame(avd::util::ByteReader& reader);  // VIOLATION: wire get* decl

[[nodiscard]] bool getTrailer(avd::util::ByteReader& reader);  // ok

void skipHeader(avd::util::ByteReader& reader) {
  reader.u32();  // VIOLATION: parse result dropped, cursor still advances
  if (auto tag = reader.u16()) {  // ok: result checked
    (void)tag;
  }
}

}  // namespace fixture
