// R14 positive fixture: the view-change trigger exists but no counter
// increment matches the transition — the instrumentation has rotted and
// coverage-guided search cannot observe the transition. Linted, never
// compiled.
#include <cstdint>

namespace fixture {

void Replica::startViewChange() {
  view_ = view_ + 1;
  broadcastViewChangeMessage();
}

}  // namespace fixture
