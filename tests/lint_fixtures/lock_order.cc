// R7 positive fixture: three distinct lock-order defects.
// Linted, never compiled.
#include <mutex>

namespace fixture {

// (1) Intra-class inversion: deposit() takes ledger -> audit, withdraw()
// takes audit -> ledger. Interleaved threads deadlock.
class Account {
 public:
  void deposit() {
    const std::lock_guard<std::mutex> ledger(ledgerMutex_);
    const std::lock_guard<std::mutex> audit(auditMutex_);
    balance_ += 1;
  }
  void withdraw() {
    const std::lock_guard<std::mutex> audit(auditMutex_);
    const std::lock_guard<std::mutex> ledger(ledgerMutex_);
    balance_ -= 1;
  }

 private:
  std::mutex ledgerMutex_;
  std::mutex auditMutex_;
  int balance_ = 0;
};

// (2) Call-mediated inversion: append() holds buf and calls flushJournal()
// which takes disk (buf -> disk); rotate() takes disk then buf directly.
class Journal {
 public:
  void flushJournal() {
    const std::lock_guard<std::mutex> g(diskMutex_);
    flushed_ = true;
  }
  void append() {
    const std::lock_guard<std::mutex> g(bufMutex_);
    flushJournal();
  }
  void rotate() {
    const std::lock_guard<std::mutex> g1(diskMutex_);
    const std::lock_guard<std::mutex> g2(bufMutex_);
    flushed_ = false;
  }

 private:
  std::mutex bufMutex_;
  std::mutex diskMutex_;
  bool flushed_ = false;
};

// (3) Self-deadlock: re-acquiring a held non-recursive mutex.
class Once {
 public:
  void twice() {
    const std::lock_guard<std::mutex> outer(stateMutex_);
    const std::lock_guard<std::mutex> inner(stateMutex_);
    calls_ += 1;
  }

 private:
  std::mutex stateMutex_;
  int calls_ = 0;
};

}  // namespace fixture
