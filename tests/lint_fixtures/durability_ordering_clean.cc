// Clean under R17: the rename is bracketed by a file fsync before and a
// parent-directory fsync after, and the outcome reaches the shard before
// the ack frame goes out. NOT compiled — linted by lint_test.cpp under a
// fleet/shard pretend path.
#include <cstdio>
#include <string>

namespace fixture_shard {

struct Shard {
  bool append(const std::string& line);
  bool sync();
};

bool writeFrame(int fd, const std::string& payload);
std::string encodeDone(unsigned long test);
bool fsyncFile(const std::string& path);
bool fsyncParentDir(const std::string& path);

bool publish(const std::string& tmp, const std::string& path) {
  if (!fsyncFile(tmp)) return false;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return false;
  return fsyncParentDir(path);
}

bool reportOutcome(int fd, Shard& shard, unsigned long test) {
  if (!shard.append(encodeDone(test))) return false;
  return writeFrame(fd, encodeDone(test));
}

}  // namespace fixture_shard
