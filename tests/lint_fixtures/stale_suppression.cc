// R10 positive fixture: directives that no longer suppress anything.
// Linted, never compiled.
namespace fixture {

int answer() {
  return 42;  // avd-lint: allow(nondeterminism)
}

// avd-lint: allow(naked-lock)
int stillClean() {
  return 7;
}

}  // namespace fixture
