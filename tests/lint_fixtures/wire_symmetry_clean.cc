// R11 negative fixture: the same codec shape as wire_symmetry.cc with the
// helper pair, the loop, and the switch arms symmetric. Linted, never
// compiled.
#include <cstdint>

namespace fixture {

enum class MsgKind : std::uint8_t {
  kPing = 1,
  kBatch = 2,
};

void putHeader(Writer& writer, const Header& header) {
  writer.u32(header.id);
  writer.u64(header.seq);
}

[[nodiscard]] Header getHeader(Reader& reader) {
  Header header;
  header.id = reader.u32();
  header.seq = reader.u64();
  return header;
}

void putTags(Writer& writer, const Tags& tags) {
  for (int i = 0; i < 4; ++i) writer.u64(tags.value(i));
}

[[nodiscard]] Tags getTags(Reader& reader) {
  Tags tags;
  for (int i = 0; i < 4; ++i) tags.set(i, reader.u64());
  return tags;
}

void encodeBody(Writer& writer, const Body& body, MsgKind kind) {
  switch (kind) {
    case MsgKind::kPing:
      writer.u32(body.id);
      writer.u64(body.nonce);
      break;
    case MsgKind::kBatch:
      writer.u32(body.id);
      writer.str(body.payload);
      break;
  }
}

void decodeBody(Reader& reader, Body& body, MsgKind kind) {
  switch (kind) {
    case MsgKind::kPing:
      body.id = reader.u32();
      body.nonce = reader.u64();
      break;
    case MsgKind::kBatch:
      body.id = reader.u32();
      body.payload = reader.str();
      break;
  }
}

}  // namespace fixture
