// R9 negative fixture: the same flows, but every wire-read length passes
// through a clamp — a k*Cap constant or a remaining() validation — before
// reaching a sink. Linted, never compiled.
#include <cstdint>
#include <vector>

namespace fixture {

constexpr std::size_t kMaxEntries = 4096;

void loadEntries(Reader& reader, std::vector<int>& out) {
  const auto count = reader.u32();
  if (!count) return;
  out.reserve(std::min<std::size_t>(*count, kMaxEntries));  // clamped
  for (std::uint32_t i = 0; i < *count; ++i) {
    out.push_back(0);
  }
}

void sumEntries(Reader& reader) {
  const auto total = reader.u64();
  if (!total || *total > reader.remaining()) return;  // validated
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < *total; ++i) {
    sum += i;
  }
  consume(sum);
}

}  // namespace fixture
