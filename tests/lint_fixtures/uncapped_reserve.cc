// Seeded violations for R3 `uncapped-reserve`. NOT compiled — linted by
// lint_test.cpp.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

namespace fixture {

constexpr std::uint32_t kFixtureCap = 64;

void parseList(const std::optional<std::uint32_t>& count,
               std::vector<int>& items, std::vector<int>& capped) {
  items.reserve(*count);  // VIOLATION: attacker-controlled count, no cap
  capped.reserve(std::min(*count, kFixtureCap));  // ok: clamped to kFixtureCap
  items.resize(*count);   // VIOLATION: resize is just as bad
}

void benignSizes(std::vector<int>& items, const std::vector<int>& other) {
  items.reserve(other.size() * 2);  // ok: binary multiply, not a deref
  items.reserve(16);                // ok: literal
}

}  // namespace fixture
