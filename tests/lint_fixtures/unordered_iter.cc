// Seeded violations for R5 `unordered-iter`. NOT compiled — linted by
// lint_test.cpp under the pretend path src/pbft/replica.cpp, where
// iteration order feeds consensus decisions.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class Replica {
 public:
  std::uint64_t sumPending() const {
    std::uint64_t total = 0;
    for (const auto& [digest, seq] : pendingByDigest_) {  // VIOLATION
      total += seq + digest;
    }
    return total;
  }

  std::uint64_t firstSeen() const {
    const auto it = seenDigests_.begin();  // VIOLATION: iterator walk
    return it == seenDigests_.end() ? 0 : *it;
  }

  std::uint64_t sumOrdered() const {
    std::uint64_t total = 0;
    for (const auto& [seq, digest] : orderedLog_) {  // ok: std::map
      total += seq + digest;
    }
    return total;
  }

  bool contains(std::uint64_t digest) const {
    return seenDigests_.contains(digest);  // ok: point lookup, no iteration
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> pendingByDigest_;
  std::unordered_set<std::uint64_t> seenDigests_;
  std::map<std::uint64_t, std::uint64_t> orderedLog_;
};

}  // namespace fixture
