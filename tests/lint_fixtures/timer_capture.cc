// R8 positive fixture: setTimer callbacks capturing state that dies before
// the timer fires. Linted, never compiled.
#include <map>

namespace fixture {

class Session {
 public:
  void arm() {
    int budget = 3;
    auto it = peers_.find(7);
    setTimer(10, [&] { fire(); });          // [&]: everything by reference
    setTimer(20, [&budget] { budget -= 1; });  // dangling stack reference
    setTimer(30, [it] { (void)it; });       // iterator into mutable map
  }
  void fire();

 private:
  void setTimer(int delayMs, void (*callback)());
  std::map<int, int> peers_;
};

}  // namespace fixture
