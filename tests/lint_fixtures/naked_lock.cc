// Seeded violations for R4 `naked-lock`. NOT compiled — linted by
// lint_test.cpp.
#include <mutex>

namespace fixture {

class Queue {
 public:
  void pushBad(int v) {
    mutex_.lock();  // VIOLATION: manual lock
    value_ = v;
    mutex_.unlock();  // VIOLATION: manual unlock
  }

  bool tryPushBad(int v) {
    if (!mtx().try_lock()) return false;  // VIOLATION: manual try_lock
    value_ = v;
    mtx().unlock();  // VIOLATION: manual unlock via accessor
    return true;
  }

  void pushGood(int v) {
    const std::lock_guard<std::mutex> guard(mutex_);  // ok: RAII
    value_ = v;
  }

 private:
  std::mutex& mtx() { return mutex_; }
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace fixture
