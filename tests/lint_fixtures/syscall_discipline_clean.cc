// Clean under R16: raw POSIX confined to a designated effect module, with
// the result bound, checked, and retried on EINTR. NOT compiled — linted
// by lint_test.cpp under a common/framing pretend path.
#include <cerrno>

namespace fixture_io {

long readRetry(int fd, char* buf, unsigned long cap) {
  for (;;) {
    const long got = ::read(fd, buf, cap);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

}  // namespace fixture_io
