// Tests for the CSV/JSON result export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "avd/report.h"

namespace avd::core {
namespace {

Hyperspace twoDims() {
  Hyperspace space;
  space.add(Dimension::grayBitmask("mask", 4));
  space.add(Dimension::range("clients", 10, 30, 10));
  return space;
}

std::vector<TestRecord> sampleHistory() {
  std::vector<TestRecord> history;
  TestRecord first;
  first.point = {3, 1};  // mask index 3 -> gray 0b10; clients 20
  first.outcome.impact = 0.25;
  first.outcome.throughputRps = 1500;
  first.outcome.avgLatencySec = 0.01;
  first.generatedBy = "random";
  first.bestImpactSoFar = 0.25;
  history.push_back(first);

  TestRecord second;
  second.point = {0, 2};
  second.outcome.impact = 0.95;
  second.outcome.throughputRps = 50;
  second.outcome.viewChanges = 4;
  second.outcome.restarts = 2;
  second.outcome.recoveryLatencySec = 0.4;
  second.generatedBy = "step:mask";
  second.bestImpactSoFar = 0.95;
  history.push_back(second);
  return history;
}

TEST(Report, CsvHasHeaderAndOneRowPerTest) {
  const Hyperspace space = twoDims();
  const std::string csv = historyCsv(space, sampleHistory());
  std::stringstream stream(csv);
  std::string line;

  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_EQ(line,
            "test,generatedBy,mask,clients,impact,bestImpact,throughputRps,"
            "avgLatencySec,viewChanges,restarts,recoveryLatencySec,"
            "queueDrops,quotaDrops,safetyViolated,safetyWitness");
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_EQ(line, "1,random,2,20,0.25,0.25,1500,0.01,0,0,0,0,0,0,");
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_EQ(line, "2,step:mask,0,30,0.95,0.95,50,0,4,2,0.4,0,0,0,");
  EXPECT_FALSE(std::getline(stream, line));
}

TEST(Report, CsvDecodesGrayDimensionValues) {
  const Hyperspace space = twoDims();
  const std::string csv = historyCsv(space, sampleHistory());
  // Point index 3 on a gray dimension is mask value toGray(3) = 2.
  EXPECT_NE(csv.find("1,random,2,20"), std::string::npos);
}

TEST(Report, SummaryJsonReportsBestAndCrossing) {
  const Hyperspace space = twoDims();
  const std::string json = summaryJson(space, sampleHistory(), 0.9);
  EXPECT_NE(json.find("\"tests\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"maxImpact\": 0.95"), std::string::npos);
  EXPECT_NE(json.find("\"strongTests\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"firstStrongTest\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"generatedBy\": \"step:mask\""), std::string::npos);
  EXPECT_NE(json.find("\"clients\": 30"), std::string::npos);
  EXPECT_NE(json.find("\"restarts\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"recoveryLatencySec\": 0.4"), std::string::npos);
}

TEST(Report, SummaryJsonOnEmptyHistory) {
  const Hyperspace space = twoDims();
  const std::string json = summaryJson(space, {}, 0.9);
  EXPECT_NE(json.find("\"tests\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"best\": null"), std::string::npos);
  EXPECT_NE(json.find("\"firstStrongTest\": null"), std::string::npos);
}

TEST(Report, WriteFileRoundTrips) {
  const std::string path = "/tmp/avd_report_test.txt";
  ASSERT_TRUE(writeFile(path, "hello\nworld\n"));
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(Report, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(writeFile("/nonexistent-dir/x/y/z.txt", "data"));
}

}  // namespace
}  // namespace avd::core
