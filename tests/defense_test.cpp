// Tests for the defense/extension features: the Aardvark-style primary
// throughput guard, the equivocating-primary safety attack, and the
// clock-skew fault tool (with the f+1 co-opt boundary).
#include <gtest/gtest.h>

#include "faultinject/behaviors.h"
#include "pbft/deployment.h"

namespace avd::pbft {
namespace {

TEST(ThroughputGuard, DeposesSlowPrimaryDespiteSingleTimerBug) {
  // The buggy single timer never fires against the colluding slow primary;
  // the Aardvark guard's *rate* expectation deposes it anyway.
  DeploymentConfig config = fi::makeSlowPrimaryScenario(
      10, /*colluding=*/true, /*perRequestTimers=*/false, 3);
  config.pbft.primaryThroughputGuard = true;
  config.pbft.guardWindow = sim::sec(2);
  config.pbft.guardMinRps = 5.0;

  const RunResult result = runScenario(config);
  EXPECT_GE(result.maxView, 1u) << "the guard must depose the slow primary";
  EXPECT_GT(result.throughputRps, 10.0) << "service must recover";
  EXPECT_GT(result.correctCompleted, 100u);
  EXPECT_FALSE(result.safetyViolated);
}

TEST(ThroughputGuard, QuietOnHealthyDeployment) {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.primaryThroughputGuard = true;
  config.pbft.guardWindow = sim::sec(1);
  config.pbft.guardMinRps = 5.0;
  config.correctClients = 10;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(3);
  config.seed = 5;

  const RunResult result = runScenario(config);
  EXPECT_EQ(result.maxView, 0u) << "no false positives under healthy load";
  EXPECT_GT(result.throughputRps, 500.0);
}

TEST(Equivocation, PrimaryCannotDivergeExecution) {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(500);
  config.pbft.viewChangeTimeout = sim::msec(500);
  config.correctClients = 8;
  config.warmup = 0;
  config.measure = sim::sec(4);
  config.seed = 77;
  ReplicaBehavior equivocator;
  equivocator.equivocate = true;
  config.replicaBehaviors[0] = equivocator;

  Deployment deployment(config);
  const RunResult result = deployment.run();
  EXPECT_FALSE(result.safetyViolated)
      << "quorum intersection must prevent divergent execution";
  EXPECT_GE(result.maxView, 1u)
      << "the split votes stall a sequence and cost the equivocator its job";
  // After the view change a correct primary restores service.
  EXPECT_GT(result.correctCompleted, 100u);
}

TEST(ClockSkew, OneFastBackupIsHarmless) {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(500);
  config.pbft.viewChangeTimeout = sim::msec(500);
  config.correctClients = 8;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(3);
  config.seed = 21;
  ReplicaBehavior fast;
  fast.timerSkew = 0.1;  // times out 10x early
  config.replicaBehaviors[1] = fast;

  Deployment deployment(config);
  const RunResult result = deployment.run();
  // The fast replica's lone view-change votes never reach f+1 supporters.
  EXPECT_EQ(deployment.replica(0).view(), 0u);
  EXPECT_EQ(deployment.replica(2).view(), 0u);
  EXPECT_GT(result.throughputRps, 500.0);
  EXPECT_FALSE(result.safetyViolated);
}

TEST(ClockSkew, FPlusOneFastBackupsCoOptViewChanges) {
  // Backup request timers only arm on requests received directly from
  // clients, so the premature-timeout attack needs (a) a client that
  // broadcasts its requests and (b) clocks fast enough that the timer
  // undercuts the commit latency. With f+1 such backups their view-change
  // votes co-opt the correct replicas (the join rule) — view churn, while
  // safety still holds.
  DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(500);
  config.pbft.viewChangeTimeout = sim::msec(500);
  config.correctClients = 8;
  config.maliciousClients = 1;  // protocol-honest, but broadcasts
  config.maliciousClientBehavior.broadcastRequests = true;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(3);
  config.seed = 22;
  ReplicaBehavior fast;
  fast.timerSkew = 0.002;  // 1 ms — below the ~3 ms commit latency
  config.replicaBehaviors[1] = fast;
  config.replicaBehaviors[2] = fast;

  Deployment deployment(config);
  const RunResult result = deployment.run();
  EXPECT_GE(result.maxView, 1u);
  EXPECT_FALSE(result.safetyViolated);
}

/// Regression sweep for the P-set safety fix: under a view-change storm
/// (f+1 fast-clock backups + broadcast client produce thousands of views),
/// interrupted re-agreement must never lose a committed value.
class ViewChurnSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewChurnSafety, CommittedValuesSurviveViewStorms) {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(500);
  config.pbft.viewChangeTimeout = sim::msec(500);
  config.correctClients = 8;
  config.maliciousClients = 1;
  config.maliciousClientBehavior.broadcastRequests = true;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(3);
  config.seed = GetParam();
  ReplicaBehavior fast;
  fast.timerSkew = 0.002;
  config.replicaBehaviors[1] = fast;
  config.replicaBehaviors[2] = fast;

  const RunResult result = runScenario(config);
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GT(result.maxView, 10u) << "the storm must actually rage";
  EXPECT_GT(result.correctCompleted, 0u) << "liveness between storms";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewChurnSafety,
                         ::testing::Values(22, 101, 202, 303, 404));

TEST(ClockSkew, SlowClockDelaysLivenessButNotSafety) {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.correctClients = 5;
  config.warmup = sim::msec(300);
  config.measure = sim::sec(2);
  config.seed = 23;
  ReplicaBehavior slow;
  slow.timerSkew = 10.0;  // sluggish timers
  config.replicaBehaviors[3] = slow;

  const RunResult result = runScenario(config);
  EXPECT_GT(result.throughputRps, 500.0)
      << "a slow-clock backup does not gate the quorum path";
  EXPECT_FALSE(result.safetyViolated);
}

}  // namespace
}  // namespace avd::pbft
