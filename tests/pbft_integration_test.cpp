// End-to-end PBFT deployment tests: happy path, batching, checkpoints,
// view changes on primary failure, and safety under every scenario.
#include <gtest/gtest.h>

#include "pbft/deployment.h"

namespace avd::pbft {
namespace {

DeploymentConfig smallConfig() {
  DeploymentConfig config;
  config.pbft.f = 1;
  config.pbft.requestTimeout = sim::msec(500);
  config.pbft.viewChangeTimeout = sim::msec(500);
  config.correctClients = 5;
  config.warmup = sim::msec(500);
  config.measure = sim::sec(2);
  config.seed = 42;
  return config;
}

TEST(PbftHappyPath, AllClientsMakeProgress) {
  Deployment deployment(smallConfig());
  const RunResult result = deployment.run();

  EXPECT_GT(result.throughputRps, 100.0);
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_EQ(result.maxView, 0u) << "no view change expected on happy path";
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_GT(deployment.correctClient(i).completed(), 0u);
  }
}

TEST(PbftHappyPath, RepliesAreTimely) {
  Deployment deployment(smallConfig());
  const RunResult result = deployment.run();
  // Round trip is a handful of sub-millisecond hops; anything near the
  // retransmission timeout means the pipeline is broken.
  EXPECT_LT(result.avgLatencySec, 0.05);
  EXPECT_GT(result.avgLatencySec, 0.0);
}

TEST(PbftHappyPath, ReplicasExecuteInAgreement) {
  Deployment deployment(smallConfig());
  deployment.run();
  const auto& trace0 = deployment.replica(0).executionTrace();
  ASSERT_FALSE(trace0.empty());
  for (std::uint32_t r = 1; r < deployment.replicaCount(); ++r) {
    const auto& trace = deployment.replica(r).executionTrace();
    for (const auto& [seq, digest] : trace) {
      const auto it = trace0.find(seq);
      if (it != trace0.end()) {
        EXPECT_EQ(it->second, digest) << "seq " << seq;
      }
    }
  }
}

TEST(PbftCheckpoints, LogIsGarbageCollected) {
  DeploymentConfig config = smallConfig();
  config.pbft.checkpointInterval = 16;
  config.pbft.watermarkWindow = 64;
  Deployment deployment(config);
  const RunResult result = deployment.run();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GT(deployment.replica(0).stableCheckpoint(), 0u);
  EXPECT_GT(deployment.replica(0).stats().checkpointsTaken, 1u);
}

TEST(PbftViewChange, PrimaryCrashTriggersRecovery) {
  DeploymentConfig config = smallConfig();
  Deployment deployment(config);

  deployment.runFor(sim::msec(500));
  const std::uint64_t beforeCrash = deployment.collect().correctCompleted;
  (void)beforeCrash;
  deployment.replica(0).setAlive(false);  // primary of view 0 fails
  deployment.runFor(sim::sec(4));

  // Correct replicas must have rotated to a new primary and resumed.
  for (std::uint32_t r = 1; r < deployment.replicaCount(); ++r) {
    EXPECT_GE(deployment.replica(r).view(), 1u) << "replica " << r;
    EXPECT_FALSE(deployment.replica(r).inViewChange()) << "replica " << r;
  }
  const RunResult result = deployment.collect();
  EXPECT_FALSE(result.safetyViolated);
  EXPECT_GT(result.correctCompleted, 0u);

  // Clients keep completing requests in the new view.
  std::uint64_t completedAfter = 0;
  for (std::uint32_t i = 0; i < config.correctClients; ++i) {
    completedAfter += deployment.correctClient(i).completed();
  }
  EXPECT_GT(completedAfter, 0u);
}

TEST(PbftKvService, OperationsRoundTrip) {
  DeploymentConfig config = smallConfig();
  config.service = ServiceKind::kKv;
  Deployment deployment(config);
  const RunResult result = deployment.run();
  EXPECT_GT(result.throughputRps, 0.0);
  EXPECT_FALSE(result.safetyViolated);
}

}  // namespace
}  // namespace avd::pbft
